"""E1 [reconstructed] — throughput scalability vs. number of units.

The BiStream claim: the join-biclique scales near-linearly with the
number of processing units, with content-sensitive routing (ContHash)
giving the best equi-join throughput, while broadcast-based routing
pays a per-unit probe cost that limits scaling for small clusters.

Measurement: *simulated capacity* (see repro.harness.capacity) — run
each engine over the identical workload, charge measured per-unit
operation counts to the CPU cost model, and invert the bottleneck.
Wall-clock of a single Python process cannot exhibit multi-node
parallelism; bottleneck analysis of share-nothing units can.
"""

from __future__ import annotations

from conftest import bench_once, emit

from repro import BandJoinPredicate, BicliqueConfig, EquiJoinPredicate, TimeWindow
from repro.harness import (
    biclique_capacity,
    matrix_capacity,
    render_table,
)
from repro.core.engine import StreamJoinEngine
from repro.core.streams import merge_by_time
from repro.matrix import MatrixConfig, MatrixEngine
from repro.workloads import BandJoinWorkload, ConstantRate, EquiJoinWorkload, UniformKeys

WINDOW = TimeWindow(seconds=10.0)
UNIT_COUNTS = [4, 8, 16]
SIDES = {4: (2, 2), 8: (4, 4), 16: (8, 8)}
GRIDS = {4: (2, 2), 8: (2, 4), 16: (4, 4)}


def biclique_run(predicate, routing, units, r_stream, s_stream):
    config = BicliqueConfig(window=WINDOW, r_joiners=SIDES[units][0],
                            s_joiners=SIDES[units][1], routers=1,
                            routing=routing, archive_period=2.0,
                            punctuation_interval=0.5)
    engine = StreamJoinEngine(config, predicate)
    engine.run(r_stream, s_stream)
    return biclique_capacity(engine.engine, len(r_stream) + len(s_stream))


def matrix_run(predicate, partitioning, units, r_stream, s_stream):
    rows, cols = GRIDS[units]
    engine = MatrixEngine(
        MatrixConfig(window=WINDOW, rows=rows, cols=cols,
                     partitioning=partitioning, archive_period=2.0),
        predicate)
    for t in merge_by_time(r_stream, s_stream):
        engine.ingest(t)
    engine.finish()
    return matrix_capacity(engine, len(r_stream) + len(s_stream))


def run_experiment():
    equi = EquiJoinWorkload(keys=UniformKeys(500), seed=101)
    r_eq, s_eq = equi.materialise(ConstantRate(200.0), 30.0)
    band = BandJoinWorkload(value_range=2000.0, seed=102)
    r_bd, s_bd = band.materialise(ConstantRate(200.0), 30.0)
    equi_pred = EquiJoinPredicate("k", "k")
    band_pred = BandJoinPredicate("v", "v", band=2.0)

    results = {}
    for units in UNIT_COUNTS:
        results[("equi", "biclique/hash", units)] = biclique_run(
            equi_pred, "hash", units, r_eq, s_eq)
        results[("equi", "biclique/random", units)] = biclique_run(
            equi_pred, "random", units, r_eq, s_eq)
        results[("equi", "matrix/hash", units)] = matrix_run(
            equi_pred, "hash", units, r_eq, s_eq)
        results[("band", "biclique/random", units)] = biclique_run(
            band_pred, "random", units, r_bd, s_bd)
        results[("band", "matrix/random", units)] = matrix_run(
            band_pred, "random", units, r_bd, s_bd)
    return results


def test_e1_throughput_scaling(benchmark):
    results = bench_once(benchmark, run_experiment)

    rows = [[workload, model, units,
             f"{est.capacity_tuples_per_second:,.0f}",
             f"{est.balance:.2f}"]
            for (workload, model, units), est in sorted(results.items())]
    emit("e1_throughput_scaling", render_table(
        ["workload", "model", "units", "capacity (t/s)", "imbalance"],
        rows, title="E1: simulated aggregate throughput vs. units"))

    def cap(workload, model, units):
        return results[(workload, model, units)].capacity_tuples_per_second

    # ContHash equi-join scales near-linearly: 4 → 16 units gives >= 2.5x.
    assert cap("equi", "biclique/hash", 16) >= 2.5 * cap("equi",
                                                         "biclique/hash", 4)
    # Content-sensitive beats broadcast for the equi-join at every size.
    for units in UNIT_COUNTS:
        assert cap("equi", "biclique/hash", units) > \
            cap("equi", "biclique/random", units)
    # Broadcast routing still improves with units (stored state and
    # comparisons spread out) but sublinearly vs. hash.
    random_gain = cap("equi", "biclique/random", 16) / cap(
        "equi", "biclique/random", 4)
    hash_gain = cap("equi", "biclique/hash", 16) / cap("equi",
                                                       "biclique/hash", 4)
    assert 1.0 < random_gain < hash_gain
    # The band join scales on both models; matrix gains from its smaller
    # fan-out, biclique from spreading stored state — both must improve.
    assert cap("band", "biclique/random", 16) > cap("band",
                                                    "biclique/random", 4)
    assert cap("band", "matrix/random", 16) > cap("band", "matrix/random", 4)
