"""E3 [reconstructed] — processing latency vs. offered load.

Latency is measured on the discrete-event cluster: each delivery queues
behind the pod's earlier work, so as the offered rate approaches a
deployment's capacity, queueing delay — and hence result latency —
grows sharply; adding joiners pushes the knee to the right.  This is
the standard latency/throughput trade-off the paper's latency figures
report.
"""

from __future__ import annotations

from conftest import bench_once, emit

from repro import BicliqueConfig, EquiJoinPredicate, TimeWindow
from repro.cluster import ClusterConfig, CostModel, SimulatedCluster
from repro.harness import render_table
from repro.obs import NOOP_TRACER, Tracer
from repro.workloads import ConstantRate, EquiJoinWorkload, UniformKeys

RATES = [10.0, 25.0, 40.0]
DURATION = 60.0
#: Calibrated so one joiner per side saturates near 32 t/s.
COST = CostModel().scaled(550.0)
#: The point whose run is traced for the per-stage breakdown: the
#: mid-rate 2-joiner deployment, comfortably below saturation so the
#: stage shares reflect steady-state queueing rather than blow-up.
TRACED_POINT = (25.0, 2)


def run_point(rate: float, joiners_per_side: int, tracer=NOOP_TRACER):
    workload = EquiJoinWorkload(keys=UniformKeys(300), seed=303)
    profile = ConstantRate(rate)
    cluster = SimulatedCluster(
        BicliqueConfig(window=TimeWindow(seconds=20.0),
                       r_joiners=joiners_per_side,
                       s_joiners=joiners_per_side, routers=1,
                       routing="hash", archive_period=4.0,
                       punctuation_interval=0.05),
        EquiJoinPredicate("k", "k"),
        ClusterConfig(cost_model=COST, metrics_interval=10.0,
                      timeline_interval=30.0),
        tracer=tracer)
    report = cluster.run(workload.arrivals(profile, DURATION), DURATION,
                         rate_fn=profile.rate)
    return cluster.engine.latency.summary(), report


def run_experiment():
    summaries = {}
    stages = None
    for rate in RATES:
        for joiners in (1, 2):
            tracer = (Tracer() if (rate, joiners) == TRACED_POINT
                      else NOOP_TRACER)
            summary, report = run_point(rate, joiners, tracer)
            summaries[(rate, joiners)] = summary
            if report.stages is not None:
                stages = report.stages
    return summaries, stages


def test_e3_latency(benchmark):
    results, stages = bench_once(benchmark, run_experiment)

    rows = [[f"{rate:.0f}", joiners, f"{s.p50 * 1000:.1f}",
             f"{s.p99 * 1000:.1f}", s.count]
            for (rate, joiners), s in sorted(results.items())]
    emit("e3_latency", render_table(
        ["rate (t/s)", "joiners/side", "p50 (ms)", "p99 (ms)", "results"],
        rows, title="E3: result latency vs. offered load"))

    # Per-stage breakdown of the traced point: the route/transit/process
    # stages must tile the end-to-end latency the table above reports.
    rate, joiners = TRACED_POINT
    emit("e3_latency_stages", stages.render(
        title=f"E3: stage breakdown at {rate:.0f} t/s, "
              f"{joiners} joiners/side"))
    assert stages.samples == results[TRACED_POINT].count > 0
    assert stages.skipped == 0
    assert stages.reconciles(tolerance=0.05), (
        stages.stage_sum_mean(), stages.end_to_end.mean)
    # Tracing did not perturb the measurement: the traced point's
    # latency is the same as its untraced twin's.
    untraced, _ = run_point(rate, joiners)
    assert untraced.p99 == results[TRACED_POINT].p99

    # Latency grows with offered rate on the small deployment...
    p99_small = [results[(rate, 1)].p99 for rate in RATES]
    assert p99_small[-1] > p99_small[0]
    # ...and near saturation it blows past the lightly-loaded baseline.
    assert results[(40.0, 1)].p99 > 3 * results[(10.0, 1)].p99
    # Scaling out pushes the knee to the right: at the high rate the
    # 2-joiner deployment is far faster than the 1-joiner one.
    assert results[(40.0, 2)].p99 < 0.5 * results[(40.0, 1)].p99
    # At a low rate, extra units don't hurt latency much.
    assert results[(10.0, 2)].p50 < 2 * results[(10.0, 1)].p50 + 1e-3
