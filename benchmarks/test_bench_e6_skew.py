"""E6 [reconstructed] — skew sensitivity of the routing strategies.

Content-sensitive (hash) routing collocates equal keys, so a zipfian
key distribution concentrates both storage and probe work on the units
owning the hot keys; content-insensitive (random) routing stays
balanced by construction regardless of skew (§3.2: random routing
"protects from load imbalance when the data is skew").

Metric: load imbalance = max/mean across units, for stored tuples and
for predicate comparisons, as the zipf exponent grows.
"""

from __future__ import annotations

from conftest import bench_once, emit

from repro import BicliqueConfig, EquiJoinPredicate, TimeWindow
from repro.core.engine import StreamJoinEngine
from repro.harness import render_table
from repro.workloads import ConstantRate, EquiJoinWorkload, ZipfKeys

THETAS = [0.0, 0.8, 1.4]
UNITS_PER_SIDE = 4


def imbalance(values):
    live = [v for v in values if v >= 0]
    mean = sum(live) / len(live)
    return max(live) / mean if mean > 0 else 1.0


def run_one(theta: float, routing: str):
    workload = EquiJoinWorkload(keys=ZipfKeys(200, theta), seed=606)
    r_stream, s_stream = workload.materialise(ConstantRate(200.0), 25.0)
    engine = StreamJoinEngine(
        BicliqueConfig(window=TimeWindow(5.0), r_joiners=UNITS_PER_SIDE,
                       s_joiners=UNITS_PER_SIDE, routing=routing,
                       archive_period=1.0, punctuation_interval=0.5),
        EquiJoinPredicate("k", "k"))
    engine.run(r_stream, s_stream)
    joiners = engine.engine.joiners.values()
    return {
        "stored_imbalance": imbalance(
            [j.stats.tuples_stored for j in joiners]),
        "comparison_imbalance": imbalance(
            [j.index.stats.comparisons for j in joiners]),
    }


def run_experiment():
    return {(theta, routing): run_one(theta, routing)
            for theta in THETAS for routing in ("hash", "random")}


def test_e6_skew(benchmark):
    results = bench_once(benchmark, run_experiment)

    rows = [[f"{theta:g}", routing,
             f"{data['stored_imbalance']:.2f}",
             f"{data['comparison_imbalance']:.2f}"]
            for (theta, routing), data in sorted(results.items())]
    emit("e6_skew", render_table(
        ["zipf θ", "routing", "stored max/mean", "comparisons max/mean"],
        rows, title="E6: load imbalance under key skew (8 units)"))

    # Random routing stays balanced regardless of skew.
    for theta in THETAS:
        assert results[(theta, "random")]["stored_imbalance"] < 1.1

    # Hash routing degrades with skew...
    hash_imb = [results[(theta, "hash")]["comparison_imbalance"]
                for theta in THETAS]
    assert hash_imb[2] > hash_imb[0] * 1.3
    # ...and under heavy skew is clearly worse than random routing.
    assert results[(1.4, "hash")]["stored_imbalance"] > \
        1.5 * results[(1.4, "random")]["stored_imbalance"]
    # With uniform keys, hash routing is acceptably balanced.
    assert results[(0.0, "hash")]["stored_imbalance"] < 1.35
