"""E12 (extension) — autoscaling criteria compared.

Thesis §1.4: "The auto-scaling decisions should be set by the operator
of the cloud application depending on several performance criteria of
the processing units (e.g. CPU utilization, requests per second etc.)".
Figures 20/21 evaluate CPU and memory; this ablation adds the custom
**backlog** metric (queued work per pod — the congestion signal the
custom-metrics API would carry) and compares how the three criteria
react to the same overload step:

- reaction time: how long after the step the first scale-out fires;
- end state: replica count once the system stabilises;
- delivered latency: p99 over the run (the user-visible consequence).

Expected shape: backlog reacts fastest (queue depth explodes the moment
demand crosses capacity), CPU follows within a control period or two,
while memory only reacts when the window state grows — it is a proxy
for *state*, not load, and with a short window it may never trigger.
"""

from __future__ import annotations

from conftest import bench_once, emit

from repro import BicliqueConfig, EquiJoinPredicate, TimeWindow
from repro.cluster import ClusterConfig, CostModel, HpaConfig, SimulatedCluster
from repro.harness import render_table
from repro.workloads import EquiJoinWorkload, StepRateProfile, UniformKeys

DURATION = 120.0
STEP_AT = 30.0
PROFILE = StepRateProfile([(0.0, 10.0), (STEP_AT, 40.0)])
#: One joiner per side saturates near ~32 t/s (cf. E3 calibration).
COST = CostModel().scaled(550.0)


def hpa_for(metric: str) -> HpaConfig:
    target = {"cpu": 0.80, "memory": 0.85, "backlog": 5.0}[metric]
    return HpaConfig(metric=metric, target_utilisation=target,
                     min_replicas=1, max_replicas=4, period=5.0,
                     scale_down_cooldown=60.0)


def run_one(metric: str):
    workload = EquiJoinWorkload(keys=UniformKeys(300), seed=1212)
    hpa = hpa_for(metric)
    cluster = SimulatedCluster(
        BicliqueConfig(window=TimeWindow(seconds=20.0), r_joiners=1,
                       s_joiners=1, routers=1, routing="hash",
                       archive_period=4.0, punctuation_interval=0.1),
        EquiJoinPredicate("k", "k"),
        ClusterConfig(cost_model=COST, metrics_interval=5.0,
                      timeline_interval=10.0),
        hpa={"R": hpa, "S": hpa})
    report = cluster.run(workload.arrivals(PROFILE, DURATION), DURATION,
                         rate_fn=PROFILE.rate)
    outs = [t for t, side, kind, _ in report.scale_events
            if kind == "out" and t >= STEP_AT]
    reaction = (min(outs) - STEP_AT) if outs else None
    return {
        "reaction": reaction,
        "final_replicas": report.timeline[-1].r_replicas,
        "p99": cluster.engine.latency.summary().p99,
        "results": report.results,
    }


def run_experiment():
    return {metric: run_one(metric)
            for metric in ("backlog", "cpu", "memory")}


def test_e12_autoscaling_criteria(benchmark):
    outcomes = bench_once(benchmark, run_experiment)

    rows = [[metric,
             "-" if data["reaction"] is None else f"{data['reaction']:.0f}",
             data["final_replicas"], f"{data['p99'] * 1000:,.0f}"]
            for metric, data in outcomes.items()]
    emit("e12_autoscaling_criteria", render_table(
        ["HPA metric", "reaction (s after step)", "final R pods",
         "p99 latency (ms)"],
        rows, title="E12: autoscaling criteria under the same 10→40 t/s "
                    "overload step"))

    # All runs produce identical result counts — scaling policy affects
    # performance, never correctness.
    counts = {data["results"] for data in outcomes.values()}
    assert len(counts) == 1

    # Backlog and CPU both detect the overload and scale out...
    assert outcomes["backlog"]["reaction"] is not None
    assert outcomes["cpu"]["reaction"] is not None
    assert outcomes["backlog"]["final_replicas"] > 1
    assert outcomes["cpu"]["final_replicas"] > 1
    # ...with backlog reacting at least as fast as CPU.
    assert outcomes["backlog"]["reaction"] <= outcomes["cpu"]["reaction"]

    # Load-signal metrics deliver far better latency than memory-only
    # scaling on a load (not state) overload.
    assert outcomes["backlog"]["p99"] < 0.5 * outcomes["memory"]["p99"]
    assert outcomes["cpu"]["p99"] < 0.5 * outcomes["memory"]["p99"]
