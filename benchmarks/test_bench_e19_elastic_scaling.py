"""E19 (extension) — elastic scaling of the multiprocess runtime.

The paper's elasticity claim, exercised on real OS processes: a
stepped arrival rate (300 → 400 → 200 → 300 tuples/s) drives the
predictive :class:`~repro.parallel.elastic.ElasticController`, which
resizes the live worker pool through two-phase unit handoffs while
tuples keep flowing.  The controller runs on a *virtual clock* (one
tick of ``1/rate`` per ingest, ``capacity_smoothing=0``) so its
decisions are a pure function of the schedule — the pool trajectory is
machine-independent and the gates below are deterministic.

Gates (all hard):

- **zero lost, zero duplicated, zero spurious** results against the
  window-semantics reference join;
- the run completed **≥ 2 scale-outs and ≥ 2 scale-ins** — the pool
  actually tracked the rate steps (4 → 5 → 3 → 4 workers);
- the SIGKILL-during-migration variant survives **3 seeds** of
  :class:`~repro.chaos.plan.KillDuringMigration` schedules with
  exactly-once intact and at least one forced restart each.

Emits ``BENCH_e19.json`` (scale-event scorecard: pool trajectory,
migrations, aborted handoffs, per-seed kill results); CI's
``e19-elastic-smoke`` job runs this smoke tier, gates on the scorecard
and uploads it as an artifact.  The ``soak``-marked variant repeats
the kill schedule across a wider seed sweep.
"""

from __future__ import annotations

import json
from random import Random

import pytest
from conftest import RESULTS_DIR, bench_once, emit

from repro import (BicliqueConfig, EquiJoinPredicate, TimeWindow,
                   merge_by_time, stream_from_pairs)
from repro.chaos import ChaosConfig, ChaosInjector, KillDuringMigration
from repro.harness import check_exactly_once, reference_join, render_table
from repro.parallel import (ElasticConfig, ElasticController,
                            ParallelCluster, ParallelConfig)

#: The stepped schedule: (tuples/s on the controller clock, tuples).
STEPS = ((300, 360), (400, 480), (200, 240), (300, 360))

#: Seeds for the SIGKILL-during-migration schedules (smoke tier).
KILL_SEEDS = (101, 202, 303)

#: Wider sweep for the standing soak tier.
KILL_SEEDS_SOAK = tuple(range(101, 113))

WINDOW = TimeWindow(seconds=30.0)
PREDICATE = EquiJoinPredicate("k", "k")

#: Tuned so the demand model lands cleanly between pool sizes at each
#: step: 200 env/s × 0.8 utilisation = 160 effective env/s per worker,
#: against 2 envelopes per tuple (store + probe under hash routing),
#: puts 300/400/200 t/s at 4/5/3 workers.  ``capacity_smoothing=0``
#: keeps the prior authoritative — measured settlement rates would
#: re-introduce wall-clock noise into the trajectory.
def make_controller(clock) -> ElasticController:
    return ElasticController(
        config=ElasticConfig(capacity_prior=200.0, capacity_smoothing=0.0,
                             rate_smoothing=0.5, target_utilisation=0.8,
                             drain_horizon=4.0, max_workers=6,
                             sample_every=16, decide_every=0.25,
                             tolerance=0.05, scale_down_cooldown=0.5,
                             max_max_unacked=16),
        clock=clock)


def make_cluster(**kwargs) -> ParallelCluster:
    return ParallelCluster(
        BicliqueConfig(window=WINDOW, r_joiners=6, s_joiners=6, routers=2,
                       archive_period=5.0),
        PREDICATE,
        ParallelConfig(workers=2, transfer_batch=8, max_unacked=8,
                       supervise_every=16),
        **kwargs)


def make_arrivals(n_total: int):
    r = stream_from_pairs(
        "R", [(float(i) * 0.05, {"k": i % 7}) for i in range(n_total // 2)])
    s = stream_from_pairs(
        "S", [(i * 0.055, {"k": i % 7}) for i in range(n_total // 2)])
    return list(merge_by_time(r, s))[:n_total]


def score_results(arrivals, results) -> dict:
    expected = reference_join([t for t in arrivals if t.relation == "R"],
                              [t for t in arrivals if t.relation == "S"],
                              PREDICATE, WINDOW)
    check = check_exactly_once(results, expected)
    return {"expected": check.expected, "produced": check.produced,
            "lost": check.missing, "duplicated": check.duplicates,
            "spurious": check.spurious, "ok": check.ok}


def run_stepped_rate() -> dict:
    """One stepped-rate run under the elastic controller."""
    arrivals = make_arrivals(sum(n for _, n in STEPS))
    vclock = {"t": 0.0}
    controller = make_controller(lambda: vclock["t"])
    cluster = make_cluster(elastic=controller)
    pool_per_step = []
    with cluster:
        i = 0
        for rate, count in STEPS:
            for _ in range(count):
                vclock["t"] += 1.0 / rate
                cluster.ingest(arrivals[i])
                i += 1
            pool_per_step.append(cluster.active_worker_count)
        report = cluster.drain()
        score = score_results(arrivals, cluster.results)
    return {
        **score,
        "steps": [{"rate": rate, "tuples": count}
                  for rate, count in STEPS],
        "pool_per_step": pool_per_step,
        "workers_added": report.workers_added,
        "workers_retired": report.workers_retired,
        "migrations": report.migrations,
        "aborted_migrations": report.aborted_migrations,
        "final_workers": report.workers,
        "decisions": len(controller.decisions),
        "transfer_batch": cluster.parallel.transfer_batch,
        "max_unacked": cluster.parallel.max_unacked,
    }


def run_kill_mid_migration(seed: int) -> dict:
    """One steady-rate run with a seeded SIGKILL-during-handoff
    schedule layered on top of the elastic controller."""
    rng = Random(seed)
    n_total = 600
    arrivals = make_arrivals(n_total)
    faults = tuple(sorted(
        (KillDuringMigration(at_tuple=rng.randrange(60, n_total - 60),
                             victim=rng.choice(("source", "target")))
         for _ in range(2)), key=lambda f: f.at_tuple))
    injector = ChaosInjector(ChaosConfig(faults=faults))
    vclock = {"t": 0.0}
    controller = make_controller(lambda: vclock["t"])
    cluster = make_cluster(elastic=controller, chaos=injector)
    with cluster:
        for t in arrivals:
            vclock["t"] += 1.0 / 300
            cluster.ingest(t)
        report = cluster.drain()
        score = score_results(arrivals, cluster.results)
    return {
        **score,
        "seed": seed,
        "faults": [f"{f.kind}@{f.at_tuple}:{f.victim}" for f in faults],
        "migrations": report.migrations,
        "aborted_migrations": report.aborted_migrations,
        "restarts": report.restarts,
        "workers": report.workers,
    }


def emit_e19(name: str, stepped: dict, kills: list[dict]) -> None:
    step_rows = [[f"{s['rate']} t/s", s["tuples"], pool]
                 for s, pool in zip(stepped["steps"],
                                    stepped["pool_per_step"])]
    table = render_table(
        ["step", "tuples", "pool after"], step_rows,
        title=f"E19: elastic scaling — added={stepped['workers_added']} "
              f"retired={stepped['workers_retired']} "
              f"migrations={stepped['migrations']} "
              f"lost={stepped['lost']} dup={stepped['duplicated']}")
    kill_rows = [[k["seed"], ",".join(k["faults"]), k["migrations"],
                  k["restarts"], k["lost"], k["duplicated"]]
                 for k in kills]
    table += "\n" + render_table(
        ["seed", "kill schedule", "migrations", "restarts", "lost", "dup"],
        kill_rows, title="E19: SIGKILL during migration")
    emit(name, table)
    payload = {"experiment": "e19_elastic_scaling",
               "stepped_rate": stepped,
               "kill_mid_migration": kills,
               "ok": (stepped["ok"] and all(k["ok"] for k in kills))}
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_e19.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")


def assert_invariants(stepped: dict, kills: list[dict]) -> None:
    assert stepped["lost"] == 0 and stepped["duplicated"] == 0 \
        and stepped["spurious"] == 0, f"stepped run not exactly-once: " \
        f"{stepped}"
    assert stepped["workers_added"] >= 2, (
        f"pool never tracked the rate steps up: {stepped['pool_per_step']}")
    assert stepped["workers_retired"] >= 2, (
        f"pool never tracked the rate steps down: "
        f"{stepped['pool_per_step']}")
    assert stepped["migrations"] >= stepped["workers_added"], (
        "scale-outs without rebalancing handoffs")
    for kill in kills:
        assert kill["lost"] == 0 and kill["duplicated"] == 0 \
            and kill["spurious"] == 0, (
            f"seed {kill['seed']} lost results under kill-mid-migration: "
            f"{kill}")
        assert kill["restarts"] >= 1, (
            f"seed {kill['seed']} never actually killed a handoff side")


def test_e19_elastic_scaling_smoke(benchmark):
    stepped = bench_once(benchmark, run_stepped_rate)
    kills = [run_kill_mid_migration(seed) for seed in KILL_SEEDS]
    emit_e19("e19_elastic_scaling", stepped, kills)
    assert_invariants(stepped, kills)


@pytest.mark.soak
def test_e19_elastic_scaling_grid(benchmark):
    stepped = bench_once(benchmark, run_stepped_rate)
    kills = [run_kill_mid_migration(seed) for seed in KILL_SEEDS_SOAK]
    emit_e19("e19_elastic_scaling_grid", stepped, kills)
    assert_invariants(stepped, kills)
