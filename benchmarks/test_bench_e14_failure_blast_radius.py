"""E14 (extension) — failure blast radius of the no-replication design.

The join-biclique stores each tuple exactly once; §3.1 argues the
microservice units are "independently isolated ... and resilient to
failure".  The flip side of no replication is that a crashed unit's
window state is simply gone.  This experiment quantifies that trade:

- crash one of the ``n`` R-side units mid-run (stateless restart on its
  durable subscription),
- measure the fraction of reference results lost, and where the lost
  pairs live in time,
- verify the self-healing bound: every pair whose *older* member
  arrived at least one window after the crash is produced.

Expected shape: losses are confined to pairs overlapping the crash
window and shrink ~1/n with more units (only one unit's partition is
lost); nothing is ever duplicated.

With **window-replay recovery** enabled the replacement unit rebuilds
its window from the routers' replay log (store-only, never re-probed),
so the same crash loses *nothing*: loss fraction 0 and zero duplicates
at every unit count.
"""

from __future__ import annotations

from conftest import bench_once, emit

from repro import BicliqueConfig, BicliqueEngine, EquiJoinPredicate, TimeWindow
from repro.core.streams import merge_by_time
from repro.harness import check_exactly_once, reference_join, render_table
from repro.workloads import ConstantRate, EquiJoinWorkload, UniformKeys

WINDOW = TimeWindow(seconds=5.0)
PREDICATE = EquiJoinPredicate("k", "k")
DURATION = 40.0
CRASH_AT_FRACTION = 0.5


def run_one(units_per_side: int, replay_recovery: bool = False):
    workload = EquiJoinWorkload(keys=UniformKeys(40), seed=1414)
    r_stream, s_stream = workload.materialise(ConstantRate(80.0), DURATION)
    arrivals = list(merge_by_time(r_stream, s_stream))
    crash_index = int(len(arrivals) * CRASH_AT_FRACTION)
    crash_ts = arrivals[crash_index].ts

    engine = BicliqueEngine(
        BicliqueConfig(window=WINDOW, r_joiners=units_per_side,
                       s_joiners=units_per_side, routing="hash",
                       archive_period=1.0, punctuation_interval=0.2,
                       replay_recovery=replay_recovery),
        PREDICATE)
    for t in arrivals[:crash_index]:
        engine.ingest(t)
    engine.fail_unit("R0")
    for t in arrivals[crash_index:]:
        engine.ingest(t)
    engine.finish()

    expected = reference_join(r_stream, s_stream, PREDICATE, WINDOW)
    check = check_exactly_once(engine.results, expected)
    produced = {res.key for res in engine.results}
    ts_of = {t.ident: t.ts for t in arrivals}
    missing = expected - produced
    healed_pairs = {pair for pair in expected
                    if min(ts_of[pair[0]], ts_of[pair[1]])
                    >= crash_ts + WINDOW.seconds}
    return {
        "check": check,
        "loss_fraction": len(missing) / len(expected),
        "missing_all_pre_crash": all(
            min(ts_of[p[0]], ts_of[p[1]]) < crash_ts for p in missing),
        "healed_complete": healed_pairs <= produced,
        "crash_ts": crash_ts,
    }


def run_experiment():
    return {
        units: {"baseline": run_one(units),
                "replay": run_one(units, replay_recovery=True)}
        for units in (1, 2, 4)}


def test_e14_failure_blast_radius(benchmark):
    modes = bench_once(benchmark, run_experiment)
    outcomes = {units: data["baseline"] for units, data in modes.items()}
    recovered = {units: data["replay"] for units, data in modes.items()}

    rows = [[units, f"{data['loss_fraction']:.2%}",
             data["check"].duplicates,
             "yes" if data["healed_complete"] else "NO",
             f"{recovered[units]['loss_fraction']:.2%}",
             recovered[units]["check"].duplicates]
            for units, data in sorted(outcomes.items())]
    emit("e14_failure_blast_radius", render_table(
        ["R units", "results lost", "duplicates", "healed after 1 window",
         "lost (replay)", "dups (replay)"],
        rows, title="E14: blast radius of one R-unit crash at t=50% "
                    "(no replication vs window-replay recovery)"))

    # Window-replay recovery closes the blast radius entirely while
    # preserving exactly-once output.
    for units, data in recovered.items():
        assert data["loss_fraction"] == 0.0
        assert data["check"].duplicates == 0
        assert data["check"].spurious == 0
        assert data["check"].ok

    for units, data in outcomes.items():
        # Never duplicates or fabrications; losses are real but bounded.
        assert data["check"].duplicates == 0
        assert data["check"].spurious == 0
        # Every lost pair involves pre-crash state.
        assert data["missing_all_pre_crash"]
        # Self-healing: one window after the crash, results are exact.
        assert data["healed_complete"]
        # The loss is window-bounded: well under the crash window's
        # share of the run.
        assert data["loss_fraction"] < 0.35

    # More units shrink the blast radius (~1/n of keys lost).
    assert outcomes[4]["loss_fraction"] < outcomes[1]["loss_fraction"]
    assert outcomes[2]["loss_fraction"] < outcomes[1]["loss_fraction"]
