"""Thesis Figure 20 — dynamic scaling based on CPU utilisation.

The experiment (thesis §5.2): a 60-minute equi-join run with a
10-minute sliding window under the stepped input profile
300/400/200/300 tuples/s (changes at minutes 10, 40, 50), a CPU-based
HPA with ``targetAverageUtilization: 80``, ``minReplicas: 1``,
``maxReplicas: 3``.  The thesis observes:

- minute 0: one joiner per side at ~145 % CPU → a second pod launches,
  after which utilisation stabilises below the 80 % target;
- minute 10 (rate → 400): utilisation rises → a third pod launches and
  utilisation balances around the target until minute 40;
- minute 40 (rate → 200): utilisation falls below 60 % → one pod is
  released (back to 2);
- minute 50 (rate → 300): utilisation stabilises around 80 % with 2.

This reproduction compresses the whole timeline 10x (rates, window,
control-loop periods and step times all scaled together, so the
dynamics are identical) and calibrates the CPU cost model so one joiner
at the base rate sits at ~145 % of its request — the thesis's measured
starting point.
"""

from __future__ import annotations

from conftest import bench_once, emit

from repro import BicliqueConfig, EquiJoinPredicate, TimeWindow
from repro.cluster import ClusterConfig, CostModel, HpaConfig, SimulatedCluster
from repro.harness import render_table
from repro.workloads import EquiJoinWorkload, StepRateProfile, UniformKeys

# 1/10-scale timeline: 6 simulated minutes, steps at minutes 1, 4, 5.
DURATION = 360.0
PROFILE = StepRateProfile([(0.0, 30.0), (60.0, 40.0),
                           (240.0, 20.0), (300.0, 30.0)])
WINDOW = TimeWindow(seconds=60.0)

#: Cost-model calibration: at 30 t/s total (15 stores/s + 15 probes/s
#: per side, ~4.5 matches/probe with 200 uniform keys in a 60 s
#: window), one joiner demands ~0.72 cores = 145 % of its 0.5-core
#: request — the thesis Figure 20 starting condition.
COST_SCALE = 314.0


def run_experiment():
    workload = EquiJoinWorkload(keys=UniformKeys(200), seed=2020)
    config = BicliqueConfig(
        window=WINDOW, r_joiners=1, s_joiners=1, routers=1,
        routing="hash", archive_period=6.0, punctuation_interval=0.2,
        expiry_slack=1.0)
    hpa = HpaConfig(metric="cpu", target_utilisation=0.80,
                    min_replicas=1, max_replicas=3, period=6.0,
                    tolerance=0.12, scale_down_cooldown=30.0)
    cluster = SimulatedCluster(
        config, EquiJoinPredicate("k", "k"),
        ClusterConfig(cost_model=CostModel().scaled(COST_SCALE),
                      metrics_interval=6.0, timeline_interval=6.0,
                      reap_interval=6.0),
        hpa={"R": hpa, "S": hpa})
    report = cluster.run(workload.arrivals(PROFILE, DURATION), DURATION,
                         rate_fn=PROFILE.rate)
    return cluster, report


def phase_of(t: float) -> str:
    if t < 60:
        return "0-1min @30t/s"
    if t < 240:
        return "1-4min @40t/s"
    if t < 300:
        return "4-5min @20t/s"
    return "5-6min @30t/s"


def test_fig20_cpu_autoscaling(benchmark):
    cluster, report = bench_once(benchmark, run_experiment)

    rows = [[f"{p.time:5.0f}", phase_of(p.time), f"{p.input_rate:.0f}",
             p.r_replicas,
             None if p.cpu_utilisation_r is None
             else f"{p.cpu_utilisation_r:.0%}"]
            for p in report.timeline]
    emit("fig20_cpu_autoscaling", render_table(
        ["t (s)", "phase", "rate", "R pods", "cpu/request (R)"], rows,
        title="Figure 20 (1/10 time-scale): dynamic scaling on CPU "
              "utilisation"))

    # --- thesis shape assertions -----------------------------------------
    decisions = report.hpa_decisions["R"]
    first = next(d for d in decisions if d.observed_utilisation is not None)
    # Start: one joiner is overloaded well above the 80 % target (the
    # thesis reads ~145 % once the window has filled; the first HPA
    # sample lands during window fill-up, so we assert the trigger —
    # above target + tolerance — and check the filled-window demand via
    # the steady-state two-pod utilisation below).
    assert first.observed_utilisation > 0.88, first
    assert first.desired_replicas >= 2
    # With 2 pods at the base rate, per-pod utilisation ~72 % implies a
    # one-pod demand of ~145 % of the request — the thesis's reading.
    phase1_steady = [p.cpu_utilisation_r for p in report.timeline
                     if 30 <= p.time < 60 and p.cpu_utilisation_r is not None
                     and p.r_replicas == 2]
    assert phase1_steady, "no two-pod samples in phase 1"
    implied_single_pod = 2 * sum(phase1_steady) / len(phase1_steady)
    assert 1.1 <= implied_single_pod <= 1.9, implied_single_pod

    def replicas_at(t0, t1):
        return [p.r_replicas for p in report.timeline if t0 <= p.time < t1]

    # Phase 1 (base rate): settles at 2 pods.
    assert max(replicas_at(30, 60)) == 2
    # Phase 2 (rate +33%): a third pod launches.
    assert max(replicas_at(60, 240)) == 3
    # Phase 3 (rate -50%): the autoscaler releases pods again.
    assert min(replicas_at(250, 310)) <= 2
    # Phase 4 (base rate again): back around 2, never at max.
    assert replicas_at(330, 360)[-1] == 2

    # After the initial scale-out, utilisation stays in a sane band
    # around the target during the steady phases.
    steady = [p.cpu_utilisation_r for p in report.timeline
              if 120 <= p.time < 240 and p.cpu_utilisation_r is not None]
    assert steady, "no steady-phase samples"
    mean_util = sum(steady) / len(steady)
    assert 0.4 <= mean_util <= 1.0, mean_util

    # Results sanity: no duplicate pairs were produced across scaling.
    from collections import Counter
    counts = Counter(res.key for res in cluster.engine.results)
    assert all(c == 1 for c in counts.values())
    # 60s@30 + 180s@40 + 60s@20 + 60s@30 tuples/s
    assert report.tuples_ingested == 12_000
