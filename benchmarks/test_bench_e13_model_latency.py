"""E13 [reconstructed] — head-to-head latency: biclique vs. matrix.

The BiStream evaluation ran both models on the same Storm cluster and
reported that the join-biclique sustains higher rates at lower latency
for equi-joins.  Here both models run on the identical simulated
substrate — same broker, same network, same CPU cost model, same 8
processing units — and the offered rate is swept towards saturation.

The mechanism behind the expected shape: the matrix *stores and probes
every tuple √p times* (each replica is inserted into its cell and
probes the opposite index), so at equal unit counts its per-unit CPU
demand for an equi-join is higher than biclique/hash's (which stores
once and probes one unit).  The matrix therefore saturates at a lower
offered rate, and its latency knee appears first.
"""

from __future__ import annotations

from conftest import bench_once, emit

from repro import BicliqueConfig, EquiJoinPredicate, TimeWindow
from repro.cluster import (
    ClusterConfig,
    CostModel,
    MatrixSimulatedCluster,
    SimulatedCluster,
)
from repro.harness import render_table
from repro.matrix import MatrixConfig
from repro.obs import NOOP_TRACER, Tracer
from repro.workloads import ConstantRate, EquiJoinWorkload, UniformKeys

RATES = [10.0, 30.0, 50.0]
#: Rate whose biclique run is traced for the per-stage breakdown.
TRACED_RATE = 30.0
DURATION = 60.0
WINDOW = TimeWindow(seconds=20.0)
PREDICATE = EquiJoinPredicate("k", "k")
#: Calibrated so the 8-unit biclique is comfortable at 50 t/s while the
#: 8-unit (≈3x3 → 2x4 here) matrix saturates between 30 and 50 t/s.
COST = CostModel().scaled(700.0)


def run_biclique(rate: float, tracer=NOOP_TRACER):
    workload = EquiJoinWorkload(keys=UniformKeys(300), seed=1313)
    profile = ConstantRate(rate)
    cluster = SimulatedCluster(
        BicliqueConfig(window=WINDOW, r_joiners=4, s_joiners=4, routers=1,
                       routing="hash", archive_period=4.0,
                       punctuation_interval=0.05),
        PREDICATE,
        ClusterConfig(cost_model=COST, metrics_interval=10.0,
                      timeline_interval=30.0),
        tracer=tracer)
    report = cluster.run(workload.arrivals(profile, DURATION), DURATION)
    return (cluster.engine.latency.summary(), len(cluster.engine.results),
            report.stages)


def run_matrix(rate: float):
    workload = EquiJoinWorkload(keys=UniformKeys(300), seed=1313)
    profile = ConstantRate(rate)
    cluster = MatrixSimulatedCluster(
        MatrixConfig(window=WINDOW, rows=2, cols=4, partitioning="hash",
                     archive_period=4.0, punctuation_interval=0.05,
                     expiry_slack=1.0),
        PREDICATE,
        ClusterConfig(cost_model=COST, metrics_interval=10.0))
    cluster.run(workload.arrivals(profile, DURATION), DURATION)
    # The matrix runtime has no tracer hook-up; no stage breakdown.
    return cluster.engine.latency.summary(), len(cluster.engine.results), None


def run_experiment():
    results = {}
    for model, runner in (("biclique/hash", run_biclique),
                          ("matrix/hash", run_matrix)):
        for rate in RATES:
            traced = model == "biclique/hash" and rate == TRACED_RATE
            results[(model, rate)] = (runner(rate, Tracer()) if traced
                                      else runner(rate))
    return results


def test_e13_model_latency(benchmark):
    results = bench_once(benchmark, run_experiment)

    rows = [[model, f"{rate:.0f}", f"{summary.p50 * 1000:,.0f}",
             f"{summary.p99 * 1000:,.0f}", count]
            for (model, rate), (summary, count, _) in sorted(results.items())]
    emit("e13_model_latency", render_table(
        ["model", "rate (t/s)", "p50 (ms)", "p99 (ms)", "results"],
        rows, title="E13: latency vs. offered rate, 8 units each, "
                    "identical substrate"))

    # Stage breakdown of the traced biclique run: the three stages tile
    # the end-to-end latency reported in the table.
    stages = results[("biclique/hash", TRACED_RATE)][2]
    emit("e13_model_latency_stages", stages.render(
        title=f"E13: biclique stage breakdown at {TRACED_RATE:.0f} t/s, "
              "8 units"))
    assert stages.samples == results[("biclique/hash", TRACED_RATE)][1] > 0
    assert stages.reconciles(tolerance=0.05), (
        stages.stage_sum_mean(), stages.end_to_end.mean)

    # Identical answers at every point.
    for rate in RATES:
        assert results[("biclique/hash", rate)][1] == \
            results[("matrix/hash", rate)][1]

    # Both models comfortable at the low rate.
    b_low = results[("biclique/hash", 10.0)][0]
    m_low = results[("matrix/hash", 10.0)][0]
    assert b_low.p99 < 1.0 and m_low.p99 < 1.0

    # The matrix's replication tax: at the high rate it has saturated
    # (latency in the seconds) while the biclique still serves quickly.
    b_high = results[("biclique/hash", 50.0)][0]
    m_high = results[("matrix/hash", 50.0)][0]
    assert m_high.p99 > 5 * b_high.p99, (b_high.p99, m_high.p99)
    assert b_high.p99 < 1.0
