"""E18 (extension) — chaos soak of the real multiprocess runtime.

The paper's joint claim is that elasticity and failure handling
*compose* without losing results; E18 certifies the multiprocess
runtime's half of it under adversarial fault schedules.  A fixed-seed
soak (:mod:`repro.chaos.soak`) runs ten rounds of workload × randomized
fault plan — SIGKILL, SIGSTOP+SIGCONT, frame corruption in all three
modes, shm-record corruption against the zero-copy ring (header and
slab flips), pipe stalls, and command-loop hangs against live worker
processes — and every round is scored against the window-semantics
reference join.

Gates (all hard):

- **zero lost, zero duplicated, zero spurious** results in every round;
- the plan actually covered the acceptance fault kinds (kill, stall,
  corruption, pipe stall) — a seed drift that waters the plan down
  fails loudly instead of silently certifying less;
- at least one corrupt-frame recovery went through **quarantine +
  respawn** (the coordinator survived garbage from a live worker).

Emits ``BENCH_e18.json`` (the soak scorecard plus derived coverage);
CI's ``e18-chaos-smoke`` job runs the smoke variant, fails on any
lost/duplicate result, and uploads the scorecard artifact.  The
``soak``-marked variant is the standing long grid.
"""

from __future__ import annotations

import json

import pytest
from conftest import RESULTS_DIR, bench_once, emit

from repro.chaos import SoakConfig, run_soak
from repro.harness import render_table

#: The fixed CI smoke shape: deterministic seed, ten rounds, three
#: faults per round, every fault kind in the draw pool.
SMOKE = SoakConfig(rounds=10, seed=2015, tuples_per_round=320,
                   faults_per_round=3)

#: The standing long grid: more rounds, denser faults.
SOAK = SoakConfig(rounds=30, seed=2015, tuples_per_round=400,
                  faults_per_round=5)

#: Fault kinds the acceptance criteria name; the smoke plan must have
#: actually injected each family at least once across its rounds.
REQUIRED_FAMILIES = {
    "kill": ("kill",),
    "stall": ("stall",),
    "corrupt": ("corrupt_flip", "corrupt_truncate", "corrupt_duplicate"),
    "corrupt_shm": ("corrupt_shm_header", "corrupt_shm_slab"),
    "pipe_stall": ("pipe_stall",),
}


def emit_e18(name: str, scorecard: dict) -> None:
    rows = []
    for entry in scorecard["rounds"]:
        rows.append([
            entry["round"], entry["mode"], entry["expected"],
            entry["lost"], entry["duplicated"], entry["restarts"],
            entry["quarantines"], entry["redeliveries"],
            ",".join(entry["faults"]) or "-"])
    totals = scorecard["totals"]
    emit(name, render_table(
        ["round", "mode", "expected", "lost", "dup", "restarts",
         "quarantines", "redeliveries", "faults"],
        rows,
        title=f"E18: chaos soak, {totals['rounds']} rounds, "
              f"{totals['expected']} expected results, "
              f"faults={totals['faults_injected']}"))
    payload = {"experiment": "e18_chaos_soak", **scorecard}
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_e18.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")


def assert_invariants(scorecard: dict, *, check_coverage: bool) -> None:
    totals = scorecard["totals"]
    for entry in scorecard["rounds"]:
        assert not entry["failure"], (
            f"round {entry['round']} crashed the coordinator: "
            f"{entry['failure']}")
        assert entry["lost"] == 0, f"round {entry['round']} lost results"
        assert entry["duplicated"] == 0, (
            f"round {entry['round']} duplicated results")
        assert entry["spurious"] == 0, (
            f"round {entry['round']} produced spurious results")
    assert scorecard["ok"]
    assert totals["lost"] == 0 and totals["duplicated"] == 0

    if not check_coverage:
        return
    injected = totals["faults_injected"]
    for family, kinds in REQUIRED_FAMILIES.items():
        assert any(injected.get(kind, 0) > 0 for kind in kinds), (
            f"the plan never injected a {family!r} fault — seed drift? "
            f"injected: {injected}")
    # The acceptance criterion's corrupt-frame case: recovery went
    # through quarantine+respawn, not a coordinator crash.
    assert totals["quarantines"] >= 1, (
        "no corrupt-frame recovery exercised the quarantine path")
    assert totals["redeliveries"] >= 1, (
        "no recovery ever redelivered an in-flight batch")


def test_e18_chaos_soak_smoke(benchmark):
    scorecard = bench_once(benchmark, lambda: run_soak(SMOKE))
    emit_e18("e18_chaos_soak", scorecard)
    assert_invariants(scorecard, check_coverage=True)


@pytest.mark.soak
def test_e18_chaos_soak_grid(benchmark):
    scorecard = bench_once(benchmark, lambda: run_soak(SOAK))
    emit_e18("e18_chaos_soak_grid", scorecard)
    assert_invariants(scorecard, check_coverage=True)
