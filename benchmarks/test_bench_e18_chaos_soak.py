"""E18 (extension) — chaos soak of the real multiprocess runtime.

The paper's joint claim is that elasticity and failure handling
*compose* without losing results; E18 certifies the multiprocess
runtime's half of it under adversarial fault schedules.  A fixed-seed
soak (:mod:`repro.chaos.soak`) runs ten rounds of workload × randomized
fault plan — SIGKILL, SIGSTOP+SIGCONT, frame corruption in all three
modes, shm-record corruption against the zero-copy ring (header and
slab flips), pipe stalls, and command-loop hangs against live worker
processes — and every round is scored against the window-semantics
reference join.

Gates (all hard):

- **zero lost, zero duplicated, zero spurious** results in every round;
- the plan actually covered the acceptance fault kinds (kill, stall,
  corruption, pipe stall) — a seed drift that waters the plan down
  fails loudly instead of silently certifying less;
- at least one corrupt-frame recovery went through **quarantine +
  respawn** (the coordinator survived garbage from a live worker).

Emits ``BENCH_e18.json`` (the soak scorecard plus derived coverage);
CI's ``e18-chaos-smoke`` job runs the smoke variant, fails on any
lost/duplicate result, and uploads the scorecard artifact.  The
``soak``-marked variant is the standing long grid.
"""

from __future__ import annotations

import json
from random import Random

import pytest
from conftest import RESULTS_DIR, bench_once, emit

from repro.chaos import (NETWORK_FAULT_KINDS, SoakConfig, random_fault_plan,
                         run_soak)
from repro.chaos.soak import make_workload
from repro.harness import render_table

#: The fixed CI smoke shape: deterministic seed, ten rounds, three
#: faults per round, every fault kind in the draw pool.
SMOKE = SoakConfig(rounds=10, seed=2015, tuples_per_round=320,
                   faults_per_round=3)

#: The standing long grid: more rounds, denser faults.
SOAK = SoakConfig(rounds=30, seed=2015, tuples_per_round=400,
                  faults_per_round=5)

#: The gateway variant: the same seeded base plans (network faults are
#: drawn after every other category) plus network-edge chaos, with the
#: whole workload routed through a loopback ingest gateway.
GATEWAY_SMOKE = SoakConfig(rounds=10, seed=2015, tuples_per_round=320,
                           faults_per_round=3, gateway=True,
                           network_faults_per_round=2)

#: Fault kinds the acceptance criteria name; the smoke plan must have
#: actually injected each family at least once across its rounds.
REQUIRED_FAMILIES = {
    "kill": ("kill",),
    "stall": ("stall",),
    "corrupt": ("corrupt_flip", "corrupt_truncate", "corrupt_duplicate"),
    "corrupt_shm": ("corrupt_shm_header", "corrupt_shm_slab"),
    "pipe_stall": ("pipe_stall",),
}

#: Additionally required when the soak runs through the gateway: every
#: network-edge fault family must actually have fired at the client.
NETWORK_FAMILIES = {
    "drop_connection": ("drop_connection",),
    "slowloris": ("slowloris",),
    "partial_write": ("partial_write",),
    "malformed_frame": ("malformed_frame",),
}


def emit_e18(name: str, scorecard: dict, *,
             artifact: str = "BENCH_e18.json") -> None:
    rows = []
    for entry in scorecard["rounds"]:
        rows.append([
            entry["round"], entry["mode"], entry["expected"],
            entry["lost"], entry["duplicated"], entry["restarts"],
            entry["quarantines"], entry["redeliveries"],
            ",".join(entry["faults"]) or "-"])
    totals = scorecard["totals"]
    emit(name, render_table(
        ["round", "mode", "expected", "lost", "dup", "restarts",
         "quarantines", "redeliveries", "faults"],
        rows,
        title=f"E18: chaos soak, {totals['rounds']} rounds, "
              f"{totals['expected']} expected results, "
              f"faults={totals['faults_injected']}"))
    payload = {"experiment": name, **scorecard}
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / artifact).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")


def assert_invariants(scorecard: dict, *, check_coverage: bool,
                      families: dict | None = None) -> None:
    totals = scorecard["totals"]
    for entry in scorecard["rounds"]:
        assert not entry["failure"], (
            f"round {entry['round']} crashed the coordinator: "
            f"{entry['failure']}")
        assert entry["lost"] == 0, f"round {entry['round']} lost results"
        assert entry["duplicated"] == 0, (
            f"round {entry['round']} duplicated results")
        assert entry["spurious"] == 0, (
            f"round {entry['round']} produced spurious results")
    assert scorecard["ok"]
    assert totals["lost"] == 0 and totals["duplicated"] == 0

    if not check_coverage:
        return
    injected = totals["faults_injected"]
    families = families if families is not None else REQUIRED_FAMILIES
    for family, kinds in families.items():
        assert any(injected.get(kind, 0) > 0 for kind in kinds), (
            f"the plan never injected a {family!r} fault — seed drift? "
            f"injected: {injected}")
    # The acceptance criterion's corrupt-frame case: recovery went
    # through quarantine+respawn, not a coordinator crash.
    assert totals["quarantines"] >= 1, (
        "no corrupt-frame recovery exercised the quarantine path")
    assert totals["redeliveries"] >= 1, (
        "no recovery ever redelivered an in-flight batch")


def test_e18_chaos_soak_smoke(benchmark):
    scorecard = bench_once(benchmark, lambda: run_soak(SMOKE))
    emit_e18("e18_chaos_soak", scorecard)
    assert_invariants(scorecard, check_coverage=True)


def test_e18_gateway_soak_smoke(benchmark):
    """The same soak routed through a loopback ingest gateway: the
    network-edge faults compose with process chaos at zero lost/dup."""
    scorecard = bench_once(benchmark, lambda: run_soak(GATEWAY_SMOKE))
    emit_e18("e18_gateway_soak", scorecard,
             artifact="BENCH_e18_gateway.json")
    assert_invariants(
        scorecard, check_coverage=True,
        families={**REQUIRED_FAMILIES, **NETWORK_FAMILIES})
    totals = scorecard["totals"]
    assert totals["network_faults"] > 0
    # The seeded base plans are byte-identical with the gateway on or
    # off: replaying each round's draws *without* network faults must
    # reproduce exactly the non-network faults the round scheduled.
    for entry in scorecard["rounds"]:
        rng = Random(entry["seed"])
        arrivals = len(make_workload(rng, GATEWAY_SMOKE.tuples_per_round,
                                     key_space=GATEWAY_SMOKE.key_space,
                                     value_space=GATEWAY_SMOKE.value_space))
        base = random_fault_plan(
            rng, arrivals, GATEWAY_SMOKE.workers,
            faults=GATEWAY_SMOKE.faults_per_round,
            resizes=GATEWAY_SMOKE.effective_resizes,
            shm_faults=GATEWAY_SMOKE.shm_faults_per_round,
            kinds=GATEWAY_SMOKE.kinds)
        expected = [f"{f.kind}@{f.at_tuple}" for f in base.faults]
        scheduled = [s for s in entry["faults"]
                     if s.split("@")[0] not in NETWORK_FAULT_KINDS]
        assert scheduled == expected, (
            f"round {entry['round']}: gateway mode perturbed the seeded "
            f"base plan")


@pytest.mark.soak
def test_e18_chaos_soak_grid(benchmark):
    scorecard = bench_once(benchmark, lambda: run_soak(SOAK))
    emit_e18("e18_chaos_soak_grid", scorecard)
    assert_invariants(scorecard, check_coverage=True)
