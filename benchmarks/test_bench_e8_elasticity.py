"""E8 [reconstructed] — elastic scaling mid-stream, without migration.

The join-biclique scaling story: adding a unit only changes the routing
of *new* tuples (the strategy re-balances; old state expires in place),
removing a unit drains it for one window extent.  The join-matrix must
reshape its whole grid and re-replicate live state.  This bench scales
both models mid-stream under identical input and reports:

- migration traffic (biclique: structurally zero; matrix: bytes moved),
- how quickly the new biclique unit absorbs its fair share of storage,
- exactly-once correctness across every scaling event.
"""

from __future__ import annotations

from conftest import bench_once, emit

from repro import BicliqueConfig, BicliqueEngine, EquiJoinPredicate, TimeWindow
from repro.core.streams import merge_by_time
from repro.harness import check_exactly_once, reference_join, render_table
from repro.matrix import MatrixConfig, MatrixEngine
from repro.workloads import ConstantRate, EquiJoinWorkload, UniformKeys

WINDOW = TimeWindow(seconds=5.0)
PREDICATE = EquiJoinPredicate("k", "k")
DURATION = 40.0


def run_experiment():
    workload = EquiJoinWorkload(keys=UniformKeys(300), seed=808)
    r_stream, s_stream = workload.materialise(ConstantRate(150.0), DURATION)
    arrivals = list(merge_by_time(r_stream, s_stream))
    scale_at = len(arrivals) // 2
    scale_time = arrivals[scale_at].ts

    # --- biclique: scale out S side mid-stream -------------------------
    biclique = BicliqueEngine(
        BicliqueConfig(window=WINDOW, r_joiners=2, s_joiners=2,
                       routing="hash", archive_period=1.0,
                       punctuation_interval=0.5),
        PREDICATE)
    share_timeline = []
    new_unit = None
    for i, t in enumerate(arrivals):
        if i == scale_at:
            new_unit = biclique.scale_out("S", 1, now=t.ts)[0]
        biclique.ingest(t)
        if new_unit is not None and i % 200 == 0:
            total = sum(j.stored_tuples for j in biclique.joiners.values()
                        if j.side == "S")
            share = (biclique.joiners[new_unit].stored_tuples / total
                     if total else 0.0)
            share_timeline.append((t.ts - scale_time, share))
    biclique.finish()

    # --- matrix: reshape 2x2 → 2x3 at the same point --------------------
    matrix = MatrixEngine(
        MatrixConfig(window=WINDOW, rows=2, cols=2, partitioning="hash",
                     archive_period=1.0),
        PREDICATE)
    for i, t in enumerate(arrivals):
        if i == scale_at:
            matrix.reshape(2, 3, now=t.ts)
        matrix.ingest(t)
    matrix.finish()

    expected = reference_join(r_stream, s_stream, PREDICATE, WINDOW)
    return {
        "biclique_check": check_exactly_once(biclique.results, expected),
        "matrix_check": check_exactly_once(matrix.results, expected),
        "matrix_migrated_bytes": matrix.migration.bytes_migrated,
        "matrix_migrated_tuples": matrix.migration.tuples_migrated,
        "share_timeline": share_timeline,
        "expected": len(expected),
    }


def test_e8_elasticity(benchmark):
    data = bench_once(benchmark, run_experiment)

    rows = [["biclique scale-out (S: 2→3)", 0, 0,
             "yes" if data["biclique_check"].ok else "NO"],
            ["matrix reshape (2x2→2x3)", data["matrix_migrated_tuples"],
             data["matrix_migrated_bytes"],
             "yes" if data["matrix_check"].ok else "NO"]]
    table1 = render_table(
        ["scaling action", "tuples migrated", "bytes migrated", "exact"],
        rows, title="E8: mid-stream scaling cost")
    share_rows = [[f"{dt:.1f}", f"{share:.1%}"]
                  for dt, share in data["share_timeline"][:12]]
    table2 = render_table(
        ["seconds after scale-out", "new unit's storage share"],
        share_rows,
        title="E8b: new biclique unit absorbing load (fair share = 33%)")
    emit("e8_elasticity", table1 + "\n\n" + table2)

    # Exactly-once across the scaling events, both models.
    assert data["biclique_check"].ok, data["biclique_check"]
    assert data["matrix_check"].ok, data["matrix_check"]

    # The matrix paid real migration traffic; the biclique paid none
    # (structurally: it has no migration path at all).
    assert data["matrix_migrated_bytes"] > 0

    # The new biclique unit converges towards its fair storage share
    # (1/3) within roughly one window extent.
    late = [share for dt, share in data["share_timeline"]
            if dt >= WINDOW.seconds]
    assert late and late[-1] > 0.25, data["share_timeline"]
