"""E4 [reconstructed] — effect of the sliding-window size Ws.

A larger window keeps more live state (memory grows ~linearly with Ws)
and makes every probe find more matches (for a fixed key universe the
match count per probe is ~linear in Ws), so sustainable throughput
falls as the window grows — the window-size sweep in the paper's
evaluation.
"""

from __future__ import annotations

import pytest
from conftest import bench_once, emit

from repro import BicliqueConfig, EquiJoinPredicate, TimeWindow
from repro.core.engine import StreamJoinEngine
from repro.harness import biclique_capacity, render_table
from repro.workloads import ConstantRate, EquiJoinWorkload, UniformKeys

WINDOWS = [2.0, 5.0, 10.0, 20.0]


def run_experiment():
    workload = EquiJoinWorkload(keys=UniformKeys(400), seed=404,
                                payload_bytes=64)
    r_stream, s_stream = workload.materialise(ConstantRate(250.0), 40.0)
    ingested = len(r_stream) + len(s_stream)

    points = {}
    for seconds in WINDOWS:
        engine = StreamJoinEngine(
            BicliqueConfig(window=TimeWindow(seconds), r_joiners=2,
                           s_joiners=2, routing="hash", archive_period=1.0,
                           punctuation_interval=0.5),
            EquiJoinPredicate("k", "k"))
        _, report = engine.run(r_stream, s_stream, sample_memory_every=500)
        capacity = biclique_capacity(engine.engine, ingested)
        points[seconds] = (report, capacity)
    return points


def test_e4_window_size(benchmark):
    points = bench_once(benchmark, run_experiment)

    rows = [[f"{sec:g}", report.results, report.peak_live_bytes,
             f"{cap.capacity_tuples_per_second:,.0f}"]
            for sec, (report, cap) in sorted(points.items())]
    emit("e4_window_size", render_table(
        ["window (s)", "results", "peak bytes", "capacity (t/s)"],
        rows, title="E4: window-size sweep (equi-join, 4 units)"))

    mem = {sec: report.peak_live_bytes for sec, (report, _) in points.items()}
    cap = {sec: c.capacity_tuples_per_second for sec, (_, c) in points.items()}
    res = {sec: report.results for sec, (report, _) in points.items()}

    # Memory is ~linear in the window extent.
    assert mem[20.0] == pytest.approx(10 * mem[2.0], rel=0.35)
    # Result volume is ~linear in the window extent too (symmetric
    # window, uniform keys).
    assert res[20.0] == pytest.approx(10 * res[2.0], rel=0.35)
    # Capacity decreases monotonically with the window.
    ordered = [cap[sec] for sec in WINDOWS]
    assert all(a > b for a, b in zip(ordered, ordered[1:]))
