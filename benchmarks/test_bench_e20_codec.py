"""E20 (extension) — data-plane codec: pickle frames vs packed records.

The shm transport's speedup claim decomposes into (a) skipping the
pipe copy and (b) a cheaper serialisation format.  This experiment
isolates (b): encode+decode throughput of the two codecs over the two
data-plane payloads (:class:`~repro.parallel.commands.Deliver` and
:class:`~repro.parallel.commands.BatchDone`) at batch sizes 8/64/256 —

- **pickle**: :func:`repro.parallel.codec.encode_frame` /
  :func:`try_decode_frame`, the versioned CRC frame every pipe message
  travels in (so the comparison includes each format's full
  validation cost, not just the serialiser);
- **struct**: :func:`repro.parallel.shm.pack_record` /
  :func:`try_unpack_record`, the columnar batch format the rings carry.

Gates (self-relative CPU ratios, so runner speed and core count cancel
out): at batch sizes 64 and 256 the packed format must encode at least
2x faster and decode at least 1.1x faster than pickle, and the packed
record must not be larger than the pickled frame.  Emits
``BENCH_e20.json``; CI uploads it next to the E17 artifact.
"""

from __future__ import annotations

import json
import random
import time

import pytest
from conftest import RESULTS_DIR, bench_once, emit

from repro.core.batching import EnvelopeBatch
from repro.core.ordering import KIND_JOIN, KIND_STORE, Envelope
from repro.core.tuples import JoinResult, StreamTuple
from repro.harness import render_table
from repro.parallel import (BatchDone, Deliver, encode_frame, pack_record,
                            try_decode_frame, try_unpack_record)

BATCH_SIZES = (8, 64, 256)

#: Self-relative floors, applied at the two production-shaped batch
#: sizes (the transfer batch is 64 in E17; 8 is the latency-bound
#: shape and informational only).
GATED_SIZES = (64, 256)
MIN_ENCODE_RATIO = 2.0
MIN_DECODE_RATIO = 1.1


def make_tuple(rng: random.Random, relation: str, seq: int) -> StreamTuple:
    return StreamTuple(relation=relation, ts=seq * 0.001,
                       values={"k": rng.randint(0, 12),
                               "v": rng.uniform(0.0, 20.0)}, seq=seq)


def make_deliver(n: int) -> Deliver:
    rng = random.Random(20 + n)
    envelopes = tuple(
        Envelope(kind=KIND_JOIN if i % 2 else KIND_STORE,
                 router_id=f"router{i % 2}", counter=i,
                 tuple=make_tuple(rng, "R" if i % 2 else "S", i))
        for i in range(n))
    return Deliver(seq=7, unit_id="R3", batch=EnvelopeBatch(envelopes))


def make_done(n: int) -> BatchDone:
    rng = random.Random(40 + n)
    # ~8 distinct tuples per side, reused across results — the tuple
    # table dedup mirrors how joins actually fan out.
    r_pool = [make_tuple(rng, "R", i) for i in range(max(1, n // 8))]
    s_pool = [make_tuple(rng, "S", i) for i in range(max(1, n // 8))]
    results = tuple(
        JoinResult(r=rng.choice(r_pool), s=rng.choice(s_pool),
                   ts=i * 0.001, produced_at=i * 0.001 + 0.5,
                   producer=f"J{i % 4}")
        for i in range(n))
    return BatchDone(seq=7, unit_id="S3", results=results, busy=0.01)


def time_loop(fn, reps: int) -> float:
    started = time.perf_counter()
    for _ in range(reps):
        fn()
    return time.perf_counter() - started


def measure(payload, n: int) -> dict:
    reps = max(40, 4000 // n)
    frame = encode_frame(payload)
    buf = bytearray()
    assert pack_record(payload, buf)
    record = bytes(buf)
    ok, decoded = try_unpack_record(record)
    assert ok and decoded == payload  # parity before speed

    pickle_encode = time_loop(lambda: encode_frame(payload), reps)
    struct_encode = time_loop(lambda: pack_record(payload, buf), reps)
    pickle_decode = time_loop(lambda: try_decode_frame(frame), reps)
    struct_decode = time_loop(lambda: try_unpack_record(record), reps)
    return {
        "payload": type(payload).__name__,
        "batch_size": n,
        "reps": reps,
        "pickle_encode_us": 1e6 * pickle_encode / reps,
        "struct_encode_us": 1e6 * struct_encode / reps,
        "pickle_decode_us": 1e6 * pickle_decode / reps,
        "struct_decode_us": 1e6 * struct_decode / reps,
        "encode_ratio": pickle_encode / struct_encode,
        "decode_ratio": pickle_decode / struct_decode,
        "pickle_bytes": len(frame),
        "struct_bytes": len(record),
    }


def run_experiment() -> dict:
    rows = []
    for n in BATCH_SIZES:
        rows.append(measure(make_deliver(n), n))
        rows.append(measure(make_done(n), n))
    return {"rows": rows}


def emit_e20(experiment: dict) -> None:
    table = []
    for row in experiment["rows"]:
        table.append([
            row["payload"], row["batch_size"],
            f"{row['pickle_encode_us']:.1f}",
            f"{row['struct_encode_us']:.1f}",
            f"{row['encode_ratio']:.2f}x",
            f"{row['pickle_decode_us']:.1f}",
            f"{row['struct_decode_us']:.1f}",
            f"{row['decode_ratio']:.2f}x",
            f"{row['struct_bytes']}/{row['pickle_bytes']}"])
    emit("e20_codec", render_table(
        ["payload", "batch", "pickle enc us", "struct enc us", "enc",
         "pickle dec us", "struct dec us", "dec", "bytes packed/pickle"],
        table,
        title="E20: data-plane codec, pickle frames vs packed records"))
    payload = {"experiment": "e20_codec", **experiment,
               "gates": {"sizes": list(GATED_SIZES),
                         "min_encode_ratio": MIN_ENCODE_RATIO,
                         "min_decode_ratio": MIN_DECODE_RATIO}}
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_e20.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")


def assert_invariants(experiment: dict) -> None:
    for row in experiment["rows"]:
        # The packed record must never be the bigger wire format.
        assert row["struct_bytes"] <= row["pickle_bytes"], row
        if row["batch_size"] not in GATED_SIZES:
            continue
        assert row["encode_ratio"] >= MIN_ENCODE_RATIO, (
            f"{row['payload']} n={row['batch_size']}: packed encode only "
            f"{row['encode_ratio']:.2f}x pickle (< {MIN_ENCODE_RATIO}x)")
        assert row["decode_ratio"] >= MIN_DECODE_RATIO, (
            f"{row['payload']} n={row['batch_size']}: packed decode only "
            f"{row['decode_ratio']:.2f}x pickle (< {MIN_DECODE_RATIO}x)")


def test_e20_codec_throughput(benchmark):
    experiment = bench_once(benchmark, run_experiment)
    emit_e20(experiment)
    assert_invariants(experiment)


@pytest.mark.stress
def test_e20_codec_throughput_repeated(benchmark):
    """Three back-to-back runs must all clear the gates (guards against
    a lucky single measurement ratcheting the floor)."""
    experiments = bench_once(
        benchmark, lambda: [run_experiment() for _ in range(3)])
    emit_e20(experiments[-1])
    for experiment in experiments:
        assert_invariants(experiment)
