"""E21 (extension) — network ingest gateway: concurrent clients,
exactly-once admission, live metrics.

The gateway is the system's network edge (PR: ingest gateway); E21
certifies it under concurrency: N independent TCP clients stream a
partitioned workload through one :class:`IngestGateway` into a live
two-worker :class:`ParallelCluster`, with a deliberately small
hand-off queue and the ``drop-tail`` admission policy so real sheds
happen mid-run and the clients' at-least-once retry loops have to
recover them.

Gates (all hard):

- the settled join results are **multiset-equal** to the
  single-process reference join — interleaved multi-client ingest
  loses nothing, duplicates nothing;
- the admission ledger reconciles exactly: per side,
  ``offered == admitted + shed``, and admitted equals the workload
  size (every tuple admitted exactly once despite retries);
- a **mid-traffic** ``/metrics`` scrape returns valid Prometheus
  exposition carrying the ``repro_gateway_*`` counters.

Emits ``BENCH_e21.json`` (ingest throughput, ack-latency p50/p99, the
shed/duplicate ledger) for CI's ``e21-gateway-smoke`` job; the
``stress``-marked variant sweeps the client count.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request
from random import Random

import pytest
from conftest import RESULTS_DIR, bench_once, emit

from repro.chaos.soak import make_workload
from repro.core.biclique import BicliqueConfig
from repro.core.predicates import EquiJoinPredicate
from repro.core.windows import TimeWindow
from repro.gateway import GatewayClient, GatewayConfig, IngestGateway
from repro.harness import check_exactly_once, reference_join, render_table
from repro.overload.manager import OverloadConfig, OverloadManager
from repro.parallel import ParallelCluster, ParallelConfig

#: The CI smoke shape: 8 concurrent clients, 1600 tuples.
SMOKE_CLIENTS = 8
SMOKE_TUPLES = 1600

#: The window must cover the workload's event-time span: multi-client
#: interleave reorders arrivals, and expiry must not eat the disorder.
WINDOW = TimeWindow(60.0)


def run_gateway_experiment(n_clients: int, n_tuples: int,
                           *, seed: int = 21) -> dict:
    """One full edge-to-settlement run; returns the measured row."""
    arrivals = make_workload(Random(seed), n_tuples)
    predicate = EquiJoinPredicate("k", "k")
    cluster = ParallelCluster(
        BicliqueConfig(window=WINDOW, r_joiners=2, s_joiners=2, routers=2,
                       archive_period=5.0, punctuation_interval=1.0),
        predicate,
        ParallelConfig(workers=2, transfer_batch=16, max_unacked=16))
    manager = OverloadManager(OverloadConfig(policy="drop-tail"))
    # The hand-off bound sits *below* the client count: with every
    # client keeping one record in flight, the queue can actually fill
    # and drop-tail sheds happen for the retry loops to recover.
    config = GatewayConfig(handoff_depth=max(2, n_clients // 2))

    reports = [None] * n_clients
    scrape = {}

    def drive(index: int, port: int) -> None:
        client = GatewayClient("127.0.0.1", port)
        try:
            reports[index] = client.stream(arrivals[index::n_clients])
        finally:
            client.close()

    with cluster:
        with IngestGateway(cluster, manager, config) as gateway:
            threads = [threading.Thread(target=drive,
                                        args=(i, gateway.port))
                       for i in range(n_clients)]
            started = time.monotonic()
            for thread in threads:
                thread.start()
            # Mid-traffic observability: scrape while clients stream.
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{gateway.port}/metrics",
                    timeout=10) as resp:
                scrape["content_type"] = resp.headers["Content-Type"]
                scrape["text"] = resp.read().decode()
            for thread in threads:
                thread.join()
            ingest_wall = time.monotonic() - started
            gateway.drain()
        gateway.registry.collect()  # absorb the final ack latencies
        hist = gateway.registry.histogram(
            "repro_gateway_ack_latency_seconds")
        report = cluster.drain()
        results = cluster.results

    assert all(r is not None for r in reports), "a client thread died"
    expected = reference_join(
        [t for t in arrivals if t.relation == "R"],
        [t for t in arrivals if t.relation == "S"], predicate, WINDOW)
    check = check_exactly_once(results, expected)
    ledger = {side: {"offered": led.offered, "admitted": led.admitted,
                     "shed": led.shed}
              for side, led in sorted(manager.accounting.sides.items())}
    stats = gateway.stats
    return {
        "clients": n_clients,
        "tuples": n_tuples,
        "acked": sum(r.acked + r.duplicates for r in reports),
        "sheds_retried": sum(r.sheds_retried for r in reports),
        "resets": sum(r.resets for r in reports),
        "ingest_wall_s": ingest_wall,
        "ingest_tuples_per_s": n_tuples / ingest_wall,
        "ack_p50_ms": hist.quantile(0.5) * 1e3,
        "ack_p99_ms": hist.quantile(0.99) * 1e3,
        "gateway": {"records_in": stats.records_in, "acks": stats.acks,
                    "sheds": stats.sheds, "duplicates": stats.duplicates,
                    "disconnects": stats.disconnects},
        "ledger": ledger,
        "join_results": report.results,
        "expected_results": check.expected,
        "lost": check.missing,
        "duplicated": check.duplicates,
        "spurious": check.spurious,
        "ok": check.ok,
        "scrape": scrape,
    }


def assert_invariants(row: dict) -> None:
    assert row["ok"], (
        f"multiset mismatch: lost={row['lost']} dup={row['duplicated']} "
        f"spurious={row['spurious']}")
    assert row["acked"] == row["tuples"], (
        "some tuple was never acknowledged")
    for side, led in row["ledger"].items():
        assert led["offered"] == led["admitted"] + led["shed"], (
            f"side {side}: ledger does not reconcile: {led}")
    admitted = sum(led["admitted"] for led in row["ledger"].values())
    assert admitted == row["tuples"], (
        f"admitted {admitted} != workload {row['tuples']} — dedup or "
        f"retry leak")
    # The mid-traffic scrape is valid Prometheus text exposition.
    assert row["scrape"]["content_type"].startswith("text/plain")
    seen = set()
    for line in row["scrape"]["text"].splitlines():
        if not line or line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        float(value)
        seen.add(name.split("{")[0])
    assert {"repro_gateway_connections_total",
            "repro_gateway_records_in_total",
            "repro_gateway_acks_total",
            "repro_gateway_sheds_total",
            "repro_gateway_malformed_total",
            "repro_gateway_disconnects_total"} <= seen, sorted(seen)


def emit_e21(name: str, rows: list[dict]) -> None:
    table = [[r["clients"], r["tuples"],
              f"{r['ingest_tuples_per_s']:,.0f}",
              f"{r['ack_p50_ms']:.2f}", f"{r['ack_p99_ms']:.2f}",
              r["gateway"]["sheds"], r["gateway"]["duplicates"],
              r["resets"], r["join_results"], r["lost"], r["duplicated"]]
             for r in rows]
    emit(name, render_table(
        ["clients", "tuples", "ingest/s", "ack p50 ms", "ack p99 ms",
         "sheds", "dups", "resets", "results", "lost", "dup"],
        table,
        title="E21: concurrent TCP clients through the ingest gateway "
              "(drop-tail admission, 2 workers)"))
    payload = {"experiment": "e21_gateway",
               "rows": [{k: v for k, v in r.items() if k != "scrape"}
                        for r in rows]}
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_e21.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_e21_gateway_smoke(benchmark):
    row = bench_once(
        benchmark,
        lambda: run_gateway_experiment(SMOKE_CLIENTS, SMOKE_TUPLES))
    emit_e21("e21_gateway", [row])
    assert row["clients"] >= 8
    assert_invariants(row)


@pytest.mark.stress
def test_e21_gateway_client_sweep(benchmark):
    rows = bench_once(benchmark, lambda: [
        run_gateway_experiment(n, 2400, seed=21 + n)
        for n in (4, 8, 16)])
    emit_e21("e21_gateway_sweep", rows)
    for row in rows:
        assert_invariants(row)
