"""Shared helpers for the benchmark suite.

Each benchmark file regenerates one table or figure from the experiment
index in DESIGN.md.  Conventions:

- every benchmark runs its experiment exactly once via
  :func:`bench_once` (pytest-benchmark's ``pedantic`` mode) — these are
  system experiments, not micro-benchmarks, and a single deterministic
  run is the measurement;
- each prints the paper-style table/series (visible with ``pytest -s``,
  and appended to ``benchmarks/results/`` for EXPERIMENTS.md);
- each asserts the qualitative *shape* the source text reports (who
  wins, by roughly what factor, where the crossover falls), never the
  authors' absolute testbed numbers.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def emit(name: str, text: str) -> None:
    """Print a result block and persist it for EXPERIMENTS.md."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
