"""E9 — routing strategies per selectivity class (thesis §3.2).

The design guidance under test: hash-partitioning (ContHash) for
low-selectivity equi-joins — data locality, fan-out 1 — and random
(ContRand) for high-selectivity predicates, where broadcast is
unavoidable but load stays balanced.  The bench quantifies the costs
each strategy pays on each workload class:

- messages per tuple (network),
- predicate comparisons per probe (CPU),
- load balance across units,

and verifies that the "auto" mode picks the right strategy per class.
"""

from __future__ import annotations

from conftest import bench_once, emit

from repro import (
    BandJoinPredicate,
    BicliqueConfig,
    EquiJoinPredicate,
    TimeWindow,
)
from repro.core.engine import StreamJoinEngine
from repro.errors import RoutingError
from repro.harness import render_table
from repro.workloads import BandJoinWorkload, ConstantRate, EquiJoinWorkload, UniformKeys

WINDOW = TimeWindow(seconds=5.0)
UNITS_PER_SIDE = 4


def run_one(predicate, routing, r_stream, s_stream):
    engine = StreamJoinEngine(
        BicliqueConfig(window=WINDOW, r_joiners=UNITS_PER_SIDE,
                       s_joiners=UNITS_PER_SIDE, routing=routing,
                       archive_period=1.0, punctuation_interval=0.5),
        predicate)
    _, report = engine.run(r_stream, s_stream)
    joiners = engine.engine.joiners.values()
    stored = [j.stats.tuples_stored for j in joiners]
    mean_stored = sum(stored) / len(stored)
    return {
        "mode": engine.engine.routing_mode,
        "msgs_per_tuple": report.network.data_messages / report.tuples_ingested,
        "comparisons_per_probe": report.comparisons / max(
            1, sum(j.stats.probes_processed for j in joiners)),
        "balance": max(stored) / mean_stored if mean_stored else 1.0,
        "results": report.results,
    }


def run_experiment():
    equi = EquiJoinWorkload(keys=UniformKeys(400), seed=909)
    r_eq, s_eq = equi.materialise(ConstantRate(200.0), 20.0)
    band = BandJoinWorkload(value_range=4000.0, seed=910)
    r_bd, s_bd = band.materialise(ConstantRate(200.0), 20.0)
    equi_pred = EquiJoinPredicate("k", "k")
    band_pred = BandJoinPredicate("v", "v", band=2.0)

    out = {
        ("equi", "hash"): run_one(equi_pred, "hash", r_eq, s_eq),
        ("equi", "random"): run_one(equi_pred, "random", r_eq, s_eq),
        ("equi", "auto"): run_one(equi_pred, "auto", r_eq, s_eq),
        ("band", "random"): run_one(band_pred, "random", r_bd, s_bd),
        ("band", "auto"): run_one(band_pred, "auto", r_bd, s_bd),
    }
    # ContHash on a band join must be *rejected* (it would silently
    # miss results — nearby values hash to unrelated partitions).
    try:
        run_one(band_pred, "hash", r_bd, s_bd)
        hash_band_rejected = False
    except RoutingError:
        hash_band_rejected = True
    return out, hash_band_rejected


def test_e9_routing_strategies(benchmark):
    results, hash_band_rejected = bench_once(benchmark, run_experiment)

    rows = [[workload, requested, data["mode"],
             f"{data['msgs_per_tuple']:.2f}",
             f"{data['comparisons_per_probe']:.2f}",
             f"{data['balance']:.2f}", data["results"]]
            for (workload, requested), data in sorted(results.items())]
    emit("e9_routing_strategies", render_table(
        ["workload", "requested", "resolved", "msgs/tuple", "cmp/probe",
         "store balance", "results"],
        rows, title="E9: routing strategies per selectivity class "
                    "(4+4 units)"))

    equi_hash = results[("equi", "hash")]
    equi_random = results[("equi", "random")]
    # Identical answers...
    assert equi_hash["results"] == equi_random["results"]
    # ...but hash pays constant fan-out vs broadcast.
    assert equi_hash["msgs_per_tuple"] == 2.0
    # random = 1 + m = 5 msgs/tuple here vs hash's constant 2
    assert equi_random["msgs_per_tuple"] >= 2.5 * equi_hash["msgs_per_tuple"]
    # Hash probes only the owning unit's bucket; random probes one
    # bucket per unit, so total candidate work is similar — the win is
    # network + per-probe overhead, as §3.2 argues.
    assert equi_hash["comparisons_per_probe"] <= \
        4 * equi_random["comparisons_per_probe"] + 1

    # Auto mode resolves by selectivity class.
    assert results[("equi", "auto")]["mode"] == "hash"
    assert results[("band", "auto")]["mode"] == "random"
    # ContHash is refused for predicates without an equi conjunct.
    assert hash_band_rejected
