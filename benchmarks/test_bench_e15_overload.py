"""E15 (extension) — graceful degradation under overload.

The paper sizes the cluster so offered load stays within capacity; this
experiment deliberately steps the offered rate *past* the joiners'
service capacity and measures what each admission policy gives up:

- **unprotected** — no bound anywhere: joiner-inbox occupancy grows
  with offered load (the memory blow-up the overload layer exists to
  prevent);
- **block** — lossless credit backpressure: queue depth and memory stay
  bounded, nothing is shed, and the cost surfaces as admission delay
  with a knee at the capacity crossover;
- **drop-tail / drop-oldest / semantic** — bounded shedding: depth stays
  bounded, admission delay stays ~0, and the cost surfaces as recall
  loss instead.

Every run must reconcile ``offered == admitted + shed`` exactly, per
stream side.  The default (smoke) parametrisation keeps CI fast; the
full policy x rate sweep behind ``-m stress`` adds the remaining
policies and a finer rate grid for the trade-off curve.
"""

from __future__ import annotations

import pytest
from conftest import bench_once, emit

from repro import BicliqueConfig, EquiJoinPredicate, TimeWindow
from repro.cluster import SimulatedCluster
from repro.cluster.resources import CostModel
from repro.cluster.runtime import ClusterConfig
from repro.core.streams import merge_by_time
from repro.harness import render_table
from repro.overload import OverloadConfig
from repro.workloads import ConstantRate, EquiJoinWorkload, UniformKeys

WINDOW = TimeWindow(seconds=2.0)
PREDICATE = EquiJoinPredicate("k", "k")
DURATION = 5.0
ENTRY_BOUND = 64
JOINER_BOUND = 64
CREDITS = 32

#: Offered rates (tuples/s, both sides combined).  The 2+2 joiner
#: deployment saturates around ~60 t/s with the scaled cost model, so
#: the upper steps are 1.3x-2x past capacity.
SMOKE_RATES = (40.0, 80.0, 120.0)
STRESS_RATES = (40.0, 80.0, 120.0, 160.0)

SMOKE_POLICIES = (None, "block", "drop-tail")
STRESS_POLICIES = (None, "block", "drop-tail", "drop-oldest", "semantic")


def run_one(policy: str | None, rate: float) -> dict:
    workload = EquiJoinWorkload(keys=UniformKeys(16), seed=3)
    r, s = workload.materialise(ConstantRate(rate), DURATION)
    arrivals = list(merge_by_time(r, s))
    overload = None if policy is None else OverloadConfig(
        policy=policy, entry_queue_depth=ENTRY_BOUND,
        joiner_queue_depth=JOINER_BOUND, credits_per_joiner=CREDITS)
    cluster = SimulatedCluster(
        BicliqueConfig(window=WINDOW, r_joiners=2, s_joiners=2,
                       routing="random", punctuation_interval=0.2),
        PREDICATE,
        ClusterConfig(cost_model=CostModel().scaled(550.0)),
        overload=overload)
    report = cluster.run(iter(arrivals), DURATION)
    joiner_peak = max(q.peak_depth
                      for name, q in cluster.broker._queues.items()
                      if name.startswith("joiner."))
    entry_peak = cluster.broker._queues[
        "tuples.exchange.routergroup"].peak_depth
    o = report.overload
    return {
        "offered_rate": rate,
        "results": report.results,
        "entry_peak": entry_peak,
        "joiner_peak": joiner_peak,
        "offered": 0 if o is None else o.total_offered,
        "admitted": 0 if o is None else sum(o.admitted.values()),
        "shed": 0 if o is None else o.total_shed,
        "recall_loss": 0.0 if o is None else max(o.recall_loss.values()),
        "deferrals": 0 if o is None else o.deferrals,
        "max_delay": 0.0 if o is None else o.max_admission_delay,
        "reconciled": True if o is None else o.reconciled,
        "park_evictions": 0 if o is None else o.park_evictions,
    }


def run_sweep(policies, rates):
    return {policy: {rate: run_one(policy, rate) for rate in rates}
            for policy in policies}


def emit_sweep(name: str, sweep: dict) -> None:
    rows = []
    for policy, by_rate in sweep.items():
        for rate, row in sorted(by_rate.items()):
            rows.append([
                policy or "unprotected", f"{rate:.0f}",
                row["entry_peak"], row["joiner_peak"],
                row["shed"], f"{row['recall_loss']:.2%}",
                f"{row['max_delay']:.2f}s", row["results"],
                "yes" if row["reconciled"] else "NO"])
    emit(name, render_table(
        ["policy", "rate t/s", "entry peak", "joiner peak", "shed",
         "recall loss", "max adm delay", "results", "reconciled"],
        rows, title="E15: overload behaviour by admission policy "
                    "(stepped offered rate past ~60 t/s capacity)"))


def assert_sweep_invariants(sweep: dict) -> None:
    rates = sorted(next(iter(sweep.values())))
    top = rates[-1]

    for policy, by_rate in sweep.items():
        for rate, row in by_rate.items():
            # Shed accounting reconciles exactly, always.
            assert row["reconciled"], (policy, rate)
            if policy is not None:
                assert row["offered"] == row["admitted"] + row["shed"]
                # Credits bound the joiner inboxes under every policy.
                assert row["joiner_peak"] <= 2 * CREDITS, (policy, rate)
                if policy != "drop-oldest":
                    # Admission gating bounds the entry queue too.
                    # (drop-oldest admits everything and bounds the
                    # routers' park buffers instead.)
                    assert row["entry_peak"] <= ENTRY_BOUND + 1, (policy, rate)

    unprotected = sweep[None]
    # Without backpressure the joiner inboxes grow with offered load...
    peaks = [unprotected[rate]["joiner_peak"] for rate in rates]
    assert peaks[-1] > peaks[0] * 2
    # ...far past anything a bounded run tolerates.
    assert peaks[-1] > 2 * CREDITS * 2

    block = sweep["block"]
    # Lossless: nothing shed at any rate, so all results are produced
    # eventually; the price is admission delay with a knee at capacity.
    assert all(row["shed"] == 0 for row in block.values())
    assert block[rates[0]]["max_delay"] == 0.0  # below capacity: no knee
    assert block[top]["max_delay"] > 0.5
    assert block[top]["deferrals"] > 0

    shed_policy = sweep["drop-tail"]
    # Shedding: bounded *and* prompt (no producer stall), but lossy —
    # recall loss grows with overload.
    assert shed_policy[top]["shed"] > 0
    assert shed_policy[top]["max_delay"] == 0.0
    assert shed_policy[top]["recall_loss"] \
        > shed_policy[rates[0]]["recall_loss"]

    # The trade-off, stated as the curve's endpoints: at the top rate
    # block keeps more results (quality) while drop-tail keeps the
    # producer unblocked (latency).
    assert block[top]["results"] > shed_policy[top]["results"]
    assert block[top]["max_delay"] > shed_policy[top]["max_delay"]


def test_e15_overload_smoke(benchmark):
    sweep = bench_once(
        benchmark, lambda: run_sweep(SMOKE_POLICIES, SMOKE_RATES))
    emit_sweep("e15_overload", sweep)
    assert_sweep_invariants(sweep)


@pytest.mark.stress
def test_e15_overload_full_sweep(benchmark):
    sweep = bench_once(
        benchmark, lambda: run_sweep(STRESS_POLICIES, STRESS_RATES))
    emit_sweep("e15_overload_full", sweep)
    assert_sweep_invariants(sweep)

    top = STRESS_RATES[-1]
    oldest = sweep["drop-oldest"]
    # Drop-oldest sheds *after* admission (park eviction) yet still
    # reconciles, and always works on the freshest data.
    assert oldest[top]["park_evictions"] > 0
    assert oldest[top]["shed"] == oldest[top]["park_evictions"]

    semantic = sweep["semantic"]
    assert semantic[top]["shed"] > 0
