"""E5 — the chained in-memory index ablation (archive period P).

Design choice under test (thesis §3.1.2 / DESIGN.md ablations): "it is
not efficient to organize the entire streaming data with one single
index, as it will incur high overhead during the stale tuple
discarding operation."  The chained index discards whole sub-indexes in
O(1); the monolithic baseline must rebuild its index tuple-by-tuple.

Sweep: P ∈ {0.5, 2, 8} seconds plus the monolithic baseline, on a
discard-heavy workload (short window, long stream).  Metrics: wall
time of the full run, sub-indexes created/expired, tuples expired —
and identical join output across all configurations.
"""

from __future__ import annotations

import time

from conftest import bench_once, emit

from repro import BicliqueConfig, EquiJoinPredicate, TimeWindow
from repro.core.engine import StreamJoinEngine
from repro.harness import render_table
from repro.workloads import ConstantRate, EquiJoinWorkload, UniformKeys

PERIODS = [0.5, 2.0, 8.0, None]  # None = monolithic baseline
WINDOW = TimeWindow(seconds=2.0)


def run_one(period, r_stream, s_stream):
    engine = StreamJoinEngine(
        BicliqueConfig(window=WINDOW, r_joiners=1, s_joiners=1,
                       routing="hash", archive_period=period,
                       punctuation_interval=0.5),
        EquiJoinPredicate("k", "k"))
    started = time.perf_counter()
    results, report = engine.run(r_stream, s_stream)
    wall = time.perf_counter() - started
    stats_r = engine.engine.joiners["R0"].index.stats
    return {
        "wall": wall,
        "results": {res.key for res in results},
        "subindexes_created": stats_r.subindexes_created,
        "subindexes_expired": stats_r.subindexes_expired,
        "tuples_expired": stats_r.tuples_expired,
        "comparisons": report.comparisons,
    }


def run_experiment():
    workload = EquiJoinWorkload(keys=UniformKeys(100), seed=505)
    r_stream, s_stream = workload.materialise(ConstantRate(150.0), 60.0)
    return {period: run_one(period, r_stream, s_stream)
            for period in PERIODS}


def test_e5_archive_period(benchmark):
    outcomes = bench_once(benchmark, run_experiment)

    rows = [["monolithic" if period is None else f"P={period:g}s",
             f"{data['wall']:.3f}", data["subindexes_created"],
             data["subindexes_expired"], data["tuples_expired"]]
            for period, data in outcomes.items()]
    emit("e5_archive_period", render_table(
        ["index", "wall (s)", "sub-idx created", "sub-idx expired",
         "tuples expired"],
        rows, title="E5: chained-index archive period ablation "
                    "(2 s window, 60 s stream)"))

    # All configurations produce the identical result set.
    result_sets = [data["results"] for data in outcomes.values()]
    assert all(rs == result_sets[0] for rs in result_sets)

    # The chained index discards at sub-index granularity...
    assert outcomes[0.5]["subindexes_expired"] > \
        outcomes[8.0]["subindexes_expired"] > 0
    # ...and a smaller P tracks the window more tightly (more archived
    # slices per window).
    assert outcomes[0.5]["subindexes_created"] > \
        outcomes[2.0]["subindexes_created"] > \
        outcomes[8.0]["subindexes_created"]

    # The headline: chained discarding is materially cheaper than the
    # monolithic rebuild on a discard-heavy stream.
    chained_best = min(outcomes[p]["wall"] for p in (0.5, 2.0, 8.0))
    assert outcomes[None]["wall"] > 1.3 * chained_best, outcomes
