"""E11 (extension) — windowed vs. full-history joins.

§2.2 notes that systems in this class also support joins "over full or
partial-historical states of the stream".  This ablation quantifies
what the sliding window — and with it Theorem-1 discarding — buys:

- windowed state plateaus after one window extent (memory is bounded by
  the live set);
- full-history state grows linearly with the stream, and per-probe work
  grows with it, so sustainable capacity decays over time;
- the windowed result set is exactly the recent-pairs subset of the
  full-history result set.
"""

from __future__ import annotations

import pytest
from conftest import bench_once, emit

from repro import (
    BicliqueConfig,
    EquiJoinPredicate,
    FullHistoryWindow,
    StreamJoinEngine,
    TimeWindow,
)
from repro.core.streams import merge_by_time
from repro.harness import render_table
from repro.workloads import ConstantRate, EquiJoinWorkload, UniformKeys

PREDICATE = EquiJoinPredicate("k", "k")
DURATION = 40.0
SAMPLE_EVERY = 5.0  # stream-seconds between memory samples


def run_one(window):
    workload = EquiJoinWorkload(keys=UniformKeys(300), seed=1111)
    r_stream, s_stream = workload.materialise(ConstantRate(150.0), DURATION)
    engine = StreamJoinEngine(
        BicliqueConfig(window=window, r_joiners=2, s_joiners=2,
                       routing="hash", archive_period=2.0,
                       punctuation_interval=0.5),
        PREDICATE)
    samples = []
    next_sample = SAMPLE_EVERY
    for t in merge_by_time(r_stream, s_stream):
        if t.ts >= next_sample:
            samples.append(
                (next_sample,
                 engine.engine.memory_snapshot().total_live_bytes))
            next_sample += SAMPLE_EVERY
        engine.engine.ingest(t)
    engine.engine.finish()
    return {
        "samples": samples,
        "results": {res.key for res in engine.engine.results},
        "comparisons": engine.engine.total_comparisons(),
        "stored_final": engine.engine.total_stored_tuples(),
    }


def run_experiment():
    return {
        "windowed": run_one(TimeWindow(seconds=5.0)),
        "full-history": run_one(FullHistoryWindow()),
    }


def test_e11_full_history(benchmark):
    outcomes = bench_once(benchmark, run_experiment)

    win = dict(outcomes["windowed"]["samples"])
    full = dict(outcomes["full-history"]["samples"])
    rows = [[f"{t:.0f}", win[t], full[t]] for t in sorted(win)]
    emit("e11_full_history", render_table(
        ["stream time (s)", "windowed bytes", "full-history bytes"],
        rows, title="E11: live state growth — 5 s window vs. full history"))

    # Windowed memory plateaus after the window fills: the second half
    # of the run stays within a narrow band.
    late = [v for t, v in win.items() if t >= 15.0]
    assert max(late) <= 1.25 * min(late)

    # Full-history memory grows ~linearly with the stream.
    assert full[40.0 - SAMPLE_EVERY] > 3 * full[10.0]
    assert full[40.0 - SAMPLE_EVERY] == pytest.approx(
        (40.0 - SAMPLE_EVERY) / 10.0 * full[10.0], rel=0.25)

    # The windowed results are exactly the recent subset.
    assert outcomes["windowed"]["results"] < outcomes["full-history"]["results"]

    # Full-history probing does strictly more comparison work.
    assert outcomes["full-history"]["comparisons"] > \
        2 * outcomes["windowed"]["comparisons"]
