"""E2 [reconstructed] — memory efficiency: biclique vs. matrix.

The BiStream headline: the join-biclique stores every tuple exactly
once, so total memory is independent of the number of units and linear
in the window; the join-matrix replicates each R tuple across its row
(``cols`` copies) and each S tuple down its column (``rows`` copies),
so memory inflates by ~√p on a square grid and *grows when scaling*.
"""

from __future__ import annotations

import pytest
from conftest import bench_once, emit

from repro import BicliqueConfig, EquiJoinPredicate, TimeWindow
from repro.harness import render_table, run_biclique, run_matrix
from repro.matrix import MatrixConfig
from repro.workloads import ConstantRate, EquiJoinWorkload, UniformKeys

PREDICATE = EquiJoinPredicate("k", "k")
GRIDS = {4: (2, 2), 9: (3, 3), 16: (4, 4)}


def run_experiment():
    workload = EquiJoinWorkload(keys=UniformKeys(1000), seed=202,
                                payload_bytes=128)
    r_stream, s_stream = workload.materialise(ConstantRate(300.0), 20.0)

    by_units = {}
    for units, (rows, cols) in GRIDS.items():
        b = run_biclique(
            BicliqueConfig(window=TimeWindow(10.0), r_joiners=units // 2,
                           s_joiners=units - units // 2, routing="hash",
                           archive_period=2.0, punctuation_interval=0.5),
            PREDICATE, r_stream, s_stream, verify=False)
        m = run_matrix(
            MatrixConfig(window=TimeWindow(10.0), rows=rows, cols=cols,
                         partitioning="hash", archive_period=2.0),
            PREDICATE, r_stream, s_stream, verify=False)
        by_units[units] = (b, m)

    by_window = {}
    for seconds in (2.0, 5.0, 10.0):
        by_window[seconds] = run_biclique(
            BicliqueConfig(window=TimeWindow(seconds), r_joiners=2,
                           s_joiners=2, routing="hash", archive_period=1.0,
                           punctuation_interval=0.5),
            PREDICATE, r_stream, s_stream, verify=False)
    return by_units, by_window


def test_e2_memory_comparison(benchmark):
    by_units, by_window = bench_once(benchmark, run_experiment)

    rows = []
    for units, (b, m) in sorted(by_units.items()):
        rows.append([units, b.peak_live_bytes, m.peak_live_bytes,
                     f"{m.peak_live_bytes / b.peak_live_bytes:.2f}x"])
    table1 = render_table(
        ["units", "biclique bytes", "matrix bytes", "matrix/biclique"],
        rows, title="E2a: peak live memory vs. units (10 s window)")

    rows = [[f"{sec:g}", stats.peak_live_bytes]
            for sec, stats in sorted(by_window.items())]
    table2 = render_table(["window (s)", "biclique peak bytes"], rows,
                          title="E2b: biclique memory vs. window size")
    emit("e2_memory_comparison", table1 + "\n\n" + table2)

    # Biclique memory is flat in the unit count (each tuple stored once).
    peaks = [b.peak_live_bytes for b, _ in by_units.values()]
    assert max(peaks) <= 1.15 * min(peaks)

    # Matrix memory inflates by ~√p (= rows = cols on a square grid).
    for units, (b, m) in by_units.items():
        expected = GRIDS[units][0]  # replication factor on a square grid
        ratio = m.peak_live_bytes / b.peak_live_bytes
        assert ratio == pytest.approx(expected, rel=0.25), (units, ratio)

    # Matrix memory *grows* as the deployment scales; biclique's doesn't.
    assert by_units[16][1].peak_live_bytes > \
        1.5 * by_units[4][1].peak_live_bytes

    # Biclique memory is ~linear in the window extent.
    w2 = by_window[2.0].peak_live_bytes
    w10 = by_window[10.0].peak_live_bytes
    assert w10 == pytest.approx(5 * w2, rel=0.35)
