"""Thesis Figure 21 — dynamic scaling based on memory load.

The experiment (thesis §5.2): the same stepped-rate equi-join, but the
HPA watches *memory* (target 85 %, reached at ~520 MB of JVM heap).
The thesis observes, with its tuned-GC footprint policy
(``MinHeapFreeRatio=20, MaxHeapFreeRatio=40``):

- the memory load starts at ~60 MB and grows while the window fills;
- after one window extent it is *bounded by data discarding* — memory
  tracks the live window state, not the stream length;
- when the rate rises, tuples accumulate faster than they expire, the
  target is violated and a second joiner is spawned;
- the accumulation is then split between two joiners, so the per-pod
  memory load declines until the autoscaler releases the extra pod;
- during scaling, *no data migration happens* — expired tuples are
  discarded in place and only new tuples are routed to the new pod.

This reproduction uses the same 10x-compressed timeline as the Fig 20
bench and a 10x-scaled-down heap envelope (same free-ratio policy, MB
instead of hundreds of MB), so the curve shape is directly comparable.
"""

from __future__ import annotations

from conftest import bench_once, emit

from repro import BicliqueConfig, EquiJoinPredicate, TimeWindow
from repro.cluster import ClusterConfig, CostModel, HpaConfig, SimulatedCluster
from repro.harness import render_table
from repro.metrics import MB, JvmHeapModel
from repro.workloads import EquiJoinWorkload, StepRateProfile, UniformKeys

DURATION = 360.0
PROFILE = StepRateProfile([(0.0, 30.0), (60.0, 40.0),
                           (240.0, 20.0), (300.0, 30.0)])
WINDOW = TimeWindow(seconds=60.0)
PAYLOAD_BYTES = 10 * 1024
MEMORY_REQUEST = 15 * MB   # 85 % target ≈ 12.75 MB (thesis: ~520 MB)


def scaled_heap() -> JvmHeapModel:
    """The thesis JVM envelope at 1/10 scale: same ratios, MB range."""
    return JvmHeapModel(min_free_ratio=0.20, max_free_ratio=0.40,
                        xms_bytes=1 * MB, xmx_bytes=93 * MB,
                        baseline_bytes=int(0.5 * MB))


def run_experiment():
    workload = EquiJoinWorkload(keys=UniformKeys(400), seed=2121,
                                payload_bytes=PAYLOAD_BYTES)
    config = BicliqueConfig(
        window=WINDOW, r_joiners=1, s_joiners=1, routers=1,
        routing="hash", archive_period=6.0, punctuation_interval=0.2,
        expiry_slack=1.0)
    hpa = HpaConfig(metric="memory", target_utilisation=0.85,
                    min_replicas=1, max_replicas=3, period=6.0,
                    tolerance=0.1, scale_down_cooldown=30.0)
    from repro.cluster import ResourceSpec
    cluster = SimulatedCluster(
        config, EquiJoinPredicate("k", "k"),
        ClusterConfig(
            joiner_spec=ResourceSpec(cpu_request=0.5, cpu_limit=1.0,
                                     memory_request=MEMORY_REQUEST,
                                     memory_limit=4 * 1024 * MB),
            cost_model=CostModel(),  # memory, not CPU, is the stressor
            metrics_interval=6.0, timeline_interval=6.0, reap_interval=6.0),
        hpa={"R": hpa, "S": hpa},
        heap_factory=scaled_heap)
    report = cluster.run(workload.arrivals(PROFILE, DURATION), DURATION,
                         rate_fn=PROFILE.rate)
    return cluster, report


def test_fig21_memory_autoscaling(benchmark):
    cluster, report = bench_once(benchmark, run_experiment)

    rows = [[f"{p.time:5.0f}", f"{p.input_rate:.0f}", p.r_replicas,
             None if p.memory_mapped_mb_r is None
             else f"{p.memory_mapped_mb_r:.1f}",
             None if p.memory_utilisation_r is None
             else f"{p.memory_utilisation_r:.0%}"]
            for p in report.timeline]
    emit("fig21_memory_autoscaling", render_table(
        ["t (s)", "rate", "R pods", "heap MB (mean/pod)", "mem/request"],
        rows,
        title="Figure 21 (1/10 scale): dynamic scaling on memory load"))

    mapped = {p.time: p.memory_mapped_mb_r for p in report.timeline
              if p.memory_mapped_mb_r is not None}

    # 1. Memory grows while the window first fills...
    assert mapped[54.0] > mapped[6.0] * 1.5
    # ...and never runs away: discarding bounds it near the live set.
    assert max(mapped.values()) < MEMORY_REQUEST * 1.4 / MB

    # 2. The rate increase violates the 85 % target → memory-driven
    #    scale-out during phase 2.
    out_events = [e for e in report.scale_events
                  if e[1] == "R" and e[2] == "out" and 60 <= e[0] < 240]
    assert out_events, report.scale_events

    # 3. After the scale-out, the accumulation is split: the per-pod
    #    heap declines from its peak.
    t_out = out_events[0][0]
    peak_before = max(v for t, v in mapped.items() if t <= t_out + 6)
    settled_after = [v for t, v in mapped.items()
                     if t_out + 66 <= t < 240]  # one window later
    assert settled_after and min(settled_after) < 0.8 * peak_before

    # 4. The extra pod is eventually released once memory pressure
    #    subsides (thesis: the 2nd joiner is released mid-run).
    in_events = [e for e in report.scale_events
                 if e[1] == "R" and e[2] == "in"]
    assert in_events, report.scale_events

    # 5. No data migration happened at any point: scaling in the
    #    biclique never copies stored tuples (structurally impossible —
    #    asserted here as the absence of any migration counters on the
    #    engine and exact results).
    from collections import Counter
    counts = Counter(res.key for res in cluster.engine.results)
    assert all(c == 1 for c in counts.values())
