"""E17 (extension) — wall-clock scaling of the multiprocess runtime.

E1 reports the *simulated* throughput scaling of the paper's Figure 9;
this experiment measures the real thing, in two regimes:

- **transport probe** (no artificial work): one worker pushes the
  workload through each data plane — pickle-over-pipe vs the
  shared-memory ring (:mod:`repro.parallel.shm`).  This regime is
  transport-bound by construction, so it measures exactly what the
  zero-copy plane exists to fix: the seed runtime recorded ~415
  tuples/s here, and on hardware with a spare core for the worker the
  shm plane must clear 10x that.
- **scaling sweep** (CPU-bound predicate): wall-clock seconds to push
  one fixed workload through :class:`repro.parallel.ParallelCluster`
  at 1/2/4/8 worker processes over the shm plane.  The join predicate
  is deliberately expensive (:class:`repro.core.predicates.
  ExpensivePredicate` wraps a band join with a data-dependent spin
  loop), so the run is dominated by joiner CPU — the component the
  worker pool actually parallelises.

Two kinds of assertion:

- **correctness always**: every run — both transports, every worker
  count — produces the identical result multiset (the differential
  guarantee, here exercised at benchmark scale);
- **speedup when the hardware can deliver it**: the wall-clock gates
  (the 10x transport gate; >=1.5x at 2 workers, >=3x at 4) apply only
  when the machine exposes enough cores — a single-core CI runner
  still checks output identity and still emits the JSON, it just
  cannot certify scaling.

Emits ``BENCH_e17.json`` (now carrying ``cpus``, the active transport
and per-stage codec timings: encode/decode/transit seconds per run);
CI uploads it as an artifact and gates on the self-relative speedup.
"""

from __future__ import annotations

import json
import os
import random
import time

import pytest
from conftest import RESULTS_DIR, bench_once, emit

from repro import (BandJoinPredicate, BicliqueConfig, ExpensivePredicate,
                   StreamTuple, TimeWindow)
from repro.harness import render_table
from repro.parallel import ParallelCluster, ParallelConfig

#: The CPU-bound predicate of the scaling sweep.
SPIN_PREDICATE = ExpensivePredicate(BandJoinPredicate("v", "v", 1.0),
                                    spin=150)
#: The plain predicate of the transport probe (no artificial work, so
#: the wall clock is dominated by the data plane under measurement).
PROBE_PREDICATE = BandJoinPredicate("v", "v", 1.0)

WINDOW = TimeWindow(seconds=0.6)
TUPLES_PER_SIDE = 400
JOINERS = 8  # per side, fixed across worker counts
TRANSFER_BATCH = 64

SMOKE_WORKERS = (1, 2)
STRESS_WORKERS = (1, 2, 4, 8)

#: Self-relative wall-clock gates of the scaling sweep, applied only
#: when the machine has at least as many usable cores as workers.
MIN_SPEEDUP = {2: 1.5, 4: 3.0}

#: What the seed pickle-over-pipe data plane sustained in the probe
#: regime (BENCH_e17 at the time the shm plane landed), and the
#: multiple the shm plane must clear when a second core is available.
SEED_BASELINE_TPS = 415.0
TRANSPORT_GATE = 10.0


def cpu_count() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def workload() -> list[StreamTuple]:
    rng = random.Random(17)
    arrivals, ts, seqs = [], 0.0, {"R": 0, "S": 0}
    for _ in range(2 * TUPLES_PER_SIDE):
        ts += rng.uniform(0.0005, 0.003)
        relation = "R" if rng.random() < 0.5 else "S"
        arrivals.append(StreamTuple(
            relation=relation, ts=ts,
            values={"v": rng.uniform(0.0, 20.0)}, seq=seqs[relation]))
        seqs[relation] += 1
    return arrivals


def codec_timings(metrics: dict) -> dict:
    """Per-stage data-plane timing/accounting out of a run's metrics."""
    def get(name: str) -> float:
        return float(metrics.get(name, 0.0))

    def summed(name: str) -> float:
        # Worker-side counters carry a {worker=...} label per process.
        return sum(v for k, v in metrics.items()
                   if k == name or k.startswith(name + "{"))
    return {
        "coordinator_encode_seconds": get(
            "repro_parallel_codec_encode_seconds"),
        "coordinator_decode_seconds": get(
            "repro_parallel_codec_decode_seconds"),
        "worker_encode_seconds": summed("repro_worker_codec_encode_seconds"),
        "worker_decode_seconds": summed("repro_worker_codec_decode_seconds"),
        "transit_seconds": get("repro_parallel_transit_seconds"),
        "shm_batches": int(get("repro_parallel_shm_batches_total")),
        "pipe_fallbacks": int(get("repro_parallel_pipe_fallbacks_total")),
    }


def run_one(arrivals: list[StreamTuple], workers: int, *,
            transport: str = "shm", predicate=SPIN_PREDICATE) -> dict:
    cluster = ParallelCluster(
        BicliqueConfig(window=WINDOW, r_joiners=JOINERS, s_joiners=JOINERS,
                       routers=2, routing="random", archive_period=0.2,
                       punctuation_interval=0.05),
        predicate, ParallelConfig(workers=workers,
                                  transfer_batch=TRANSFER_BATCH,
                                  transport=transport))
    started = time.perf_counter()
    results, report = cluster.run(iter(arrivals))
    wall = time.perf_counter() - started
    return {
        "workers": workers,
        "transport": transport,
        "wall_seconds": wall,
        "results": report.results,
        "result_keys": sorted(res.key for res in results),
        "tuples_per_second": len(arrivals) / wall,
        "batches": int(report.metrics["repro_parallel_batches_total"]),
        "restarts": report.restarts,
        "codec": codec_timings(report.metrics),
    }


def run_experiment(worker_counts) -> dict:
    arrivals = workload()
    return {
        "tuples": len(arrivals),
        "cpus": cpu_count(),
        "transport": "shm",
        # Transport-bound regime: one worker, no spin, both planes.
        "transport_probe": [
            run_one(arrivals, 1, transport=t, predicate=PROBE_PREDICATE)
            for t in ("pipe", "shm")],
        # CPU-bound regime: the worker-count sweep on the shm plane.
        "runs": [run_one(arrivals, w) for w in worker_counts],
    }


def emit_e17(name: str, experiment: dict) -> None:
    baseline = experiment["runs"][0]
    rows = []
    for run in experiment["transport_probe"]:
        rows.append([
            f"probe/{run['transport']}", run["workers"],
            f"{run['wall_seconds']:.2f}",
            f"{run['tuples_per_second']:.0f}", "-",
            run["codec"]["shm_batches"], run["results"]])
    for run in experiment["runs"]:
        rows.append([
            f"spin/{run['transport']}", run["workers"],
            f"{run['wall_seconds']:.2f}",
            f"{run['tuples_per_second']:.0f}",
            f"{baseline['wall_seconds'] / run['wall_seconds']:.2f}x",
            run["codec"]["shm_batches"], run["results"]])
    emit(name, render_table(
        ["regime", "workers", "wall s", "tuples/s", "speedup",
         "shm batches", "results"],
        rows,
        title=f"E17: multiprocess wall-clock scaling, "
              f"{experiment['tuples']} tuples, {JOINERS}+{JOINERS} joiners "
              f"({experiment['cpus']} cores visible, shm data plane)"))
    payload = {
        "experiment": "e17_parallel_scaling",
        "tuples": experiment["tuples"],
        "cpus": experiment["cpus"],
        "transport": experiment["transport"],
        "config": {"joiners": JOINERS, "routing": "random",
                   "window_seconds": WINDOW.seconds,
                   "spin": SPIN_PREDICATE.spin,
                   "transfer_batch": TRANSFER_BATCH},
        "transport_probe": [
            {k: v for k, v in run.items() if k != "result_keys"}
            for run in experiment["transport_probe"]],
        "runs": [{k: v for k, v in run.items() if k != "result_keys"}
                 for run in experiment["runs"]],
        "speedups": {str(run["workers"]):
                     baseline["wall_seconds"] / run["wall_seconds"]
                     for run in experiment["runs"]},
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_e17.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")


def assert_invariants(experiment: dict) -> None:
    baseline = experiment["runs"][0]
    cpus = experiment["cpus"]
    assert baseline["workers"] == 1
    pipe_probe, shm_probe = experiment["transport_probe"]
    assert pipe_probe["transport"] == "pipe"
    assert shm_probe["transport"] == "shm"

    # Output transparency between the data planes, always: the shm
    # probe must produce exactly the pipe probe's result multiset —
    # and it must actually have used the ring, not fallen back.
    assert shm_probe["result_keys"] == pipe_probe["result_keys"]
    assert shm_probe["codec"]["shm_batches"] > 0
    assert pipe_probe["codec"]["shm_batches"] == 0
    for run in (pipe_probe, shm_probe, *experiment["runs"]):
        assert run["restarts"] == 0

    # The transport payoff, where a second core can carry the worker:
    # the shm plane must clear 10x the seed pickle-over-pipe rate.
    if cpus >= 2:
        floor = TRANSPORT_GATE * SEED_BASELINE_TPS
        assert shm_probe["tuples_per_second"] >= floor, (
            f"shm transport probe: {shm_probe['tuples_per_second']:.0f} "
            f"tuples/s < {floor:.0f} gate on {cpus} cores")

    for run in experiment["runs"]:
        # Identical output at every pool size — parallelism is a pure
        # execution-layer change (the differential suite proves this at
        # test scale; here it holds at benchmark scale too).
        assert run["results"] == baseline["results"]
        assert run["result_keys"] == baseline["result_keys"]
        # The scaling payoff, where the hardware can deliver it: real
        # wall-clock speedup against the single-worker run.
        gate = MIN_SPEEDUP.get(run["workers"])
        if gate is not None and cpus >= run["workers"]:
            speedup = baseline["wall_seconds"] / run["wall_seconds"]
            assert speedup >= gate, (
                f"{run['workers']} workers on {cpus} cores: "
                f"{speedup:.2f}x < {gate}x gate")


def test_e17_parallel_scaling_smoke(benchmark):
    experiment = bench_once(
        benchmark, lambda: run_experiment(list(SMOKE_WORKERS)))
    emit_e17("e17_parallel_scaling", experiment)
    assert_invariants(experiment)


@pytest.mark.stress
def test_e17_parallel_scaling_sweep(benchmark):
    experiment = bench_once(
        benchmark, lambda: run_experiment(list(STRESS_WORKERS)))
    emit_e17("e17_parallel_scaling_sweep", experiment)
    assert_invariants(experiment)
