"""E17 (extension) — wall-clock scaling of the multiprocess runtime.

E1 reports the *simulated* throughput scaling of the paper's Figure 9;
this experiment measures the real thing: wall-clock seconds to push one
fixed CPU-bound workload through :class:`repro.parallel.ParallelCluster`
at 1/2/4/8 worker processes.  The join predicate is deliberately
expensive (:class:`repro.core.predicates.ExpensivePredicate` wraps a
band join with a data-dependent spin loop), so the run is dominated by
joiner CPU — the component the worker pool actually parallelises —
rather than by coordinator-side routing and IPC.

Two kinds of assertion:

- **correctness always**: every worker count produces the identical
  result multiset (the differential guarantee, here exercised at
  benchmark scale);
- **speedup when the hardware can deliver it**: the wall-clock gates
  (>=1.5x at 2 workers, >=2x at 4) apply only when the machine exposes
  at least that many cores — a single-core CI runner still checks
  correctness and still emits the JSON, it just cannot certify scaling.

Emits ``BENCH_e17.json`` next to the text table; CI uploads it as an
artifact and gates on the self-relative speedup.
"""

from __future__ import annotations

import json
import os
import random
import time

import pytest
from conftest import RESULTS_DIR, bench_once, emit

from repro import (BandJoinPredicate, BicliqueConfig, ExpensivePredicate,
                   StreamTuple, TimeWindow)
from repro.harness import render_table
from repro.parallel import ParallelCluster, ParallelConfig

PREDICATE = ExpensivePredicate(BandJoinPredicate("v", "v", 1.0), spin=150)
WINDOW = TimeWindow(seconds=0.6)
TUPLES_PER_SIDE = 400
JOINERS = 8  # per side, fixed across worker counts
TRANSFER_BATCH = 64

SMOKE_WORKERS = (1, 2)
STRESS_WORKERS = (1, 2, 4, 8)

#: Self-relative wall-clock gates, applied only when the machine has at
#: least as many usable cores as worker processes (see cpu_count()).
MIN_SPEEDUP = {2: 1.5, 4: 2.0}


def cpu_count() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def workload() -> list[StreamTuple]:
    rng = random.Random(17)
    arrivals, ts, seqs = [], 0.0, {"R": 0, "S": 0}
    for _ in range(2 * TUPLES_PER_SIDE):
        ts += rng.uniform(0.0005, 0.003)
        relation = "R" if rng.random() < 0.5 else "S"
        arrivals.append(StreamTuple(
            relation=relation, ts=ts,
            values={"v": rng.uniform(0.0, 20.0)}, seq=seqs[relation]))
        seqs[relation] += 1
    return arrivals


def run_one(arrivals: list[StreamTuple], workers: int) -> dict:
    cluster = ParallelCluster(
        BicliqueConfig(window=WINDOW, r_joiners=JOINERS, s_joiners=JOINERS,
                       routers=2, routing="random", archive_period=0.2,
                       punctuation_interval=0.05),
        PREDICATE, ParallelConfig(workers=workers,
                                  transfer_batch=TRANSFER_BATCH))
    started = time.perf_counter()
    results, report = cluster.run(iter(arrivals))
    wall = time.perf_counter() - started
    return {
        "workers": workers,
        "wall_seconds": wall,
        "results": report.results,
        "result_keys": sorted(res.key for res in results),
        "tuples_per_second": len(arrivals) / wall,
        "batches": int(report.metrics["repro_parallel_batches_total"]),
        "restarts": report.restarts,
    }


def run_experiment(worker_counts) -> dict:
    arrivals = workload()
    return {"tuples": len(arrivals), "cpus": cpu_count(),
            "runs": [run_one(arrivals, w) for w in worker_counts]}


def emit_e17(name: str, experiment: dict) -> None:
    baseline = experiment["runs"][0]
    rows = []
    for run in experiment["runs"]:
        rows.append([
            run["workers"], f"{run['wall_seconds']:.2f}",
            f"{run['tuples_per_second']:.0f}",
            f"{baseline['wall_seconds'] / run['wall_seconds']:.2f}x",
            run["batches"], run["results"]])
    emit(name, render_table(
        ["workers", "wall s", "tuples/s", "speedup", "batches", "results"],
        rows,
        title=f"E17: multiprocess wall-clock scaling, "
              f"{experiment['tuples']} tuples, {JOINERS}+{JOINERS} joiners, "
              f"expensive band join ({experiment['cpus']} cores visible)"))
    payload = {
        "experiment": "e17_parallel_scaling",
        "tuples": experiment["tuples"],
        "cpus": experiment["cpus"],
        "config": {"joiners": JOINERS, "routing": "random",
                   "window_seconds": WINDOW.seconds, "spin": PREDICATE.spin,
                   "transfer_batch": TRANSFER_BATCH},
        "runs": [{k: v for k, v in run.items() if k != "result_keys"}
                 for run in experiment["runs"]],
        "speedups": {str(run["workers"]):
                     baseline["wall_seconds"] / run["wall_seconds"]
                     for run in experiment["runs"]},
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_e17.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")


def assert_invariants(experiment: dict) -> None:
    baseline = experiment["runs"][0]
    cpus = experiment["cpus"]
    assert baseline["workers"] == 1
    for run in experiment["runs"]:
        # Identical output at every pool size — parallelism is a pure
        # execution-layer change (the differential suite proves this at
        # test scale; here it holds at benchmark scale too).
        assert run["results"] == baseline["results"]
        assert run["result_keys"] == baseline["result_keys"]
        assert run["restarts"] == 0
        # The payoff, where the hardware can deliver it: real wall-clock
        # speedup against the single-worker run on the same machine.
        gate = MIN_SPEEDUP.get(run["workers"])
        if gate is not None and cpus >= run["workers"]:
            speedup = baseline["wall_seconds"] / run["wall_seconds"]
            assert speedup >= gate, (
                f"{run['workers']} workers on {cpus} cores: "
                f"{speedup:.2f}x < {gate}x gate")


def test_e17_parallel_scaling_smoke(benchmark):
    experiment = bench_once(
        benchmark, lambda: run_experiment(list(SMOKE_WORKERS)))
    emit_e17("e17_parallel_scaling", experiment)
    assert_invariants(experiment)


@pytest.mark.stress
def test_e17_parallel_scaling_sweep(benchmark):
    experiment = bench_once(
        benchmark, lambda: run_experiment(list(STRESS_WORKERS)))
    emit_e17("e17_parallel_scaling_sweep", experiment)
    assert_invariants(experiment)
