"""E10 — tuple-ordering protocol: overhead and necessity (thesis §3.3).

Two questions the design section raises:

1. *Is the protocol necessary?*  Run the engine on a jittery network
   with a 2-router pool, protocol on vs. off: off must exhibit the
   Figure 8 missed/duplicate results, on must be exactly-once.
2. *What does it cost?*  The punctuation interval trades signalling
   traffic (messages ∝ 1/interval) against release delay (tuples are
   buffered for ~1 punctuation interval): the thesis suggests ~20 ms.
   The sweep quantifies both sides.
"""

from __future__ import annotations

import pytest
from conftest import bench_once, emit

from repro import BicliqueConfig, EquiJoinPredicate, TimeWindow
from repro.broker import Broker
from repro.core.biclique import BicliqueEngine
from repro.harness import check_exactly_once, reference_join, render_table
from repro.simulation import JitterNetwork, SeededRng, Simulator
from repro.workloads import ConstantRate, EquiJoinWorkload, UniformKeys

WINDOW = TimeWindow(seconds=5.0)
PREDICATE = EquiJoinPredicate("k", "k")
DURATION = 30.0
RATE = 40.0


def run_simulated(*, ordered: bool, punctuation_interval: float,
                  jitter: float = 0.3, seed: int = 1):
    sim = Simulator()
    network = JitterNetwork(base=0.002, jitter=jitter,
                            rng=SeededRng(seed, "e10-net"))
    broker = Broker(sim, network)
    engine = BicliqueEngine(
        BicliqueConfig(window=WINDOW, r_joiners=2, s_joiners=2, routers=2,
                       routing="random", archive_period=1.0,
                       punctuation_interval=punctuation_interval,
                       ordered=ordered, expiry_slack=3.0),
        PREDICATE, broker=broker)
    workload = EquiJoinWorkload(keys=UniformKeys(40), seed=seed)
    arrivals = list(workload.arrivals(ConstantRate(RATE), DURATION))
    for t in arrivals:
        sim.schedule_at(t.ts, lambda t=t: engine.ingest(t))
    sim.run()
    engine.punctuate_all()
    sim.run()
    for joiner in engine.joiners.values():
        joiner.flush()

    r = [t for t in arrivals if t.relation == "R"]
    s = [t for t in arrivals if t.relation == "S"]
    check = check_exactly_once(
        engine.results, reference_join(r, s, PREDICATE, WINDOW))
    # Mean release delay: produced_at - the later input's event time
    # includes network + buffering-until-punctuation.
    latency = engine.latency.summary()
    return {
        "check": check,
        "punctuation_messages": engine.network_stats.punctuation_messages,
        "mean_latency": latency.mean,
    }


def run_experiment():
    sweep = {interval: run_simulated(ordered=True,
                                     punctuation_interval=interval)
             for interval in (0.02, 0.1, 0.5)}
    off = run_simulated(ordered=False, punctuation_interval=0.1)
    return sweep, off


def test_e10_ordering(benchmark):
    sweep, off = bench_once(benchmark, run_experiment)

    rows = [[f"{interval * 1000:.0f}", data["punctuation_messages"],
             f"{data['mean_latency'] * 1000:.0f}",
             "yes" if data["check"].ok else "NO"]
            for interval, data in sorted(sweep.items())]
    rows.append(["(protocol off)", off["punctuation_messages"],
                 f"{off['mean_latency'] * 1000:.0f}",
                 f"NO: {off['check'].duplicates} dup / "
                 f"{off['check'].missing} missing"])
    emit("e10_ordering", render_table(
        ["punctuation (ms)", "punct msgs", "mean latency (ms)", "exact"],
        rows, title="E10: ordering protocol — cost and necessity "
                    "(2 routers, jittery network)"))

    # Necessity: protocol off loses/duplicates results; on never does.
    assert not off["check"].ok
    assert off["check"].duplicates + off["check"].missing > 0
    for data in sweep.values():
        assert data["check"].ok, data["check"]

    # Cost: punctuation traffic scales ~1/interval...
    msgs = {interval: data["punctuation_messages"]
            for interval, data in sweep.items()}
    assert msgs[0.02] == pytest.approx(5 * msgs[0.1], rel=0.15)
    assert msgs[0.1] == pytest.approx(5 * msgs[0.5], rel=0.15)
    # ...and buffering delay grows with the interval.
    assert sweep[0.5]["mean_latency"] > sweep[0.02]["mean_latency"]
