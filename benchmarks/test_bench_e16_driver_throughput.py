"""E16 (extension) — driver throughput: micro-batched data plane.

Unlike E1-E15, which measure *simulated* quantities, this experiment
measures the harness itself: real wall-clock seconds (and kernel events
executed) to drive one fixed equi-join workload through the simulated
cluster, with the transport micro-batching off versus on.

The workload uses ContRand routing, whose broadcast join stream is the
paper's high-fanout regime: every tuple costs one store envelope plus
one join envelope per opposite-side joiner, so per-delivery overhead —
one kernel event, one ack, one credit round-trip each — dominates the
actual join work.  Batching coalesces consecutive same-inbox envelopes
into one transport frame and must not change a single result
(``tests/integration/test_batching_transparency.py`` proves byte
identity; this benchmark measures what that identity costs — nothing —
and what it buys).

Emits ``BENCH_e16.json`` next to the text table; CI uploads it as an
artifact and gates on the self-relative speedup.
"""

from __future__ import annotations

import json
import time

import pytest
from conftest import RESULTS_DIR, bench_once, emit

from repro import BatchingConfig, BicliqueConfig, EquiJoinPredicate, TimeWindow
from repro.cluster import SimulatedCluster
from repro.core.streams import merge_by_time
from repro.harness import render_table
from repro.workloads import ConstantRate, EquiJoinWorkload, UniformKeys

PREDICATE = EquiJoinPredicate("k", "k")
WINDOW = TimeWindow(seconds=1.0)
DURATION = 12.0
RATE = 600.0
JOINERS = 8  # per side
BATCH_SIZE = 64

#: Wall-clock gate: batched must beat unbatched by at least this factor
#: on the same machine (self-relative, so CI hardware speed cancels
#: out).  Locally the margin is ~3.5x; the gate leaves headroom for
#: noisy shared runners.
MIN_SPEEDUP = 2.0

STRESS_BATCH_SIZES = (8, 32, 64, 128)


def workload():
    wl = EquiJoinWorkload(keys=UniformKeys(256), seed=16)
    r, s = wl.materialise(ConstantRate(RATE), DURATION)
    return list(merge_by_time(r, s))


def run_one(arrivals, batch_size: int | None) -> dict:
    batching = None if batch_size is None \
        else BatchingConfig(batch_size=batch_size)
    cluster = SimulatedCluster(
        BicliqueConfig(window=WINDOW, r_joiners=JOINERS, s_joiners=JOINERS,
                       routers=2, routing="random",
                       punctuation_interval=0.5),
        PREDICATE, batching=batching)
    started = time.perf_counter()
    report = cluster.run(iter(arrivals), DURATION)
    wall = time.perf_counter() - started
    events = next(v for k, v in report.metrics.items()
                  if k.startswith("repro_sim_events_executed_total"))
    return {
        "batch_size": batch_size or 1,
        "wall_seconds": wall,
        "events": int(events),
        "results": report.results,
        "result_keys": sorted((res.r.ident, res.s.ident)
                              for res in cluster.engine.results),
        "driver_tuples_per_second": len(arrivals) / wall,
    }


def run_experiment(batch_sizes) -> dict:
    arrivals = workload()
    baseline = run_one(arrivals, None)
    batched = [run_one(arrivals, size) for size in batch_sizes]
    return {"tuples": len(arrivals), "baseline": baseline, "batched": batched}


def emit_e16(name: str, experiment: dict) -> None:
    baseline = experiment["baseline"]
    rows = [["off (seed)", f"{baseline['wall_seconds']:.2f}",
             baseline["events"], f"{baseline['driver_tuples_per_second']:.0f}",
             "1.00x", baseline["results"]]]
    for run in experiment["batched"]:
        rows.append([
            run["batch_size"], f"{run['wall_seconds']:.2f}", run["events"],
            f"{run['driver_tuples_per_second']:.0f}",
            f"{baseline['wall_seconds'] / run['wall_seconds']:.2f}x",
            run["results"]])
    emit(name, render_table(
        ["batch size", "wall s", "kernel events", "driver t/s",
         "speedup", "results"],
        rows,
        title=f"E16: driver wall-clock, {experiment['tuples']} tuples, "
              f"{JOINERS}+{JOINERS} joiners, ContRand broadcast "
              f"({RATE:.0f} t/s x {DURATION:.0f}s)"))
    payload = {
        "experiment": "e16_driver_throughput",
        "tuples": experiment["tuples"],
        "config": {"rate": RATE, "duration": DURATION, "joiners": JOINERS,
                   "routing": "random", "window_seconds": WINDOW.seconds},
        "baseline": {k: v for k, v in baseline.items()
                     if k != "result_keys"},
        "batched": [{k: v for k, v in run.items() if k != "result_keys"}
                    for run in experiment["batched"]],
        "speedups": {str(run["batch_size"]):
                     baseline["wall_seconds"] / run["wall_seconds"]
                     for run in experiment["batched"]},
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_e16.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")


def assert_invariants(experiment: dict) -> None:
    baseline = experiment["baseline"]
    for run in experiment["batched"]:
        # Identical output — batching is a pure transport optimisation.
        assert run["results"] == baseline["results"]
        assert run["result_keys"] == baseline["result_keys"]
        # The mechanism: strictly fewer kernel events executed.
        assert run["events"] < baseline["events"]
        # The payoff: real wall-clock speedup on the same machine.
        speedup = baseline["wall_seconds"] / run["wall_seconds"]
        assert speedup >= MIN_SPEEDUP, (
            f"batch_size={run['batch_size']}: {speedup:.2f}x < "
            f"{MIN_SPEEDUP}x gate")


def test_e16_driver_throughput_smoke(benchmark):
    experiment = bench_once(
        benchmark, lambda: run_experiment([BATCH_SIZE]))
    emit_e16("e16_driver_throughput", experiment)
    assert_invariants(experiment)


@pytest.mark.stress
def test_e16_driver_throughput_batch_sweep(benchmark):
    experiment = bench_once(
        benchmark, lambda: run_experiment(list(STRESS_BATCH_SIZES)))
    emit_e16("e16_driver_throughput_sweep", experiment)
    assert_invariants(experiment)
    # Amortisation grows with batch size (events monotone non-increasing).
    events = [run["events"] for run in experiment["batched"]]
    assert events == sorted(events, reverse=True)
