"""E7 — network communication cost: measured vs. closed form (§2.4.1).

The thesis's analytic comparison: with p units split evenly, a
join-biclique tuple under random routing is sent to ``1 + p/2`` units
(one store + broadcast to the opposite side), while the join-matrix
sends each tuple to ``√p`` units (one row or column).  ContHash brings
the biclique down to a constant 2 messages/tuple.  Subgrouping with d
subgroups per side replicates stores d times and divides the probe
fan-out by d.

This bench measures messages/tuple on live runs across p and checks
them against the closed forms, locating the biclique-random vs. matrix
crossover.
"""

from __future__ import annotations

import math

import pytest
from conftest import bench_once, emit

from repro import BandJoinPredicate, BicliqueConfig, EquiJoinPredicate, TimeWindow
from repro.core.engine import StreamJoinEngine
from repro.core.streams import merge_by_time
from repro.harness import render_table
from repro.matrix import MatrixConfig, MatrixEngine
from repro.workloads import BandJoinWorkload, ConstantRate, EquiJoinWorkload, UniformKeys

UNIT_COUNTS = [4, 16, 36]
WINDOW = TimeWindow(seconds=5.0)


def biclique_msgs(predicate, routing, p, r_stream, s_stream, subgroups=1):
    engine = StreamJoinEngine(
        BicliqueConfig(window=WINDOW, r_joiners=p // 2, s_joiners=p // 2,
                       routing=routing, r_subgroups=subgroups,
                       s_subgroups=subgroups, archive_period=1.0,
                       punctuation_interval=0.5),
        predicate)
    _, report = engine.run(r_stream, s_stream)
    return report.network.data_messages / report.tuples_ingested


def matrix_msgs(predicate, p, r_stream, s_stream):
    side = int(math.isqrt(p))
    engine = MatrixEngine(
        MatrixConfig(window=WINDOW, rows=side, cols=side,
                     partitioning="random", archive_period=1.0),
        predicate)
    ingested = 0
    for t in merge_by_time(r_stream, s_stream):
        engine.ingest(t)
        ingested += 1
    engine.finish()
    return engine.network_stats.data_messages / ingested


def run_experiment():
    band = BandJoinWorkload(value_range=5000.0, seed=707)
    r_bd, s_bd = band.materialise(ConstantRate(100.0), 20.0)
    band_pred = BandJoinPredicate("v", "v", band=1.0)
    equi = EquiJoinWorkload(keys=UniformKeys(500), seed=708)
    r_eq, s_eq = equi.materialise(ConstantRate(100.0), 20.0)
    equi_pred = EquiJoinPredicate("k", "k")

    measured = {}
    for p in UNIT_COUNTS:
        measured[("biclique-random", p)] = biclique_msgs(
            band_pred, "random", p, r_bd, s_bd)
        measured[("biclique-2subgroups", p)] = biclique_msgs(
            band_pred, "random", p, r_bd, s_bd, subgroups=2)
        measured[("biclique-hash", p)] = biclique_msgs(
            equi_pred, "hash", p, r_eq, s_eq)
        measured[("matrix", p)] = matrix_msgs(band_pred, p, r_bd, s_bd)
    return measured


def analytic(model: str, p: int) -> float:
    if model == "biclique-random":
        return 1 + p / 2
    if model == "biclique-2subgroups":
        return 2 + p / 4       # d stores + (p/2)/e probe targets
    if model == "biclique-hash":
        return 2.0
    if model == "matrix":
        return math.isqrt(p)
    raise ValueError(model)


def test_e7_network_cost(benchmark):
    measured = bench_once(benchmark, run_experiment)

    rows = [[model, p, f"{value:.2f}", f"{analytic(model, p):.2f}"]
            for (model, p), value in sorted(measured.items())]
    emit("e7_network_cost", render_table(
        ["model", "p", "measured msgs/tuple", "analytic"],
        rows, title="E7: per-tuple network fan-out vs. closed forms"))

    # Measured matches the closed forms.
    for (model, p), value in measured.items():
        assert value == pytest.approx(analytic(model, p), rel=0.05), \
            (model, p, value)

    # The §2.4.1 trade-off: matrix fan-out (√p) beats biclique broadcast
    # (p/2 + 1) for all p > 4 ...
    for p in (16, 36):
        assert measured[("matrix", p)] < measured[("biclique-random", p)]
    # ... subgrouping halves the gap once the broadcast dominates the
    # extra store replica (p = 4 is the break-even: 2 + 1 vs 1 + 2) ...
    for p in (16, 36):
        assert measured[("biclique-2subgroups", p)] < \
            measured[("biclique-random", p)]
    # ... and ContHash is the constant-cost winner whenever applicable.
    for p in UNIT_COUNTS:
        assert measured[("biclique-hash", p)] <= 2.0 + 1e-9
