#!/usr/bin/env python3
"""Click-stream analytics: joining ad impressions with clicks.

The motivating workload of systems like Photon (and the intro of the
stream-join literature): an *impressions* stream (an ad was shown) and
a *clicks* stream (an ad was clicked) must be joined on ``ad_id`` in
near real time to bill advertisers.  Clicks arrive within a bounded
delay after their impression, so a sliding window captures every valid
pair; clicks outside the window are discarded as unattributable.

This example synthesises both streams, runs the equi-join with hash
(ContHash) routing — the low-selectivity case of §3.2 — and reports the
click-attribution rate.

Run:  python examples/clickstream_join.py
"""

from repro import (
    BicliqueConfig,
    EquiJoinPredicate,
    StreamJoinEngine,
    TimeWindow,
    StreamSource,
)
from repro.harness import check_exactly_once, reference_join
from repro.simulation import SeededRng

ATTRIBUTION_WINDOW = 30.0   # seconds a click stays attributable
IMPRESSIONS_PER_SEC = 50.0
CLICK_THROUGH_RATE = 0.2
DURATION = 120.0


def synthesize_streams(seed: int = 7):
    """Impressions (R) at a steady rate; each yields a click (S) with
    probability CTR after a random think-time."""
    rng = SeededRng(seed, "clickstream")
    click_rng = rng.fork("clicks")
    delay_rng = rng.fork("delays")

    impressions = StreamSource("R")
    impression_stream = []
    click_records = []
    ts = 0.0
    ad_id = 0
    while ts < DURATION:
        ad_id += 1
        impression_stream.append(impressions.emit(ts, {
            "ad_id": ad_id,
            "campaign": f"c{ad_id % 20}",
            "cpc_cents": 5 + ad_id % 45,
        }))
        if click_rng.random() < CLICK_THROUGH_RATE:
            think = delay_rng.uniform(0.1, ATTRIBUTION_WINDOW * 1.2)
            click_records.append((ts + think, {"ad_id": ad_id,
                                               "device": "mobile"}))
        ts += 1.0 / IMPRESSIONS_PER_SEC

    click_records.sort(key=lambda rec: rec[0])
    clicks = StreamSource("S")
    click_stream = [clicks.emit(t, values) for t, values in click_records]
    return impression_stream, click_stream


def main() -> None:
    impressions, clicks = synthesize_streams()
    predicate = EquiJoinPredicate("ad_id", "ad_id")
    window = TimeWindow(seconds=ATTRIBUTION_WINDOW)
    engine = StreamJoinEngine(
        BicliqueConfig(window=window, r_joiners=3, s_joiners=2, routers=2,
                       archive_period=5.0, routing="hash"),
        predicate)
    results, report = engine.run(impressions, clicks)

    attributed = len({result.s.ident for result in results})
    print(f"impressions        : {len(impressions):,}")
    print(f"clicks             : {len(clicks):,}")
    print(f"attributed clicks  : {attributed:,} "
          f"({attributed / len(clicks):.1%} of clicks; late ones expire)")
    print(f"billing total      : "
          f"{sum(res.r['cpc_cents'] for res in results) / 100:,.2f} USD")
    print(f"engine throughput  : {report.tuples_per_second:,.0f} tuples/s")
    print(f"messages per tuple : "
          f"{report.network.data_messages / report.tuples_ingested:.2f} "
          f"(hash routing: 1 store + 1 probe)")

    expected = reference_join(impressions, clicks, predicate, window)
    check = check_exactly_once(results, expected)
    print(f"verification       : {'OK' if check.ok else f'FAILED {check}'}")


if __name__ == "__main__":
    main()
