#!/usr/bin/env python3
"""Stock-trading band join: the classic theta-join workload.

Two exchanges publish tick streams for the same universe of symbols; a
surveillance job flags *near-simultaneous trades at nearly the same
price* — a band join ``|price_A - price_B| <= band`` over a short
sliding window.  Band joins are high-selectivity predicates, so the
engine auto-selects the random (ContRand) routing strategy of §3.2:
store on one unit, broadcast probes to the opposite side.

The example also shows the subgroup knob: with 4+4 joiners and 2
subgroups per side, each probe reaches only half of the opposite units
at the price of storing every tuple twice (the join-biclique ↔
join-matrix trade-off).

Run:  python examples/stock_band_join.py
"""

from repro import (
    BandJoinPredicate,
    BicliqueConfig,
    StreamJoinEngine,
    TimeWindow,
    StreamSource,
)
from repro.harness import check_exactly_once, reference_join
from repro.simulation import SeededRng

DURATION = 60.0
TICKS_PER_SEC = 40.0
PRICE_BAND = 0.05           # dollars
WINDOW_SECONDS = 2.0


def synthesize_exchange(relation: str, seed_name: str):
    """A tick stream: prices follow a slow random walk around $100."""
    rng = SeededRng(2024, seed_name)
    source = StreamSource(relation)
    stream = []
    price = 100.0
    ts = 0.0
    seq = 0
    while ts < DURATION:
        price = max(1.0, price + rng.gauss(0.0, 0.02))
        stream.append(source.emit(ts, {
            "price": round(price, 2),
            "size": rng.randint(1, 500),
            "venue": seed_name,
        }))
        seq += 1
        ts += 1.0 / TICKS_PER_SEC
    return stream


def run(config: BicliqueConfig, label: str, nyse, lse):
    predicate = BandJoinPredicate("price", "price", band=PRICE_BAND)
    engine = StreamJoinEngine(config, predicate)
    results, report = engine.run(nyse, lse)
    expected = reference_join(nyse, lse, predicate, config.window)
    check = check_exactly_once(results, expected)
    msgs = report.network.data_messages / report.tuples_ingested
    print(f"{label:28s} matches={report.results:6d}  "
          f"msgs/tuple={msgs:5.2f}  comparisons={report.comparisons:8,d}  "
          f"correct={'yes' if check.ok else 'NO'}")
    return results


def main() -> None:
    nyse = synthesize_exchange("R", "NYSE")
    lse = synthesize_exchange("S", "LSE")
    window = TimeWindow(seconds=WINDOW_SECONDS)
    print(f"ticks: {len(nyse)} + {len(lse)}, band=${PRICE_BAND}, "
          f"window={WINDOW_SECONDS}s")

    # What does the planner recommend for this predicate at 4 units/side
    # with a 2x memory budget?
    from repro.core.planning import plan_deployment
    plan = plan_deployment(BandJoinPredicate("price", "price", PRICE_BAND),
                           units_per_side=4, max_replication=2)
    print(f"planner: routing={plan.routing}, subgroups={plan.subgroups}, "
          f"predicted {plan.messages_per_tuple:.0f} msgs/tuple "
          f"(matrix baseline {plan.matrix_messages_per_tuple:.2f})\n")

    # Pure biclique: broadcast probes to all 4 opposite units.
    run(BicliqueConfig(window=window, r_joiners=4, s_joiners=4,
                       archive_period=0.5),
        "biclique (no subgroups)", nyse, lse)

    # Subgrouped: 2 subgroups per side halve the probe fan-out but
    # store each tuple twice.
    results = run(BicliqueConfig(window=window, r_joiners=4, s_joiners=4,
                                 r_subgroups=2, s_subgroups=2,
                                 archive_period=0.5),
                  "biclique (2 subgroups/side)", nyse, lse)

    flagged = sorted(results, key=lambda res: -res.r["size"])[:3]
    print("\nlargest flagged R-side trades:")
    for res in flagged:
        print(f"  {res.r['venue']}@{res.r.ts:6.2f}s ${res.r['price']:.2f} "
              f"x{res.r['size']}  ~  {res.s['venue']}@{res.s.ts:6.2f}s "
              f"${res.s['price']:.2f}")


if __name__ == "__main__":
    main()
