#!/usr/bin/env python3
"""Partial-historical queries over archived window state.

The online join works over a short sliding window, but with
``archive_expired=True`` expired sub-index slices are shipped to a
per-unit archive tier instead of being discarded (§2.2's
"full or partial-historical states").  This example runs a fraud-ish
scenario: payments and device-fingerprint events are joined online over
a 10-second window, and later an investigator asks *"which devices did
account 7 use at any point, and in minute two specifically?"* — served
from live + archived state without re-ingesting the stream.

Run:  python examples/historical_queries.py
"""

from repro import (
    BicliqueConfig,
    EquiJoinPredicate,
    StreamJoinEngine,
    StreamSource,
    StreamTuple,
    TimeWindow,
)
from repro.core.archive import query_history
from repro.simulation import SeededRng

DURATION = 180.0
WINDOW = TimeWindow(seconds=10.0)


def synthesize():
    rng = SeededRng(31, "fraud")
    payments = StreamSource("R")
    payment_stream = []
    device_records = []
    ts = 0.0
    while ts < DURATION:
        account = rng.randint(0, 20)
        payment_stream.append(payments.emit(ts, {
            "account": account,
            "amount": round(rng.uniform(5, 500), 2)}))
        if rng.random() < 0.7:
            device_records.append((ts + rng.uniform(0, 0.4), {
                "account": account,
                "device": f"dev-{rng.randint(0, 60)}"}))
        ts += rng.uniform(0.05, 0.3)
    device_records.sort(key=lambda rec: rec[0])
    devices = StreamSource("S")
    device_stream = [devices.emit(t, values) for t, values in device_records]
    return payment_stream, device_stream


def main() -> None:
    payments, devices = synthesize()
    engine = StreamJoinEngine(
        BicliqueConfig(window=WINDOW, r_joiners=2, s_joiners=2,
                       routing="hash", archive_period=2.0,
                       punctuation_interval=0.2, archive_expired=True),
        EquiJoinPredicate("account", "account"))
    results, report = engine.run(payments, devices)

    core = engine.engine
    archived = sum(j.archive.tuple_count for j in core.joiners.values())
    live = core.total_stored_tuples()
    print(f"online join: {report.results:,} matches over a "
          f"{WINDOW.seconds:.0f}s window")
    print(f"state tiers: {live:,} live tuples, {archived:,} archived "
          f"({sum(j.archive.bytes_written for j in core.joiners.values()):,}"
          f" bytes written to the archive tier)\n")

    probe = StreamTuple("R", DURATION, {"account": 7, "amount": 0.0},
                        seq=10_000)
    ever = query_history(core, probe)
    recent = query_history(core, probe, lo=60.0, hi=120.0)
    print(f"account 7, full history : {len(ever.all_matches)} device events"
          f" ({len(ever.archived_matches)} from the archive tier)")
    print(f"account 7, minute 2 only: {len(recent.all_matches)} device "
          f"events")
    seen_devices = sorted({m['device'] for m in ever.all_matches})
    print(f"distinct devices ever   : {len(seen_devices)} "
          f"(e.g. {', '.join(seen_devices[:5])} ...)")


if __name__ == "__main__":
    main()
