#!/usr/bin/env python3
"""Three-way cascaded join: enriching trades with orders and customers.

A common multi-way pattern: a *trades* stream must be matched with the
*order* that triggered it (equi-join on order id, tight window) and the
result enriched with the customer's recent *profile-update* stream
(equi-join on customer id, wider window).  The cascade extension runs
this as ``(Orders ⋈ Trades) ⋈ Profiles`` — two join-bicliques chained,
the output stream of the first feeding the second — and verifies the
triples against the brute-force reference semantics.

Run:  python examples/multiway_enrichment.py
"""

from repro import (
    BicliqueConfig,
    CascadeJoin,
    EquiJoinPredicate,
    TimeWindow,
    StreamSource,
)
from repro.core.multiway import reference_cascade
from repro.simulation import SeededRng

DURATION = 30.0


def synthesize():
    rng = SeededRng(77, "multiway")
    orders = StreamSource("R")
    trades = StreamSource("S")
    profiles = StreamSource("T")
    order_stream, trade_stream, profile_records = [], [], []

    ts = 0.0
    order_id = 0
    while ts < DURATION:
        order_id += 1
        cust = 1 + order_id % 25
        order_stream.append(orders.emit(ts, {
            "order_id": order_id, "cust": cust,
            "qty": rng.randint(1, 100)}))
        ts += 0.1

    # Each order produces a trade shortly after.
    trade_ts = 0.0
    for order in order_stream:
        trade_ts = max(trade_ts, order.ts + rng.uniform(0.05, 1.5))
        trade_stream.append(trades.emit(trade_ts, {
            "order_id": order["order_id"],
            "price": round(rng.uniform(10, 500), 2)}))

    # Customers update their profiles now and then.
    ts = 0.0
    while ts < DURATION:
        profile_records.append((ts, {"cust": 1 + rng.randint(0, 24),
                                     "tier": rng.choice(["gold", "silver"])}))
        ts += rng.uniform(0.1, 0.5)
    profile_stream = [profiles.emit(t, v) for t, v in profile_records]
    return order_stream, trade_stream, profile_stream


def main() -> None:
    orders, trades, profiles = synthesize()
    w1 = TimeWindow(seconds=3.0)    # trade must follow its order closely
    w2 = TimeWindow(seconds=10.0)   # profile updates stay relevant longer
    pred1 = EquiJoinPredicate("order_id", "order_id")
    pred2 = EquiJoinPredicate("R.cust", "cust")  # composite's order side

    cascade = CascadeJoin(
        BicliqueConfig(window=w1, r_joiners=2, s_joiners=2,
                       archive_period=1.0, punctuation_interval=0.2),
        pred1,
        BicliqueConfig(window=w2, r_joiners=2, s_joiners=2,
                       archive_period=2.0, punctuation_interval=0.2),
        pred2)
    results, report = cascade.run(orders, trades, profiles)

    print(f"orders={len(orders)}  trades={len(trades)}  "
          f"profiles={len(profiles)}")
    print(f"stage 1 (Orders ⋈ Trades)   : "
          f"{report.intermediate_results:,} matched pairs, "
          f"{report.stage1_messages:,} messages")
    print(f"stage 2 (⋈ Profiles)        : {report.results:,} enriched "
          f"triples, {report.stage2_messages:,} messages")

    expected = reference_cascade(orders, trades, profiles,
                                 pred1, w1, pred2, w2)
    produced = {res.key for res in results}
    ok = produced == expected and len(results) == len(expected)
    print(f"verification                : "
          f"{'OK (exactly once)' if ok else 'FAILED'}")


if __name__ == "__main__":
    main()
