#!/usr/bin/env python3
"""TPC-H-style streaming join: Orders ⋈ Lineitem ON orderkey.

The BiStream evaluation streams TPC-H tables in timestamp order; this
example uses the synthetic TPC-H workload generator (DESIGN.md's
substitution for the real dataset) and compares the join-biclique
engine against the join-matrix baseline on the identical input —
messages per tuple, stored tuples (replication!) and predicate
comparisons.

Run:  python examples/tpch_stream_join.py
"""

from repro import BicliqueConfig, EquiJoinPredicate, TimeWindow
from repro.harness import ROW_HEADERS, render_table, run_biclique, run_matrix
from repro.matrix import MatrixConfig
from repro.workloads import TpchStreamWorkload

DURATION = 20.0
WINDOW = TimeWindow(seconds=30.0)


def main() -> None:
    workload = TpchStreamWorkload(orders_per_second=50.0,
                                  lineitem_spread=5.0, seed=17)
    orders, lineitems = workload.generate(DURATION)
    predicate = EquiJoinPredicate("orderkey", "orderkey")
    print(f"orders={len(orders):,}  lineitems={len(lineitems):,}  "
          f"window={WINDOW}\n")

    rows = []
    rows.append(run_biclique(
        BicliqueConfig(window=WINDOW, r_joiners=2, s_joiners=2,
                       archive_period=5.0, routing="hash"),
        predicate, orders, lineitems).as_row())
    rows.append(run_biclique(
        BicliqueConfig(window=WINDOW, r_joiners=2, s_joiners=2,
                       archive_period=5.0, routing="random"),
        predicate, orders, lineitems).as_row())
    rows.append(run_matrix(
        MatrixConfig(window=WINDOW, rows=2, cols=2, partitioning="hash",
                     archive_period=5.0),
        predicate, orders, lineitems).as_row())
    print(render_table(ROW_HEADERS, rows,
                       title="Orders ⋈ Lineitem, 4 processing units each"))
    print("\nNote how the matrix model ships √p copies of every tuple "
          "(msgs/tuple) while biclique/hash ships 2, and how random "
          "routing pays broadcast fan-out for an equi-join — the §3.2 "
          "routing-strategy guidance in action.")


if __name__ == "__main__":
    main()
