#!/usr/bin/env python3
"""Elastic autoscaling on the simulated cluster (a mini Figure 20).

Runs the join-biclique engine on the Kubernetes-like substrate with a
CPU-based Horizontal Pod Autoscaler and the thesis's stepped input
profile (scaled down 10x so the demo finishes in seconds), then prints
the rate / replica / utilisation timeline that thesis Figure 20 plots.

Run:  python examples/elastic_autoscaling.py
"""

from repro import BicliqueConfig, EquiJoinPredicate, TimeWindow
from repro.cluster import ClusterConfig, CostModel, HpaConfig, SimulatedCluster
from repro.harness import render_table
from repro.workloads import EquiJoinWorkload, UniformKeys, thesis_rate_profile

DURATION = 720.0  # 12 simulated minutes


def main() -> None:
    # Thesis profile at 1/10 rate; cost model scaled up so one joiner
    # saturates at the base rate (same dynamics, cheaper simulation).
    profile = thesis_rate_profile(scale=0.1)
    workload = EquiJoinWorkload(keys=UniformKeys(200), seed=42)

    config = BicliqueConfig(
        window=TimeWindow(seconds=60.0), r_joiners=1, s_joiners=1,
        routers=1, routing="hash", archive_period=6.0,
        punctuation_interval=0.5, expiry_slack=1.0)
    hpa = HpaConfig(metric="cpu", target_utilisation=0.80,
                    min_replicas=1, max_replicas=3, period=30.0,
                    scale_down_cooldown=120.0)
    cluster = SimulatedCluster(
        config, EquiJoinPredicate("k", "k"),
        ClusterConfig(cost_model=CostModel().scaled(300.0),
                      metrics_interval=15.0, timeline_interval=60.0),
        hpa={"R": hpa, "S": hpa})

    report = cluster.run(workload.arrivals(profile, DURATION), DURATION,
                         rate_fn=profile.rate)

    rows = [[f"{p.time / 60:.0f} min", f"{p.input_rate:.0f}",
             p.r_replicas, p.s_replicas,
             None if p.cpu_utilisation_r is None
             else f"{p.cpu_utilisation_r:.0%}"]
            for p in report.timeline]
    print(render_table(
        ["t", "rate t/s", "R pods", "S pods", "cpu(R)"], rows,
        title="Dynamic scaling based on CPU utilisation (cf. thesis Fig 20)"))
    print(f"\ningested {report.tuples_ingested:,} tuples, "
          f"produced {report.results:,} join results")
    print("scale events:")
    for time, side, direction, count in report.scale_events:
        print(f"  t={time:5.0f}s side={side} {direction} x{count}")


if __name__ == "__main__":
    main()
