#!/usr/bin/env python3
"""Quickstart: a windowed equi-join on the join-biclique engine.

Builds two tiny streams R and S, joins them on attribute ``k`` with a
60-second sliding window across a 2x3 biclique (2 R-joiners, 3
S-joiners), and verifies the output against the brute-force reference
join.

Run:  python examples/quickstart.py
"""

from repro import (
    BicliqueConfig,
    EquiJoinPredicate,
    StreamJoinEngine,
    TimeWindow,
    stream_from_pairs,
)
from repro.harness import check_exactly_once, reference_join


def main() -> None:
    # Two time-ordered streams sharing the join attribute "k".
    r_stream = stream_from_pairs(
        "R", [(float(i), {"k": i % 5, "user": f"u{i}"}) for i in range(100)])
    s_stream = stream_from_pairs(
        "S", [(i * 1.3, {"k": i % 5, "page": f"p{i}"}) for i in range(80)])

    predicate = EquiJoinPredicate("k", "k")
    window = TimeWindow(seconds=60.0)
    config = BicliqueConfig(
        window=window,
        r_joiners=2,          # n: units storing R
        s_joiners=3,          # m: units storing S
        routers=2,            # competing router pool
        archive_period=10.0,  # chained-index slice length P
    )

    engine = StreamJoinEngine(config, predicate)
    results, report = engine.run(r_stream, s_stream)

    print(f"predicate     : {predicate}")
    print(f"window        : {window}")
    print(f"routing mode  : {engine.engine.routing_mode} (auto-picked)")
    print(f"results       : {report.results}")
    print(f"throughput    : {report.tuples_per_second:,.0f} tuples/s")
    print(f"data messages : {report.network.data_messages} "
          f"({report.network.data_messages / report.tuples_ingested:.2f}/tuple)")
    print("first 3 results:")
    for result in results[:3]:
        print(f"  R#{result.r.seq}(k={result.r['k']}) ⋈ "
              f"S#{result.s.seq}(k={result.s['k']}) @ {result.ts:.1f}s "
              f"on {result.producer}")

    expected = reference_join(r_stream, s_stream, predicate, window)
    check = check_exactly_once(results, expected)
    print(f"verification  : {check} -> {'OK' if check.ok else 'FAILED'}")


if __name__ == "__main__":
    main()
