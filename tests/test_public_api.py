"""Public-API surface guards.

Everything exported from ``repro`` (and its subpackage ``__all__``
lists) must be importable and documented — the public API is a
contract, and an undocumented export is a doc bug.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.broker",
    "repro.simulation",
    "repro.cluster",
    "repro.matrix",
    "repro.workloads",
    "repro.metrics",
    "repro.harness",
    "repro.obs",
    "repro.parallel",
    "repro.gateway",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} lacks __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_classes_and_functions_documented(package_name):
    package = importlib.import_module(package_name)
    undocumented = []
    for name in package.__all__:
        obj = getattr(package, name)
        if isinstance(obj, (int, str, float)):
            continue  # constants (__version__, byte sizes, header lists)
        if not (getattr(obj, "__doc__", None) or "").strip():
            undocumented.append(name)
    assert not undocumented, f"{package_name}: undocumented {undocumented}"


def test_package_docstrings_present():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        assert (package.__doc__ or "").strip(), f"{package_name} undocumented"
