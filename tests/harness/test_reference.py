"""Tests for repro.harness.reference."""

from repro import (
    EquiJoinPredicate,
    JoinResult,
    TimeWindow,
    make_result,
    stream_from_pairs,
)
from repro.harness import check_exactly_once, reference_join, result_keys


def streams():
    r = stream_from_pairs("R", [(0.0, {"k": 1}), (1.0, {"k": 2})])
    s = stream_from_pairs("S", [(0.5, {"k": 1}), (1.5, {"k": 2})])
    return r, s


class TestReferenceJoin:
    def test_matches_equal_keys_in_window(self):
        r, s = streams()
        pairs = reference_join(r, s, EquiJoinPredicate("k", "k"),
                               TimeWindow(seconds=10.0))
        assert pairs == {(("R", 0), ("S", 0)), (("R", 1), ("S", 1))}

    def test_window_excludes_distant_pairs(self):
        r = stream_from_pairs("R", [(0.0, {"k": 1})])
        s = stream_from_pairs("S", [(100.0, {"k": 1})])
        pairs = reference_join(r, s, EquiJoinPredicate("k", "k"),
                               TimeWindow(seconds=10.0))
        assert pairs == set()

    def test_window_is_symmetric(self):
        r = stream_from_pairs("R", [(100.0, {"k": 1})])
        s = stream_from_pairs("S", [(95.0, {"k": 1})])
        pairs = reference_join(r, s, EquiJoinPredicate("k", "k"),
                               TimeWindow(seconds=10.0))
        assert len(pairs) == 1


class TestCheckExactlyOnce:
    def _result(self, r, s) -> JoinResult:
        return make_result(r, s)

    def test_perfect_output_ok(self):
        r, s = streams()
        results = [self._result(r[0], s[0]), self._result(r[1], s[1])]
        expected = {(("R", 0), ("S", 0)), (("R", 1), ("S", 1))}
        check = check_exactly_once(results, expected)
        assert check.ok
        assert check.produced == 2

    def test_duplicate_detected(self):
        r, s = streams()
        results = [self._result(r[0], s[0]), self._result(r[0], s[0])]
        expected = {(("R", 0), ("S", 0))}
        check = check_exactly_once(results, expected)
        assert not check.ok
        assert check.duplicates == 1

    def test_missing_detected(self):
        expected = {(("R", 0), ("S", 0))}
        check = check_exactly_once([], expected)
        assert not check.ok
        assert check.missing == 1

    def test_spurious_detected(self):
        r, s = streams()
        results = [self._result(r[1], s[0])]
        expected = {(("R", 0), ("S", 0))}
        check = check_exactly_once(results, expected)
        assert not check.ok
        assert check.spurious == 1

    def test_result_keys_order(self):
        r, s = streams()
        results = [self._result(r[1], s[1]), self._result(r[0], s[0])]
        assert result_keys(results) == [
            (("R", 1), ("S", 1)), (("R", 0), ("S", 0))]
