"""Tests for repro.harness.tables."""

from repro.harness import format_cell, render_series, render_table


class TestFormatCell:
    def test_none(self):
        assert format_cell(None) == "-"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_large_numbers_grouped(self):
        assert format_cell(1234567) == "1,234,567"
        assert format_cell(1234567.0) == "1,234,567"

    def test_small_floats(self):
        assert format_cell(0.12345) == "0.1235"
        assert format_cell(1.5) == "1.50"
        assert format_cell(0.0) == "0"

    def test_strings_pass_through(self):
        assert format_cell("biclique") == "biclique"


class TestRenderTable:
    def test_alignment_and_header(self):
        out = render_table(["model", "n"], [["biclique", 4], ["matrix", 9]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "model" in lines[0]
        assert all("|" in line for line in (lines[0], lines[2], lines[3]))

    def test_title_included(self):
        out = render_table(["a"], [[1]], title="E1")
        assert out.splitlines()[0] == "E1"

    def test_column_width_fits_longest(self):
        out = render_table(["x"], [["long-cell-value"]])
        header, rule, row = out.splitlines()
        assert len(header) == len(rule) == len(row)


class TestRenderSeries:
    def test_series_rows(self):
        out = render_series("throughput", [(0.0, 10), (30.0, 12)],
                            x_label="t", y_label="t/s")
        assert "throughput" in out
        assert out.count("\n") == 4
