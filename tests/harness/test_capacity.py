"""Tests for repro.harness.capacity (bottleneck throughput analysis)."""

import pytest

from repro import BicliqueConfig, EquiJoinPredicate, TimeWindow
from repro.cluster import CostModel
from repro.core.engine import StreamJoinEngine
from repro.core.streams import merge_by_time
from repro.harness import biclique_capacity, matrix_capacity
from repro.matrix import MatrixConfig, MatrixEngine
from repro.workloads import ConstantRate, EquiJoinWorkload, UniformKeys

PREDICATE = EquiJoinPredicate("k", "k")


@pytest.fixture(scope="module")
def workload():
    wl = EquiJoinWorkload(keys=UniformKeys(100), seed=33)
    return wl.materialise(ConstantRate(100.0), 10.0)


def run_biclique_engine(r, s, **overrides):
    defaults = dict(window=TimeWindow(5.0), r_joiners=2, s_joiners=2,
                    routing="hash", archive_period=1.0,
                    punctuation_interval=0.5)
    defaults.update(overrides)
    engine = StreamJoinEngine(BicliqueConfig(**defaults), PREDICATE)
    engine.run(r, s)
    return engine.engine


class TestBicliqueCapacity:
    def test_capacity_positive_and_finite(self, workload):
        r, s = workload
        engine = run_biclique_engine(r, s)
        est = biclique_capacity(engine, len(r) + len(s))
        assert 0 < est.capacity_tuples_per_second < float("inf")
        assert est.bottleneck_unit in engine.joiners

    def test_cost_scale_divides_capacity(self, workload):
        """Doubling all operation costs must halve capacity exactly."""
        r, s = workload
        engine = run_biclique_engine(r, s)
        base = biclique_capacity(engine, len(r) + len(s), CostModel())
        doubled = biclique_capacity(engine, len(r) + len(s),
                                    CostModel().scaled(2.0))
        assert doubled.capacity_tuples_per_second == pytest.approx(
            base.capacity_tuples_per_second / 2)

    def test_more_units_more_capacity(self, workload):
        r, s = workload
        small = run_biclique_engine(r, s, r_joiners=1, s_joiners=1)
        large = run_biclique_engine(r, s, r_joiners=4, s_joiners=4)
        cap_small = biclique_capacity(small, len(r) + len(s))
        cap_large = biclique_capacity(large, len(r) + len(s))
        assert cap_large.capacity_tuples_per_second > \
            1.5 * cap_small.capacity_tuples_per_second

    def test_total_cpu_includes_routers(self, workload):
        r, s = workload
        engine = run_biclique_engine(r, s)
        with_router = biclique_capacity(engine, len(r) + len(s))
        per_unit_only = sum(
            CostModel().joiner_work(
                stored=j.stats.tuples_stored,
                probes=j.stats.probes_processed,
                comparisons=j.index.stats.comparisons,
                results=j.stats.results_emitted,
                punctuations=j.stats.punctuations_received)
            for j in engine.joiners.values())
        assert with_router.total_cpu_seconds > per_unit_only

    def test_balance_near_one_for_uniform_keys(self, workload):
        r, s = workload
        engine = run_biclique_engine(r, s)
        est = biclique_capacity(engine, len(r) + len(s))
        assert 1.0 <= est.balance < 1.5

    def test_empty_run_is_infinite_capacity(self):
        engine = run_biclique_engine([], [])
        est = biclique_capacity(engine, 0)
        assert est.capacity_tuples_per_second == float("inf")


class TestMatrixCapacity:
    def test_capacity_positive(self, workload):
        r, s = workload
        engine = MatrixEngine(
            MatrixConfig(window=TimeWindow(5.0), rows=2, cols=2,
                         partitioning="hash", archive_period=1.0),
            PREDICATE)
        for t in merge_by_time(r, s):
            engine.ingest(t)
        engine.finish()
        est = matrix_capacity(engine, len(r) + len(s))
        assert 0 < est.capacity_tuples_per_second < float("inf")
        assert est.bottleneck_unit.startswith("cell[")
