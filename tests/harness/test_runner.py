"""Tests for repro.harness.runner."""

import pytest

from repro import BicliqueConfig, EquiJoinPredicate, TimeWindow
from repro.harness import run_biclique, run_matrix, square_matrix_side
from repro.matrix import MatrixConfig
from repro.workloads import ConstantRate, EquiJoinWorkload, UniformKeys


@pytest.fixture(scope="module")
def workload():
    wl = EquiJoinWorkload(keys=UniformKeys(20), seed=21)
    return wl.materialise(ConstantRate(100.0), 4.0)


class TestRunBiclique:
    def test_stats_row(self, workload):
        r, s = workload
        stats = run_biclique(
            BicliqueConfig(window=TimeWindow(5.0), r_joiners=2, s_joiners=2,
                           archive_period=1.0, punctuation_interval=0.2),
            EquiJoinPredicate("k", "k"), r, s)
        assert stats.correct
        assert stats.model == "biclique/hash"
        assert stats.units == 4
        assert stats.results > 0
        assert stats.messages_per_tuple == pytest.approx(2.0, abs=0.3)

    def test_verify_can_be_skipped(self, workload):
        r, s = workload
        stats = run_biclique(
            BicliqueConfig(window=TimeWindow(5.0), archive_period=1.0),
            EquiJoinPredicate("k", "k"), r, s, verify=False)
        assert stats.correct  # trivially true when not verified


class TestRunMatrix:
    def test_stats_row(self, workload):
        r, s = workload
        stats = run_matrix(
            MatrixConfig(window=TimeWindow(5.0), rows=2, cols=2,
                         partitioning="hash", archive_period=1.0),
            EquiJoinPredicate("k", "k"), r, s)
        assert stats.correct
        assert stats.model == "matrix/hash"
        assert stats.units == 4
        assert stats.messages_per_tuple == pytest.approx(2.0, abs=0.1)

    def test_same_results_as_biclique(self, workload):
        r, s = workload
        pred = EquiJoinPredicate("k", "k")
        b = run_biclique(BicliqueConfig(window=TimeWindow(5.0),
                                        archive_period=1.0,
                                        punctuation_interval=0.2), pred, r, s)
        m = run_matrix(MatrixConfig(window=TimeWindow(5.0), rows=2, cols=2,
                                    partitioning="hash", archive_period=1.0),
                       pred, r, s)
        assert b.results == m.results


class TestSquareMatrixSide:
    @pytest.mark.parametrize("units,side", [
        (1, 1), (3, 1), (4, 2), (8, 2), (9, 3), (16, 4), (24, 4), (25, 5),
    ])
    def test_largest_square(self, units, side):
        assert square_matrix_side(units) == side
