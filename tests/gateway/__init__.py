"""Tests of the network ingest gateway (protocol, server, CLI)."""
