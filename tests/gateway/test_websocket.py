"""The minimal RFC-6455 layer: handshake, frame codec, reassembly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.gateway import (WsFrame, WsMessageAssembler, encode_ws_frame,
                           try_decode_ws_frame)
from repro.gateway.protocol import (OP_BINARY, OP_CLOSE, OP_CONT, OP_PING,
                                    OP_TEXT, HttpRequest,
                                    is_websocket_upgrade, parse_http_request,
                                    websocket_accept,
                                    websocket_handshake_response)


class TestHandshake:
    def test_rfc_6455_worked_example(self):
        # The accept value from RFC 6455 §1.3 — pins the GUID + SHA-1 +
        # base64 pipeline byte for byte.
        assert websocket_accept("dGhlIHNhbXBsZSBub25jZQ==") == \
            "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="

    def test_upgrade_detection_and_response(self):
        head = (b"GET /ingest HTTP/1.1\r\n"
                b"Host: example\r\n"
                b"Upgrade: WebSocket\r\n"
                b"Connection: Upgrade\r\n"
                b"Sec-WebSocket-Key: dGhlIHNhbXBsZSBub25jZQ==\r\n")
        request = parse_http_request(head)
        assert request.method == "GET"
        assert request.header("upgrade") == "WebSocket"
        assert is_websocket_upgrade(request)
        response = websocket_handshake_response(request)
        assert response.startswith(b"HTTP/1.1 101")
        assert b"s3pPLMBiTxaQ9kYGzzhZRbK+xOo=" in response

    def test_plain_get_is_not_an_upgrade(self):
        request = parse_http_request(b"GET /metrics HTTP/1.1\r\n")
        assert not is_websocket_upgrade(request)

    def test_handshake_without_key_raises(self):
        with pytest.raises(ProtocolError):
            websocket_handshake_response(
                HttpRequest(method="GET", path="/", headers={}))

    @pytest.mark.parametrize("head", [
        b"", b"GET /",  b"GET / SPDY/3", b"G@T / HTTP/1.1",
        b"GET / HTTP/1.1\r\nbroken header line",
    ])
    def test_malformed_request_heads_raise(self, head):
        with pytest.raises(ProtocolError):
            parse_http_request(head)


class TestFrameCodec:
    @pytest.mark.parametrize("size", [0, 1, 125, 126, 0xFFFF, 0x10000])
    @pytest.mark.parametrize("mask", [None, b"\x01\x02\x03\x04"])
    def test_roundtrip_across_length_encodings(self, size, mask):
        payload = bytes(i % 251 for i in range(size))
        wire = encode_ws_frame(payload, OP_BINARY, mask=mask)
        decoded = try_decode_ws_frame(wire, require_mask=mask is not None,
                                      max_payload=2 * size + 16)
        assert decoded is not None
        consumed, frame = decoded
        assert consumed == len(wire)
        assert frame == WsFrame(fin=True, opcode=OP_BINARY, payload=payload)

    def test_prefixes_report_incomplete_never_raise(self):
        wire = encode_ws_frame(b"x" * 300, mask=b"abcd")
        for cut in range(len(wire)):
            assert try_decode_ws_frame(wire[:cut]) is None

    def test_pipelined_frames_decode_in_order(self):
        wire = (encode_ws_frame(b"one", mask=b"aaaa")
                + encode_ws_frame(b"two", mask=b"bbbb"))
        consumed, first = try_decode_ws_frame(wire)
        assert first.payload == b"one"
        _, second = try_decode_ws_frame(wire[consumed:])
        assert second.payload == b"two"

    def test_unmasked_client_frame_raises(self):
        with pytest.raises(ProtocolError):
            try_decode_ws_frame(encode_ws_frame(b"x"), require_mask=True)

    def test_reserved_bits_raise(self):
        wire = bytearray(encode_ws_frame(b"x", mask=b"aaaa"))
        wire[0] |= 0x40
        with pytest.raises(ProtocolError):
            try_decode_ws_frame(bytes(wire))

    def test_unknown_opcode_raises(self):
        wire = bytearray(encode_ws_frame(b"x", mask=b"aaaa"))
        wire[0] = (wire[0] & 0xF0) | 0x3
        with pytest.raises(ProtocolError):
            try_decode_ws_frame(bytes(wire))

    def test_oversized_payload_raises(self):
        wire = encode_ws_frame(b"x" * 64, mask=b"aaaa")
        with pytest.raises(ProtocolError):
            try_decode_ws_frame(wire, max_payload=32)

    def test_control_frames_bounded_and_unfragmented(self):
        with pytest.raises(ProtocolError):
            encode_ws_frame(b"x" * 126, OP_PING)
        fragmented_ping = bytes([OP_PING, 0x80 | 1]) + b"aaaa" + b"x"
        with pytest.raises(ProtocolError):
            try_decode_ws_frame(fragmented_ping)

    def test_bad_mask_key_length_raises(self):
        with pytest.raises(ProtocolError):
            encode_ws_frame(b"x", mask=b"ab")

    @settings(max_examples=300, deadline=None)
    @given(st.binary(max_size=64))
    def test_decoder_is_total(self, data):
        try:
            try_decode_ws_frame(data, max_payload=16)
        except ProtocolError:
            pass  # the only exception the edge has to handle

    @settings(max_examples=100, deadline=None)
    @given(st.binary(max_size=500), st.binary(min_size=4, max_size=4))
    def test_masked_roundtrip_fuzz(self, payload, mask):
        wire = encode_ws_frame(payload, OP_BINARY, mask=mask)
        consumed, frame = try_decode_ws_frame(wire)
        assert (consumed, frame.payload) == (len(wire), payload)


class TestMessageAssembler:
    def test_fragmented_message_reassembles(self):
        assembler = WsMessageAssembler()
        assert assembler.add(
            WsFrame(fin=False, opcode=OP_TEXT, payload=b"hel")) is None
        assert assembler.pending_bytes == 3
        message = assembler.add(
            WsFrame(fin=True, opcode=OP_CONT, payload=b"lo"))
        assert message == WsFrame(fin=True, opcode=OP_TEXT, payload=b"hello")
        assert assembler.pending_bytes == 0

    def test_control_frames_interleave(self):
        assembler = WsMessageAssembler()
        assembler.add(WsFrame(fin=False, opcode=OP_TEXT, payload=b"a"))
        ping = WsFrame(fin=True, opcode=OP_PING, payload=b"hb")
        assert assembler.add(ping) is ping
        close = WsFrame(fin=True, opcode=OP_CLOSE, payload=b"")
        assert assembler.add(close) is close
        message = assembler.add(
            WsFrame(fin=True, opcode=OP_CONT, payload=b"b"))
        assert message.payload == b"ab"

    def test_unfragmented_message_passes_straight_through(self):
        message = WsMessageAssembler().add(
            WsFrame(fin=True, opcode=OP_BINARY, payload=b"whole"))
        assert message == WsFrame(fin=True, opcode=OP_BINARY,
                                  payload=b"whole")

    def test_stray_continuation_raises(self):
        with pytest.raises(ProtocolError):
            WsMessageAssembler().add(
                WsFrame(fin=True, opcode=OP_CONT, payload=b"x"))

    def test_new_data_frame_mid_message_raises(self):
        assembler = WsMessageAssembler()
        assembler.add(WsFrame(fin=False, opcode=OP_TEXT, payload=b"a"))
        with pytest.raises(ProtocolError):
            assembler.add(WsFrame(fin=False, opcode=OP_TEXT, payload=b"b"))

    def test_fragmentation_cannot_sidestep_the_size_bound(self):
        assembler = WsMessageAssembler(max_payload=4)
        assembler.add(WsFrame(fin=False, opcode=OP_TEXT, payload=b"123"))
        with pytest.raises(ProtocolError):
            assembler.add(WsFrame(fin=False, opcode=OP_CONT, payload=b"45"))
