"""The ``python -m repro`` command-line contract.

Pinned here so scripts (and CI) can rely on it: unknown commands exit
2 with the usage block on stderr, ``--help`` exits 0 with the same
block on stdout, and every advertised command is registered.
"""

import json

import pytest

from repro.__main__ import USAGE, main


class TestContract:
    def test_help_exits_zero_with_usage(self, capsys):
        for flag in ("--help", "-h", "help"):
            assert main(["repro", flag]) == 0
        out = capsys.readouterr().out
        assert "usage: python -m repro" in out
        assert out.count("usage: python -m repro") == 3

    def test_unknown_command_exits_two_with_usage_on_stderr(self, capsys):
        assert main(["repro", "frobnicate"]) == 2
        captured = capsys.readouterr()
        assert "unknown command 'frobnicate'" in captured.err
        assert "usage: python -m repro" in captured.err
        assert captured.out == ""

    def test_every_advertised_command_is_registered(self, capsys):
        # The usage block and the dispatch table must not drift apart.
        advertised = [line.split()[0] for line in USAGE.splitlines()
                      if line.startswith("  ") and not line.startswith("   ")]
        assert advertised == ["demo", "autoscale", "parallel", "serve",
                              "soak", "info"]
        for command in advertised:
            result = main(["repro", command, "--definitely-not-a-flag"]) \
                if command == "serve" else None
            if command == "serve":
                assert result == 2  # malformed flags: usage error
        capsys.readouterr()

    def test_bad_serve_arguments_exit_two(self, capsys):
        for args in (["--port"], ["--port", "nope"], ["--bogus", "1"]):
            assert main(["repro", "serve", *args]) == 2
        err = capsys.readouterr().err
        assert err.count("usage: python -m repro") == 3


@pytest.mark.stress
class TestServeCommand:
    def test_serve_runs_and_reports(self, capsys):
        assert main(["repro", "serve", "--duration", "0.5",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "ingest gateway on 127.0.0.1:" in out
        assert "/metrics" in out
        assert "served 0 connections" in out

    def test_soak_gateway_flag(self, capsys, tmp_path):
        out_path = tmp_path / "scorecard.json"
        assert main(["repro", "soak", "1", "99", str(out_path),
                     "--gateway"]) == 0
        scorecard = json.loads(out_path.read_text())
        assert scorecard["ok"]
        assert scorecard["config"]["gateway"] is True
        assert "network_faults" in scorecard["totals"]
        assert "client_resets" in scorecard["totals"]
        out = capsys.readouterr().out
        assert "network faults/round through a loopback gateway" in out
