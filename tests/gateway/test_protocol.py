"""The line protocol: record codec and newline framing.

The decoders must be *total*: any byte string either decodes or
raises :class:`ProtocolError` — nothing else may escape, however the
input was torn, pipelined, or corrupted.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tuples import StreamTuple
from repro.errors import ProtocolError
from repro.gateway import (LineDecoder, Record, decode_record, decode_reply,
                           encode_record, encode_reply)


def make_tuple(seq=3):
    return StreamTuple(relation="R", ts=1.25, values={"k": 7, "v": 2},
                       seq=seq)


class TestRecordCodec:
    def test_roundtrip(self):
        t = make_tuple()
        record = decode_record(encode_record(t).rstrip(b"\n"))
        assert record == Record(relation="R", ts=1.25,
                                values={"k": 7, "v": 2}, seq=3)
        assert record.to_tuple() == t

    def test_client_seq_names_identity(self):
        record = decode_record(b'{"relation":"S","ts":0,"values":{}}')
        assert record.seq is None
        # Gateway-assigned sequence fills in at materialisation.
        assert record.to_tuple(seq=11).ident == ("S", 11)
        with pytest.raises(ProtocolError):
            record.to_tuple()  # no sequence from either side

    @pytest.mark.parametrize("payload", [
        b"\xff\xfe not utf-8",
        b"not json at all",
        b"[1, 2, 3]",
        b'"just a string"',
        b"{}",
        b'{"relation":"","ts":0,"values":{}}',
        b'{"relation":42,"ts":0,"values":{}}',
        b'{"ts":0,"values":{}}',
        b'{"relation":"R","values":{}}',
        b'{"relation":"R","ts":"nope","values":{}}',
        b'{"relation":"R","ts":true,"values":{}}',
        b'{"relation":"R","ts":NaN,"values":{}}',
        b'{"relation":"R","ts":Infinity,"values":{}}',
        b'{"relation":"R","ts":0}',
        b'{"relation":"R","ts":0,"values":[]}',
        b'{"relation":"R","ts":0,"values":{},"seq":-1}',
        b'{"relation":"R","ts":0,"values":{},"seq":true}',
        b'{"relation":"R","ts":0,"values":{},"seq":1.5}',
    ])
    def test_malformed_records_raise_protocol_error(self, payload):
        with pytest.raises(ProtocolError):
            decode_record(payload)

    def test_reply_roundtrip(self):
        line = encode_reply(4, "admitted", extra="x")
        assert line.endswith(b"\n")
        assert decode_reply(line) == {"seq": 4, "status": "admitted",
                                      "extra": "x"}

    @pytest.mark.parametrize("line", [b"\xff", b"nope", b"[]",
                                      b'{"seq": 1}'])
    def test_malformed_replies_raise(self, line):
        with pytest.raises(ProtocolError):
            decode_reply(line)


class TestLineDecoder:
    def test_pipelined_frames_in_one_segment(self):
        decoder = LineDecoder()
        assert decoder.feed(b"one\ntwo\r\nthree\nfour") == \
            [b"one", b"two", b"three"]
        assert decoder.pending_bytes == len(b"four")
        assert decoder.feed(b"\n") == [b"four"]
        assert decoder.pending_bytes == 0

    def test_torn_byte_by_byte(self):
        decoder = LineDecoder()
        frames = []
        for byte in b'{"a": 1}\n{"b": 2}\n':
            frames.extend(decoder.feed(bytes([byte])))
        assert frames == [b'{"a": 1}', b'{"b": 2}']

    def test_blank_lines_pass_through(self):
        assert LineDecoder().feed(b"\n\nx\n") == [b"", b"", b"x"]

    def test_oversized_unterminated_line_raises(self):
        decoder = LineDecoder(max_line=8)
        decoder.feed(b"12345678")  # exactly at the bound: still legal
        with pytest.raises(ProtocolError):
            decoder.feed(b"9")

    def test_oversized_completed_line_raises(self):
        with pytest.raises(ProtocolError):
            LineDecoder(max_line=4).feed(b"123456789\n")

    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.binary(max_size=40).filter(lambda b: b"\n" not in b),
                    min_size=1, max_size=10),
           st.data())
    def test_any_chunking_reassembles_the_same_frames(self, lines, data):
        stream = b"\n".join(lines) + b"\n"
        cuts = sorted(data.draw(st.lists(
            st.integers(0, len(stream)), max_size=6)))
        decoder = LineDecoder(max_line=64)
        frames = []
        last = 0
        for cut in cuts + [len(stream)]:
            frames.extend(decoder.feed(stream[last:cut]))
            last = cut
        assert frames == [line.rstrip(b"\r") for line in lines]

    @settings(max_examples=300, deadline=None)
    @given(st.binary(max_size=200))
    def test_decoder_is_total(self, data):
        decoder = LineDecoder(max_line=32)
        try:
            for frame in decoder.feed(data):
                decode_record(frame)
        except ProtocolError:
            pass  # the only exception the edge has to handle


@settings(max_examples=300, deadline=None)
@given(st.binary(max_size=200))
def test_decode_record_is_total(data):
    try:
        decode_record(data)
    except ProtocolError:
        pass


@settings(max_examples=100, deadline=None)
@given(st.text(st.characters(codec="utf-8"), max_size=30),
       st.floats(allow_nan=False, allow_infinity=False,
                 allow_subnormal=False),
       st.integers(0, 2**40))
def test_record_roundtrip_fuzz(relation, ts, seq):
    if not relation:
        return
    t = StreamTuple(relation=relation, ts=ts, values={"x": 1}, seq=seq)
    decoded = decode_record(encode_record(t).rstrip(b"\n")).to_tuple()
    assert decoded == t
    # The frame is itself valid JSON for any relation text.
    json.loads(encode_record(t))
