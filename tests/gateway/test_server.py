"""Integration tests of the ingest gateway against a fake cluster.

The gateway only needs ``ingest`` / ``poll`` / ``flush`` from its
cluster, so these tests substitute an in-memory fake and exercise the
real network stack: admission verdicts mapped to replies and
connection behaviour, identity dedup, the slowloris guard, and the
HTTP endpoints — all over actual loopback sockets.
"""

import json
import socket
import time
import urllib.request

import pytest

from repro.core.tuples import StreamTuple
from repro.gateway import (MALFORMED_FRAME, GatewayClient, GatewayConfig,
                           IngestGateway, decode_reply, encode_record,
                           open_slowloris)
from repro.overload.manager import OverloadConfig, OverloadManager


class FakeCluster:
    """The minimal surface the bridge thread drives."""

    def __init__(self, ingest_delay: float = 0.0) -> None:
        self.ingested: list[StreamTuple] = []
        self.ingest_delay = ingest_delay
        self.polls = 0
        self.flushes = 0

    def ingest(self, t: StreamTuple) -> None:
        if self.ingest_delay:
            time.sleep(self.ingest_delay)
        self.ingested.append(t)

    def poll(self, timeout: float = 0.0) -> None:
        self.polls += 1

    def flush(self) -> None:
        self.flushes += 1

    @property
    def tuples_ingested(self) -> int:
        return len(self.ingested)


def make_tuples(n, relation="R"):
    return [StreamTuple(relation=relation, ts=0.001 * i,
                        values={"k": i % 5}, seq=i) for i in range(n)]


def http_get(port, path):
    with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=5) as resp:
        return resp.status, resp.headers, resp.read()


class TestIngest:
    def test_line_protocol_acks_and_ingests(self):
        cluster = FakeCluster()
        with IngestGateway(cluster) as gateway:
            client = GatewayClient("127.0.0.1", gateway.port)
            report = client.stream(make_tuples(20), collect_replies=True)
            client.close()
            gateway.drain()
        assert report.acked == 20
        assert all(r["status"] == "admitted" for r in report.replies)
        # Replies are matched to sends by counting: seqs are 0..n-1.
        assert [r["seq"] for r in report.replies] == list(range(20))
        assert cluster.ingested == make_tuples(20)
        assert gateway.stats.acks == 20
        assert cluster.polls > 0 and cluster.flushes > 0

    def test_websocket_ingest(self):
        cluster = FakeCluster()
        with IngestGateway(cluster) as gateway:
            client = GatewayClient("127.0.0.1", gateway.port, mode="ws")
            report = client.stream(make_tuples(12))
            client.close()
            gateway.drain()
        assert report.acked == 12
        assert gateway.stats.ws_connections == 1
        assert cluster.ingested == make_tuples(12)

    def test_resubmission_is_deduplicated(self):
        cluster = FakeCluster()
        manager = OverloadManager(OverloadConfig(policy="block"))
        with IngestGateway(cluster, manager) as gateway:
            client = GatewayClient("127.0.0.1", gateway.port).connect()
            t = make_tuples(1)[0]
            assert client.submit(t)["status"] == "admitted"
            assert client.submit(t)["status"] == "duplicate"
            client.close()
            gateway.drain()
        assert cluster.ingested == [t]
        assert gateway.stats.duplicates == 1
        # The duplicate counts as offered + shed: the ledger reconciles.
        ledger = manager.accounting.sides["R"]
        assert ledger.offered == 2
        assert (ledger.admitted, ledger.shed) == (1, 1)

    def test_gateway_assigns_seqs_when_client_sends_none(self):
        cluster = FakeCluster()
        with IngestGateway(cluster) as gateway:
            client = GatewayClient("127.0.0.1", gateway.port).connect()
            for _ in range(3):
                client.send_raw(b'{"relation":"R","ts":0,"values":{}}\n')
            statuses = [client.recv_reply()["status"] for _ in range(3)]
            client.close()
            gateway.drain()
        assert statuses == ["admitted"] * 3
        assert [t.seq for t in cluster.ingested] == [0, 1, 2]

    def test_malformed_record_replies_error_and_connection_survives(self):
        cluster = FakeCluster()
        with IngestGateway(cluster) as gateway:
            client = GatewayClient("127.0.0.1", gateway.port).connect()
            client.send_raw(MALFORMED_FRAME)
            assert client.recv_reply()["status"] == "error"
            assert client.submit(make_tuples(1)[0])["status"] == "admitted"
            client.close()
            gateway.drain()
        assert gateway.stats.malformed == 1
        assert len(cluster.ingested) == 1

    def test_oversized_line_disconnects(self):
        with IngestGateway(FakeCluster(),
                           config=GatewayConfig(max_record_bytes=64)
                           ) as gateway:
            sock = socket.create_connection(
                ("127.0.0.1", gateway.port), timeout=5)
            sock.sendall(b'{"pad": "' + b"x" * 200 + b'"}\n')
            buf = b""
            while b"\n" not in buf:
                data = sock.recv(1024)
                if not data:
                    break
                buf += data
            assert decode_reply(buf.split(b"\n")[0])["status"] == "error"
            # The connection is beyond resynchronisation: closed.
            assert sock.recv(1024) == b""
            sock.close()
        assert gateway.stats.disconnects == 1


class TestAdmission:
    def test_drop_tail_sheds_then_client_retry_recovers(self):
        # A slow cluster keeps the tiny hand-off queue full, so some
        # offers shed; the client's retry loop must still land every
        # tuple exactly once.
        cluster = FakeCluster(ingest_delay=0.002)
        manager = OverloadManager(OverloadConfig(policy="drop-tail"))
        config = GatewayConfig(handoff_depth=2)
        with IngestGateway(cluster, manager, config) as gateway:
            client = GatewayClient("127.0.0.1", gateway.port)
            report = client.stream(make_tuples(40))
            client.close()
            gateway.drain()
        assert report.acked == 40
        assert gateway.stats.sheds == report.sheds_retried > 0
        assert sorted(t.seq for t in cluster.ingested) == list(range(40))
        ledger = manager.accounting.sides["R"]
        assert ledger.offered == ledger.admitted + ledger.shed
        assert ledger.admitted == 40

    def test_block_policy_defers_then_admits(self):
        cluster = FakeCluster(ingest_delay=0.002)
        manager = OverloadManager(OverloadConfig(policy="block"))
        config = GatewayConfig(handoff_depth=2, defer_deadline=30.0)
        with IngestGateway(cluster, manager, config) as gateway:
            client = GatewayClient("127.0.0.1", gateway.port)
            report = client.stream(make_tuples(40))
            client.close()
            gateway.drain()
        # Backpressure slows the client but never sheds or loses.
        assert report.acked == 40
        assert report.sheds_retried == 0
        assert gateway.stats.deferrals > 0
        assert cluster.ingested == make_tuples(40)

    def test_defer_deadline_sheds_and_disconnects(self):
        cluster = FakeCluster(ingest_delay=0.5)  # slow vs. the deadline
        manager = OverloadManager(OverloadConfig(policy="block"))
        config = GatewayConfig(handoff_depth=1, defer_deadline=0.1,
                               drain_deadline=1.0)
        with IngestGateway(cluster, manager, config) as gateway:
            client = GatewayClient("127.0.0.1", gateway.port).connect()
            for t in make_tuples(3):
                client.send_raw(encode_record(t))
            statuses = []
            try:
                while len(statuses) < 3:
                    statuses.append(client.recv_reply()["status"])
            except ConnectionError:
                pass
            client.kill_connection()
            assert "shed" in statuses
            assert gateway.stats.disconnects >= 1


class TestSlowloris:
    def test_partial_frame_idle_disconnects(self):
        config = GatewayConfig(idle_deadline=0.15)
        with IngestGateway(FakeCluster(), config=config) as gateway:
            sock = open_slowloris("127.0.0.1", gateway.port)
            deadline = time.monotonic() + 5.0
            closed = False
            sock.settimeout(0.2)
            while time.monotonic() < deadline and not closed:
                try:
                    closed = sock.recv(64) == b""
                except socket.timeout:
                    pass
            sock.close()
            assert closed, "slowloris connection was never reaped"
            assert gateway.stats.disconnects == 1

    def test_complete_frame_idleness_is_unbounded(self):
        # Idle between complete frames is legal: only a *partial*
        # frame trips the guard.
        config = GatewayConfig(idle_deadline=0.15)
        with IngestGateway(FakeCluster(), config=config) as gateway:
            client = GatewayClient("127.0.0.1", gateway.port).connect()
            assert client.submit(make_tuples(1)[0])["status"] == "admitted"
            time.sleep(0.4)  # several idle deadlines, zero pending bytes
            t2 = StreamTuple(relation="R", ts=1.0, values={}, seq=99)
            assert client.submit(t2)["status"] == "admitted"
            client.close()
        assert gateway.stats.disconnects == 0


class TestHttp:
    def test_metrics_healthz_report_and_errors(self):
        cluster = FakeCluster()
        with IngestGateway(cluster) as gateway:
            client = GatewayClient("127.0.0.1", gateway.port)
            client.stream(make_tuples(5))

            status, headers, body = http_get(gateway.port, "/metrics")
            assert status == 200
            assert headers["Content-Type"].startswith("text/plain")
            text = body.decode()
            assert "repro_gateway_records_in_total 5" in text
            assert "repro_gateway_acks_total 5" in text
            # Valid exposition: every non-comment line is "name value".
            for line in text.splitlines():
                if line and not line.startswith("#"):
                    name, value = line.rsplit(" ", 1)
                    assert name and float(value) is not None

            status, _, body = http_get(gateway.port, "/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "ok"

            status, _, body = http_get(gateway.port, "/report")
            report = json.loads(body)
            assert report["records_in"] == 5
            assert report["acks"] == 5

            with pytest.raises(urllib.error.HTTPError) as err:
                http_get(gateway.port, "/nope")
            assert err.value.code == 404
            client.close()
            gateway.drain()
        assert gateway.stats.http_requests >= 4

    def test_post_is_rejected(self):
        with IngestGateway(FakeCluster()) as gateway:
            request = urllib.request.Request(
                f"http://127.0.0.1:{gateway.port}/metrics",
                data=b"x", method="POST")
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request, timeout=5)
            assert err.value.code == 405

    def test_dedicated_http_listener(self):
        config = GatewayConfig(http_port=0)
        with IngestGateway(FakeCluster(), config=config) as gateway:
            assert gateway.http_port != gateway.port
            status, _, body = http_get(gateway.http_port, "/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "ok"


class TestLifecycle:
    def test_double_start_raises(self):
        from repro.errors import GatewayError
        gateway = IngestGateway(FakeCluster()).start()
        try:
            with pytest.raises(GatewayError):
                gateway.start()
        finally:
            gateway.close()

    def test_close_is_idempotent_and_drains_the_handoff(self):
        cluster = FakeCluster()
        gateway = IngestGateway(cluster).start()
        client = GatewayClient("127.0.0.1", gateway.port)
        client.stream(make_tuples(10))
        client.close()
        gateway.close()
        gateway.close()
        # Every admitted record reached the cluster before the bridge
        # exited: no accepted write is dropped on the floor.
        assert cluster.ingested == make_tuples(10)


def test_client_fault_hook_injects_and_recovers():
    """The chaos client survives its own injected faults."""
    cluster = FakeCluster()
    actions = {3: "drop", 7: "partial", 11: "malformed"}
    with IngestGateway(cluster) as gateway:
        client = GatewayClient("127.0.0.1", gateway.port)
        report = client.stream(make_tuples(20),
                               fault_hook=lambda i: actions.get(i))
        client.close()
        gateway.drain()
    assert report.acked == 20
    assert report.resets == 2  # drop + partial each kill the connection
    assert report.malformed_sent == 1
    assert sorted(t.seq for t in cluster.ingested) == list(range(20))


def test_reply_decode_reply_contract():
    """Client-visible replies decode with the public helper."""
    cluster = FakeCluster()
    with IngestGateway(cluster) as gateway:
        sock = socket.create_connection(("127.0.0.1", gateway.port))
        sock.sendall(encode_record(make_tuples(1)[0]))
        line = b""
        while not line.endswith(b"\n"):
            line += sock.recv(1024)
        sock.close()
    reply = decode_reply(line)
    assert reply == {"seq": 0, "status": "admitted"}
