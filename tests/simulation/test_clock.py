"""Tests for repro.simulation.clock."""

import pytest

from repro.errors import SimulationError
from repro.simulation import Clock, ManualClock


class TestClock:
    def test_starts_at_zero_by_default(self):
        assert Clock().now == 0.0

    def test_starts_at_given_time(self):
        assert Clock(5.5).now == 5.5

    def test_rejects_negative_start(self):
        with pytest.raises(SimulationError):
            Clock(-1.0)

    def test_advance_to_moves_forward(self):
        clock = Clock()
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_advance_to_same_time_is_allowed(self):
        clock = Clock(2.0)
        clock.advance_to(2.0)
        assert clock.now == 2.0

    def test_advance_to_rejects_backwards(self):
        clock = Clock(2.0)
        with pytest.raises(SimulationError):
            clock.advance_to(1.0)

    def test_advance_by_accumulates(self):
        clock = Clock()
        clock.advance_by(1.5)
        clock.advance_by(2.5)
        assert clock.now == 4.0

    def test_advance_by_zero_is_allowed(self):
        clock = Clock(1.0)
        clock.advance_by(0.0)
        assert clock.now == 1.0

    def test_advance_by_rejects_negative(self):
        clock = Clock()
        with pytest.raises(SimulationError):
            clock.advance_by(-0.1)

    def test_manual_clock_behaves_like_clock(self):
        clock = ManualClock()
        clock.advance_to(7.0)
        assert clock.now == 7.0
