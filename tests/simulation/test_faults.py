"""Tests for repro.simulation.faults and the fault-injecting networks."""

import pytest

from repro.errors import SimulationError
from repro.simulation import (
    CrashFault,
    FaultPlan,
    FixedDelayNetwork,
    LossyNetwork,
    PartitionNetwork,
    SeededRng,
)


class TestCrashFault:
    def test_rejects_negative_time(self):
        with pytest.raises(SimulationError):
            CrashFault(at=-1.0, target="R0")

    def test_rejects_negative_outage(self):
        with pytest.raises(SimulationError):
            CrashFault(at=1.0, target="R0", outage=-0.5)

    def test_rejects_empty_target(self):
        with pytest.raises(SimulationError):
            CrashFault(at=1.0, target="")


class TestFaultPlan:
    def test_sorts_by_time(self):
        plan = FaultPlan((CrashFault(at=30.0, target="router0"),
                          CrashFault(at=10.0, target="R0")))
        assert [f.at for f in plan] == [10.0, 30.0]

    def test_len_and_empty_default(self):
        assert len(FaultPlan()) == 0
        assert len(FaultPlan((CrashFault(at=1.0, target="R0"),))) == 1

    def test_targets_in_first_crash_order(self):
        plan = FaultPlan((CrashFault(at=20.0, target="R0"),
                          CrashFault(at=5.0, target="router0"),
                          CrashFault(at=40.0, target="router0")))
        assert plan.targets() == ["router0", "R0"]


class TestLossyNetwork:
    def test_rejects_certain_drop(self):
        with pytest.raises(SimulationError):
            LossyNetwork(FixedDelayNetwork(0.0), SeededRng(1),
                         drop_probability=1.0)

    def test_rejects_out_of_range_rates(self):
        with pytest.raises(SimulationError):
            LossyNetwork(FixedDelayNetwork(0.0), SeededRng(1),
                         drop_probability=-0.1)
        with pytest.raises(SimulationError):
            LossyNetwork(FixedDelayNetwork(0.0), SeededRng(1),
                         duplicate_probability=1.5)

    def test_zero_rates_pass_through(self):
        net = LossyNetwork(FixedDelayNetwork(0.25), SeededRng(1))
        for i in range(50):
            assert net.transmit("a", "b", now=float(i)) == [0.25]
        assert net.dropped == 0
        assert net.duplicated == 0

    def test_drops_counted_and_empty_plan(self):
        net = LossyNetwork(FixedDelayNetwork(0.1), SeededRng(7),
                           drop_probability=0.5)
        plans = [net.transmit("a", "b", now=0.0) for _ in range(200)]
        assert net.dropped > 0
        assert plans.count([]) == net.dropped

    def test_duplicates_produce_two_delays(self):
        net = LossyNetwork(FixedDelayNetwork(0.1), SeededRng(7),
                           duplicate_probability=0.5)
        plans = [net.transmit("a", "b", now=0.0) for _ in range(200)]
        assert net.duplicated > 0
        assert sum(1 for p in plans if len(p) == 2) == net.duplicated

    def test_per_channel_rates_override_default(self):
        net = LossyNetwork(FixedDelayNetwork(0.0), SeededRng(3),
                           drop_probability=0.9)
        net.set_rates("a", "safe", drop_probability=0.0)
        for _ in range(100):
            assert net.transmit("a", "safe", now=0.0) != []
        assert net.dropped == 0

    def test_delay_is_inner_delay(self):
        inner = FixedDelayNetwork(0.25)
        net = LossyNetwork(inner, SeededRng(1))
        assert net.delay("a", "b", now=0.0) == 0.25
        assert net.raw_delay("a", "b") == 0.25


class TestPartitionNetwork:
    def test_rejects_bad_interval(self):
        net = PartitionNetwork(FixedDelayNetwork(0.0))
        with pytest.raises(SimulationError):
            net.partition(5.0, 5.0, senders=("a",))

    def test_rejects_empty_channel_set(self):
        net = PartitionNetwork(FixedDelayNetwork(0.0))
        with pytest.raises(SimulationError):
            net.partition(0.0, 1.0)

    def test_blackholes_during_interval_only(self):
        net = PartitionNetwork(FixedDelayNetwork(0.1))
        net.partition(10.0, 20.0, receivers=("R0",))
        assert net.transmit("router0", "R0", now=5.0) == [pytest.approx(0.1)]
        assert net.transmit("router0", "R0", now=10.0) == []
        assert net.transmit("router0", "R0", now=19.999) == []
        assert net.transmit("router0", "R0", now=20.0) == [pytest.approx(0.1)]
        assert net.blackholed == 2

    def test_scopes_to_named_endpoints(self):
        net = PartitionNetwork(FixedDelayNetwork(0.1))
        net.partition(0.0, 100.0, senders=("router0",),
                      channels=(("router1", "S1"),))
        assert net.transmit("router0", "R0", now=1.0) == []
        assert net.transmit("router1", "S1", now=1.0) == []
        assert net.transmit("router1", "R0", now=1.0) == [pytest.approx(0.1)]
