"""Tests for repro.simulation.random (seeded, forkable RNG)."""

from repro.simulation import SeededRng


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = SeededRng(42)
        b = SeededRng(42)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = SeededRng(1)
        b = SeededRng(2)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_string_seeds_supported(self):
        a = SeededRng("experiment-7")
        b = SeededRng("experiment-7")
        assert a.random() == b.random()


class TestForking:
    def test_fork_is_deterministic(self):
        a = SeededRng(42).fork("child")
        b = SeededRng(42).fork("child")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_forks_with_different_names_are_independent(self):
        root = SeededRng(42)
        a = root.fork("a")
        b = root.fork("b")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_fork_independent_of_parent_consumption(self):
        # Drawing from the parent must not shift the child's stream.
        parent1 = SeededRng(42)
        child_before = parent1.fork("c")
        seq_before = [child_before.random() for _ in range(5)]

        parent2 = SeededRng(42)
        for _ in range(100):
            parent2.random()
        child_after = parent2.fork("c")
        seq_after = [child_after.random() for _ in range(5)]
        assert seq_before == seq_after

    def test_nested_forks_are_stable(self):
        a = SeededRng(1).fork("x").fork("y")
        b = SeededRng(1).fork("x").fork("y")
        assert a.random() == b.random()


class TestDistributions:
    def test_randint_within_bounds(self):
        rng = SeededRng(7)
        for _ in range(200):
            assert 0 <= rng.randint(0, 9) <= 9

    def test_uniform_within_bounds(self):
        rng = SeededRng(7)
        for _ in range(200):
            assert 2.0 <= rng.uniform(2.0, 3.0) <= 3.0

    def test_choice_returns_member(self):
        rng = SeededRng(7)
        options = ["a", "b", "c"]
        for _ in range(50):
            assert rng.choice(options) in options

    def test_expovariate_positive(self):
        rng = SeededRng(7)
        for _ in range(100):
            assert rng.expovariate(10.0) >= 0.0

    def test_shuffle_is_permutation(self):
        rng = SeededRng(7)
        items = list(range(20))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_sample_has_unique_members(self):
        rng = SeededRng(7)
        drawn = rng.sample(range(100), 10)
        assert len(set(drawn)) == 10
