"""Tests for repro.simulation.network (delay models, FIFO guarantee)."""

import pytest

from repro.simulation import (
    FixedDelayNetwork,
    JitterNetwork,
    PerChannelDelayNetwork,
    SeededRng,
    ZeroDelayNetwork,
)


class TestZeroDelay:
    def test_zero_delay(self):
        net = ZeroDelayNetwork()
        assert net.delay("a", "b", now=1.0) == 0.0


class TestFixedDelay:
    def test_constant_latency(self):
        net = FixedDelayNetwork(0.25)
        assert net.delay("a", "b", now=0.0) == 0.25
        assert net.delay("a", "b", now=5.0) == 0.25

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            FixedDelayNetwork(-0.1)


class TestPairwiseFifo:
    def test_fifo_enforced_on_same_channel(self):
        """A later message never arrives before an earlier one on the
        same (sender, receiver) channel, even with adversarial jitter."""
        net = JitterNetwork(base=0.0, jitter=1.0, rng=SeededRng(3))
        last_arrival = 0.0
        now = 0.0
        for _ in range(500):
            arrival = now + net.delay("router0", "R0", now)
            assert arrival >= last_arrival
            last_arrival = arrival
            now += 0.001  # messages sent very close together

    def test_different_channels_can_reorder(self):
        """Cross-channel reordering must be possible (it is the disorder
        source the ordering protocol exists for)."""
        net = JitterNetwork(base=0.0, jitter=1.0, rng=SeededRng(3))
        swapped = False
        now = 0.0
        for _ in range(200):
            a = now + net.delay("router0", "R0", now)
            b = (now + 0.001) + net.delay("router0", "S0", now + 0.001)
            if b < a:
                swapped = True
                break
            now += 0.002
        assert swapped


class TestJitterBounds:
    def test_delay_within_base_plus_jitter(self):
        net = JitterNetwork(base=0.1, jitter=0.2, rng=SeededRng(5))
        for i in range(200):
            # fresh channel per message: no FIFO floor interference
            d = net.delay(f"s{i}", f"r{i}", now=0.0)
            assert 0.1 <= d <= 0.3 + 1e-12

    def test_rejects_negative_parameters(self):
        with pytest.raises(ValueError):
            JitterNetwork(base=-1.0, jitter=0.0, rng=SeededRng(1))


class TestPerChannelDelay:
    def test_default_applies_to_unknown_channels(self):
        net = PerChannelDelayNetwork(default=0.5)
        assert net.delay("x", "y", now=0.0) == 0.5

    def test_specific_channel_overrides_default(self):
        net = PerChannelDelayNetwork(default=0.1)
        net.set_delay("router0", "R0", 2.0)
        assert net.delay("router0", "R0", now=0.0) == 2.0
        assert net.delay("router0", "S0", now=0.0) == 0.1

    def test_constructs_exact_interleavings(self):
        """The adversarial tool: make channel A slow and B fast so a
        message sent later on B overtakes one sent earlier on A."""
        net = PerChannelDelayNetwork(default=0.0)
        net.set_delay("router0", "R0", 1.0)
        arrival_a = 0.0 + net.delay("router0", "R0", 0.0)
        arrival_b = 0.1 + net.delay("router0", "S0", 0.1)
        assert arrival_b < arrival_a
