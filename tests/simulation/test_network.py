"""Tests for repro.simulation.network (delay models, FIFO guarantee)."""

import pytest

from repro.errors import SimulationError
from repro.simulation import (
    FixedDelayNetwork,
    JitterNetwork,
    PerChannelDelayNetwork,
    ReorderNetwork,
    SeededRng,
    ZeroDelayNetwork,
)


class TestZeroDelay:
    def test_zero_delay(self):
        net = ZeroDelayNetwork()
        assert net.delay("a", "b", now=1.0) == 0.0


class TestFixedDelay:
    def test_constant_latency(self):
        net = FixedDelayNetwork(0.25)
        assert net.delay("a", "b", now=0.0) == 0.25
        assert net.delay("a", "b", now=5.0) == 0.25

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            FixedDelayNetwork(-0.1)


class TestPairwiseFifo:
    def test_fifo_enforced_on_same_channel(self):
        """A later message never arrives before an earlier one on the
        same (sender, receiver) channel, even with adversarial jitter."""
        net = JitterNetwork(base=0.0, jitter=1.0, rng=SeededRng(3))
        last_arrival = 0.0
        now = 0.0
        for _ in range(500):
            arrival = now + net.delay("router0", "R0", now)
            assert arrival >= last_arrival
            last_arrival = arrival
            now += 0.001  # messages sent very close together

    def test_different_channels_can_reorder(self):
        """Cross-channel reordering must be possible (it is the disorder
        source the ordering protocol exists for)."""
        net = JitterNetwork(base=0.0, jitter=1.0, rng=SeededRng(3))
        swapped = False
        now = 0.0
        for _ in range(200):
            a = now + net.delay("router0", "R0", now)
            b = (now + 0.001) + net.delay("router0", "S0", now + 0.001)
            if b < a:
                swapped = True
                break
            now += 0.002
        assert swapped


class TestJitterBounds:
    def test_delay_within_base_plus_jitter(self):
        net = JitterNetwork(base=0.1, jitter=0.2, rng=SeededRng(5))
        for i in range(200):
            # fresh channel per message: no FIFO floor interference
            d = net.delay(f"s{i}", f"r{i}", now=0.0)
            assert 0.1 <= d <= 0.3 + 1e-12

    def test_rejects_negative_parameters(self):
        with pytest.raises(ValueError):
            JitterNetwork(base=-1.0, jitter=0.0, rng=SeededRng(1))


class TestPerChannelDelay:
    def test_default_applies_to_unknown_channels(self):
        net = PerChannelDelayNetwork(default=0.5)
        assert net.delay("x", "y", now=0.0) == 0.5

    def test_specific_channel_overrides_default(self):
        net = PerChannelDelayNetwork(default=0.1)
        net.set_delay("router0", "R0", 2.0)
        assert net.delay("router0", "R0", now=0.0) == 2.0
        assert net.delay("router0", "S0", now=0.0) == 0.1

    def test_constructs_exact_interleavings(self):
        """The adversarial tool: make channel A slow and B fast so a
        message sent later on B overtakes one sent earlier on A."""
        net = PerChannelDelayNetwork(default=0.0)
        net.set_delay("router0", "R0", 1.0)
        arrival_a = 0.0 + net.delay("router0", "R0", 0.0)
        arrival_b = 0.1 + net.delay("router0", "S0", 0.1)
        assert arrival_b < arrival_a


def reorder_arrivals(net, n, *, gap=0.01, channel=("a", "b")):
    """Planned arrival time of ``n`` back-to-back sends on one channel."""
    arrivals = []
    for i in range(n):
        now = i * gap
        arrivals.append(now + net.delay(*channel, now))
    return arrivals


class TestReorderNetwork:
    def make(self, **kwargs):
        return ReorderNetwork(FixedDelayNetwork(0.1), SeededRng(7, "net"),
                              **kwargs)

    def test_breaks_wire_level_fifo_on_one_channel(self):
        net = self.make(reorder_probability=0.5)
        arrivals = reorder_arrivals(net, 200)
        inversions = sum(1 for prev, cur in zip(arrivals, arrivals[1:])
                         if cur < prev)
        assert inversions > 0
        assert net.reordered > 0

    def test_never_delivers_before_send(self):
        net = self.make(reorder_probability=1.0)
        for i, arrival in enumerate(reorder_arrivals(net, 200)):
            assert arrival >= i * 0.01

    def test_inversion_distance_is_bounded(self):
        """A message overtakes at most ``max_inflight`` predecessors."""
        max_inflight = 3
        net = self.make(reorder_probability=1.0, max_inflight=max_inflight)
        arrivals = reorder_arrivals(net, 300)
        for i, arrival in enumerate(arrivals):
            overtaken = sum(1 for earlier in arrivals[:i]
                            if earlier > arrival)
            assert overtaken <= max_inflight

    def test_deterministic_under_seed(self):
        a = reorder_arrivals(self.make(reorder_probability=0.5), 100)
        b = reorder_arrivals(self.make(reorder_probability=0.5), 100)
        assert a == b

    def test_zero_probability_is_transparent(self):
        net = self.make(reorder_probability=0.0)
        plain = FixedDelayNetwork(0.1)
        assert (reorder_arrivals(net, 50)
                == reorder_arrivals(plain, 50))
        assert net.reordered == 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(SimulationError):
            self.make(reorder_probability=1.5)
        with pytest.raises(SimulationError):
            self.make(max_inflight=0)
