"""Tests for repro.simulation.events."""

import pytest

from repro.errors import SimulationError
from repro.simulation import EventQueue


class TestEventQueue:
    def test_empty_queue_is_falsy(self):
        assert not EventQueue()

    def test_len_tracks_pushes(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2

    def test_pop_returns_earliest(self):
        queue = EventQueue()
        queue.push(2.0, lambda: None, label="late")
        queue.push(1.0, lambda: None, label="early")
        assert queue.pop().label == "early"

    def test_same_time_pops_in_insertion_order(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None, label="first")
        queue.push(1.0, lambda: None, label="second")
        assert queue.pop().label == "first"
        assert queue.pop().label == "second"

    def test_priority_breaks_time_ties(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None, priority=5, label="low-prio")
        queue.push(1.0, lambda: None, priority=1, label="high-prio")
        assert queue.pop().label == "high-prio"

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_rejects_negative_time(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, lambda: None)

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None, label="cancelled")
        queue.push(2.0, lambda: None, label="live")
        event.cancel()
        assert queue.pop().label == "live"

    def test_peek_time_ignores_cancelled(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(3.0, lambda: None)
        event.cancel()
        assert queue.peek_time() == 3.0

    def test_peek_time_empty_is_none(self):
        assert EventQueue().peek_time() is None
