"""Tests for repro.simulation.kernel (the DES event loop)."""

import pytest

from repro.errors import SimulationError
from repro.simulation import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(2.0, lambda: fired.append("b"))
        sim.schedule_at(1.0, lambda: fired.append("a"))
        sim.schedule_at(3.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_tracks_last_event(self):
        sim = Simulator()
        sim.schedule_at(4.5, lambda: None)
        sim.run()
        assert sim.now == 4.5

    def test_schedule_after_is_relative(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(1.0, lambda: sim.schedule_after(0.5, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [1.5]

    def test_cannot_schedule_in_the_past(self):
        sim = Simulator()
        sim.schedule_at(2.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_after(-0.1, lambda: None)

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append("outer")
            sim.schedule_after(1.0, lambda: fired.append("inner"))

        sim.schedule_at(1.0, outer)
        sim.run()
        assert fired == ["outer", "inner"]
        assert sim.now == 2.0


class TestRunUntil:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(5.0, lambda: fired.append(5))
        sim.run(until=3.0)
        assert fired == [1]
        assert sim.now == 3.0

    def test_run_until_then_resume(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(5.0, lambda: fired.append(5))
        sim.run(until=3.0)
        sim.run()
        assert fired == [1, 5]

    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_max_events_guards_runaway(self):
        sim = Simulator()

        def loop():
            sim.schedule_after(0.0, loop)

        sim.schedule_at(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)


class TestPeriodic:
    def test_periodic_fires_at_interval(self):
        sim = Simulator()
        times = []
        sim.schedule_periodic(1.0, lambda: times.append(sim.now))
        sim.run(until=3.5)
        assert times == [1.0, 2.0, 3.0]

    def test_periodic_start_after_overrides_first_delay(self):
        sim = Simulator()
        times = []
        sim.schedule_periodic(2.0, lambda: times.append(sim.now),
                              start_after=0.5)
        sim.run(until=5.0)
        assert times == [0.5, 2.5, 4.5]

    def test_periodic_cancel_stops_future_firings(self):
        sim = Simulator()
        times = []
        cancel = sim.schedule_periodic(1.0, lambda: times.append(sim.now))
        sim.schedule_at(2.5, cancel)
        sim.run(until=10.0)
        assert times == [1.0, 2.0]

    def test_non_positive_interval_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_periodic(0.0, lambda: None)


class TestIntrospection:
    def test_events_executed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule_at(float(i), lambda: None)
        sim.run()
        assert sim.events_executed == 5

    def test_trace_records_labels(self):
        sim = Simulator()
        sim.enable_trace()
        sim.schedule_at(1.0, lambda: None, label="one")
        sim.schedule_at(2.0, lambda: None, label="two")
        sim.run()
        assert sim.trace == [(1.0, "one"), (2.0, "two")]

    def test_trace_without_enable_raises(self):
        with pytest.raises(SimulationError):
            _ = Simulator().trace

    def test_step_returns_false_when_idle(self):
        assert Simulator().step() is False

    def test_not_reentrant(self):
        sim = Simulator()

        def reenter():
            sim.run()

        sim.schedule_at(1.0, reenter)
        with pytest.raises(SimulationError):
            sim.run()
