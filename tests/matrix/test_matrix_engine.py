"""Tests for repro.matrix.engine (grid routing, reshape, baselines)."""

import pytest

from repro import (
    BandJoinPredicate,
    EquiJoinPredicate,
    TimeWindow,
    merge_by_time,
    stream_from_pairs,
)
from repro.errors import ConfigurationError, ScalingError
from repro.harness import check_exactly_once, reference_join
from repro.matrix import MatrixConfig, MatrixEngine


def streams(n=40, keys=5):
    r = stream_from_pairs("R", [(i * 0.3, {"k": i % keys, "v": float(i)})
                                for i in range(n)])
    s = stream_from_pairs("S", [(i * 0.35, {"k": i % keys, "v": float(i)})
                                for i in range(n)])
    return r, s


def run(engine, r, s):
    for t in merge_by_time(r, s):
        engine.ingest(t)
    engine.finish()


def make_config(**overrides):
    defaults = dict(window=TimeWindow(seconds=10.0), rows=2, cols=3,
                    archive_period=2.0, punctuation_interval=0.5)
    defaults.update(overrides)
    return MatrixConfig(**defaults)


class TestConfig:
    def test_rejects_empty_grid(self):
        with pytest.raises(ConfigurationError):
            make_config(rows=0)

    def test_rejects_unknown_partitioning(self):
        with pytest.raises(ConfigurationError):
            make_config(partitioning="zigzag")


class TestRouting:
    def test_r_replicated_along_one_row(self):
        engine = MatrixEngine(make_config(rows=2, cols=3),
                              EquiJoinPredicate("k", "k"))
        t = streams(n=1)[0][0]
        cells = engine.target_cells(t)
        assert len(cells) == 3
        assert len({cell.row for cell in cells}) == 1

    def test_s_replicated_along_one_column(self):
        engine = MatrixEngine(make_config(rows=2, cols=3),
                              EquiJoinPredicate("k", "k"))
        t = streams(n=1)[1][0]
        cells = engine.target_cells(t)
        assert len(cells) == 2
        assert len({cell.col for cell in cells}) == 1

    def test_fanout_counts(self):
        """Per-tuple message fan-out is cols for R and rows for S (√p
        for a square grid) — the §2.4.1 comparison quantity."""
        engine = MatrixEngine(make_config(rows=3, cols=3),
                              EquiJoinPredicate("k", "k"))
        r, s = streams(n=10)
        run(engine, r, s)
        ingested = len(r) + len(s)
        per_tuple = engine.network_stats.store_messages / ingested
        assert per_tuple == pytest.approx(3.0)

    def test_hash_partitioning_collocates_keys(self):
        engine = MatrixEngine(make_config(partitioning="hash"),
                              EquiJoinPredicate("k", "k"))
        r, _ = streams(n=10, keys=1)  # all same key
        rows = {engine.target_cells(t)[0].row for t in r}
        assert len(rows) == 1


class TestCorrectness:
    @pytest.mark.parametrize("partitioning,pred", [
        ("hash", EquiJoinPredicate("k", "k")),
        ("random", EquiJoinPredicate("k", "k")),
        ("random", BandJoinPredicate("v", "v", 3.0)),
    ])
    def test_exactly_once(self, partitioning, pred):
        engine = MatrixEngine(make_config(partitioning=partitioning), pred)
        r, s = streams()
        run(engine, r, s)
        expected = reference_join(r, s, pred, TimeWindow(seconds=10.0))
        assert check_exactly_once(engine.results, expected).ok

    def test_replication_inflates_storage(self):
        """Matrix stores each tuple rows-or-cols times; the biclique
        model's memory advantage comes exactly from this factor."""
        engine = MatrixEngine(make_config(rows=3, cols=3),
                              EquiJoinPredicate("k", "k"))
        r, s = streams(n=10)
        run(engine, r, s)
        unique = len(r) + len(s)
        assert engine.total_stored_tuples() == pytest.approx(3 * unique)


class TestReshape:
    def test_reshape_preserves_exactly_once(self):
        pred = EquiJoinPredicate("k", "k")
        engine = MatrixEngine(make_config(rows=2, cols=2, partitioning="hash"),
                              pred)
        r, s = streams(n=60)
        arrivals = list(merge_by_time(r, s))
        half = len(arrivals) // 2
        for t in arrivals[:half]:
            engine.ingest(t)
        engine.reshape(3, 3, now=arrivals[half].ts)
        for t in arrivals[half:]:
            engine.ingest(t)
        engine.finish()
        expected = reference_join(r, s, pred, TimeWindow(seconds=10.0))
        assert check_exactly_once(engine.results, expected).ok

    def test_reshape_migrates_state(self):
        engine = MatrixEngine(make_config(rows=2, cols=2),
                              EquiJoinPredicate("k", "k"))
        r, s = streams(n=30)
        for t in merge_by_time(r, s):
            engine.ingest(t)
        engine.reshape(3, 3)
        assert engine.migration.reshapes == 1
        assert engine.migration.tuples_migrated > 0
        assert engine.migration.bytes_migrated > 0

    def test_reshape_rejects_empty_grid(self):
        engine = MatrixEngine(make_config(), EquiJoinPredicate("k", "k"))
        with pytest.raises(ScalingError):
            engine.reshape(0, 2)

    def test_grid_geometry_after_reshape(self):
        engine = MatrixEngine(make_config(rows=2, cols=2),
                              EquiJoinPredicate("k", "k"))
        engine.reshape(4, 3)
        assert engine.rows == 4 and engine.cols == 3
        assert len(engine.all_cells()) == 12
