"""Tests for repro.matrix.cell."""

from repro import EquiJoinPredicate, StreamTuple, TimeWindow
from repro.core.ordering import KIND_PUNCTUATION, KIND_STORE, Envelope
from repro.matrix import MatrixCell


def r_tuple(ts, key, seq=0):
    return StreamTuple("R", ts, {"k": key}, seq=seq)


def s_tuple(ts, key, seq=0):
    return StreamTuple("S", ts, {"k": key}, seq=seq)


def make_cell(ordered=False, window=10.0):
    results = []
    cell = MatrixCell(0, 0, EquiJoinPredicate("k", "k"),
                      TimeWindow(seconds=window), archive_period=2.0,
                      result_sink=results.append, ordered=ordered)
    cell.register_router("router0")
    return cell, results


def env(kind, t, counter):
    return Envelope(kind=kind, router_id="router0", counter=counter, tuple=t)


class TestProbeThenStore:
    def test_pair_produced_once_at_later_arrival(self):
        cell, results = make_cell()
        cell.on_envelope(env(KIND_STORE, r_tuple(0.0, 7), 0))
        cell.on_envelope(env(KIND_STORE, s_tuple(1.0, 7, seq=1), 1))
        assert len(results) == 1

    def test_both_relations_stored(self):
        cell, _ = make_cell()
        cell.on_envelope(env(KIND_STORE, r_tuple(0.0, 7), 0))
        cell.on_envelope(env(KIND_STORE, s_tuple(1.0, 8, seq=1), 1))
        assert cell.stored_tuples == 2
        assert len(cell.r_index) == 1
        assert len(cell.s_index) == 1

    def test_no_self_join_within_relation(self):
        cell, results = make_cell()
        cell.on_envelope(env(KIND_STORE, r_tuple(0.0, 7, seq=0), 0))
        cell.on_envelope(env(KIND_STORE, r_tuple(1.0, 7, seq=1), 1))
        assert results == []

    def test_window_respected(self):
        cell, results = make_cell(window=5.0)
        cell.on_envelope(env(KIND_STORE, r_tuple(0.0, 7), 0))
        cell.on_envelope(env(KIND_STORE, s_tuple(50.0, 7, seq=1), 1))
        assert results == []

    def test_result_operands_normalised(self):
        cell, results = make_cell()
        cell.on_envelope(env(KIND_STORE, s_tuple(0.0, 7), 0))
        cell.on_envelope(env(KIND_STORE, r_tuple(1.0, 7, seq=1), 1))
        assert results[0].r.relation == "R"
        assert results[0].s.relation == "S"

    def test_live_bytes_cover_both_indexes(self):
        cell, _ = make_cell()
        cell.on_envelope(env(KIND_STORE, r_tuple(0.0, 7), 0))
        bytes_one = cell.live_bytes
        cell.on_envelope(env(KIND_STORE, s_tuple(1.0, 8, seq=1), 1))
        assert cell.live_bytes > bytes_one


class TestOrderedMode:
    def test_buffered_until_punctuation(self):
        cell, results = make_cell(ordered=True)
        cell.on_envelope(env(KIND_STORE, r_tuple(0.0, 7), 0))
        cell.on_envelope(env(KIND_STORE, s_tuple(1.0, 7, seq=1), 1))
        assert results == []
        cell.on_envelope(Envelope(kind=KIND_PUNCTUATION, router_id="router0",
                                  counter=5))
        assert len(results) == 1

    def test_flush_drains(self):
        cell, results = make_cell(ordered=True)
        cell.on_envelope(env(KIND_STORE, r_tuple(0.0, 7), 0))
        cell.on_envelope(env(KIND_STORE, s_tuple(1.0, 7, seq=1), 1))
        cell.flush()
        assert len(results) == 1


class TestStoredState:
    def test_export_for_reshape(self):
        cell, _ = make_cell()
        cell.on_envelope(env(KIND_STORE, r_tuple(0.0, 1), 0))
        cell.on_envelope(env(KIND_STORE, s_tuple(1.0, 2, seq=1), 1))
        r_state, s_state = cell.stored_state()
        assert [t.ident for t in r_state] == [("R", 0)]
        assert [t.ident for t in s_state] == [("S", 1)]
