"""Tests for repro.matrix.distributed (matrix over the broker)."""

import pytest

from repro import (
    BandJoinPredicate,
    EquiJoinPredicate,
    TimeWindow,
    merge_by_time,
    stream_from_pairs,
)
from repro.broker import Broker
from repro.errors import ConfigurationError
from repro.harness import check_exactly_once, reference_join
from repro.matrix import MatrixConfig
from repro.matrix.distributed import DistributedMatrixEngine
from repro.simulation import JitterNetwork, SeededRng, Simulator

WINDOW = TimeWindow(seconds=10.0)


def streams(n=40, keys=5):
    r = stream_from_pairs("R", [(i * 0.3, {"k": i % keys, "v": float(i)})
                                for i in range(n)])
    s = stream_from_pairs("S", [(i * 0.35, {"k": i % keys, "v": float(i)})
                                for i in range(n)])
    return r, s


def make_config(**overrides):
    defaults = dict(window=WINDOW, rows=2, cols=3, archive_period=2.0,
                    punctuation_interval=0.5, expiry_slack=2.0)
    defaults.update(overrides)
    return MatrixConfig(**defaults)


def run_sync(engine, r, s):
    for t in merge_by_time(r, s):
        engine.ingest(t)
    engine.finish()


class TestSynchronousBroker:
    @pytest.mark.parametrize("partitioning,pred", [
        ("hash", EquiJoinPredicate("k", "k")),
        ("random", BandJoinPredicate("v", "v", 3.0)),
    ])
    def test_exactly_once(self, partitioning, pred):
        engine = DistributedMatrixEngine(
            make_config(partitioning=partitioning), pred)
        r, s = streams()
        run_sync(engine, r, s)
        expected = reference_join(r, s, pred, WINDOW)
        assert check_exactly_once(engine.results, expected).ok

    def test_multiple_routers_compete_and_stay_exact(self):
        pred = EquiJoinPredicate("k", "k")
        engine = DistributedMatrixEngine(
            make_config(partitioning="hash"), pred, routers=3)
        r, s = streams()
        run_sync(engine, r, s)
        shares = [router.tuples_ingested for router in engine.routers]
        assert all(share > 0 for share in shares)
        expected = reference_join(r, s, pred, WINDOW)
        assert check_exactly_once(engine.results, expected).ok

    def test_fanout_matches_grid(self):
        pred = EquiJoinPredicate("k", "k")
        engine = DistributedMatrixEngine(make_config(rows=2, cols=3), pred)
        r, s = streams(n=10)
        run_sync(engine, r, s)
        # R tuples fan to 3 cells (cols), S tuples to 2 (rows)
        assert engine.network_stats.store_messages == 10 * 3 + 10 * 2

    def test_rejects_zero_routers(self):
        with pytest.raises(ConfigurationError):
            DistributedMatrixEngine(make_config(),
                                    EquiJoinPredicate("k", "k"), routers=0)

    def test_queue_per_cell_exists(self):
        engine = DistributedMatrixEngine(make_config(rows=2, cols=2),
                                         EquiJoinPredicate("k", "k"))
        names = engine.broker.queue_names()
        assert any("cell.1.1.inbox" in n for n in names)

    def test_reshape_exactly_once_and_rewires_queues(self):
        pred = EquiJoinPredicate("k", "k")
        engine = DistributedMatrixEngine(
            make_config(rows=2, cols=2, partitioning="hash"), pred)
        r, s = streams(n=60)
        arrivals = list(merge_by_time(r, s))
        half = len(arrivals) // 2
        for t in arrivals[:half]:
            engine.ingest(t)
        engine.reshape(3, 3)
        for t in arrivals[half:]:
            engine.ingest(t)
        engine.finish()
        expected = reference_join(r, s, pred, WINDOW)
        assert check_exactly_once(engine.results, expected).ok
        assert engine.migration.reshapes == 1
        assert engine.migration.bytes_migrated > 0
        assert any("cell.2.2.inbox" in n
                   for n in engine.broker.queue_names())


class TestSimulatedNetwork:
    def _run(self, *, ordered: bool, routers: int = 2):
        sim = Simulator()
        network = JitterNetwork(base=0.005, jitter=0.4,
                                rng=SeededRng(17, "matrix-net"))
        broker = Broker(sim, network)
        pred = EquiJoinPredicate("k", "k")
        engine = DistributedMatrixEngine(
            make_config(partitioning="hash", ordered=ordered,
                        punctuation_interval=0.2),
            pred, broker=broker, routers=routers)
        r, s = streams(n=80, keys=8)
        for t in merge_by_time(r, s):
            sim.schedule_at(t.ts, lambda t=t: engine.ingest(t))
        sim.run()
        engine.punctuate_all()
        sim.run()
        for cell in engine.all_cells():
            cell.flush()
        expected = reference_join(r, s, pred, WINDOW)
        return check_exactly_once(engine.results, expected)

    def test_ordered_matrix_exact_under_jitter(self):
        """The ordering protocol also runs cleanly on the matrix."""
        check = self._run(ordered=True)
        assert check.ok, check

    def test_unordered_matrix_is_structurally_order_insensitive(self):
        """A structural difference from the biclique: every matrix pair
        meets in exactly ONE cell, and probe-then-store means whichever
        tuple arrives second finds the first — so for 2-way joins the
        matrix produces exactly-once under arbitrary cross-channel
        disorder even with the protocol off (only Theorem-1 expiry
        needs a disorder margin).  The biclique, by contrast, can
        produce each pair at two places and genuinely needs the
        protocol (see tests/integration/test_ordering_protocol.py)."""
        check = self._run(ordered=False)
        assert check.ok, check
        assert check.duplicates == 0  # impossible by construction

    def test_single_router_matrix_immune_unordered(self):
        check = self._run(ordered=False, routers=1)
        assert check.ok, check


class TestReshapeGuards:
    def test_reshape_refused_on_simulated_broker(self):
        """In-flight scheduled deliveries make a live reshape unsafe —
        the stop-the-world cost of matrix scaling, surfaced explicitly."""
        from repro.errors import ScalingError
        from repro.simulation import FixedDelayNetwork

        sim = Simulator()
        broker = Broker(sim, FixedDelayNetwork(0.01))
        engine = DistributedMatrixEngine(
            make_config(partitioning="hash"), EquiJoinPredicate("k", "k"),
            broker=broker)
        with pytest.raises(ScalingError):
            engine.reshape(3, 3)
