"""Tests for repro.obs.trace: the causal tuple tracer."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import NOOP_TRACER, SPAN_KINDS, NoopTracer, Tracer
from repro.obs.trace import SPAN_EMIT, SPAN_PROBE, SPAN_ROUTE, SPAN_STORE


class TestNoopTracer:
    def test_disabled_and_silent(self):
        assert NOOP_TRACER.enabled is False
        NOOP_TRACER.record(SPAN_ROUTE, 1.0, "router0",
                           tuple_id=("R", 0))  # no-op, no error

    def test_tracer_is_a_noop_tracer(self):
        # Call sites type against NoopTracer; a real Tracer must be
        # substitutable.
        assert isinstance(Tracer(), NoopTracer)
        assert Tracer().enabled is True


class TestTracerRecording:
    def test_records_spans_in_order(self):
        tracer = Tracer()
        tracer.record(SPAN_ROUTE, 1.0, "router0", tuple_id=("R", 0),
                      ref_time=0.9)
        tracer.record(SPAN_STORE, 1.5, "R0", tuple_id=("R", 0))
        assert len(tracer) == 2
        spans = tracer.spans_of(("R", 0))
        assert [s.kind for s in spans] == [SPAN_ROUTE, SPAN_STORE]
        assert spans[0].ref_time == 0.9

    def test_counts_by_kind_and_emits(self):
        tracer = Tracer()
        tracer.record(SPAN_PROBE, 1.0, "S0", tuple_id=("R", 1))
        tracer.record(SPAN_EMIT, 1.0, "S0", tuple_id=("R", 1),
                      partner=("S", 0), ref_time=0.5)
        assert tracer.counts_by_kind() == {SPAN_PROBE: 1, SPAN_EMIT: 1}
        (emit,) = tracer.emits()
        assert emit.partner == ("S", 0)

    def test_span_kinds_cover_the_taxonomy(self):
        assert len(SPAN_KINDS) == 11
        assert len(set(SPAN_KINDS)) == 11


class TestValidation:
    @pytest.mark.parametrize("rate", [0.0, -0.1, 1.5])
    def test_bad_sample_rate_rejected(self, rate):
        with pytest.raises(ConfigurationError):
            Tracer(sample_rate=rate)

    def test_bad_max_spans_rejected(self):
        with pytest.raises(ConfigurationError):
            Tracer(max_spans=0)


class TestSampling:
    def test_full_rate_samples_everything(self):
        tracer = Tracer(sample_rate=1.0)
        assert all(tracer.sampled(("R", i)) for i in range(100))

    def test_sampling_is_deterministic_across_instances(self):
        a = Tracer(sample_rate=0.3)
        b = Tracer(sample_rate=0.3)
        ids = [("R", i) for i in range(500)] + [("S", i) for i in range(500)]
        assert [a.sampled(i) for i in ids] == [b.sampled(i) for i in ids]

    def test_sampling_rate_is_roughly_honoured(self):
        tracer = Tracer(sample_rate=0.25)
        kept = sum(tracer.sampled(("R", i)) for i in range(4000))
        assert 0.15 < kept / 4000 < 0.35

    def test_unsampled_tuples_record_nothing(self):
        tracer = Tracer(sample_rate=0.25)
        dropped = next(("R", i) for i in range(1000)
                       if not tracer.sampled(("R", i)))
        tracer.record(SPAN_ROUTE, 1.0, "router0", tuple_id=dropped)
        assert len(tracer) == 0

    def test_untargeted_events_bypass_sampling(self):
        tracer = Tracer(sample_rate=0.0001)
        tracer.record("scale", 5.0, "R1", detail="scale_out:R")
        assert len(tracer) == 1


class TestSpanCap:
    def test_cap_bounds_memory_and_counts_drops(self):
        tracer = Tracer(max_spans=3)
        for i in range(5):
            tracer.record(SPAN_ROUTE, float(i), "router0", tuple_id=("R", i))
        assert len(tracer) == 3
        assert tracer.dropped_spans == 2


class TestJsonl:
    def test_lines_are_valid_minimal_json(self, tmp_path):
        tracer = Tracer()
        tracer.record(SPAN_ROUTE, 1.0, "router0", tuple_id=("R", 0),
                      ref_time=0.5)
        tracer.record(SPAN_EMIT, 2.0, "S0", tuple_id=("R", 0),
                      partner=("S", 3), ref_time=1.0)
        lines = list(tracer.iter_jsonl())
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {"kind": "route", "time": 1.0, "actor": "router0",
                         "tuple_id": ["R", 0], "ref_time": 0.5}

    def test_write_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        tracer.record(SPAN_STORE, 1.0, "R0", tuple_id=("R", 7))
        path = tmp_path / "trace.jsonl"
        assert tracer.write_jsonl(path) == 1
        lines = path.read_text().splitlines()
        assert [json.loads(l) for l in lines] == [
            {"kind": "store", "time": 1.0, "actor": "R0",
             "tuple_id": ["R", 7]}]

    def test_identical_recordings_are_byte_identical(self, tmp_path):
        def make():
            tracer = Tracer()
            for i in range(10):
                tracer.record(SPAN_ROUTE, i * 0.1, "router0",
                              tuple_id=("R", i), ref_time=i * 0.1)
            return tracer

        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        make().write_jsonl(a)
        make().write_jsonl(b)
        assert a.read_bytes() == b.read_bytes()
