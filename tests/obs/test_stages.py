"""Tests for repro.obs.stages: breakdown math and chain checking."""

import pytest

from repro.obs import (
    STAGE_NAMES,
    StageBreakdown,
    Tracer,
    check_causal_chains,
    compute_stage_breakdown,
)
from repro.obs.trace import (
    SPAN_DELIVER,
    SPAN_EMIT,
    SPAN_PROBE,
    SPAN_REPLAY,
    SPAN_ROUTE,
    SPAN_STORE,
)


class _FakeResult:
    def __init__(self, r_seq, s_seq):
        self.key = (("R", r_seq), ("S", s_seq))


def _trace_one_result(tracer, *, r_seq=0, s_seq=0, unit="S0",
                      route_at=1.0, deliver_at=1.2, emit_at=1.5,
                      source_ts=0.9):
    """Record the full two-sided chain of one emitted R⋈S result.

    The R tuple probes (the later arrival); the S tuple is stored.
    """
    r_id, s_id = ("R", r_seq), ("S", s_seq)
    tracer.record(SPAN_ROUTE, route_at - 0.5, "router0", tuple_id=s_id,
                  ref_time=source_ts - 0.5)
    tracer.record(SPAN_DELIVER, route_at - 0.3, unit, tuple_id=s_id,
                  detail="store")
    tracer.record(SPAN_STORE, route_at - 0.3, unit, tuple_id=s_id)
    tracer.record(SPAN_ROUTE, route_at, "router0", tuple_id=r_id,
                  ref_time=source_ts)
    tracer.record(SPAN_DELIVER, deliver_at, unit, tuple_id=r_id,
                  detail="join")
    tracer.record(SPAN_PROBE, emit_at, unit, tuple_id=r_id)
    tracer.record(SPAN_EMIT, emit_at, unit, tuple_id=r_id, partner=s_id,
                  ref_time=source_ts)
    return _FakeResult(r_seq, s_seq)


class TestComputeStageBreakdown:
    def test_single_chain_decomposes_exactly(self):
        tracer = Tracer()
        _trace_one_result(tracer, route_at=1.0, deliver_at=1.2,
                          emit_at=1.5, source_ts=0.9)
        bd = compute_stage_breakdown(tracer)
        assert bd.samples == 1
        assert bd.skipped == 0
        assert bd.stages["route"].mean == pytest.approx(0.1)    # 1.0 - 0.9
        assert bd.stages["transit"].mean == pytest.approx(0.2)  # 1.2 - 1.0
        assert bd.stages["process"].mean == pytest.approx(0.3)  # 1.5 - 1.2
        assert bd.end_to_end.mean == pytest.approx(0.6)         # 1.5 - 0.9
        assert bd.reconciles(tolerance=1e-6)

    def test_stage_sum_tiles_end_to_end(self):
        tracer = Tracer()
        for i in range(20):
            _trace_one_result(tracer, r_seq=i, s_seq=i,
                              route_at=1.0 + i, deliver_at=1.3 + i,
                              emit_at=1.9 + i, source_ts=0.8 + i)
        bd = compute_stage_breakdown(tracer)
        assert bd.samples == 20
        assert abs(bd.stage_sum_mean() - bd.end_to_end.mean) < 1e-9

    def test_incomplete_chain_is_skipped_not_guessed(self):
        tracer = Tracer()
        # An emit with no route span for its probing tuple.
        tracer.record(SPAN_EMIT, 2.0, "S0", tuple_id=("R", 0),
                      partner=("S", 0), ref_time=1.0)
        bd = compute_stage_breakdown(tracer)
        assert bd.samples == 0
        assert bd.skipped == 1
        assert bd.reconciles()  # vacuously

    def test_rows_and_render(self):
        tracer = Tracer()
        _trace_one_result(tracer)
        bd = compute_stage_breakdown(tracer)
        rows = bd.rows()
        assert [row[0] for row in rows] == list(STAGE_NAMES) + ["end-to-end"]
        text = bd.render()
        assert "per-stage latency breakdown" in text
        for name in STAGE_NAMES:
            assert name in text

    def test_empty_tracer(self):
        bd = compute_stage_breakdown(Tracer())
        assert isinstance(bd, StageBreakdown)
        assert bd.samples == 0
        assert bd.reconciles()


class TestCheckCausalChains:
    def test_complete_chain_is_ok(self):
        tracer = Tracer()
        result = _trace_one_result(tracer)
        check = check_causal_chains(tracer, [result])
        assert check.ok, str(check)
        assert check.results == 1

    def test_missing_emit_detected(self):
        tracer = Tracer()
        check = check_causal_chains(tracer, [_FakeResult(0, 0)])
        assert not check.ok
        assert check.missing_emit == [(("R", 0), ("S", 0))]

    def test_double_emit_detected(self):
        tracer = Tracer()
        result = _trace_one_result(tracer)
        tracer.record(SPAN_EMIT, 9.0, "S0", tuple_id=("R", 0),
                      partner=("S", 0), ref_time=1.0)
        check = check_causal_chains(tracer, [result])
        assert not check.ok
        assert check.double_emit == [result.key]

    def test_broken_partner_chain_detected(self):
        tracer = Tracer()
        r_id, s_id = ("R", 0), ("S", 0)
        # Probe side complete, but the stored partner has no
        # store/replay span at the emitting unit.
        tracer.record(SPAN_ROUTE, 1.0, "router0", tuple_id=r_id)
        tracer.record(SPAN_ROUTE, 0.5, "router0", tuple_id=s_id)
        tracer.record(SPAN_PROBE, 1.5, "S0", tuple_id=r_id)
        tracer.record(SPAN_EMIT, 1.5, "S0", tuple_id=r_id, partner=s_id,
                      ref_time=1.0)
        check = check_causal_chains(tracer, [_FakeResult(0, 0)])
        assert not check.ok
        assert check.broken_chains == [(r_id, s_id)]

    def test_replay_counts_as_partner_history(self):
        tracer = Tracer()
        r_id, s_id = ("R", 0), ("S", 0)
        tracer.record(SPAN_ROUTE, 0.5, "router0", tuple_id=s_id)
        # The stored side was rebuilt into the replacement unit from
        # the replay log, not stored by the original incarnation.
        tracer.record(SPAN_REPLAY, 2.0, "S0", tuple_id=s_id)
        tracer.record(SPAN_ROUTE, 2.5, "router0", tuple_id=r_id)
        tracer.record(SPAN_PROBE, 3.0, "S0", tuple_id=r_id)
        tracer.record(SPAN_EMIT, 3.0, "S0", tuple_id=r_id, partner=s_id,
                      ref_time=2.5)
        check = check_causal_chains(tracer, [_FakeResult(0, 0)])
        assert check.ok, str(check)

    def test_orphan_data_span_detected(self):
        tracer = Tracer()
        # A store span for a tuple nobody ever routed.
        tracer.record(SPAN_STORE, 1.0, "R0", tuple_id=("R", 42))
        check = check_causal_chains(tracer, [])
        assert not check.ok
        assert check.orphan_spans == 1

    def test_entry_delivers_are_not_orphans(self):
        tracer = Tracer()
        # Entry-queue delivery happens *before* routing; it must not
        # need a route ancestor.
        tracer.record(SPAN_DELIVER, 0.5, "router0", tuple_id=("R", 0),
                      detail="entry")
        check = check_causal_chains(tracer, [])
        assert check.ok, str(check)
