"""Tests for repro.obs.registry: the unified metrics registry."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_and_negative_rejected(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ConfigurationError):
            c.inc(-1)

    def test_set_total_is_monotone(self):
        c = Counter()
        c.set_total(10)
        c.set_total(10)  # repeat export is a no-op
        c.set_total(12)
        assert c.value == 12
        with pytest.raises(ConfigurationError):
            c.set_total(5)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(3)
        g.inc(2)
        g.dec()
        assert g.value == 4


class TestHistogram:
    def test_count_sum_quantiles(self):
        h = Histogram()
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        assert h.count == 4
        assert h.sum == 10.0
        assert h.quantile(0.5) == 2.5
        summary = h.summary()
        assert summary.count == 4
        assert summary.max == 4.0

    def test_empty_is_zero(self):
        h = Histogram()
        assert h.quantile(0.99) == 0.0
        assert h.summary().count == 0


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")
        assert (reg.gauge("g", labels={"x": "1"})
                is not reg.gauge("g", labels={"x": "2"}))

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a_total")
        with pytest.raises(ConfigurationError):
            reg.gauge("a_total")

    def test_value_and_total_across_labels(self):
        reg = MetricsRegistry()
        reg.counter("m_total", labels={"unit": "R0"}).inc(3)
        reg.counter("m_total", labels={"unit": "R1"}).inc(4)
        assert reg.value("m_total", {"unit": "R0"}) == 3
        assert reg.value("m_total", {"unit": "zzz"}) == 0
        assert reg.total("m_total") == 7

    def test_collectors_run_in_order(self):
        reg = MetricsRegistry()
        calls = []
        reg.register_collector(lambda: calls.append("a"))
        reg.register_collector(lambda: calls.append("b"))
        reg.collect()
        assert calls == ["a", "b"]

    def test_snapshot_is_flat_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b_total").inc(1)
        reg.gauge("a", labels={"pod": "x"}).set(2)
        reg.histogram("h").observe(5.0)
        snap = reg.snapshot()
        # Deterministic order: metrics sorted by (name, labels), each
        # histogram expanding to its _count/_sum/quantile scalars.
        assert list(snap) == ['a{pod="x"}', "b_total", "h_count", "h_sum",
                              "h_q0.5", "h_q0.95", "h_q0.99"]
        assert snap['a{pod="x"}'] == 2
        assert snap["b_total"] == 1
        assert snap["h_count"] == 1
        assert snap["h_sum"] == 5.0
        assert snap["h_q0.5"] == 5.0

    def test_expose_text_prometheus_shape(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", "Things counted.",
                    {"unit": "R0"}).inc(2)
        reg.histogram("repro_lat", "Latency.").observe(0.5)
        text = reg.expose_text()
        assert "# HELP repro_x_total Things counted." in text
        assert "# TYPE repro_x_total counter" in text
        assert 'repro_x_total{unit="R0"} 2' in text
        assert "# TYPE repro_lat summary" in text
        assert 'repro_lat{quantile="0.5"} 0.5' in text
        assert "repro_lat_count 1" in text
        assert text.endswith("\n")

    def test_expose_text_empty_registry(self):
        assert MetricsRegistry().expose_text() == ""


class TestLabelEscaping:
    """Prometheus label values must escape ``\\``, ``"`` and newlines.

    Regression: un-escaped values used to corrupt the exposition line
    (a quote ends the value early; a newline splits the sample)."""

    def test_backslash_quote_and_newline_escaped(self):
        reg = MetricsRegistry()
        reg.counter("m_total", labels={"p": 'a"b'}).inc(1)
        reg.counter("m_total", labels={"p": "c\\d"}).inc(2)
        reg.counter("m_total", labels={"p": "e\nf"}).inc(3)
        text = reg.expose_text()
        assert 'm_total{p="a\\"b"} 1' in text
        assert 'm_total{p="c\\\\d"} 2' in text
        assert 'm_total{p="e\\nf"} 3' in text
        # The raw newline must never survive into the exposition: all
        # three series render as exactly three single-line samples.
        samples = [line for line in text.splitlines()
                   if line.startswith("m_total{")]
        assert len(samples) == 3

    def test_backslash_escaped_before_quote(self):
        # Order matters: escaping the quote first would double-escape.
        reg = MetricsRegistry()
        reg.gauge("g", labels={"p": '\\"'}).set(1)
        assert 'g{p="\\\\\\""} 1' in reg.expose_text()

    def test_snapshot_keys_carry_escapes(self):
        reg = MetricsRegistry()
        reg.counter("m_total", labels={"p": 'x"y'}).inc(1)
        assert list(reg.snapshot()) == ['m_total{p="x\\"y"}']


class TestDumpAbsorb:
    """The cross-process merge API the parallel runtime backhauls with."""

    def test_round_trip_preserves_snapshot(self):
        src = MetricsRegistry()
        src.counter("c_total", "Counts.", {"unit": "R0"}).inc(5)
        src.gauge("g", "Level.").set(7)
        src.histogram("h", "Dist.").observe(1.0)
        src.histogram("h", "Dist.").observe(3.0)
        dst = MetricsRegistry()
        dst.absorb(src.dump())
        assert dst.snapshot() == src.snapshot()
        assert dst.expose_text() == src.expose_text()

    def test_absorb_merges_additively(self):
        dst = MetricsRegistry()
        dst.counter("c_total", labels={"w": "0"}).inc(2)
        dst.histogram("h").observe(1.0)
        other = MetricsRegistry()
        other.counter("c_total", labels={"w": "0"}).inc(3)
        other.counter("c_total", labels={"w": "1"}).inc(4)
        other.histogram("h").observe(9.0)
        dst.absorb(other.dump())
        assert dst.value("c_total", {"w": "0"}) == 5
        assert dst.value("c_total", {"w": "1"}) == 4
        # Histograms concatenate observations (quantiles over the
        # union), not averaged summaries.
        assert sorted(dst.histogram("h").values) == [1.0, 9.0]

    def test_dump_entries_are_plain_data(self):
        import pickle

        reg = MetricsRegistry()
        reg.counter("c_total", "Help.", {"a": "b"}).inc(1)
        reg.histogram("h").observe(2.0)
        entries = reg.dump()
        assert entries == pickle.loads(pickle.dumps(entries))
