"""Gap-filling broker tests: deletion errors, simulated partitions,
message identity/size accounting."""

import pytest

from repro.broker import (
    MESSAGE_OVERHEAD_BYTES,
    Broker,
    ChannelLayer,
    Message,
)
from repro.core.ordering import Envelope, KIND_STORE
from repro.core.tuples import StreamTuple
from repro.errors import UnknownQueueError
from repro.simulation import FixedDelayNetwork, Simulator


class TestBrokerErrors:
    def test_delete_unknown_queue(self):
        with pytest.raises(UnknownQueueError):
            Broker().delete_queue("ghost")

    def test_consume_unknown_queue(self):
        with pytest.raises(UnknownQueueError):
            Broker().consume("ghost", "c", lambda d: None)

    def test_cancel_consumer_unknown_queue(self):
        with pytest.raises(UnknownQueueError):
            Broker().cancel_consumer("ghost", "c")


class TestMessageAccounting:
    def test_message_ids_are_unique_and_increasing(self):
        a = Message(routing_key="k", payload=1)
        b = Message(routing_key="k", payload=2)
        assert b.message_id > a.message_id

    def test_plain_payload_charged_overhead_only(self):
        assert Message(routing_key="k", payload={"x": 1}).size_bytes() \
            == MESSAGE_OVERHEAD_BYTES

    def test_sized_payload_included(self):
        t = StreamTuple("R", 0.0, {"k": 1})
        env = Envelope(kind=KIND_STORE, router_id="r0", counter=0, tuple=t)
        msg = Message(routing_key="k", payload=env)
        assert msg.size_bytes() == MESSAGE_OVERHEAD_BYTES + env.size_bytes()


class TestSimulatedPartitions:
    def test_partitioned_delivery_respects_network_delay(self):
        sim = Simulator()
        broker = Broker(sim, FixedDelayNetwork(0.25))
        layer = ChannelLayer(broker)
        layer.declare_partitioned("dest", 2)
        seen = []
        layer.subscribe_partition("dest", 1, "c1",
                                  lambda d: seen.append((d.time,
                                                         d.message.payload)))
        layer.send_to_partition("dest", 1, "x", sender="p")
        layer.send_to_partition("dest", 0, "ignored", sender="p")
        sim.run()
        assert seen == [(0.25, "x")]

    def test_partition_fifo_under_delay(self):
        sim = Simulator()
        broker = Broker(sim, FixedDelayNetwork(0.1))
        layer = ChannelLayer(broker)
        layer.declare_partitioned("dest", 1)
        seen = []
        layer.subscribe_partition("dest", 0, "c",
                                  lambda d: seen.append(d.message.payload))
        for i in range(5):
            layer.send_to_partition("dest", 0, i, sender="p")
        sim.run()
        assert seen == [0, 1, 2, 3, 4]


class TestUnsubscribeSemantics:
    def test_unsubscribe_keeps_queue_by_default(self):
        layer = ChannelLayer(Broker())
        queue = layer.subscribe("dest", "a", lambda d: None, group="g")
        layer.unsubscribe(queue, "a")
        assert queue in layer.broker.queue_names()

    def test_unsubscribe_with_delete(self):
        layer = ChannelLayer(Broker())
        queue = layer.subscribe("dest", "a", lambda d: None, group="g")
        layer.unsubscribe(queue, "a", delete_queue=True)
        assert queue not in layer.broker.queue_names()
        # messages to the destination now route nowhere
        assert layer.send("dest", "m") == 0
