"""Tests for repro.broker.exchange (routing disciplines, topic matching)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.broker import Exchange, topic_matches
from repro.errors import BrokerError


class TestTopicMatching:
    @pytest.mark.parametrize("pattern,key,expected", [
        ("a.b.c", "a.b.c", True),
        ("a.b.c", "a.b.d", False),
        ("*", "a", True),
        ("*", "a.b", False),
        ("a.*", "a.b", True),
        ("a.*", "a", False),
        ("*.b", "a.b", True),
        ("#", "", True),
        ("#", "a.b.c", True),
        ("a.#", "a", True),
        ("a.#", "a.b.c.d", True),
        ("a.#", "b.c", False),
        ("#.c", "a.b.c", True),
        ("#.c", "c", True),
        ("a.*.c", "a.b.c", True),
        ("a.*.c", "a.c", False),
        ("a.#.c", "a.c", True),
        ("a.#.c", "a.x.y.c", True),
        ("*.#", "a", True),
        ("*.#", "a.b.c", True),
    ])
    def test_cases(self, pattern, key, expected):
        assert topic_matches(pattern, key) is expected

    @given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=5))
    def test_exact_pattern_always_matches_itself(self, words):
        key = ".".join(words)
        assert topic_matches(key, key)

    @given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=5))
    def test_hash_matches_everything(self, words):
        assert topic_matches("#", ".".join(words))

    @given(st.lists(st.sampled_from(["a", "b"]), min_size=1, max_size=4))
    def test_star_per_word_matches(self, words):
        pattern = ".".join("*" for _ in words)
        assert topic_matches(pattern, ".".join(words))


class TestExchangeRouting:
    def test_unknown_type_rejected(self):
        with pytest.raises(BrokerError):
            Exchange(name="x", type="bogus")

    def test_fanout_routes_to_all(self):
        ex = Exchange(name="x", type="fanout")
        ex.bind("q1")
        ex.bind("q2")
        assert ex.route("anything") == ["q1", "q2"]

    def test_direct_routes_on_exact_key(self):
        ex = Exchange(name="x", type="direct")
        ex.bind("q1", "3")
        ex.bind("q2", "5")
        assert ex.route("3") == ["q1"]
        assert ex.route("5") == ["q2"]
        assert ex.route("7") == []

    def test_direct_multiple_queues_same_key(self):
        ex = Exchange(name="x", type="direct")
        ex.bind("q1", "k")
        ex.bind("q2", "k")
        assert ex.route("k") == ["q1", "q2"]

    def test_topic_routes_on_pattern(self):
        ex = Exchange(name="x", type="topic")
        ex.bind("store", "R.store.#")
        ex.bind("join", "R.join.#")
        assert ex.route("R.store.3") == ["store"]
        assert ex.route("R.join.1") == ["join"]

    def test_unbind_queue_removes_all_bindings(self):
        ex = Exchange(name="x", type="fanout")
        ex.bind("q1")
        ex.bind("q2")
        ex.unbind_queue("q1")
        assert ex.route("m") == ["q2"]
