"""Tests for repro.broker.channels (Spring-Cloud-Stream semantics)."""

import pytest

from repro.broker import Broker, ChannelLayer
from repro.errors import BrokerError


def collect(sink):
    def cb(delivery):
        sink.append(delivery.message.payload)
    return cb


class TestConsumerGroups:
    def test_group_members_compete(self):
        """Only one member of a consumer group sees each message."""
        layer = ChannelLayer(Broker())
        a, b = [], []
        layer.subscribe("dest", "a", collect(a), group="g")
        layer.subscribe("dest", "b", collect(b), group="g")
        for i in range(6):
            layer.send("dest", i)
        assert len(a) + len(b) == 6
        assert len(a) == 3 and len(b) == 3

    def test_separate_groups_each_get_a_copy(self):
        layer = ChannelLayer(Broker())
        g1, g2 = [], []
        layer.subscribe("dest", "a", collect(g1), group="g1")
        layer.subscribe("dest", "b", collect(g2), group="g2")
        layer.send("dest", "m")
        assert g1 == ["m"] and g2 == ["m"]

    def test_anonymous_subscribers_are_publish_subscribe(self):
        layer = ChannelLayer(Broker())
        a, b = [], []
        layer.subscribe("dest", "a", collect(a))
        layer.subscribe("dest", "b", collect(b))
        layer.send("dest", "m")
        assert a == ["m"] and b == ["m"]

    def test_durable_group_queue_buffers_while_unsubscribed(self):
        """Group subscriptions are durable: messages sent while all group
        members are down are delivered when a member reattaches."""
        layer = ChannelLayer(Broker())
        seen = []
        queue = layer.subscribe("dest", "a", collect(seen), group="g")
        layer.unsubscribe(queue, "a")
        layer.send("dest", "while-down")
        layer.subscribe("dest", "a2", collect(seen), group="g")
        assert seen == ["while-down"]

    def test_send_returns_queues_hit(self):
        layer = ChannelLayer(Broker())
        layer.subscribe("dest", "a", collect([]), group="g")
        layer.subscribe("dest", "b", collect([]))
        assert layer.send("dest", 1) == 2


class TestPartitionedDestinations:
    def test_partition_routing(self):
        layer = ChannelLayer(Broker())
        layer.declare_partitioned("dest", 3)
        sinks = {i: [] for i in range(3)}
        for i in range(3):
            layer.subscribe_partition("dest", i, f"c{i}", collect(sinks[i]))
        layer.send_to_partition("dest", 0, "a")
        layer.send_to_partition("dest", 2, "b")
        assert sinks[0] == ["a"]
        assert sinks[1] == []
        assert sinks[2] == ["b"]

    def test_zero_partitions_rejected(self):
        layer = ChannelLayer(Broker())
        with pytest.raises(BrokerError):
            layer.declare_partitioned("dest", 0)

    def test_redeclare_partitioned_is_idempotent(self):
        layer = ChannelLayer(Broker())
        layer.declare_partitioned("dest", 2)
        layer.declare_partitioned("dest", 2)
        seen = []
        layer.subscribe_partition("dest", 0, "c", collect(seen))
        layer.send_to_partition("dest", 0, "x")
        assert seen == ["x"]  # exactly one binding despite redeclare
