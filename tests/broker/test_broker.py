"""Tests for repro.broker.broker (publish/deliver, sync and simulated)."""

import pytest

from repro.broker import Broker, Message
from repro.errors import BrokerError, UnknownExchangeError, UnknownQueueError
from repro.simulation import PerChannelDelayNetwork, Simulator


def collect(sink):
    def cb(delivery):
        sink.append(delivery)
    return cb


class TestTopology:
    def test_declare_exchange_idempotent(self):
        broker = Broker()
        first = broker.declare_exchange("x", "topic")
        second = broker.declare_exchange("x", "topic")
        assert first is second

    def test_redeclare_with_other_type_rejected(self):
        broker = Broker()
        broker.declare_exchange("x", "topic")
        with pytest.raises(BrokerError):
            broker.declare_exchange("x", "fanout")

    def test_publish_to_unknown_exchange(self):
        with pytest.raises(UnknownExchangeError):
            Broker().publish("ghost", Message(routing_key="k", payload=1))

    def test_bind_unknown_queue(self):
        broker = Broker()
        broker.declare_exchange("x")
        with pytest.raises(UnknownQueueError):
            broker.bind("x", "ghost")

    def test_network_requires_simulator(self):
        with pytest.raises(BrokerError):
            Broker(network=PerChannelDelayNetwork())

    def test_delete_queue_removes_bindings(self):
        broker = Broker()
        broker.declare_exchange("x", "fanout")
        broker.declare_queue("q")
        broker.bind("x", "q")
        broker.delete_queue("q")
        assert broker.publish("x", Message(routing_key="", payload=1)) == 0


class TestSynchronousDelivery:
    def test_publish_delivers_immediately(self):
        broker = Broker()
        broker.declare_exchange("x", "fanout")
        broker.declare_queue("q")
        broker.bind("x", "q")
        seen = []
        broker.consume("q", "c1", collect(seen))
        broker.publish("x", Message(routing_key="", payload="hello"))
        assert [d.message.payload for d in seen] == ["hello"]

    def test_delivery_metadata(self):
        broker = Broker()
        broker.declare_exchange("x", "fanout")
        broker.declare_queue("q")
        broker.bind("x", "q")
        seen = []
        broker.consume("q", "c1", collect(seen))
        broker.publish("x", Message(routing_key="", payload=1, sender="src"))
        delivery = seen[0]
        assert delivery.queue == "q"
        assert delivery.consumer == "c1"
        assert delivery.message.sender == "src"

    def test_backlog_drains_on_late_consumer(self):
        broker = Broker()
        broker.declare_exchange("x", "fanout")
        broker.declare_queue("q")
        broker.bind("x", "q")
        broker.publish("x", Message(routing_key="", payload=1))
        broker.publish("x", Message(routing_key="", payload=2))
        seen = []
        broker.consume("q", "c1", collect(seen))
        assert [d.message.payload for d in seen] == [1, 2]

    def test_competing_consumers_split_messages(self):
        broker = Broker()
        broker.declare_exchange("x", "fanout")
        broker.declare_queue("q")
        broker.bind("x", "q")
        a, b = [], []
        broker.consume("q", "a", collect(a))
        broker.consume("q", "b", collect(b))
        for i in range(6):
            broker.publish("x", Message(routing_key="", payload=i))
        assert len(a) == 3 and len(b) == 3
        assert {d.message.payload for d in a} | {d.message.payload for d in b} \
            == set(range(6))

    def test_fanout_to_two_queues_duplicates(self):
        broker = Broker()
        broker.declare_exchange("x", "fanout")
        for q in ("q1", "q2"):
            broker.declare_queue(q)
            broker.bind("x", q)
        seen = []
        broker.consume("q1", "c1", collect(seen))
        broker.consume("q2", "c2", collect(seen))
        broker.publish("x", Message(routing_key="", payload="m"))
        assert len(seen) == 2

    def test_counters(self):
        broker = Broker()
        broker.declare_exchange("x", "fanout")
        broker.declare_queue("q")
        broker.bind("x", "q")
        broker.consume("q", "c", collect([]))
        broker.publish("x", Message(routing_key="", payload=1))
        assert broker.published == 1
        assert broker.delivered == 1

    def test_on_deliver_hook(self):
        broker = Broker()
        broker.declare_exchange("x", "fanout")
        broker.declare_queue("q")
        broker.bind("x", "q")
        broker.consume("q", "c", collect([]))
        hook_calls = []
        broker.on_deliver = lambda d: hook_calls.append(d.message.payload)
        broker.publish("x", Message(routing_key="", payload=9))
        assert hook_calls == [9]


class TestSimulatedDelivery:
    def _broker(self):
        sim = Simulator()
        net = PerChannelDelayNetwork(default=0.0)
        broker = Broker(sim, net)
        broker.declare_exchange("x", "fanout")
        return sim, net, broker

    def test_delivery_happens_at_delayed_time(self):
        sim, net, broker = self._broker()
        broker.declare_queue("q")
        broker.bind("x", "q")
        times = []
        broker.consume("q", "c", lambda d: times.append(d.time))
        net.set_delay("src", "c", 0.5)
        broker.publish("x", Message(routing_key="", payload=1, sender="src"))
        sim.run()
        assert times == [0.5]

    def test_cross_channel_reordering_happens(self):
        sim, net, broker = self._broker()
        order = []
        for q, consumer in (("q1", "slow"), ("q2", "fast")):
            broker.declare_queue(q)
            broker.bind("x", q)
            broker.consume(q, consumer,
                           lambda d, c=consumer: order.append(c))
        net.set_delay("src", "slow", 1.0)
        net.set_delay("src", "fast", 0.0)
        broker.publish("x", Message(routing_key="", payload=1, sender="src"))
        sim.run()
        assert order == ["fast", "slow"]

    def test_same_channel_stays_fifo(self):
        sim, net, broker = self._broker()
        broker.declare_queue("q")
        broker.bind("x", "q")
        payloads = []
        broker.consume("q", "c", lambda d: payloads.append(d.message.payload))
        net.set_delay("src", "c", 0.2)
        for i in range(10):
            broker.publish("x", Message(routing_key="", payload=i, sender="src"))
        sim.run()
        assert payloads == list(range(10))
