"""Tests for the broker's at-least-once delivery layer (simulated mode).

Covers manual acknowledgement, crash-and-requeue redelivery, loss
retransmission with exponential backoff, network-duplicate delivery
semantics (shared tag + ``redelivered`` flag), attachment epochs
dead-lettering stale in-flight copies, and the drained-message count
surfaced by ``delete_queue``.
"""

import pytest

from repro.broker import Broker, Message
from repro.errors import BrokerError
from repro.simulation import (
    FixedDelayNetwork,
    LossyNetwork,
    PartitionNetwork,
    ReorderNetwork,
    SeededRng,
    Simulator,
)


def make_broker(network=None, **kwargs):
    sim = Simulator()
    broker = Broker(sim, network or FixedDelayNetwork(0.01), **kwargs)
    broker.declare_exchange("x", "fanout")
    broker.declare_queue("q")
    broker.bind("x", "q")
    return sim, broker


def publish_n(broker, n, sender="src"):
    for i in range(n):
        broker.publish("x", Message(routing_key="", payload=i, sender=sender))


class TestManualAck:
    def test_unacked_until_acked(self):
        sim, broker = make_broker()
        seen = []
        broker.consume("q", "c", seen.append, manual_ack=True)
        publish_n(broker, 3)
        sim.run()
        assert [d.message.payload for d in seen] == [0, 1, 2]
        assert broker.unacked_count("c") == 3
        for d in seen:
            broker.ack(d.tag)
        assert broker.unacked_count("c") == 0

    def test_auto_ack_consumers_track_nothing(self):
        sim, broker = make_broker()
        broker.consume("q", "c", lambda d: None)
        publish_n(broker, 3)
        sim.run()
        assert broker.unacked_count("c") == 0

    def test_ack_unknown_tag_is_noop(self):
        _, broker = make_broker()
        broker.ack(12345)  # nothing tracked: must not raise

    def test_unacked_payloads_in_tag_order(self):
        sim, broker = make_broker()
        broker.consume("q", "c", lambda d: None, manual_ack=True)
        publish_n(broker, 4)
        sim.run()
        assert broker.unacked_payloads("c") == [0, 1, 2, 3]

    def test_rejects_bad_redelivery_delays(self):
        with pytest.raises(BrokerError):
            Broker(Simulator(), FixedDelayNetwork(0.0), redelivery_delay=0.0)
        with pytest.raises(BrokerError):
            Broker(Simulator(), FixedDelayNetwork(0.0),
                   redelivery_delay=1.0, redelivery_max_delay=0.5)


class TestCrashRequeue:
    def test_unacked_redelivered_to_replacement(self):
        sim, broker = make_broker()
        first = []
        broker.consume("q", "c", first.append, manual_ack=True)
        publish_n(broker, 5)
        sim.run()
        broker.ack(first[0].tag)  # only the first was processed
        requeued = broker.crash_consumer("q", "c")
        assert requeued == 4
        second = []
        broker.consume("q", "c", second.append, manual_ack=True)
        sim.run()
        # Redelivered in original FIFO order, flagged as redelivered.
        assert [d.message.payload for d in second] == [1, 2, 3, 4]
        assert all(d.redelivered for d in second)
        assert broker.redelivered == 4

    def test_survivor_takes_over_immediately(self):
        sim, broker = make_broker()
        a, b = [], []
        broker.consume("q", "a", a.append, manual_ack=True)
        broker.consume("q", "b", b.append, manual_ack=True)
        publish_n(broker, 6)
        sim.run()
        lost = {d.message.payload for d in a}
        broker.crash_consumer("q", "a")
        sim.run()
        # Everything the crashed consumer held reappears at the survivor.
        assert {d.message.payload for d in b} == set(range(6))
        assert {d.message.payload for d in b if d.redelivered} == lost

    def test_acked_messages_are_not_redelivered(self):
        sim, broker = make_broker()
        seen = []
        broker.consume("q", "c", seen.append, manual_ack=True)
        publish_n(broker, 3)
        sim.run()
        for d in seen:
            broker.ack(d.tag)
        assert broker.crash_consumer("q", "c") == 0

    def test_crash_mid_flight_is_exactly_once(self):
        sim, broker = make_broker(FixedDelayNetwork(1.0))
        seen = []
        broker.consume("q", "c", seen.append, manual_ack=True)
        publish_n(broker, 1)
        # Crash while the only copy is still in flight: the requeued
        # message is redelivered to the replacement, and the stale copy
        # addressed to the dead attachment must not also fire.
        sim.run(until=0.5)
        broker.crash_consumer("q", "c")
        broker.consume("q", "c", seen.append, manual_ack=True)
        sim.run()
        assert [d.message.payload for d in seen] == [0]
        assert seen[0].redelivered


class TestLossAndRetransmission:
    def test_lost_transmissions_are_repaired(self):
        net = LossyNetwork(FixedDelayNetwork(0.01), SeededRng(5),
                           drop_probability=0.4)
        sim, broker = make_broker(net)
        seen = []
        broker.consume("q", "c", seen.append, manual_ack=True)
        publish_n(broker, 50)
        sim.run()
        assert net.dropped > 0
        assert broker.retransmissions >= net.dropped
        # Despite the losses, everything arrives exactly once, in order.
        assert [d.message.payload for d in seen] == list(range(50))

    def test_retransmission_backoff_is_exponential_and_capped(self):
        net = PartitionNetwork(FixedDelayNetwork(0.01))
        net.partition(0.0, 2.0, receivers=("c",))
        sim, broker = make_broker(net, redelivery_delay=0.1,
                                  redelivery_max_delay=0.4)
        times = []
        broker.consume("q", "c", lambda d: times.append(d.time))
        publish_n(broker, 1)
        sim.run()
        # Attempts at 0.0, 0.1, 0.3, 0.7, 1.1, 1.5, 1.9 are black-holed
        # (backoffs 0.1, 0.2, 0.4 then capped at 0.4); the retry at
        # t=2.3 is past the partition and lands at 2.31 (network delay).
        assert times == [pytest.approx(2.31)]
        assert broker.lost_transmissions == 7
        assert broker.retransmissions == 7

    def test_retransmit_preserves_pairwise_fifo(self):
        """A lost message holds back its successors on the channel."""
        net = LossyNetwork(FixedDelayNetwork(0.01), SeededRng(11),
                           drop_probability=0.5)
        sim, broker = make_broker(net)
        seen = []
        broker.consume("q", "c", seen.append)
        publish_n(broker, 30)
        sim.run()
        assert [d.message.payload for d in seen] == list(range(30))

    def test_partition_stalls_then_drains_in_order(self):
        net = PartitionNetwork(FixedDelayNetwork(0.01))
        net.partition(0.0, 1.0, receivers=("c",))
        sim, broker = make_broker(net)
        seen = []
        broker.consume("q", "c", seen.append)
        publish_n(broker, 10)
        sim.run(until=0.99)
        assert seen == []  # black-holed: nothing arrives
        sim.run()
        assert [d.message.payload for d in seen] == list(range(10))
        assert all(d.time >= 1.0 for d in seen)


class TestDuplicateDelivery:
    def test_duplicate_copies_share_tag_and_flag(self):
        net = LossyNetwork(FixedDelayNetwork(0.01), SeededRng(3),
                           duplicate_probability=0.5)
        sim, broker = make_broker(net)
        seen = []
        broker.consume("q", "c", seen.append, manual_ack=True)
        publish_n(broker, 40)
        sim.run()
        assert net.duplicated > 0
        assert broker.duplicate_deliveries == net.duplicated
        assert len(seen) == 40 + net.duplicated
        by_tag = {}
        for d in seen:
            by_tag.setdefault(d.tag, []).append(d)
        dup_groups = [ds for ds in by_tag.values() if len(ds) > 1]
        assert len(dup_groups) == net.duplicated
        for ds in dup_groups:
            # Copies of one delivery: same payload, extras flagged.
            assert len({d.message.payload for d in ds}) == 1
            assert sum(1 for d in ds if d.redelivered) == len(ds) - 1

    def test_first_copies_arrive_in_fifo_order(self):
        net = LossyNetwork(FixedDelayNetwork(0.01), SeededRng(3),
                           duplicate_probability=0.5)
        sim, broker = make_broker(net)
        seen = []
        broker.consume("q", "c", seen.append)
        publish_n(broker, 40)
        sim.run()
        firsts = [d.message.payload for d in seen if not d.redelivered]
        assert firsts == list(range(40))


class TestReorderMasking:
    """Wire-level reordering is invisible past the broker's per-channel
    sequence gates: consumers always observe pairwise-FIFO delivery."""

    def make_reorder_net(self):
        return ReorderNetwork(FixedDelayNetwork(0.05), SeededRng(13, "net"),
                              reorder_probability=0.6, max_inflight=4)

    def test_sequence_gates_mask_wire_reordering(self):
        net = self.make_reorder_net()
        sim, broker = make_broker(net)
        seen = []
        broker.consume("q", "c", seen.append)
        publish_n(broker, 80)
        sim.run()
        assert net.reordered > 0  # the wire really did invert messages
        assert [d.message.payload for d in seen] == list(range(80))

    def test_masking_holds_for_manual_ack_consumers(self):
        net = self.make_reorder_net()
        sim, broker = make_broker(net)
        seen = []
        broker.consume("q", "c", seen.append, manual_ack=True)
        publish_n(broker, 60)
        sim.run()
        assert net.reordered > 0
        assert [d.message.payload for d in seen] == list(range(60))
        assert broker.unacked_payloads("c") == list(range(60))


class TestDrainBacklogRequeueInterleaving:
    """Crash-requeued messages and newer backlog drain to a late
    consumer in the contract order: redeliveries first."""

    def test_redeliveries_stay_ahead_of_newer_backlog(self):
        sim, broker = make_broker()
        first = []
        broker.consume("q", "c", first.append, manual_ack=True)
        publish_n(broker, 3)
        sim.run()
        assert broker.crash_consumer("q", "c") == 3
        publish_n(broker, 2, sender="src2")  # no consumer: pure backlog
        second = []
        broker.consume("q", "c2", second.append, manual_ack=True)
        sim.run()
        payloads = [d.message.payload for d in second]
        assert payloads == [0, 1, 2, 0, 1]
        assert [d.redelivered for d in second] == [True] * 3 + [False] * 2

    def test_pairwise_fifo_after_late_attach(self):
        """A consumer attached after the backlog built up still sees
        each sender's messages in publish order, even on a reordering
        wire."""
        net = ReorderNetwork(FixedDelayNetwork(0.05), SeededRng(23, "net"),
                             reorder_probability=0.7, max_inflight=5)
        sim, broker = make_broker(net)
        for i in range(20):
            broker.publish("x", Message(routing_key="", payload=("a", i),
                                        sender="src-a"))
            broker.publish("x", Message(routing_key="", payload=("b", i),
                                        sender="src-b"))
        seen = []
        broker.consume("q", "late", seen.append)
        sim.run()
        for sender in ("a", "b"):
            ordered = [i for s, i in (d.message.payload for d in seen)
                       if s == sender]
            assert ordered == list(range(20))

    def test_crash_requeue_then_reorder_drain_is_fifo(self):
        net = ReorderNetwork(FixedDelayNetwork(0.05), SeededRng(31, "net"),
                             reorder_probability=0.6, max_inflight=4)
        sim, broker = make_broker(net)
        first = []
        broker.consume("q", "c", first.append, manual_ack=True)
        publish_n(broker, 10)
        sim.run()
        broker.crash_consumer("q", "c")
        publish_n(broker, 5, sender="src2")
        second = []
        broker.consume("q", "c2", second.append, manual_ack=True)
        sim.run()
        assert [d.message.payload for d in second] == list(range(10)) \
            + list(range(5))


class TestDeleteQueueDrops:
    def test_counts_backlog(self):
        _, broker = make_broker()
        publish_n(broker, 4)  # no consumer: all four sit in the backlog
        assert broker.delete_queue("q") == 4
        assert broker.dropped_on_delete == 4

    def test_counts_unacked_in_flight(self):
        sim, broker = make_broker()
        broker.consume("q", "c", lambda d: None, manual_ack=True)
        publish_n(broker, 3)
        sim.run()
        assert broker.delete_queue("q") == 3

    def test_empty_queue_drops_nothing(self):
        sim, broker = make_broker()
        broker.consume("q", "c", lambda d: None)
        publish_n(broker, 3)
        sim.run()
        assert broker.delete_queue("q") == 0
        assert broker.dropped_on_delete == 0
