"""Tests for repro.broker.queue (competing consumers, backlog)."""

import pytest

from repro.broker import Message, MessageQueue
from repro.errors import BrokerError


def msg(i: int) -> Message:
    return Message(routing_key="k", payload=i)


class TestConsumers:
    def test_round_robin_dispatch(self):
        queue = MessageQueue("q")
        queue.add_consumer("a", lambda d: None)
        queue.add_consumer("b", lambda d: None)
        picks = [queue.offer(msg(i)).consumer_id for i in range(4)]
        assert picks == ["a", "b", "a", "b"]

    def test_duplicate_consumer_rejected(self):
        queue = MessageQueue("q")
        queue.add_consumer("a", lambda d: None)
        with pytest.raises(BrokerError):
            queue.add_consumer("a", lambda d: None)

    def test_remove_unknown_consumer_rejected(self):
        queue = MessageQueue("q")
        with pytest.raises(BrokerError):
            queue.remove_consumer("ghost")

    def test_remove_consumer_redistributes(self):
        queue = MessageQueue("q")
        queue.add_consumer("a", lambda d: None)
        queue.add_consumer("b", lambda d: None)
        queue.remove_consumer("a")
        picks = {queue.offer(msg(i)).consumer_id for i in range(3)}
        assert picks == {"b"}

    def test_select_consumer_without_consumers_raises(self):
        with pytest.raises(BrokerError):
            MessageQueue("q").select_consumer()


class TestBacklog:
    def test_messages_buffer_without_consumers(self):
        queue = MessageQueue("q")
        assert queue.offer(msg(1)) is None
        assert queue.offer(msg(2)) is None
        assert queue.backlog_depth == 2

    def test_drain_backlog_assigns_in_fifo_order(self):
        queue = MessageQueue("q")
        queue.offer(msg(1))
        queue.offer(msg(2))
        queue.add_consumer("a", lambda d: None)
        assigned = queue.drain_backlog()
        assert [m.payload for m, _ in assigned] == [1, 2]
        assert queue.backlog_depth == 0

    def test_counters(self):
        queue = MessageQueue("q")
        queue.offer(msg(1))
        queue.add_consumer("a", lambda d: None)
        queue.drain_backlog()
        queue.offer(msg(2))
        assert queue.enqueued == 2
        assert queue.dispatched == 2
