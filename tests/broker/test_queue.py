"""Tests for repro.broker.queue (competing consumers, backlog)."""

import pytest

from repro.broker import Message, MessageQueue
from repro.errors import BrokerError


def msg(i: int) -> Message:
    return Message(routing_key="k", payload=i)


class TestConsumers:
    def test_round_robin_dispatch(self):
        queue = MessageQueue("q")
        queue.add_consumer("a", lambda d: None)
        queue.add_consumer("b", lambda d: None)
        picks = [queue.offer(msg(i)).consumer_id for i in range(4)]
        assert picks == ["a", "b", "a", "b"]

    def test_duplicate_consumer_rejected(self):
        queue = MessageQueue("q")
        queue.add_consumer("a", lambda d: None)
        with pytest.raises(BrokerError):
            queue.add_consumer("a", lambda d: None)

    def test_remove_unknown_consumer_rejected(self):
        queue = MessageQueue("q")
        with pytest.raises(BrokerError):
            queue.remove_consumer("ghost")

    def test_remove_consumer_redistributes(self):
        queue = MessageQueue("q")
        queue.add_consumer("a", lambda d: None)
        queue.add_consumer("b", lambda d: None)
        queue.remove_consumer("a")
        picks = {queue.offer(msg(i)).consumer_id for i in range(3)}
        assert picks == {"b"}

    def test_select_consumer_without_consumers_raises(self):
        with pytest.raises(BrokerError):
            MessageQueue("q").select_consumer()


class TestResetRotation:
    """reset_rotation is the broker half of the router-pool counter
    realignment (see BicliqueEngine._realign_router_pool)."""

    def test_restarts_dispatch_at_the_first_consumer(self):
        queue = MessageQueue("q")
        queue.add_consumer("a", lambda d: None)
        queue.add_consumer("b", lambda d: None)
        assert queue.offer(msg(0)).consumer_id == "a"  # cursor now at b
        queue.reset_rotation()
        picks = [queue.offer(msg(i)).consumer_id for i in range(3)]
        assert picks == ["a", "b", "a"]

    def test_sort_reorders_by_consumer_id(self):
        queue = MessageQueue("q")
        for cid in ("router2", "router0", "router1"):
            queue.add_consumer(cid, lambda d: None)
        queue.reset_rotation(sort=True)
        picks = [queue.offer(msg(i)).consumer_id for i in range(3)]
        assert picks == ["router0", "router1", "router2"]

    def test_reset_on_empty_queue_is_harmless(self):
        queue = MessageQueue("q")
        queue.reset_rotation(sort=True)
        assert not queue.has_consumers


class TestRoundRobinAfterRemoval:
    """Removing a consumer must not bias dispatch onto the earliest
    survivor (the rotation cursor is adjusted, not reset)."""

    def make(self, *ids):
        queue = MessageQueue("q")
        for cid in ids:
            queue.add_consumer(cid, lambda d: None)
        return queue

    def test_rotation_continues_relative_to_survivors(self):
        queue = self.make("a", "b", "c")
        assert queue.offer(msg(0)).consumer_id == "a"
        queue.remove_consumer("a")  # cursor pointed at "b": keep it there
        picks = [queue.offer(msg(i)).consumer_id for i in range(4)]
        assert picks == ["b", "c", "b", "c"]

    def test_removing_consumer_behind_cursor(self):
        queue = self.make("a", "b", "c")
        assert queue.offer(msg(0)).consumer_id == "a"
        assert queue.offer(msg(1)).consumer_id == "b"
        queue.remove_consumer("a")  # behind the cursor: shift it back
        picks = [queue.offer(msg(i)).consumer_id for i in range(4)]
        assert picks == ["c", "b", "c", "b"]

    def test_removing_last_slot_wraps_cursor(self):
        queue = self.make("a", "b", "c")
        assert queue.offer(msg(0)).consumer_id == "a"
        assert queue.offer(msg(1)).consumer_id == "b"
        assert queue.offer(msg(2)).consumer_id == "c"
        # Cursor wrapped to "a"; removing "c" must keep it on "a".
        queue.remove_consumer("c")
        picks = [queue.offer(msg(i)).consumer_id for i in range(4)]
        assert picks == ["a", "b", "a", "b"]

    def test_no_skew_over_many_removals(self):
        """After every scale-in, the survivors still share load evenly
        (the old reset-to-zero cursor skewed it onto the first one)."""
        queue = self.make("a", "b", "c", "d")
        counts = {"a": 0, "b": 0, "c": 0, "d": 0}
        for victim in ("d", "c"):
            for i in range(5):
                counts[queue.offer(msg(i)).consumer_id] += 1
            queue.remove_consumer(victim)
        for i in range(10):
            counts[queue.offer(msg(i)).consumer_id] += 1
        assert counts["a"] == counts["b"]


class TestBacklog:
    def test_messages_buffer_without_consumers(self):
        queue = MessageQueue("q")
        assert queue.offer(msg(1)) is None
        assert queue.offer(msg(2)) is None
        assert queue.backlog_depth == 2

    def test_drain_backlog_assigns_in_fifo_order(self):
        queue = MessageQueue("q")
        queue.offer(msg(1))
        queue.offer(msg(2))
        queue.add_consumer("a", lambda d: None)
        assigned = queue.drain_backlog()
        assert [m.payload for m, _ in assigned] == [1, 2]
        assert queue.backlog_depth == 0

    def test_counters(self):
        queue = MessageQueue("q")
        queue.offer(msg(1))
        queue.add_consumer("a", lambda d: None)
        queue.drain_backlog()
        queue.offer(msg(2))
        assert queue.enqueued == 2
        assert queue.dispatched == 2


class TestBoundedQueue:
    def test_rejects_non_positive_bound(self):
        with pytest.raises(BrokerError):
            MessageQueue("q", max_depth=0)

    def test_depth_counts_backlog_plus_in_flight(self):
        queue = MessageQueue("q", max_depth=4)
        queue.offer(msg(1))
        queue.offer(msg(2))
        queue.in_flight = 2  # broker-maintained
        assert queue.depth == 4
        assert queue.is_full
        assert not queue.has_capacity

    def test_unbounded_queue_is_never_full(self):
        queue = MessageQueue("q")
        for i in range(100):
            queue.offer(msg(i))
        assert not queue.is_full

    def test_peak_depth_high_water_mark(self):
        queue = MessageQueue("q", max_depth=10)
        for i in range(3):
            queue.offer(msg(i))
        queue.add_consumer("a", lambda d: None)
        queue.drain_backlog()
        assert queue.peak_depth == 3

    def test_evict_oldest_drops_backlog_head(self):
        queue = MessageQueue("q", max_depth=2)
        queue.offer(msg(1))
        queue.offer(msg(2))
        victim = queue.evict_oldest()
        assert victim.payload == 1
        assert queue.evicted == 1
        assert queue.backlog_depth == 1

    def test_evict_oldest_on_empty_backlog(self):
        queue = MessageQueue("q", max_depth=2)
        assert queue.evict_oldest() is None
        assert queue.evicted == 0


class TestRequeueInterleaving:
    """Crash-requeued messages stay ahead of anything newer: the
    redelivery contract the recovery subsystem relies on."""

    def test_requeued_messages_drain_before_newer_backlog(self):
        queue = MessageQueue("q")
        queue.offer(msg(3))
        queue.offer(msg(4))
        queue.requeue([msg(1), msg(2)])  # crash victims, original order
        queue.add_consumer("a", lambda d: None)
        assigned = queue.drain_backlog()
        assert [m.payload for m, _ in assigned] == [1, 2, 3, 4]

    def test_interleaved_requeue_and_offer_rounds(self):
        queue = MessageQueue("q")
        queue.offer(msg(5))
        queue.requeue([msg(1), msg(2)])
        queue.offer(msg(6))
        queue.requeue([msg(0)])
        queue.add_consumer("a", lambda d: None)
        assigned = queue.drain_backlog()
        # Each requeue batch goes to the very front, in batch order.
        assert [m.payload for m, _ in assigned] == [0, 1, 2, 5, 6]
        assert queue.requeued == 3

    def test_requeue_counts_toward_capacity(self):
        queue = MessageQueue("q", max_depth=2)
        queue.requeue([msg(1), msg(2)])
        assert queue.depth == 2
        assert queue.is_full
        assert queue.peak_depth == 2
