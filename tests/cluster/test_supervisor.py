"""Tests for repro.cluster.supervisor (restart backoff + counters)."""

import pytest

from repro.cluster import RestartSupervisor, SupervisorConfig
from repro.errors import ClusterError


class TestSupervisorConfig:
    def test_rejects_nonpositive_base(self):
        with pytest.raises(ClusterError):
            SupervisorConfig(base_backoff=0.0)

    def test_rejects_multiplier_below_one(self):
        with pytest.raises(ClusterError):
            SupervisorConfig(multiplier=0.5)

    def test_rejects_max_below_base(self):
        with pytest.raises(ClusterError):
            SupervisorConfig(base_backoff=10.0, max_backoff=5.0)


class TestRestartSupervisor:
    def test_exponential_backoff_per_target(self):
        sup = RestartSupervisor(SupervisorConfig(
            base_backoff=1.0, multiplier=2.0, max_backoff=300.0))
        assert sup.next_backoff("R0") == 1.0
        assert sup.next_backoff("R0") == 2.0
        assert sup.next_backoff("R0") == 4.0
        # Independent crash-loop per target.
        assert sup.next_backoff("router0") == 1.0

    def test_backoff_is_capped(self):
        sup = RestartSupervisor(SupervisorConfig(
            base_backoff=1.0, multiplier=10.0, max_backoff=50.0))
        assert sup.next_backoff("R0") == 1.0
        assert sup.next_backoff("R0") == 10.0
        assert sup.next_backoff("R0") == 50.0
        assert sup.next_backoff("R0") == 50.0

    def test_restart_counters(self):
        sup = RestartSupervisor()
        sup.next_backoff("R0")
        sup.next_backoff("R0")
        sup.next_backoff("S1")
        assert sup.restart_counts == {"R0": 2, "S1": 1}
        assert sup.total_restarts == 3
