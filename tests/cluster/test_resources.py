"""Tests for repro.cluster.resources."""

import pytest

from repro.cluster import CostModel, ResourceSpec
from repro.errors import ConfigurationError


class TestResourceSpec:
    def test_defaults_valid(self):
        spec = ResourceSpec()
        assert spec.cpu_request <= spec.cpu_limit
        assert spec.memory_request <= spec.memory_limit

    def test_request_cannot_exceed_limit(self):
        with pytest.raises(ConfigurationError):
            ResourceSpec(cpu_request=2.0, cpu_limit=1.0)
        with pytest.raises(ConfigurationError):
            ResourceSpec(memory_request=100, memory_limit=50)

    def test_positive_required(self):
        with pytest.raises(ConfigurationError):
            ResourceSpec(cpu_request=0.0)
        with pytest.raises(ConfigurationError):
            ResourceSpec(memory_request=0)


class TestCostModel:
    def test_joiner_work_is_linear(self):
        cost = CostModel()
        one = cost.joiner_work(stored=1)
        two = cost.joiner_work(stored=2)
        assert two == pytest.approx(2 * one)

    def test_joiner_work_sums_components(self):
        cost = CostModel(store=1.0, probe=2.0, comparison=0.5, emit=0.25,
                         punctuation=0.1, route=0.0)
        total = cost.joiner_work(stored=1, probes=1, comparisons=4,
                                 results=2, punctuations=3)
        assert total == pytest.approx(1.0 + 2.0 + 2.0 + 0.5 + 0.3)

    def test_router_work(self):
        assert CostModel(route=5.0).router_work(tuples=3) == 15.0

    def test_scaled_multiplies_uniformly(self):
        base = CostModel()
        scaled = base.scaled(10.0)
        assert scaled.store == pytest.approx(10 * base.store)
        assert scaled.comparison == pytest.approx(10 * base.comparison)

    def test_scale_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            CostModel().scaled(0.0)
