"""Tests for the cluster report helpers and runtime edges."""

from repro import BicliqueConfig, EquiJoinPredicate, TimeWindow
from repro.cluster import ClusterConfig, CostModel, SimulatedCluster
from repro.cluster.runtime import ClusterReport, TimelinePoint
from repro.workloads import ConstantRate, EquiJoinWorkload, UniformKeys


def point(t, r, s):
    return TimelinePoint(time=t, input_rate=10.0, r_replicas=r,
                         s_replicas=s, cpu_utilisation_r=None,
                         cpu_utilisation_s=None, memory_mapped_mb_r=None,
                         memory_utilisation_r=None, results_so_far=0)


class TestReplicasSeries:
    def test_series_per_side(self):
        report = ClusterReport(duration=10.0, tuples_ingested=0, results=0,
                               timeline=[point(0.0, 1, 2), point(5.0, 2, 2)])
        assert report.replicas_series("R") == [(0.0, 1), (5.0, 2)]
        assert report.replicas_series("S") == [(0.0, 2), (5.0, 2)]


class TestRuntimeEdges:
    def test_arrivals_beyond_duration_ignored(self):
        """The pump stops at the first arrival past the horizon."""
        wl = EquiJoinWorkload(keys=UniformKeys(10), seed=2)
        cluster = SimulatedCluster(
            BicliqueConfig(window=TimeWindow(5.0), r_joiners=1, s_joiners=1,
                           archive_period=1.0, punctuation_interval=0.5),
            EquiJoinPredicate("k", "k"),
            ClusterConfig(cost_model=CostModel(), metrics_interval=5.0))
        # offer 20 s of arrivals but run only 5 s (the horizon tuple
        # itself may land a float-ulp below 5.0 after 50 additions of
        # 0.1, so both 50 and 51 are correct cut-offs)
        report = cluster.run(wl.arrivals(ConstantRate(10.0), 20.0), 5.0)
        assert report.tuples_ingested in (50, 51)
        assert report.tuples_ingested < 200  # far fewer than offered

    def test_empty_arrivals(self):
        cluster = SimulatedCluster(
            BicliqueConfig(window=TimeWindow(5.0), r_joiners=1, s_joiners=1,
                           archive_period=1.0, punctuation_interval=0.5),
            EquiJoinPredicate("k", "k"),
            ClusterConfig(metrics_interval=5.0))
        report = cluster.run(iter(()), 10.0)
        assert report.tuples_ingested == 0
        assert report.results == 0

    def test_default_rate_fn_reports_zero(self):
        wl = EquiJoinWorkload(keys=UniformKeys(10), seed=2)
        cluster = SimulatedCluster(
            BicliqueConfig(window=TimeWindow(5.0), r_joiners=1, s_joiners=1,
                           archive_period=1.0, punctuation_interval=0.5),
            EquiJoinPredicate("k", "k"),
            ClusterConfig(metrics_interval=5.0, timeline_interval=5.0))
        report = cluster.run(wl.arrivals(ConstantRate(10.0), 12.0), 12.0)
        assert all(p.input_rate == 0.0 for p in report.timeline)
