"""Tests for repro.cluster.matrix_runtime."""

from repro import EquiJoinPredicate, TimeWindow
from repro.cluster import ClusterConfig, CostModel, MatrixSimulatedCluster
from repro.harness import check_exactly_once, reference_join
from repro.matrix import MatrixConfig
from repro.workloads import ConstantRate, EquiJoinWorkload, UniformKeys

PREDICATE = EquiJoinPredicate("k", "k")
WINDOW = TimeWindow(seconds=20.0)


def make_cluster(cost_scale=1.0, rows=2, cols=2, routers=1):
    return MatrixSimulatedCluster(
        MatrixConfig(window=WINDOW, rows=rows, cols=cols,
                     partitioning="hash", archive_period=4.0,
                     punctuation_interval=0.2, expiry_slack=1.0),
        PREDICATE,
        ClusterConfig(cost_model=CostModel().scaled(cost_scale),
                      metrics_interval=5.0),
        routers=routers)


def run_cluster(cluster, rate=20.0, duration=30.0, seed=9):
    wl = EquiJoinWorkload(keys=UniformKeys(100), seed=seed)
    profile = ConstantRate(rate)
    report = cluster.run(wl.arrivals(profile, duration), duration)
    r, s = wl.materialise(profile, duration)
    return report, r, s


class TestMatrixCluster:
    def test_results_exact(self):
        cluster = make_cluster()
        report, r, s = run_cluster(cluster)
        check = check_exactly_once(
            cluster.engine.results, reference_join(r, s, PREDICATE, WINDOW))
        assert check.ok, check
        assert report.tuples_ingested == 600

    def test_pods_per_cell_and_router(self):
        cluster = make_cluster(rows=2, cols=3, routers=2)
        run_cluster(cluster, duration=10.0)
        names = set(cluster.pods)
        assert {"cell-0-0", "cell-1-2", "mrouter-mrouter0",
                "mrouter-mrouter1"} <= names
        assert len([n for n in names if n.startswith("cell-")]) == 6

    def test_cpu_accounted_on_cell_pods(self):
        cluster = make_cluster(cost_scale=100.0)
        run_cluster(cluster, duration=20.0)
        busy = [cluster.pods[name].total_busy_seconds
                for name in cluster.pods if name.startswith("cell-")]
        assert all(b > 0 for b in busy)

    def test_replication_tax_visible_in_cpu(self):
        """The matrix burns more total joiner CPU than the biclique on
        the identical workload — the √p store/probe replication."""
        from repro import BicliqueConfig
        from repro.cluster import SimulatedCluster

        matrix = make_cluster(cost_scale=100.0)
        run_cluster(matrix, duration=20.0)
        matrix_cpu = sum(p.total_busy_seconds
                         for n, p in matrix.pods.items()
                         if n.startswith("cell-"))

        biclique = SimulatedCluster(
            BicliqueConfig(window=WINDOW, r_joiners=2, s_joiners=2,
                           routers=1, routing="hash", archive_period=4.0,
                           punctuation_interval=0.2),
            PREDICATE,
            ClusterConfig(cost_model=CostModel().scaled(100.0),
                          metrics_interval=5.0))
        wl = EquiJoinWorkload(keys=UniformKeys(100), seed=9)
        biclique.run(wl.arrivals(ConstantRate(20.0), 20.0), 20.0)
        biclique_cpu = sum(
            p.total_busy_seconds
            for n, p in biclique.instrumentation.pods.items()
            if n.startswith("joiner-"))
        assert matrix_cpu > 1.3 * biclique_cpu

    def test_memory_sampled_per_cell(self):
        cluster = make_cluster()
        run_cluster(cluster, duration=20.0)
        sample = cluster.metrics.latest("cell-0-0")
        assert sample is not None
        assert sample.memory_mapped_bytes > 0

    def test_latency_grows_under_saturation(self):
        light = make_cluster(cost_scale=100.0)
        run_cluster(light, rate=10.0)
        heavy = make_cluster(cost_scale=2000.0)
        run_cluster(heavy, rate=30.0)
        assert heavy.engine.latency.summary().p99 > \
            3 * light.engine.latency.summary().p99
