"""Tests for repro.cluster.autoscaler (the HPA control loop logic)."""

import pytest

from repro.cluster import HorizontalPodAutoscaler, HpaConfig
from repro.errors import ConfigurationError


def make_hpa(**overrides):
    defaults = dict(metric="cpu", target_utilisation=0.8, min_replicas=1,
                    max_replicas=3, period=30.0, tolerance=0.1,
                    scale_down_cooldown=300.0)
    defaults.update(overrides)
    return HorizontalPodAutoscaler(HpaConfig(**defaults))


class TestConfig:
    def test_unknown_metric(self):
        with pytest.raises(ConfigurationError):
            HpaConfig(metric="gpu")

    def test_replica_bounds(self):
        with pytest.raises(ConfigurationError):
            HpaConfig(min_replicas=0)
        with pytest.raises(ConfigurationError):
            HpaConfig(min_replicas=5, max_replicas=3)

    def test_positive_target(self):
        with pytest.raises(ConfigurationError):
            HpaConfig(target_utilisation=0.0)


class TestScaleOut:
    def test_kubernetes_formula(self):
        """desired = ceil(current * utilisation / target): the thesis's
        opening state (1 replica at 145% with target 80%) must yield 2."""
        hpa = make_hpa()
        decision = hpa.evaluate(now=30.0, current_replicas=1,
                                mean_utilisation=1.45)
        assert decision.desired_replicas == 2
        assert decision.action == "scale-out"

    def test_large_overload_jumps_multiple_replicas(self):
        hpa = make_hpa(max_replicas=10)
        decision = hpa.evaluate(30.0, 2, 2.0)  # ratio 2.5 → ceil(5)
        assert decision.desired_replicas == 5

    def test_clamped_to_max(self):
        hpa = make_hpa(max_replicas=3)
        decision = hpa.evaluate(30.0, 3, 2.0)
        assert decision.desired_replicas == 3
        assert decision.action == "none"


class TestTolerance:
    def test_within_tolerance_no_action(self):
        hpa = make_hpa(tolerance=0.1)
        decision = hpa.evaluate(30.0, 2, 0.85)  # ratio 1.0625, within 10%
        assert decision.action == "none"

    def test_just_outside_tolerance_acts(self):
        hpa = make_hpa(tolerance=0.1)
        decision = hpa.evaluate(30.0, 2, 0.95)  # ratio ~1.19
        assert decision.action == "scale-out"


class TestScaleIn:
    def test_low_utilisation_scales_in_after_cooldown(self):
        hpa = make_hpa(scale_down_cooldown=100.0)
        decision = hpa.evaluate(now=500.0, current_replicas=3,
                                mean_utilisation=0.5)
        assert decision.desired_replicas == 2
        assert decision.action == "scale-in"

    def test_cooldown_blocks_scale_in_after_recent_change(self):
        hpa = make_hpa(scale_down_cooldown=300.0)
        hpa.evaluate(now=30.0, current_replicas=1, mean_utilisation=1.5)  # out
        decision = hpa.evaluate(now=60.0, current_replicas=2,
                                mean_utilisation=0.3)
        assert decision.action == "none"

    def test_scale_in_allowed_after_cooldown_expires(self):
        hpa = make_hpa(scale_down_cooldown=300.0)
        hpa.evaluate(now=30.0, current_replicas=1, mean_utilisation=1.5)
        decision = hpa.evaluate(now=400.0, current_replicas=2,
                                mean_utilisation=0.3)
        assert decision.action == "scale-in"

    def test_clamped_to_min(self):
        hpa = make_hpa(min_replicas=1, scale_down_cooldown=0.0)
        decision = hpa.evaluate(1000.0, 1, 0.01)
        assert decision.desired_replicas == 1


class TestMissingMetrics:
    def test_none_utilisation_no_action(self):
        hpa = make_hpa()
        decision = hpa.evaluate(30.0, 2, None)
        assert decision.action == "none"
        assert decision.observed_utilisation is None

    def test_none_utilisation_still_enforces_min(self):
        hpa = make_hpa(min_replicas=2)
        decision = hpa.evaluate(30.0, 1, None)
        assert decision.desired_replicas == 2


class TestHistory:
    def test_decisions_recorded(self):
        hpa = make_hpa()
        hpa.evaluate(30.0, 1, 1.5)
        hpa.evaluate(60.0, 2, 0.8)
        assert len(hpa.decisions) == 2
        assert hpa.decisions[0].time == 30.0
