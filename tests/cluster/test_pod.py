"""Tests for repro.cluster.pod (serial service, usage accounting)."""

import pytest

from repro.cluster import Pod, ResourceSpec
from repro.errors import ClusterError
from repro.metrics import MB, JvmHeapModel


def make_pod(cpu_request=0.5, cpu_limit=1.0):
    return Pod("p", ResourceSpec(cpu_request=cpu_request, cpu_limit=cpu_limit))


class TestSerialService:
    def test_idle_pod_starts_immediately(self):
        pod = make_pod()
        start, end = pod.schedule_work(now=1.0, service_seconds=0.5)
        assert start == 1.0
        assert end == 1.5

    def test_busy_pod_queues_fifo(self):
        pod = make_pod()
        pod.schedule_work(now=0.0, service_seconds=1.0)
        start, end = pod.schedule_work(now=0.1, service_seconds=0.5)
        assert start == 1.0
        assert end == 1.5

    def test_cpu_limit_stretches_wall_time(self):
        pod = make_pod(cpu_limit=0.5)
        start, end = pod.schedule_work(now=0.0, service_seconds=1.0)
        assert end - start == pytest.approx(2.0)

    def test_negative_service_rejected(self):
        with pytest.raises(ClusterError):
            make_pod().schedule_work(now=0.0, service_seconds=-1.0)

    def test_queue_delay(self):
        pod = make_pod()
        pod.schedule_work(now=0.0, service_seconds=2.0)
        assert pod.queue_delay(now=0.5) == pytest.approx(1.5)
        assert pod.queue_delay(now=5.0) == 0.0

    def test_work_items_counted(self):
        pod = make_pod()
        pod.schedule_work(0.0, 0.1)
        pod.schedule_work(0.0, 0.1)
        assert pod.work_items == 2


class TestCpuAccounting:
    def test_cpu_seconds_within_window(self):
        pod = make_pod(cpu_limit=1.0)
        pod.schedule_work(now=0.0, service_seconds=1.0)  # busy [0, 1]
        assert pod.cpu_seconds_between(0.0, 1.0) == pytest.approx(1.0)
        assert pod.cpu_seconds_between(0.0, 0.5) == pytest.approx(0.5)
        assert pod.cpu_seconds_between(2.0, 3.0) == 0.0

    def test_utilisation_relative_to_request(self):
        """50% actual usage of a 1-core limit is 100% of a 0.5 request —
        K8s HPA semantics, which is how the thesis sees 145%."""
        pod = make_pod(cpu_request=0.5, cpu_limit=1.0)
        pod.schedule_work(now=0.0, service_seconds=1.0)  # busy [0, 1]
        assert pod.cpu_utilisation(0.0, 1.0) == pytest.approx(2.0)
        assert pod.cpu_utilisation(0.0, 2.0) == pytest.approx(1.0)

    def test_utilisation_capped_by_limit_over_request(self):
        pod = make_pod(cpu_request=0.5, cpu_limit=1.0)
        for i in range(10):
            pod.schedule_work(now=0.0, service_seconds=1.0)
        # saturated: usage cannot exceed limit
        assert pod.cpu_utilisation(0.0, 1.0) <= 1.0 / 0.5 + 1e-9

    def test_prune_segments(self):
        pod = make_pod()
        pod.schedule_work(now=0.0, service_seconds=1.0)
        pod.prune_segments(before=2.0)
        assert pod.cpu_seconds_between(0.0, 1.0) == 0.0

    def test_empty_window(self):
        assert make_pod().cpu_utilisation(1.0, 1.0) == 0.0


class TestMemory:
    def test_memory_utilisation_uses_request(self):
        spec = ResourceSpec(memory_request=612 * MB)
        pod = Pod("p", spec, heap=JvmHeapModel(baseline_bytes=0))
        pod.update_memory(400 * MB)
        expected_mapped = pod.heap.mapped_bytes
        assert pod.memory_utilisation() == pytest.approx(
            expected_mapped / (612 * MB))

    def test_update_memory_returns_mapped(self):
        pod = Pod("p", ResourceSpec())
        mapped = pod.update_memory(100 * MB)
        assert mapped == pod.heap.mapped_bytes
