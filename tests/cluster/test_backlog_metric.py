"""Tests for the custom "backlog" autoscaling metric.

Thesis Figure 19 shows the HPA consuming either the resource metrics
API or the *custom metrics API*; §1.4 lists "requests per second etc."
as operator-chosen criteria.  The backlog metric autoscales on the
per-pod queued-work depth — the most direct congestion signal.
"""

from repro import BicliqueConfig, EquiJoinPredicate, TimeWindow
from repro.cluster import (
    ClusterConfig,
    CostModel,
    HorizontalPodAutoscaler,
    HpaConfig,
    MetricsServer,
    Pod,
    ResourceSpec,
    SimulatedCluster,
)
from repro.workloads import ConstantRate, EquiJoinWorkload, UniformKeys


class TestMetricsServerBacklog:
    def test_backlog_sampled_from_fn(self):
        server = MetricsServer()
        pod = Pod("p", ResourceSpec())
        depth = {"value": 7}
        server.register_pod(pod, backlog_fn=lambda: depth["value"])
        server.sample(now=1.0)
        assert server.latest("p").backlog == 7
        assert server.mean_utilisation(["p"], "backlog") == 7.0

    def test_backlog_defaults_to_zero(self):
        server = MetricsServer()
        server.register_pod(Pod("p", ResourceSpec()))
        server.sample(now=1.0)
        assert server.latest("p").backlog == 0


class TestHpaBacklogMetric:
    def test_accepted_by_config(self):
        config = HpaConfig(metric="backlog", target_utilisation=10.0)
        assert config.metric == "backlog"

    def test_raw_value_formula(self):
        """desired = ceil(current * mean_backlog / target_backlog)."""
        hpa = HorizontalPodAutoscaler(
            HpaConfig(metric="backlog", target_utilisation=10.0,
                      max_replicas=10))
        decision = hpa.evaluate(now=30.0, current_replicas=2,
                                mean_utilisation=25.0)
        assert decision.desired_replicas == 5


class TestClusterBacklogAutoscaling:
    def test_backlog_hpa_scales_out_saturated_deployment(self):
        workload = EquiJoinWorkload(keys=UniformKeys(100), seed=44)
        profile = ConstantRate(40.0)
        hpa = HpaConfig(metric="backlog", target_utilisation=5.0,
                        min_replicas=1, max_replicas=3, period=5.0)
        cluster = SimulatedCluster(
            BicliqueConfig(window=TimeWindow(seconds=20.0), r_joiners=1,
                           s_joiners=1, routers=1, routing="hash",
                           archive_period=4.0, punctuation_interval=0.2),
            EquiJoinPredicate("k", "k"),
            ClusterConfig(cost_model=CostModel().scaled(700.0),
                          metrics_interval=5.0, timeline_interval=10.0),
            hpa={"R": hpa, "S": hpa})
        report = cluster.run(workload.arrivals(profile, 40.0), 40.0,
                             rate_fn=profile.rate)
        # the saturated single joiner accumulates backlog → scale out
        assert any(e[2] == "out" for e in report.scale_events), \
            report.scale_events
        assert report.timeline[-1].r_replicas > 1

    def test_backlog_stays_put_when_unsaturated(self):
        workload = EquiJoinWorkload(keys=UniformKeys(100), seed=44)
        profile = ConstantRate(10.0)
        hpa = HpaConfig(metric="backlog", target_utilisation=5.0,
                        min_replicas=1, max_replicas=3, period=5.0)
        cluster = SimulatedCluster(
            BicliqueConfig(window=TimeWindow(seconds=20.0), r_joiners=1,
                           s_joiners=1, routers=1, routing="hash",
                           archive_period=4.0, punctuation_interval=0.2),
            EquiJoinPredicate("k", "k"),
            ClusterConfig(cost_model=CostModel(), metrics_interval=5.0),
            hpa={"R": hpa})
        report = cluster.run(workload.arrivals(profile, 30.0), 30.0)
        assert not report.scale_events
