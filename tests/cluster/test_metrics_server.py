"""Tests for repro.cluster.metrics_server."""

import pytest

from repro.cluster import MetricsServer, Pod, ResourceSpec
from repro.errors import ClusterError
from repro.metrics import MB, JvmHeapModel


def make_pod(name="p"):
    return Pod(name, ResourceSpec(cpu_request=0.5, cpu_limit=1.0),
               heap=JvmHeapModel(baseline_bytes=0))


class TestRegistry:
    def test_duplicate_pod_rejected(self):
        server = MetricsServer()
        pod = make_pod()
        server.register_pod(pod)
        with pytest.raises(ClusterError):
            server.register_pod(pod)

    def test_unregister_removes_samples(self):
        server = MetricsServer()
        pod = make_pod()
        server.register_pod(pod)
        server.sample(now=1.0)
        server.unregister_pod("p")
        assert server.latest("p") is None
        assert server.pod_names == []

    def test_invalid_interval(self):
        with pytest.raises(ClusterError):
            MetricsServer(sample_interval=0)

    def test_non_callable_live_bytes_fn_rejected(self):
        server = MetricsServer()
        with pytest.raises(ClusterError):
            server.register_pod(make_pod(), live_bytes_fn=1024)
        # The failed registration must not half-register the pod.
        assert server.pod_names == []

    def test_non_callable_backlog_fn_rejected(self):
        server = MetricsServer()
        with pytest.raises(ClusterError):
            server.register_pod(make_pod(), backlog_fn=[3])
        assert server.pod_names == []

    def test_callable_callbacks_accepted_and_sampled(self):
        server = MetricsServer()
        server.register_pod(make_pod(), live_bytes_fn=lambda: 2 * MB,
                            backlog_fn=lambda: 7)
        server.sample(now=1.0)
        assert server.latest("p").backlog == 7

    def test_export_metrics_publishes_latest_samples(self):
        from repro.obs import MetricsRegistry

        server = MetricsServer()
        server.register_pod(make_pod(), backlog_fn=lambda: 4)
        server.sample(now=1.0)
        registry = MetricsRegistry()
        server.export_metrics(registry)
        assert registry.value("repro_pod_backlog", {"pod": "p"}) == 4


class TestSampling:
    def test_cpu_sample_covers_interval(self):
        server = MetricsServer(sample_interval=10.0)
        pod = make_pod()
        server.register_pod(pod)
        pod.schedule_work(now=0.0, service_seconds=5.0)  # busy [0, 5]
        server.sample(now=10.0)
        sample = server.latest("p")
        # 5 cpu-seconds over 10s window, request 0.5 → 100%
        assert sample.cpu_utilisation == pytest.approx(1.0)

    def test_second_sample_covers_only_new_interval(self):
        server = MetricsServer(sample_interval=10.0)
        pod = make_pod()
        server.register_pod(pod)
        pod.schedule_work(now=0.0, service_seconds=5.0)
        server.sample(now=10.0)
        server.sample(now=20.0)  # idle during [10, 20]
        assert server.latest("p").cpu_utilisation == 0.0

    def test_memory_sample_uses_live_bytes_fn(self):
        server = MetricsServer()
        pod = make_pod()
        live = {"bytes": 0}
        server.register_pod(pod, live_bytes_fn=lambda: live["bytes"])
        live["bytes"] = 200 * MB
        server.sample(now=1.0)
        sample = server.latest("p")
        assert sample.memory_mapped_bytes >= 200 * MB

    def test_new_pod_measured_from_creation(self):
        """A pod created mid-interval must not be diluted by time it
        did not exist."""
        server = MetricsServer(sample_interval=10.0)
        server.sample(now=10.0)
        pod = make_pod()
        pod.created_at = 15.0
        server.register_pod(pod)
        pod.schedule_work(now=15.0, service_seconds=5.0)  # busy [15, 20]
        server.sample(now=20.0)
        # 5 cpu-seconds over its 5 alive seconds, request 0.5 → 200%
        assert server.latest("p").cpu_utilisation == pytest.approx(2.0)


class TestQueries:
    def test_mean_utilisation_cpu(self):
        server = MetricsServer(sample_interval=10.0)
        pods = [make_pod("a"), make_pod("b")]
        for pod in pods:
            server.register_pod(pod)
        pods[0].schedule_work(now=0.0, service_seconds=10.0)
        server.sample(now=10.0)
        mean = server.mean_utilisation(["a", "b"], "cpu")
        assert mean == pytest.approx((2.0 + 0.0) / 2)

    def test_mean_of_unsampled_is_none(self):
        server = MetricsServer()
        assert server.mean_utilisation(["ghost"], "cpu") is None

    def test_unknown_metric_rejected(self):
        server = MetricsServer()
        pod = make_pod()
        server.register_pod(pod)
        server.sample(now=1.0)
        with pytest.raises(ClusterError):
            server.mean_utilisation(["p"], "disk")
