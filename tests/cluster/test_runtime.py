"""Tests for repro.cluster.runtime (pods + engine + HPA integration)."""

import pytest

from repro import BicliqueConfig, EquiJoinPredicate, TimeWindow
from repro.cluster import (
    ClusterConfig,
    CostModel,
    HpaConfig,
    PodExecutor,
    Pod,
    ResourceSpec,
    SimulatedCluster,
)
from repro.harness import check_exactly_once, reference_join
from repro.simulation import Simulator
from repro.workloads import ConstantRate, EquiJoinWorkload, UniformKeys


def biclique_config(**overrides):
    defaults = dict(window=TimeWindow(seconds=20.0), r_joiners=1, s_joiners=1,
                    routers=1, routing="hash", archive_period=4.0,
                    punctuation_interval=0.5)
    defaults.update(overrides)
    return BicliqueConfig(**defaults)


class TestPodExecutor:
    def test_serial_fifo_execution(self):
        sim = Simulator()
        pod = Pod("p", ResourceSpec(cpu_request=1.0, cpu_limit=1.0))
        executor = PodExecutor(sim, pod)
        log = []
        executor.submit(lambda start: (log.append(("a", start)), 1.0)[1])
        executor.submit(lambda start: (log.append(("b", start)), 0.5)[1])
        sim.run()
        assert log == [("a", 0.0), ("b", 1.0)]
        assert pod.total_busy_seconds == pytest.approx(1.5)

    def test_later_submission_waits_for_backlog(self):
        sim = Simulator()
        pod = Pod("p", ResourceSpec(cpu_request=1.0, cpu_limit=1.0))
        executor = PodExecutor(sim, pod)
        starts = []
        executor.submit(lambda start: (starts.append(start), 2.0)[1])
        sim.schedule_at(0.5, lambda: executor.submit(
            lambda start: (starts.append(start), 0.1)[1]))
        sim.run()
        assert starts == [0.0, 2.0]


class TestClusterRun:
    def _run(self, duration=60.0, hpa=None, rate=20.0, **cfg_overrides):
        wl = EquiJoinWorkload(keys=UniformKeys(50), seed=11)
        profile = ConstantRate(rate)
        cluster = SimulatedCluster(
            biclique_config(**cfg_overrides), EquiJoinPredicate("k", "k"),
            ClusterConfig(cost_model=CostModel(), metrics_interval=5.0,
                          timeline_interval=10.0),
            hpa=hpa)
        report = cluster.run(wl.arrivals(profile, duration), duration,
                             rate_fn=profile.rate)
        return cluster, report, wl, profile

    def test_all_tuples_ingested(self):
        _, report, _, _ = self._run(duration=30.0)
        assert report.tuples_ingested == 600

    def test_results_match_reference(self):
        cluster, report, wl, profile = self._run(duration=30.0)
        r, s = wl.materialise(profile, 30.0)
        expected = reference_join(r, s, EquiJoinPredicate("k", "k"),
                                  TimeWindow(seconds=20.0))
        assert check_exactly_once(cluster.engine.results, expected).ok

    def test_timeline_recorded(self):
        _, report, _, _ = self._run(duration=30.0)
        assert len(report.timeline) == 3
        assert all(p.input_rate == 20.0 for p in report.timeline)
        assert report.timeline[0].r_replicas == 1

    def test_latency_includes_queueing_under_load(self):
        """With a hot cost model one joiner saturates: latency grows."""
        cluster_cold, _, _, _ = self._run(duration=20.0)
        wl = EquiJoinWorkload(keys=UniformKeys(50), seed=11)
        profile = ConstantRate(20.0)
        hot = SimulatedCluster(
            biclique_config(), EquiJoinPredicate("k", "k"),
            ClusterConfig(cost_model=CostModel().scaled(3000.0),
                          metrics_interval=5.0))
        hot.run(wl.arrivals(profile, 20.0), 20.0)
        cold_latency = cluster_cold.engine.latency.summary().p99
        hot_latency = hot.engine.latency.summary().p99
        assert hot_latency > cold_latency

    def test_hpa_scales_out_under_load(self):
        hpa = {"R": HpaConfig(metric="cpu", target_utilisation=0.8,
                              min_replicas=1, max_replicas=3, period=10.0),
               "S": HpaConfig(metric="cpu", target_utilisation=0.8,
                              min_replicas=1, max_replicas=3, period=10.0)}
        wl = EquiJoinWorkload(keys=UniformKeys(50), seed=11)
        profile = ConstantRate(40.0)
        cluster = SimulatedCluster(
            biclique_config(), EquiJoinPredicate("k", "k"),
            ClusterConfig(cost_model=CostModel().scaled(500.0),
                          metrics_interval=5.0, timeline_interval=10.0),
            hpa=hpa)
        report = cluster.run(wl.arrivals(profile, 60.0), 60.0,
                             rate_fn=profile.rate)
        assert any(e[2] == "out" for e in report.scale_events)
        assert report.timeline[-1].r_replicas > 1

    def test_hpa_results_remain_exact_across_scaling(self):
        hpa = {"R": HpaConfig(metric="cpu", target_utilisation=0.8,
                              min_replicas=1, max_replicas=3, period=10.0,
                              scale_down_cooldown=20.0)}
        wl = EquiJoinWorkload(keys=UniformKeys(50), seed=11)
        profile = ConstantRate(30.0)
        duration = 60.0
        cluster = SimulatedCluster(
            biclique_config(expiry_slack=1.0), EquiJoinPredicate("k", "k"),
            ClusterConfig(cost_model=CostModel().scaled(400.0),
                          metrics_interval=5.0),
            hpa=hpa)
        cluster.run(wl.arrivals(profile, duration), duration)
        r, s = wl.materialise(profile, duration)
        expected = reference_join(r, s, EquiJoinPredicate("k", "k"),
                                  TimeWindow(seconds=20.0))
        assert check_exactly_once(cluster.engine.results, expected).ok

    def test_pods_exist_per_component(self):
        cluster, _, _, _ = self._run(duration=10.0)
        names = set(cluster.instrumentation.pods)
        assert "joiner-R0" in names
        assert "joiner-S0" in names
        assert "router-router0" in names

    def test_memory_metric_tracks_window_state(self):
        cluster, report, _, _ = self._run(duration=30.0)
        mapped = [p.memory_mapped_mb_r for p in report.timeline
                  if p.memory_mapped_mb_r is not None]
        assert mapped, "memory series should be recorded"
        assert all(m >= 60.0 for m in mapped)  # baseline ~60 MB
