"""Chaos-schedule tests: crash/restart fault injection on the cluster.

The E14 failure experiment ported onto the full simulated cluster:
joiner and router pods crash mid-run per a declarative
:class:`~repro.simulation.faults.FaultPlan`, the restart supervisor
brings them back with exponential backoff, and the run executes under
a disorder-injecting network with the autoscaler active.  Without
window-replay recovery the blast radius is bounded (no duplicates,
window-bounded loss); with it, output is exactly once.
"""

import random

import pytest

from repro import (
    BicliqueConfig,
    EquiJoinPredicate,
    TimeWindow,
    merge_by_time,
)
from repro.cluster import HpaConfig, SimulatedCluster, SupervisorConfig
from repro.harness import check_exactly_once, reference_join
from repro.obs import Tracer, check_causal_chains
from repro.simulation import (
    CrashFault,
    FaultPlan,
    JitterNetwork,
    LossyNetwork,
    SeededRng,
)
from repro.workloads import ConstantRate, EquiJoinWorkload, UniformKeys

WINDOW = TimeWindow(seconds=5.0)
PREDICATE = EquiJoinPredicate("k", "k")
DURATION = 60.0
RATE = 40.0


def run_cluster(*, faults, network=None, replay_recovery=True, hpa=True,
                supervisor=None, tracer=None):
    wl = EquiJoinWorkload(keys=UniformKeys(20), seed=99)
    r, s = wl.materialise(ConstantRate(RATE), DURATION)
    arrivals = list(merge_by_time(r, s))
    kwargs = {} if tracer is None else {"tracer": tracer}
    cluster = SimulatedCluster(
        BicliqueConfig(window=WINDOW, r_joiners=2, s_joiners=2,
                       routing="hash", archive_period=1.0,
                       punctuation_interval=0.2,
                       replay_recovery=replay_recovery),
        PREDICATE,
        network=network or JitterNetwork(0.002, 0.001, SeededRng(7)),
        hpa=({"R": HpaConfig(min_replicas=1, max_replicas=4),
              "S": HpaConfig(min_replicas=1, max_replicas=4)}
             if hpa else None),
        faults=faults,
        supervisor=supervisor or SupervisorConfig(base_backoff=0.5),
        **kwargs)
    report = cluster.run(iter(arrivals), DURATION)
    expected = reference_join(r, s, PREDICATE, WINDOW)
    check = check_exactly_once(cluster.engine.results, expected)
    ts_of = {t.ident: t.ts for t in arrivals}
    return cluster, report, check, expected, ts_of


class TestJoinerCrashOnCluster:
    """E14's crash scenario under jitter + HPA (satellite port)."""

    CRASH_AT = 20.0

    def _faults(self, outage=1.0):
        return FaultPlan((CrashFault(at=self.CRASH_AT, target="R0",
                                     outage=outage),))

    def test_without_recovery_loss_is_window_bounded(self):
        cluster, report, check, expected, ts_of = run_cluster(
            faults=self._faults(), replay_recovery=False)
        # Never duplicates, never fabricated results.
        assert check.duplicates == 0
        assert check.spurious == 0
        # The crash was real: the unit's window partition is gone...
        assert check.missing > 0
        produced = {res.key for res in cluster.engine.results}
        for r_id, s_id in expected - produced:
            # ...but every lost pair involves pre-crash state, and
            # nothing past one window extent after the crash is lost.
            older = min(ts_of[r_id], ts_of[s_id])
            assert older < self.CRASH_AT
            newer = max(ts_of[r_id], ts_of[s_id])
            assert newer < self.CRASH_AT + WINDOW.seconds + 2.0

    def test_with_recovery_output_is_exactly_once(self):
        cluster, report, check, _, _ = run_cluster(faults=self._faults())
        assert check.ok, (check.duplicates, check.spurious, check.missing)
        restored = sum(j.stats.tuples_restored
                       for j in cluster.engine.joiners.values())
        assert restored > 0

    def test_fault_events_and_supervisor_counters(self):
        cluster, report, check, _, _ = run_cluster(
            faults=self._faults(outage=2.0),
            supervisor=SupervisorConfig(base_backoff=0.5, multiplier=2.0))
        assert report.fault_events == [
            (pytest.approx(20.0), "R0", "crash"),
            (pytest.approx(22.5), "R0", "restart"),  # outage + backoff
        ]
        assert report.restarts == {"R0": 1}

    def test_fault_beyond_duration_is_skipped(self):
        plan = FaultPlan((CrashFault(at=DURATION + 10.0, target="R0"),))
        _, report, check, _, _ = run_cluster(faults=plan)
        assert report.fault_events == []
        assert check.ok

    def test_unknown_target_recorded_as_skipped(self):
        plan = FaultPlan((CrashFault(at=10.0, target="nosuchpod"),))
        _, report, check, _, _ = run_cluster(faults=plan)
        assert (10.0, "nosuchpod", "skipped") in report.fault_events
        assert check.ok


class TestChaosSchedule:
    """The acceptance scenario: crash + restart mid-HPA-scaling under a
    lossy, duplicating, jittery network — output stays exactly once."""

    def test_exactly_once_under_full_chaos(self):
        lossy = LossyNetwork(
            JitterNetwork(0.002, 0.001, random.Random(7)),
            random.Random(13),
            drop_probability=0.02, duplicate_probability=0.02)
        plan = FaultPlan((CrashFault(at=20.0, target="R0", outage=1.0),
                          CrashFault(at=35.0, target="router0", outage=1.0)))
        cluster, report, check, _, _ = run_cluster(faults=plan,
                                                   network=lossy)
        # The network did inject faults...
        assert lossy.dropped > 0
        assert lossy.duplicated > 0
        assert cluster.broker.retransmissions > 0
        # ...both pods crashed and restarted...
        assert report.restarts == {"R0": 1, "router0": 1}
        events = [(target, event) for _, target, event in report.fault_events]
        assert events == [("R0", "crash"), ("R0", "restart"),
                          ("router0", "crash"), ("router0", "restart")]
        # ...and the join output is still exactly the reference result.
        assert check.ok, (check.duplicates, check.spurious, check.missing)

    def test_router_crash_alone_is_exactly_once(self):
        plan = FaultPlan((CrashFault(at=35.0, target="router0",
                                     outage=1.0),))
        cluster, report, check, _, _ = run_cluster(faults=plan)
        assert report.restarts == {"router0": 1}
        assert check.ok, (check.duplicates, check.spurious, check.missing)


class TestCausalChainIntegrity:
    """Every emitted result's trace must be one connected chain ending
    in exactly one ``emit`` span — even across crash + window-replay."""

    def test_chains_connected_under_crash_and_replay(self):
        tracer = Tracer()
        plan = FaultPlan((CrashFault(at=20.0, target="R0", outage=1.0),))
        cluster, report, check, _, _ = run_cluster(faults=plan,
                                                   tracer=tracer)
        # The scenario is the E14 one: exactly-once output held...
        assert check.ok, (check.duplicates, check.spurious, check.missing)
        assert report.restarts == {"R0": 1}
        # ...the replacement really was rebuilt through replay...
        kinds = tracer.counts_by_kind()
        assert kinds.get("replay", 0) > 0
        assert kinds["emit"] == len(cluster.engine.results)
        # ...and every result's trace is a connected chain: both input
        # tuples routed, probe at the emitting unit, stored partner
        # present via store or replay, no double emit, no orphan span.
        chains = check_causal_chains(tracer, cluster.engine.results)
        assert chains.ok, str(chains)
        assert chains.results == len(cluster.engine.results) > 0

    def test_stage_breakdown_attached_and_reconciles(self):
        tracer = Tracer()
        cluster, report, check, _, _ = run_cluster(faults=FaultPlan(()),
                                                   tracer=tracer)
        assert check.ok
        stages = report.stages
        assert stages is not None
        assert stages.samples == len(cluster.engine.results)
        assert stages.skipped == 0
        # The three stages tile the end-to-end latency.
        assert stages.reconciles(tolerance=0.05), (
            stages.stage_sum_mean(), stages.end_to_end.mean)
