"""Differential correctness: real processes vs the synchronous engine.

The tentpole acceptance gate of the multiprocess runtime: for each
seed × routing mode, a :class:`ParallelCluster` run over the same
interleaved arrival sequence must produce the *same result multiset*
as the single-process :class:`StreamJoinEngine` — clean, and with a
worker SIGKILLed mid-run (crash recovery must be invisible in the
output).  The kill cases additionally check the settled results
against the window-semantics reference join: zero lost, zero
duplicated (the at-least-once + log-on-ack argument, end to end).

Every case runs on both transports: the shared-memory data plane must
be output-transparent with the pipe baseline, clean and under kills
(fresh-ring respawn + replay).
"""

import pytest

from repro.core.biclique import BicliqueConfig
from repro.core.engine import StreamJoinEngine
from repro.core.predicates import BandJoinPredicate, EquiJoinPredicate
from repro.core.windows import TimeWindow
from repro.harness.reference import check_exactly_once, reference_join
from repro.parallel import ParallelCluster, ParallelConfig

from .conftest import make_arrivals

SEEDS = (3, 17, 29)

#: routing mode -> predicate whose "auto" resolution selects it.
PREDICATES = {
    "hash": EquiJoinPredicate("k", "k"),
    "random": BandJoinPredicate("v", "v", 1.0),
}


def make_config():
    return BicliqueConfig(window=TimeWindow(0.2), r_joiners=2, s_joiners=2,
                          routers=2, archive_period=0.05,
                          punctuation_interval=0.02)


def engine_keys(arrivals, predicate):
    engine = StreamJoinEngine(make_config(), predicate)
    results, _ = engine.run_interleaved(arrivals)
    return sorted(r.key for r in results)


def cluster_run(arrivals, predicate, *, kill_at=None, transport="shm"):
    # supervise_every small enough that the death is noticed while
    # tuples are still arriving; transfer_batch small enough that the
    # killed worker holds unacked batches.
    cluster = ParallelCluster(
        make_config(), predicate,
        ParallelConfig(workers=2, transfer_batch=8, supervise_every=16,
                       transport=transport))
    with cluster:
        for i, t in enumerate(arrivals):
            if kill_at is not None and i == kill_at:
                cluster.kill_worker("worker1")
            cluster.ingest(t)
        report = cluster.drain()
    return cluster.results, report


@pytest.mark.parametrize("transport", ("pipe", "shm"))
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("mode", sorted(PREDICATES))
class TestDifferential:
    def test_clean_run_matches_engine(self, seed, mode, transport):
        predicate = PREDICATES[mode]
        arrivals = make_arrivals(seed)
        results, report = cluster_run(arrivals, predicate,
                                      transport=transport)
        assert report.restarts == 0
        assert sorted(r.key for r in results) == engine_keys(
            arrivals, predicate)

    def test_worker_kill_matches_engine(self, seed, mode, transport):
        predicate = PREDICATES[mode]
        arrivals = make_arrivals(seed)
        results, report = cluster_run(arrivals, predicate, kill_at=200,
                                      transport=transport)
        assert report.restarts >= 1
        assert sorted(r.key for r in results) == engine_keys(
            arrivals, predicate)


class TestExactlyOnceUnderKill:
    """Satellite: zero lost / zero duplicated against the reference.

    The differential tests above compare against the engine; this one
    compares the kill run against the independent window-semantics
    oracle, so a bug shared by both runtimes cannot hide.
    """

    def test_kill_run_is_exactly_once_vs_reference(self):
        predicate = PREDICATES["hash"]
        arrivals = make_arrivals(17)
        results, report = cluster_run(arrivals, predicate, kill_at=200)
        assert report.restarts >= 1
        r_stream = [t for t in arrivals if t.relation == "R"]
        s_stream = [t for t in arrivals if t.relation == "S"]
        expected = reference_join(r_stream, s_stream, predicate,
                                  TimeWindow(0.2))
        check = check_exactly_once(results, expected)
        assert check.ok, f"lost or duplicated results: {check}"

    def test_kill_run_has_no_duplicate_result_keys(self):
        predicate = PREDICATES["random"]
        arrivals = make_arrivals(29)
        results, _ = cluster_run(arrivals, predicate, kill_at=200)
        keys = [r.key for r in results]
        assert len(keys) == len(set(keys)), "redelivery duplicated a result"
