"""Supervision edge cases: every fault survived, exactly-once intact.

Each scenario here is one of the adversarial schedules the chaos
subsystem generates, pinned as a deterministic regression: SIGSTOP'd
(hung-but-alive) workers, death mid-batch, corrupt frames from live
workers, duplicated settlement frames, restart-budget exhaustion, and
mixed-fault differential runs across seeds.
"""

import pytest

from repro.chaos import (ChaosConfig, ChaosInjector, CorruptFrame,
                         KillWorker, PipeStall, StallWorker)
from repro.core.biclique import BicliqueConfig
from repro.core.predicates import BandJoinPredicate, EquiJoinPredicate
from repro.core.windows import TimeWindow
from repro.errors import WorkerCrashError
from repro.harness.reference import check_exactly_once, reference_join
from repro.parallel import ParallelCluster, ParallelConfig

from .conftest import make_arrivals

WINDOW = TimeWindow(0.2)
HASH = EquiJoinPredicate("k", "k")
BAND = BandJoinPredicate("v", "v", 1.0)


def make_config():
    return BicliqueConfig(window=WINDOW, r_joiners=2, s_joiners=2,
                          routers=2, archive_period=0.05,
                          punctuation_interval=0.02)


def fast_parallel(**overrides):
    """Supervision tuned tight enough that every fault is noticed and
    recovered while tuples are still arriving."""
    defaults = dict(workers=2, transfer_batch=8, max_unacked=8,
                    supervise_every=16, heartbeat_interval=0.1,
                    heartbeat_timeout=0.5, command_deadline=0.3,
                    deadline_retries=1, restart_limit=6)
    defaults.update(overrides)
    return ParallelConfig(**defaults)


def assert_exactly_once(arrivals, results, predicate):
    r_stream = [t for t in arrivals if t.relation == "R"]
    s_stream = [t for t in arrivals if t.relation == "S"]
    expected = reference_join(r_stream, s_stream, predicate, WINDOW)
    check = check_exactly_once(results, expected)
    assert check.ok, f"lost or duplicated results: {check}"


def chaos_run(arrivals, predicate, plan, **overrides):
    injector = ChaosInjector(plan)
    cluster = ParallelCluster(make_config(), predicate,
                              fast_parallel(**overrides), chaos=injector)
    with cluster:
        report = cluster.run(arrivals)[1]
    return cluster, report


class TestSigstoppedWorker:
    def test_stopped_worker_is_killed_and_replayed_exactly_once(self):
        """A SIGSTOP'd worker that never resumes must be detected via
        the heartbeat/deadline escalation, killed, and its outstanding
        batches replayed — without losing or duplicating a result."""
        arrivals = make_arrivals(17)
        plan = ChaosConfig(faults=(
            StallWorker(at_tuple=150, worker=1, duration=30.0),))
        cluster, report = chaos_run(arrivals, HASH, plan)
        assert report.restarts >= 1
        assert report.redeliveries >= 1
        assert_exactly_once(arrivals, cluster.results, HASH)

    def test_briefly_stopped_worker_resumes_without_restart(self):
        """A stall shorter than every escalation threshold is absorbed:
        the worker resumes and settles its backlog, no replacement."""
        arrivals = make_arrivals(17)
        plan = ChaosConfig(faults=(
            StallWorker(at_tuple=150, worker=1, duration=0.05),))
        cluster, report = chaos_run(
            arrivals, HASH, plan,
            command_deadline=5.0, heartbeat_timeout=30.0)
        assert report.restarts == 0
        assert_exactly_once(arrivals, cluster.results, HASH)


class TestDeathMidBatch:
    def test_kill_with_unacked_batches_redelivers(self):
        """SIGKILL lands while transfer batches are outstanding: the
        unacked suffix must be redelivered to the replacement."""
        arrivals = make_arrivals(29)
        plan = ChaosConfig(faults=(KillWorker(at_tuple=200, worker=0),))
        cluster, report = chaos_run(arrivals, BAND, plan)
        assert report.restarts >= 1
        assert report.redeliveries >= 1, \
            "the kill landed with nothing in flight; tighten the batch"
        assert_exactly_once(arrivals, cluster.results, BAND)


class TestCorruptFrames:
    def test_corrupt_frame_quarantines_instead_of_crashing(self):
        """The tentpole acceptance case: a corrupt frame from a live
        worker must be survived via quarantine+respawn — never a
        coordinator crash, never a lost result."""
        arrivals = make_arrivals(3)
        plan = ChaosConfig(faults=(
            CorruptFrame(at_tuple=120, worker=0, mode="flip"),
            CorruptFrame(at_tuple=220, worker=1, mode="truncate"),))
        cluster, report = chaos_run(arrivals, HASH, plan)
        assert cluster.corrupt_frames >= 1
        assert report.quarantines >= 1
        assert report.restarts >= report.quarantines
        assert_exactly_once(arrivals, cluster.results, HASH)

    def test_duplicate_settlement_frames_are_redundant_acks(self):
        """A duplicated BatchDone must settle once and count the second
        copy as a redundant ack — not raise, not double results."""
        arrivals = make_arrivals(17)
        plan = ChaosConfig(faults=(
            CorruptFrame(at_tuple=100, worker=0, mode="duplicate",
                         count=3),))
        cluster, report = chaos_run(arrivals, HASH, plan)
        assert cluster.redundant_acks >= 1
        assert report.restarts == 0  # duplication is not a crash
        assert_exactly_once(arrivals, cluster.results, HASH)

    def test_pipe_stall_is_survived(self):
        """Withheld output frames: either the worker is declared hung
        and replayed, or the frames land late as redundant acks —
        both must keep the results exactly-once."""
        arrivals = make_arrivals(29)
        plan = ChaosConfig(faults=(
            PipeStall(at_tuple=150, worker=1, duration=0.4),))
        cluster, _ = chaos_run(arrivals, HASH, plan)
        assert_exactly_once(arrivals, cluster.results, HASH)


class TestRestartBudget:
    def test_respawn_storm_hits_the_limit(self):
        """More kills than the budget allows must fail loudly with
        WorkerCrashError, not loop forever."""
        arrivals = make_arrivals(17)
        plan = ChaosConfig(faults=tuple(
            KillWorker(at_tuple=at, worker=0)
            for at in (60, 120, 180, 240, 300)))
        injector = ChaosInjector(plan)
        cluster = ParallelCluster(
            make_config(), HASH, fast_parallel(restart_limit=2),
            chaos=injector)
        with cluster:
            with pytest.raises(WorkerCrashError):
                cluster.run(arrivals)

    def test_zero_budget_fails_on_first_crash(self):
        arrivals = make_arrivals(17)
        cluster = ParallelCluster(make_config(), HASH,
                                  fast_parallel(restart_limit=0))
        with cluster:
            with pytest.raises(WorkerCrashError):
                for i, t in enumerate(arrivals):
                    if i == 100:
                        cluster.kill_worker("worker0")
                    cluster.ingest(t)
                cluster.drain()


@pytest.mark.parametrize("seed", (3, 17, 29))
class TestMixedFaultDifferential:
    def test_mixed_kill_and_stall_plan_is_exact(self, seed):
        """Satellite: differential exactness across seeds under a mixed
        SIGKILL+SIGSTOP schedule hitting both workers."""
        arrivals = make_arrivals(seed)
        plan = ChaosConfig(faults=(
            StallWorker(at_tuple=100, worker=0, duration=30.0),
            KillWorker(at_tuple=220, worker=1),))
        cluster, report = chaos_run(arrivals, HASH, plan)
        assert report.restarts >= 2
        assert_exactly_once(arrivals, cluster.results, HASH)
