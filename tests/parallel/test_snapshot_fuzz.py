"""Property-based round-trip fuzz of the migration snapshot contract.

The handoff in :meth:`ParallelCluster._cutover` rests on one claim:
once a unit's in-flight deliveries are settled, the log-on-ack
:class:`~repro.core.recovery.ReplayLog` snapshot plus redelivery of
the still-unacked batches reconstructs a joiner that produces *exactly*
the results the original would have — no loss, no duplication, for any
interleaving of stores and probes on either side of the cut.

This suite states that claim as a hypothesis property: a random acked
prefix (recorded in the log as each store settles) and a random
in-flight suffix (never logged), an arbitrary cut between them, tight
or loose windows, hash or band predicates.  The restored joiner must
emit a result multiset identical to what the original emits over the
same suffix.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batching import EnvelopeBatch
from repro.core.joiner import Joiner
from repro.core.ordering import KIND_JOIN, KIND_STORE, Envelope
from repro.core.predicates import BandJoinPredicate, EquiJoinPredicate
from repro.core.recovery import ReplayLog
from repro.core.tuples import StreamTuple
from repro.core.windows import TimeWindow

UNIT = "R0"

# One logical event: (is_store, key, value, timestamp-step).  Stores
# carry R-tuples (this unit's side), probes carry S-tuples.
events = st.lists(
    st.tuples(st.booleans(),
              st.integers(min_value=0, max_value=4),
              st.integers(min_value=0, max_value=6),
              st.floats(min_value=0.001, max_value=0.05)),
    max_size=60)

windows = st.sampled_from([0.05, 0.5, 1000.0])
predicates = st.sampled_from(["hash", "band"])


def make_joiner(window_seconds, kind, sink):
    predicate = (EquiJoinPredicate("k", "k") if kind == "hash"
                 else BandJoinPredicate("v", "v", 1.0))
    return Joiner(UNIT, "R", predicate, TimeWindow(window_seconds),
                  window_seconds / 4, sink.append, ordered=False)


def build_envelopes(evts, *, start_ts=0.0, start_counter=0):
    """Materialise drawn events as router-stamped envelopes."""
    envelopes = []
    ts = start_ts
    seqs = {"R": 0, "S": 0}
    for counter, (is_store, key, value, step) in enumerate(
            evts, start=start_counter):
        ts += step
        relation = "R" if is_store else "S"
        t = StreamTuple(relation=relation, ts=ts,
                        values={"k": key, "v": value},
                        seq=seqs[relation])
        seqs[relation] += 1
        envelopes.append(Envelope(
            kind=KIND_STORE if is_store else KIND_JOIN,
            router_id="router0", counter=counter, tuple=t))
    return envelopes, ts


def result_multiset(results):
    return Counter((res.r.ident, res.s.ident) for res in results)


class TestSnapshotRoundTrip:
    @given(acked=events, in_flight=events, window=windows, kind=predicates)
    @settings(max_examples=80, deadline=None)
    def test_restore_is_result_multiset_identical(
            self, acked, in_flight, window, kind):
        """Snapshot + redelivered suffix ≡ the uninterrupted original."""
        log = ReplayLog()
        sink_a: list = []
        original = make_joiner(window, kind, sink_a)

        prefix, ts = build_envelopes(acked)
        for env in prefix:
            original.on_envelope(env)
            if env.kind == KIND_STORE:
                # Log-on-ack: unordered joiners settle synchronously,
                # so processing the envelope *is* its acknowledgement.
                log.record(UNIT, env)

        sink_b: list = []
        restored = make_joiner(window, kind, sink_b)
        restored.restore(log.snapshot(UNIT))

        suffix, _ = build_envelopes(in_flight, start_ts=ts,
                                    start_counter=len(prefix))
        cut_a = len(sink_a)
        # Deliver the suffix in transport batches, as the runtime does.
        for i in range(0, len(suffix), 8):
            batch = EnvelopeBatch(tuple(suffix[i:i + 8]))
            original.on_batch(batch)
            restored.on_batch(batch)

        assert result_multiset(sink_a[cut_a:]) == result_multiset(sink_b)

    @given(acked=events, window=windows)
    @settings(max_examples=40, deadline=None)
    def test_restored_window_state_matches_the_log(self, acked, window):
        """Every logged store — and nothing else — lands in the
        restored index (expiry aside: pick the loose window)."""
        log = ReplayLog()
        sink: list = []
        original = make_joiner(window, "hash", sink)
        prefix, _ = build_envelopes(acked)
        stores = 0
        for env in prefix:
            original.on_envelope(env)
            if env.kind == KIND_STORE:
                log.record(UNIT, env)
                stores += 1

        restored = make_joiner(window, "hash", [])
        restored.restore(log.snapshot(UNIT))
        assert restored.stats.tuples_restored == stores
        if window >= 1000.0:  # no expiry in range: exact state match
            assert restored.stored_tuples == original.stored_tuples
