"""Tests for the worker process command loop and its coordinator handle.

These spawn one real worker process via :class:`WorkerHandle` and speak
the command protocol directly — below :class:`ParallelCluster`, so each
protocol obligation (one BatchDone per Deliver, Pong, SnapshotResult,
Restore, Drained, the failure frame) is checked in isolation.
"""

import multiprocessing as mp
import time

import pytest

from repro.core.batching import EnvelopeBatch
from repro.core.ordering import KIND_JOIN, KIND_STORE, Envelope
from repro.core.predicates import EquiJoinPredicate
from repro.core.tuples import StreamTuple
from repro.core.windows import TimeWindow
from repro.parallel import (
    BatchDone,
    Deliver,
    Drain,
    Drained,
    Ping,
    Pong,
    Punctuate,
    Restore,
    Snapshot,
    SnapshotResult,
    Stop,
    UnitSpec,
    WorkerFailure,
    WorkerHandle,
    WorkerSpec,
    decode_frame,
    encode_frame,
)

TIMEOUT = 20.0


def make_handle(units=(UnitSpec("R0", "R"), UnitSpec("S0", "S"))):
    spec = WorkerSpec(
        worker_id="workerT", units=tuple(units),
        predicate=EquiJoinPredicate("k", "k"), window=TimeWindow(60.0),
        archive_period=10.0, epoch=time.time())
    return WorkerHandle(spec, mp.get_context())


def recv_frame(handle, timeout=TIMEOUT):
    assert handle.conn.poll(timeout), "no frame from worker in time"
    return decode_frame(handle.conn.recv_bytes())


def store(unit_seq, rel, ts, key, counter):
    t = StreamTuple(relation=rel, ts=ts, values={"k": key}, seq=unit_seq)
    return Envelope(kind=KIND_STORE, router_id="router0", counter=counter,
                    tuple=t)


def probe(unit_seq, rel, ts, key, counter):
    t = StreamTuple(relation=rel, ts=ts, values={"k": key}, seq=unit_seq)
    return Envelope(kind=KIND_JOIN, router_id="router0", counter=counter,
                    tuple=t)


@pytest.fixture
def handle():
    h = make_handle()
    yield h
    try:
        h.send(Stop())
    except (OSError, ValueError):
        pass
    h.close_channels()
    if h.alive:
        h.kill()


class TestCommandLoop:
    def test_deliver_yields_one_batchdone_with_results(self, handle):
        handle.deliver(Deliver(seq=0, unit_id="R0", batch=EnvelopeBatch((
            store(0, "R", 1.0, 5, 0),))))
        done = recv_frame(handle)
        assert isinstance(done, BatchDone)
        assert done.seq == 0 and done.unit_id == "R0"
        assert done.results == ()  # store only, nothing to join yet
        handle.ack(done.seq)

        handle.deliver(Deliver(seq=1, unit_id="R0", batch=EnvelopeBatch((
            probe(0, "S", 1.1, 5, 1),))))
        done = recv_frame(handle)
        assert done.seq == 1 and len(done.results) == 1
        assert done.results[0].r["k"] == 5
        handle.ack(done.seq)
        assert not handle.unacked

    def test_ping_pong(self, handle):
        handle.send(Ping(seq=3))
        pong = recv_frame(handle)
        assert isinstance(pong, Pong) and pong.seq == 3

    def test_snapshot_reports_per_unit_state(self, handle):
        handle.deliver(Deliver(seq=0, unit_id="R0", batch=EnvelopeBatch((
            store(0, "R", 1.0, 1, 0), store(1, "R", 1.2, 2, 1)))))
        recv_frame(handle)
        handle.send(Snapshot())
        snap = recv_frame(handle)
        assert isinstance(snap, SnapshotResult)
        assert snap.units["R0"]["stored"] == 2
        assert snap.units["S0"]["stored"] == 0

    def test_restore_rebuilds_store_state(self, handle):
        handle.send(Restore(unit_id="R0", envelopes=(
            store(0, "R", 1.0, 7, 0), store(1, "R", 1.1, 7, 1))))
        # Probing after restore must match the restored tuples.
        handle.deliver(Deliver(seq=0, unit_id="R0", batch=EnvelopeBatch((
            probe(0, "S", 1.2, 7, 2),))))
        done = recv_frame(handle)
        assert len(done.results) == 2

    def test_punctuation_is_fanned_to_all_units(self, handle):
        handle.send(Punctuate(router_id="router0", counter=10))
        handle.send(Drain())
        drained = recv_frame(handle)
        assert isinstance(drained, Drained)
        for unit_id in ("R0", "S0"):
            assert drained.stats[unit_id]["punctuations_received"] == 1

    def test_drained_carries_metrics_and_stats(self, handle):
        handle.deliver(Deliver(seq=0, unit_id="R0", batch=EnvelopeBatch((
            store(0, "R", 1.0, 4, 0),))))
        recv_frame(handle)
        handle.send(Drain())
        drained = recv_frame(handle)
        assert drained.worker_id == "workerT"
        assert drained.stats["R0"]["tuples_stored"] == 1
        names = {entry[0] for entry in drained.metrics}
        assert "repro_worker_units" in names
        assert "repro_worker_commands_total" in names

    def test_logic_error_produces_failure_frame(self, handle):
        # An unknown unit id is a coordinator bug, not a crash: the
        # worker forwards the traceback instead of dying silently.
        handle.deliver(Deliver(seq=0, unit_id="NOPE", batch=EnvelopeBatch((
            store(0, "R", 1.0, 1, 0),))))
        failure = recv_frame(handle)
        assert isinstance(failure, WorkerFailure)
        assert failure.worker_id == "workerT"
        assert "KeyError" in failure.message


class TestHandleLifecycle:
    def test_kill_and_respawn_keeps_ledger_and_seq(self, handle):
        handle.deliver(Deliver(seq=0, unit_id="R0", batch=EnvelopeBatch((
            store(0, "R", 1.0, 9, 0),))))
        recv_frame(handle)  # settled, but not acked by us: stays unacked
        handle.kill()
        assert not handle.alive
        before = dict(handle.unacked)
        handle.respawn()
        assert handle.alive
        assert handle.restarts == 1
        assert handle.unacked == before
        assert handle.redeliver_outstanding() == 1
        done = recv_frame(handle)
        assert done.seq == 0

    def test_dead_worker_pipe_reads_eof(self, handle):
        handle.kill()
        # The parent closed its copy of the write end at spawn time, so
        # the child's death leaves zero writers: recv must raise EOF
        # rather than block forever.
        deadline = time.monotonic() + TIMEOUT
        while time.monotonic() < deadline:
            try:
                if handle.conn.poll(0.1):
                    handle.conn.recv_bytes()
            except (EOFError, OSError):
                break
        else:
            pytest.fail("no EOF from dead worker's pipe")

    def test_outstanding_store_keys_filters_by_unit_and_kind(self, handle):
        handle.unacked[0] = Deliver(seq=0, unit_id="R0", batch=EnvelopeBatch((
            store(0, "R", 1.0, 1, 11), probe(1, "S", 1.1, 1, 12))))
        handle.unacked[1] = Deliver(seq=1, unit_id="S0", batch=EnvelopeBatch((
            store(0, "S", 1.2, 2, 13),)))
        assert handle.outstanding_store_keys("R0") == {(11, "router0")}
        assert handle.outstanding_store_keys("S0") == {(13, "router0")}

    def test_silent_for_and_note_contact(self, handle):
        handle.note_contact()
        assert handle.silent_for() < 1.0
        handle.maybe_ping(0.0)  # interval elapsed: ping goes out
        assert handle.ping_sent is not None
        pong = recv_frame(handle)
        assert isinstance(pong, Pong)
        handle.note_contact()
        assert handle.ping_sent is None
