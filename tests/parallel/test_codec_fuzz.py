"""Property-based hardening of the wire codec.

The contract under attack: :func:`try_decode_frame` must *never* raise
on arbitrary bytes, and must never return a corrupt payload as valid —
any mutation that survives header validation has to be caught by the
CRC.  These properties are what lets the coordinator treat every
corrupt frame as a clean quarantine signal instead of a crash.
"""

import struct
import zlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.codec import (HEADER_SIZE, MAGIC, VERSION, encode_frame,
                                  try_decode_frame)
from repro.parallel.commands import BatchDone, Pong

#: A few representative wire payloads (cheap to build per example).
PAYLOADS = st.sampled_from([
    Pong(seq=7),
    BatchDone(seq=3, unit_id="R0", results=()),
    {"nested": [1, 2, (3, 4)], "s": "text"},
    list(range(64)),
])


class TestArbitraryBytes:
    @given(st.binary(max_size=512))
    @settings(max_examples=300)
    def test_never_raises_on_random_bytes(self, data):
        ok, obj = try_decode_frame(data)
        if not ok:
            assert obj is None

    @given(st.binary(max_size=512))
    @settings(max_examples=200)
    def test_random_bytes_with_valid_magic_still_safe(self, tail):
        # Jump the first hurdle (magic + version) deliberately so the
        # fuzz reaches the length/CRC/unpickle layers.
        ok, obj = try_decode_frame(MAGIC + bytes([VERSION]) + tail)
        if not ok:
            assert obj is None


class TestMutatedFrames:
    @given(PAYLOADS, st.data())
    @settings(max_examples=300)
    def test_byte_flip_never_yields_a_wrong_payload(self, payload, data):
        frame = encode_frame(payload)
        pos = data.draw(st.integers(0, len(frame) - 1))
        bit = data.draw(st.integers(0, 7))
        mutated = (frame[:pos] + bytes([frame[pos] ^ (1 << bit)])
                   + frame[pos + 1:])
        ok, obj = try_decode_frame(mutated)
        if ok:
            # The only acceptable decode of a mutated frame is one
            # whose mutation landed in the header's don't-care bytes
            # (the three reserved pad bytes) — the payload must match.
            assert obj == payload
            assert 5 <= pos <= 7  # inside the 3 reserved pad bytes

    @given(PAYLOADS, st.data())
    @settings(max_examples=300)
    def test_truncation_never_decodes(self, payload, data):
        frame = encode_frame(payload)
        cut = data.draw(st.integers(0, len(frame) - 1))
        ok, obj = try_decode_frame(frame[:cut])
        assert not ok and obj is None

    @given(PAYLOADS, PAYLOADS, st.data())
    @settings(max_examples=200)
    def test_spliced_frames_never_decode_as_either(self, a, b, data):
        """A frame whose header comes from one write and payload from
        another (a torn pipe write) must be rejected unless the splice
        reproduces a full valid frame."""
        fa, fb = encode_frame(a), encode_frame(b)
        cut = data.draw(st.integers(1, min(len(fa), len(fb)) - 1))
        spliced = fa[:cut] + fb[cut:]
        ok, obj = try_decode_frame(spliced)
        if ok:
            # Only possible when the splice rebuilt a valid frame
            # (identical prefixes/suffixes); then it must equal one of
            # the originals, never a chimera.
            assert obj == a or obj == b

    @given(PAYLOADS)
    @settings(max_examples=50)
    def test_wrong_version_rejected_before_unpickling(self, payload):
        frame = encode_frame(payload)
        mutated = frame[:4] + bytes([VERSION + 1]) + frame[5:]
        assert try_decode_frame(mutated) == (False, None)

    @given(PAYLOADS, st.binary(min_size=1, max_size=32))
    @settings(max_examples=100)
    def test_payload_with_fixed_up_length_fails_the_crc(self, payload,
                                                        garbage):
        """An attacker (or a very unlucky tear) that fixes the length
        field to match a garbled payload must still be stopped by the
        CRC unless the CRC was recomputed too."""
        original = encode_frame(payload)
        body = original[HEADER_SIZE:] + garbage
        crc = struct.unpack_from(">I", original, 12)[0]
        header = struct.pack(">4sB3xII", MAGIC, VERSION, len(body), crc)
        ok, _ = try_decode_frame(header + body)
        assert not ok


class TestRoundTrip:
    @given(PAYLOADS)
    @settings(max_examples=50)
    def test_clean_frames_round_trip(self, payload):
        ok, obj = try_decode_frame(encode_frame(payload))
        assert ok and obj == payload

    def test_recomputed_crc_over_garbage_decodes_nothing_valid(self):
        """Even a fully consistent header cannot make unpickling of
        garbage raise out of try_decode_frame."""
        body = b"\x80\x05garbage-not-a-pickle"
        header = struct.pack(">4sB3xII", MAGIC, VERSION, len(body),
                             zlib.crc32(body))
        ok, obj = try_decode_frame(header + body)
        assert not ok and obj is None
