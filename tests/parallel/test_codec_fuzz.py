"""Property-based hardening of the wire codec and the shm batch format.

The contract under attack: :func:`try_decode_frame` and
:func:`try_unpack_record` must *never* raise on arbitrary bytes, and
must never return a corrupt payload as valid — any mutation that
survives header validation has to be caught by the CRC.  These
properties are what lets the coordinator treat every corrupt frame (or
ring record) as a clean quarantine signal instead of a crash.
"""

import struct
import zlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batching import EnvelopeBatch
from repro.core.ordering import KIND_JOIN, KIND_STORE, Envelope
from repro.core.tuples import JoinResult, StreamTuple
from repro.parallel.codec import (HEADER_SIZE, MAGIC, VERSION, encode_frame,
                                  try_decode_frame)
from repro.parallel.commands import BatchDone, Deliver, Pong
from repro.parallel.shm import (SHM_MAGIC, SHM_VERSION, ShmRing,
                                pack_record, try_unpack_record)

#: A few representative wire payloads (cheap to build per example).
PAYLOADS = st.sampled_from([
    Pong(seq=7),
    BatchDone(seq=3, unit_id="R0", results=()),
    {"nested": [1, 2, (3, 4)], "s": "text"},
    list(range(64)),
])


class TestArbitraryBytes:
    @given(st.binary(max_size=512))
    @settings(max_examples=300)
    def test_never_raises_on_random_bytes(self, data):
        ok, obj = try_decode_frame(data)
        if not ok:
            assert obj is None

    @given(st.binary(max_size=512))
    @settings(max_examples=200)
    def test_random_bytes_with_valid_magic_still_safe(self, tail):
        # Jump the first hurdle (magic + version) deliberately so the
        # fuzz reaches the length/CRC/unpickle layers.
        ok, obj = try_decode_frame(MAGIC + bytes([VERSION]) + tail)
        if not ok:
            assert obj is None


class TestMutatedFrames:
    @given(PAYLOADS, st.data())
    @settings(max_examples=300)
    def test_byte_flip_never_yields_a_wrong_payload(self, payload, data):
        frame = encode_frame(payload)
        pos = data.draw(st.integers(0, len(frame) - 1))
        bit = data.draw(st.integers(0, 7))
        mutated = (frame[:pos] + bytes([frame[pos] ^ (1 << bit)])
                   + frame[pos + 1:])
        ok, obj = try_decode_frame(mutated)
        if ok:
            # The only acceptable decode of a mutated frame is one
            # whose mutation landed in the header's don't-care bytes
            # (the three reserved pad bytes) — the payload must match.
            assert obj == payload
            assert 5 <= pos <= 7  # inside the 3 reserved pad bytes

    @given(PAYLOADS, st.data())
    @settings(max_examples=300)
    def test_truncation_never_decodes(self, payload, data):
        frame = encode_frame(payload)
        cut = data.draw(st.integers(0, len(frame) - 1))
        ok, obj = try_decode_frame(frame[:cut])
        assert not ok and obj is None

    @given(PAYLOADS, PAYLOADS, st.data())
    @settings(max_examples=200)
    def test_spliced_frames_never_decode_as_either(self, a, b, data):
        """A frame whose header comes from one write and payload from
        another (a torn pipe write) must be rejected unless the splice
        reproduces a full valid frame."""
        fa, fb = encode_frame(a), encode_frame(b)
        cut = data.draw(st.integers(1, min(len(fa), len(fb)) - 1))
        spliced = fa[:cut] + fb[cut:]
        ok, obj = try_decode_frame(spliced)
        if ok:
            # Only possible when the splice rebuilt a valid frame
            # (identical prefixes/suffixes); then it must equal one of
            # the originals, never a chimera.
            assert obj == a or obj == b

    @given(PAYLOADS)
    @settings(max_examples=50)
    def test_wrong_version_rejected_before_unpickling(self, payload):
        frame = encode_frame(payload)
        mutated = frame[:4] + bytes([VERSION + 1]) + frame[5:]
        assert try_decode_frame(mutated) == (False, None)

    @given(PAYLOADS, st.binary(min_size=1, max_size=32))
    @settings(max_examples=100)
    def test_payload_with_fixed_up_length_fails_the_crc(self, payload,
                                                        garbage):
        """An attacker (or a very unlucky tear) that fixes the length
        field to match a garbled payload must still be stopped by the
        CRC unless the CRC was recomputed too."""
        original = encode_frame(payload)
        body = original[HEADER_SIZE:] + garbage
        crc = struct.unpack_from(">I", original, 12)[0]
        header = struct.pack(">4sB3xII", MAGIC, VERSION, len(body), crc)
        ok, _ = try_decode_frame(header + body)
        assert not ok


def _tuple(relation, ts, seq, key):
    return StreamTuple(relation=relation, ts=ts,
                       values={"k": key, "v": float(key)}, seq=seq)


def _deliver(n):
    shared = _tuple("R", 0.5, 0, 3)
    envelopes = tuple(
        Envelope(kind=KIND_JOIN if i % 2 else KIND_STORE,
                 router_id=f"router{i % 2}", counter=i,
                 tuple=shared if i % 3 == 0 else _tuple("R", float(i), i, i))
        for i in range(n))
    return Deliver(seq=n, unit_id="R0", batch=EnvelopeBatch(envelopes))


def _done(n):
    r, s = _tuple("R", 1.0, 1, 2), _tuple("S", 2.0, 2, 2)
    return BatchDone(seq=n, unit_id="S1", busy=0.01, results=tuple(
        JoinResult(r=r, s=s, ts=2.0 + i, produced_at=3.0 + i,
                   producer=f"J{i % 2}") for i in range(n)))


def _record(obj):
    buf = bytearray()
    assert pack_record(obj, buf)
    return bytes(buf)


#: Representative shm data-plane records (both types, several sizes).
SHM_RECORDS = st.sampled_from([
    _record(obj) for obj in
    (_deliver(1), _deliver(8), _done(0), _done(1), _done(8))])


class TestShmRecordFuzz:
    """The shm analogue of the frame properties above: the packed batch
    format must reject — and never raise on — anything but a pristine
    record."""

    @given(st.binary(max_size=512))
    @settings(max_examples=300)
    def test_never_raises_on_random_bytes(self, data):
        ok, obj = try_unpack_record(data)
        if not ok:
            assert obj is None

    @given(st.binary(max_size=512))
    @settings(max_examples=200)
    def test_random_bytes_with_valid_magic_still_safe(self, tail):
        ok, obj = try_unpack_record(
            SHM_MAGIC + bytes([SHM_VERSION]) + tail)
        if not ok:
            assert obj is None

    @given(SHM_RECORDS, st.data())
    @settings(max_examples=300)
    def test_bit_flip_never_yields_a_wrong_payload(self, record, data):
        pos = data.draw(st.integers(0, len(record) - 1))
        bit = data.draw(st.integers(0, 7))
        mutated = (record[:pos] + bytes([record[pos] ^ (1 << bit)])
                   + record[pos + 1:])
        ok, obj = try_unpack_record(mutated)
        if ok:
            # Only the header's reserved pad (bytes 6-7) is don't-care;
            # a decode after any other flip would be corrupt data.
            clean_ok, clean = try_unpack_record(record)
            assert clean_ok and obj == clean
            assert 6 <= pos <= 7

    @given(SHM_RECORDS, st.data())
    @settings(max_examples=300)
    def test_truncation_never_decodes(self, record, data):
        cut = data.draw(st.integers(0, len(record) - 1))
        assert try_unpack_record(record[:cut]) == (False, None)

    @given(SHM_RECORDS, SHM_RECORDS, st.data())
    @settings(max_examples=200)
    def test_spliced_records_never_decode_as_a_chimera(self, a, b, data):
        cut = data.draw(st.integers(1, min(len(a), len(b)) - 1))
        ok, obj = try_unpack_record(a[:cut] + b[cut:])
        if ok:
            assert obj in (try_unpack_record(a)[1], try_unpack_record(b)[1])

    @given(SHM_RECORDS)
    @settings(max_examples=25)
    def test_wrong_version_rejected(self, record):
        mutated = record[:4] + bytes([SHM_VERSION + 1]) + record[5:]
        assert try_unpack_record(mutated) == (False, None)

    @given(SHM_RECORDS, st.binary(min_size=1, max_size=32))
    @settings(max_examples=100)
    def test_trailing_garbage_with_fixed_length_fails_the_crc(
            self, record, garbage):
        body = record[16:] + garbage
        header = struct.pack("<4sBBHII", SHM_MAGIC, SHM_VERSION,
                             record[5], 0,
                             len(body), struct.unpack_from("<I", record, 12)[0])
        assert try_unpack_record(header + body) == (False, None)

    @given(SHM_RECORDS)
    @settings(max_examples=25)
    def test_clean_records_round_trip(self, record):
        ok, obj = try_unpack_record(record)
        assert ok and obj is not None


class TestTornRing:
    """A writer killed mid-publish leaves at worst a prefix of the
    record visible; the reader must classify every cut as empty or
    corrupt — a torn ring can never surface a decodable record."""

    @given(SHM_RECORDS, st.data())
    @settings(max_examples=50, deadline=None)
    def test_partial_publish_never_reads_valid(self, record, data):
        ring = ShmRing(8192)
        try:
            total = 4 + len(record)
            ring._copy_in(ring.head, struct.pack("<I", len(record)))
            ring._copy_in(ring.head + 4, record)
            cut = data.draw(st.integers(0, total - 1))
            ring._publish_head(ring.tail + cut)
            status, payload = ring.read()
            if status == "ok":
                # A cut that exposes a shorter stale length can surface
                # a truncated payload — it must fail validation.
                assert try_unpack_record(payload) == (False, None)
                del payload
        finally:
            ring.close()


class TestRoundTrip:
    @given(PAYLOADS)
    @settings(max_examples=50)
    def test_clean_frames_round_trip(self, payload):
        ok, obj = try_decode_frame(encode_frame(payload))
        assert ok and obj == payload

    def test_recomputed_crc_over_garbage_decodes_nothing_valid(self):
        """Even a fully consistent header cannot make unpickling of
        garbage raise out of try_decode_frame."""
        body = b"\x80\x05garbage-not-a-pickle"
        header = struct.pack(">4sB3xII", MAGIC, VERSION, len(body),
                             zlib.crc32(body))
        ok, obj = try_decode_frame(header + body)
        assert not ok and obj is None
