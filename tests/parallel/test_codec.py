"""Tests for repro.parallel.codec: the wire frame format."""

import struct

import pytest

from repro.core.ordering import KIND_STORE, Envelope
from repro.core.tuples import StreamTuple
from repro.errors import CodecError, ParallelError, ReproError
from repro.parallel import decode_frame, encode_frame, try_decode_frame
from repro.parallel.codec import HEADER_SIZE, MAGIC, VERSION


def sample_payload():
    t = StreamTuple(relation="R", ts=1.0, values={"k": 3}, seq=5)
    return Envelope(kind=KIND_STORE, router_id="router0", counter=7, tuple=t)


class TestRoundTrip:
    def test_frame_round_trips(self):
        payload = sample_payload()
        frame = encode_frame(payload)
        assert decode_frame(frame) == payload

    def test_header_layout(self):
        frame = encode_frame({"x": 1})
        assert frame[:4] == MAGIC
        assert frame[4] == VERSION
        (length,) = struct.unpack_from(">I", frame, 8)
        assert length == len(frame) - HEADER_SIZE

    def test_arbitrary_picklables(self):
        for obj in (None, 42, "text", [1, 2], {"a": (1, 2)}):
            assert decode_frame(encode_frame(obj)) == obj


class TestValidation:
    def test_short_buffer_rejected(self):
        with pytest.raises(CodecError, match="too short"):
            decode_frame(b"RP")

    def test_bad_magic_rejected(self):
        frame = bytearray(encode_frame(1))
        frame[:4] = b"XXXX"
        with pytest.raises(CodecError, match="magic"):
            decode_frame(bytes(frame))

    def test_version_mismatch_rejected(self):
        frame = bytearray(encode_frame(1))
        frame[4] = VERSION + 1
        with pytest.raises(CodecError, match="version"):
            decode_frame(bytes(frame))

    def test_truncated_payload_rejected(self):
        frame = encode_frame(sample_payload())
        with pytest.raises(CodecError, match="length mismatch"):
            decode_frame(frame[:-3])

    def test_corrupt_payload_rejected_by_checksum(self):
        frame = bytearray(encode_frame(sample_payload()))
        frame[-1] ^= 0xFF
        with pytest.raises(CodecError, match="checksum"):
            decode_frame(bytes(frame))

    def test_codec_error_is_parallel_and_repro_error(self):
        # Supervisors catch the subsystem base class.
        assert issubclass(CodecError, ParallelError)
        assert issubclass(CodecError, ReproError)


class TestTryDecode:
    def test_valid_frame(self):
        ok, obj = try_decode_frame(encode_frame("hello"))
        assert ok and obj == "hello"

    def test_torn_frame_is_not_an_exception(self):
        frame = encode_frame(sample_payload())
        for cut in (0, 3, HEADER_SIZE, len(frame) - 1):
            ok, obj = try_decode_frame(frame[:cut])
            assert not ok and obj is None

    def test_bitflip_is_not_an_exception(self):
        frame = bytearray(encode_frame(sample_payload()))
        frame[HEADER_SIZE + 1] ^= 0x55
        ok, obj = try_decode_frame(bytes(frame))
        assert not ok and obj is None
