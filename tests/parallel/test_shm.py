"""Shared-memory data plane: record format, ring buffer, arena.

The properties under test are the crash-safety invariants the recovery
argument leans on (see :mod:`repro.parallel.shm`): unpublished writes
are invisible, published records are immutable until consumed, every
record self-validates, and anything the packer cannot express falls
back cleanly instead of shipping garbage.
"""

import struct

import pytest

from repro.core.batching import EnvelopeBatch
from repro.core.ordering import KIND_JOIN, KIND_STORE, Envelope
from repro.core.tuples import JoinResult, StreamTuple
from repro.parallel.commands import BatchDone, Deliver, Ping
from repro.parallel.shm import (_DATA_OFFSET, PAYLOAD_HEADER_SIZE,
                                RING_CORRUPT, RING_EMPTY, RING_OK,
                                BufferArena, ShmRing, pack_record,
                                try_unpack_record)


def make_tuple(relation="R", ts=1.5, seq=3, **values):
    values = values or {"k": 7, "v": 2.5, "tag": "blue"}
    return StreamTuple(relation=relation, ts=ts, values=values, seq=seq)


def make_deliver(n=4, unit_id="R0"):
    shared = make_tuple()
    envelopes = []
    for i in range(n):
        t = shared if i % 2 else make_tuple(ts=1.0 + i, seq=i)
        kind = KIND_STORE if i % 2 else KIND_JOIN
        envelopes.append(Envelope(kind=kind, router_id=f"router{i % 2}",
                                  counter=10 + i, tuple=t))
    return Deliver(seq=9, unit_id=unit_id,
                   batch=EnvelopeBatch(tuple(envelopes)))


def make_done(n=3):
    r = make_tuple("R", 1.0, 1)
    s = make_tuple("S", 2.0, 2)
    results = tuple(
        JoinResult(r=r, s=s, ts=2.0 + i, produced_at=3.0 + i,
                   producer=f"J{i % 2}")
        for i in range(n))
    return BatchDone(seq=4, unit_id="S1", results=results, busy=0.25)


def packed(obj):
    buf = bytearray()
    assert pack_record(obj, buf)
    return bytes(buf)


class TestRecordFormat:
    @pytest.mark.parametrize("obj", [
        make_deliver(), make_deliver(n=1), make_done(), make_done(n=0),
        BatchDone(seq=1, unit_id="R0", results=()),
    ])
    def test_round_trip(self, obj):
        ok, decoded = try_unpack_record(packed(obj))
        assert ok and decoded == obj

    def test_tuple_table_dedups_by_identity(self):
        """A tuple referenced by several envelopes is packed once and
        rebuilt as one shared object."""
        command = make_deliver(n=6)
        ok, decoded = try_unpack_record(packed(command))
        assert ok
        shared = {id(e.tuple) for e in decoded.batch.envelopes[1::2]}
        assert len(shared) == 1

    def test_busy_survives_the_round_trip(self):
        ok, decoded = try_unpack_record(packed(make_done()))
        assert ok and decoded.busy == 0.25

    @pytest.mark.parametrize("obj", [
        Ping(seq=1),                                         # not data-plane
        Deliver(seq=1, unit_id="R0", batch=EnvelopeBatch((
            Envelope(kind=KIND_STORE, router_id="r", counter=1,
                     tuple=make_tuple(k=[1, 2])),))),        # list value
        Deliver(seq=1, unit_id="R0", batch=EnvelopeBatch((
            Envelope(kind=KIND_STORE, router_id="r", counter=1,
                     tuple=make_tuple(a=1)),
            Envelope(kind=KIND_STORE, router_id="r", counter=2,
                     tuple=make_tuple(b=1)),))),             # mixed schemas
        Deliver(seq=1, unit_id="u" * 300, batch=EnvelopeBatch((
            Envelope(kind=KIND_STORE, router_id="r", counter=1,
                     tuple=make_tuple()),))),                # oversized name
        BatchDone(seq=1, unit_id="R0", results=(
            JoinResult(r=make_tuple(k=True), s=make_tuple(), ts=1.0,
                       produced_at=1.0, producer="J0"),)),   # bool column
    ])
    def test_unpackable_payloads_fall_back(self, obj):
        assert pack_record(obj, bytearray()) is False

    def test_pack_clears_the_scratch_buffer(self):
        buf = bytearray(b"stale bytes from the previous batch")
        assert pack_record(make_done(), buf)
        ok, decoded = try_unpack_record(bytes(buf))
        assert ok and decoded == make_done()

    def test_bad_magic_version_and_crc_rejected(self):
        record = packed(make_deliver())
        assert try_unpack_record(b"XXXX" + record[4:]) == (False, None)
        assert try_unpack_record(
            record[:4] + b"\xff" + record[5:]) == (False, None)
        flipped = bytearray(record)
        flipped[-1] ^= 0xFF
        assert try_unpack_record(bytes(flipped)) == (False, None)

    def test_truncation_rejected(self):
        record = packed(make_done())
        for cut in (0, PAYLOAD_HEADER_SIZE - 1, len(record) // 2,
                    len(record) - 1):
            assert try_unpack_record(record[:cut]) == (False, None)


class TestShmRing:
    def test_write_peek_consume(self):
        ring = ShmRing(4096)
        try:
            record = b"abcdefgh" * 4  # >= the minimum record size
            assert ring.read() == (RING_EMPTY, None)
            assert ring.try_write(record)
            status, payload = ring.read()
            assert status == RING_OK and bytes(payload) == record
            # Peek again without consuming: same record, cursors fixed.
            del payload  # release the memoryview before re-reading
            status, payload = ring.read()
            assert status == RING_OK and bytes(payload) == record
            del payload
            ring.consume()
            assert ring.read() == (RING_EMPTY, None)
            assert ring.free_bytes == ring.capacity
        finally:
            ring.close()

    def test_fifo_order_and_wraparound(self):
        """Records keep FIFO order across many laps of a small ring —
        including records that straddle the physical end."""
        ring = ShmRing(4096)
        try:
            payloads = [bytes([i]) * (700 + i) for i in range(40)]
            for i, payload in enumerate(payloads):
                while not ring.try_write(payload):
                    status, got = ring.read()
                    assert status == RING_OK
                    expected = payloads[i - len(payloads) + 40 - 1]
                    del got
                    ring.consume()
                assert ring.head - ring.tail <= ring.capacity
            # Drain the rest, checking the suffix arrives intact.
            drained = []
            while True:
                status, payload = ring.read()
                if status == RING_EMPTY:
                    break
                assert status == RING_OK
                drained.append(bytes(payload))
                del payload
                ring.consume()
            assert drained == payloads[-len(drained):]
        finally:
            ring.close()

    def test_full_ring_refuses_without_writing(self):
        ring = ShmRing(4096)
        try:
            big = b"x" * (ring.capacity - 8)
            assert ring.try_write(big)
            head = ring.head
            assert not ring.try_write(b"does not fit")
            assert ring.head == head  # nothing published
        finally:
            ring.close()

    def test_oversized_record_never_fits(self):
        ring = ShmRing(4096)
        try:
            assert not ring.try_write(b"x" * (ring.capacity + 1))
        finally:
            ring.close()

    def test_unpublished_write_is_invisible(self):
        """Crash-safety invariant 1: bytes copied in before the head is
        published (a writer SIGKILLed mid-write) do not exist."""
        ring = ShmRing(4096)
        try:
            ring._copy_in(ring.head, b"\x03\x00\x00\x00torn")
            assert ring.read() == (RING_EMPTY, None)
        finally:
            ring.close()

    def test_torn_head_write_reports_corrupt(self):
        """A head advanced by less than a length prefix (torn cursor
        store) cannot be a valid record boundary."""
        ring = ShmRing(4096)
        try:
            ring._publish_head(ring.tail + 2)
            assert ring.read() == (RING_CORRUPT, None)
        finally:
            ring.close()

    def test_lying_length_prefix_reports_corrupt(self):
        ring = ShmRing(4096)
        try:
            assert ring.try_write(b"y" * 64)
            # Overwrite the length prefix with a value past the head.
            struct.pack_into("<I", ring._shm.buf, _DATA_OFFSET, 1 << 20)
            assert ring.read() == (RING_CORRUPT, None)
            # And with one below the minimum valid record size.
            struct.pack_into("<I", ring._shm.buf, _DATA_OFFSET, 1)
            assert ring.read() == (RING_CORRUPT, None)
        finally:
            ring.close()

    def test_attach_by_name_shares_the_segment(self):
        owner = ShmRing(4096)
        peer = None
        try:
            peer = ShmRing(name=owner.name)
            assert peer.capacity == owner.capacity
            record = b"hello from the owner"
            assert owner.try_write(record)
            status, payload = peer.read()
            assert status == RING_OK and bytes(payload) == record
            del payload
            peer.consume()
            assert owner.read() == (RING_EMPTY, None)
        finally:
            if peer is not None:
                peer.close()
            owner.close()

    def test_capacity_floor_enforced(self):
        with pytest.raises(ValueError):
            ShmRing(16)

    def test_close_is_idempotent(self):
        ring = ShmRing(4096)
        ring.close()
        ring.close()


class TestBufferArena:
    def test_buffers_are_recycled(self):
        arena = BufferArena()
        buf = arena.acquire()
        buf += b"payload"
        arena.release(buf)
        again = arena.acquire()
        assert again is buf and len(again) == 0
        assert arena.allocated == 1 and arena.reused == 1

    def test_concurrent_acquires_get_distinct_buffers(self):
        arena = BufferArena()
        a, b = arena.acquire(), arena.acquire()
        assert a is not b
        assert arena.allocated == 2
