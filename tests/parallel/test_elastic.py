"""The predictive elastic controller: model, guards, transport tuning.

The controller only reads a handful of cluster attributes and calls
``scale_to`` / ``set_transfer_batch`` / ``set_max_unacked``, so these
tests drive it against a fake cluster on a virtual clock — decisions
become a pure function of the scripted load, no processes involved.
(The controller × real-cluster integration is E19's job.)
"""

import pytest

from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.parallel import ElasticConfig, ElasticController


class FakeCluster:
    """Just enough surface for the controller: counters it samples and
    the three actuators it drives, with envelopes settling at a
    scripted per-worker service rate."""

    def __init__(self, workers=2, units=8, service_rate=1000.0):
        self.workers = workers
        self.units = units
        self.service_rate = service_rate
        self.envelopes_settled = 0
        self.backlog_envelopes = 0
        self.transfer_batch = 32
        self.max_unacked = 32
        self.scale_calls: list[int] = []

    @property
    def active_worker_count(self):
        return self.workers

    def unit_ids(self):
        return [f"U{i}" for i in range(self.units)]

    def scale_to(self, n):
        self.scale_calls.append(n)
        self.workers = n

    def set_transfer_batch(self, n):
        self.transfer_batch = n

    def set_max_unacked(self, n):
        self.max_unacked = n

    def offer(self, envelopes, dt):
        """Route ``envelopes`` over ``dt`` seconds of cluster time:
        workers settle what they can, the rest queues."""
        capacity = int(self.service_rate * dt * self.workers)
        total = self.backlog_envelopes + envelopes
        settled = min(total, capacity)
        self.envelopes_settled += settled
        self.backlog_envelopes = total - settled


class Clock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def make_controller(clock, **overrides):
    defaults = dict(capacity_prior=1000.0, capacity_smoothing=0.0,
                    rate_smoothing=1.0, target_utilisation=0.8,
                    drain_horizon=10.0, min_workers=1, max_workers=8,
                    sample_every=10, decide_every=1.0, tolerance=0.1,
                    scale_down_cooldown=5.0, tune_transport=False)
    defaults.update(overrides)
    return ElasticController(config=ElasticConfig(**defaults), clock=clock)


def drive(controller, cluster, clock, *, rate, seconds,
          fanout=2.0, tick=0.1):
    """Feed ``rate`` tuples/s for ``seconds`` of virtual time."""
    per_tick = rate * tick
    ingests = 0
    for _ in range(int(seconds / tick)):
        clock.t += tick
        cluster.offer(int(per_tick * fanout), tick)
        ingests += per_tick
        while ingests >= 1:
            ingests -= 1
            controller.on_ingest(cluster)


class TestConfigValidation:
    @pytest.mark.parametrize("bad", [
        dict(capacity_prior=0.0),
        dict(capacity_smoothing=1.5),
        dict(rate_smoothing=0.0),
        dict(target_utilisation=0.0),
        dict(target_utilisation=1.5),
        dict(drain_horizon=0.0),
        dict(min_workers=0),
        dict(min_workers=5, max_workers=2),
        dict(sample_every=0),
        dict(decide_every=0.0),
        dict(min_transfer_batch=0),
    ])
    def test_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            ElasticConfig(**bad)


class TestScalingModel:
    def test_scales_out_on_rate_step(self):
        """2000 env/s against 800 env/s effective per worker needs a
        pool of three; the controller gets there predictively."""
        clock = Clock()
        controller = make_controller(clock)
        cluster = FakeCluster(workers=1)
        drive(controller, cluster, clock, rate=1000, seconds=5)
        assert cluster.workers == 3
        assert max(cluster.scale_calls) == 3

    def test_scales_back_in_after_cooldown(self):
        clock = Clock()
        controller = make_controller(clock, scale_down_cooldown=2.0)
        cluster = FakeCluster(workers=1)
        drive(controller, cluster, clock, rate=1000, seconds=5)
        assert cluster.workers == 3
        drive(controller, cluster, clock, rate=200, seconds=10)
        assert cluster.workers == 1

    def test_scale_down_cooldown_holds_the_pool(self):
        """Inside the cooldown window a low sample must not shrink."""
        clock = Clock()
        controller = make_controller(clock, scale_down_cooldown=1000.0)
        cluster = FakeCluster(workers=1)
        drive(controller, cluster, clock, rate=1000, seconds=5)
        grown = cluster.workers
        drive(controller, cluster, clock, rate=100, seconds=5)
        assert cluster.workers == grown

    def test_dead_band_suppresses_flapping(self):
        """A steady rate right at a pool-size boundary must not
        oscillate the pool."""
        clock = Clock()
        controller = make_controller(clock, scale_down_cooldown=0.0)
        cluster = FakeCluster(workers=2)
        # 1640 env/s vs 2×800 effective: raw ceil says 3 workers, but
        # projected utilisation is only 2.5% over target — inside the
        # tolerance band, so the pool must not move.
        drive(controller, cluster, clock, rate=820, seconds=20)
        assert not cluster.scale_calls

    def test_backlog_adds_demand(self):
        """Standing queue depth scales the pool even at zero arrival
        rate — the drain-horizon term."""
        clock = Clock()
        controller = make_controller(clock, drain_horizon=1.0)
        cluster = FakeCluster(workers=1, service_rate=0.0)
        cluster.backlog_envelopes = 5000
        drive(controller, cluster, clock, rate=50, seconds=3)
        assert cluster.workers > 1

    def test_pool_clamped_to_max_workers(self):
        clock = Clock()
        controller = make_controller(clock, max_workers=4)
        cluster = FakeCluster(workers=1)
        drive(controller, cluster, clock, rate=10000, seconds=5)
        assert cluster.workers == 4

    def test_measured_capacity_blends_into_the_prior(self):
        """With smoothing on, a slower-than-prior worker pool raises
        the estimated demand-per-worker and grows the pool further."""
        clock = Clock()
        fast = make_controller(clock, capacity_smoothing=0.0)
        cluster = FakeCluster(workers=1, service_rate=400.0)
        drive(fast, cluster, clock, rate=1000, seconds=8)
        assert fast._capacity == 1000.0  # prior untouched

        clock2 = Clock()
        adaptive = make_controller(clock2, capacity_smoothing=0.5)
        cluster2 = FakeCluster(workers=1, service_rate=400.0)
        drive(adaptive, cluster2, clock2, rate=1000, seconds=8)
        assert adaptive._capacity < 1000.0  # learned the slower truth
        assert cluster2.workers >= cluster.workers


class TestTransportTuning:
    def test_knobs_track_the_rate_within_clamps(self):
        clock = Clock()
        controller = make_controller(
            clock, tune_transport=True, batch_horizon=0.05,
            min_transfer_batch=4, max_transfer_batch=64,
            min_max_unacked=4, max_max_unacked=32)
        cluster = FakeCluster(workers=2, units=8)
        drive(controller, cluster, clock, rate=2000, seconds=4)
        # 4000 env/s × 0.05 s / 8 units = 25 envelopes per batch.
        assert cluster.transfer_batch == 25
        assert 4 <= cluster.max_unacked <= 32

    def test_low_rate_pins_the_clamp_floor(self):
        clock = Clock()
        controller = make_controller(
            clock, tune_transport=True, drain_horizon=0.5,
            sample_every=2, min_transfer_batch=4, min_max_unacked=4)
        cluster = FakeCluster(workers=2, units=8)
        drive(controller, cluster, clock, rate=2, seconds=4)
        assert cluster.transfer_batch == 4
        assert cluster.max_unacked == 4


class TestObservability:
    def test_decisions_recorded_and_metrics_exported(self):
        clock = Clock()
        controller = make_controller(clock)
        cluster = FakeCluster(workers=1)
        drive(controller, cluster, clock, rate=1000, seconds=5)
        assert controller.decisions
        assert any(d.action == "scale-out" for d in controller.decisions)
        registry = MetricsRegistry()
        controller.export_metrics(registry)
        snapshot = registry.snapshot()
        assert snapshot["repro_elastic_evaluations_total"] == len(
            controller.decisions)
        assert snapshot["repro_elastic_scale_actions_total"] >= 1
        assert snapshot["repro_elastic_desired_workers"] == 3

    def test_no_decision_before_first_rate_sample(self):
        clock = Clock()
        controller = make_controller(clock)
        cluster = FakeCluster()
        controller.on_ingest(cluster)  # single ingest: no sample yet
        assert controller.decisions == []
