"""Elastic scaling: live unit migration, worker add/retire, crash safety.

Every scenario checks the same bottom line as the supervision suite —
exactly-once against the window-semantics reference join — while the
pool is being resized, a unit is mid-handoff, or one side of a handoff
is SIGKILLed.  The placement assertions pin the mechanics (units
actually move, retirees actually leave); the result checks pin the
contract.
"""

import pytest

from repro.core.biclique import BicliqueConfig
from repro.core.predicates import BandJoinPredicate, EquiJoinPredicate
from repro.core.windows import TimeWindow
from repro.errors import ConfigurationError, ParallelError
from repro.harness.reference import check_exactly_once, reference_join
from repro.parallel import ParallelCluster, ParallelConfig

from .conftest import make_arrivals

WINDOW = TimeWindow(0.2)
HASH = EquiJoinPredicate("k", "k")
BAND = BandJoinPredicate("v", "v", 1.0)


def make_config(**overrides):
    defaults = dict(window=WINDOW, r_joiners=2, s_joiners=2, routers=2,
                    archive_period=0.05, punctuation_interval=0.02)
    defaults.update(overrides)
    return BicliqueConfig(**defaults)


def fast_parallel(**overrides):
    defaults = dict(workers=2, transfer_batch=8, max_unacked=8,
                    supervise_every=16, heartbeat_interval=0.1,
                    heartbeat_timeout=0.5, command_deadline=0.3,
                    deadline_retries=1, restart_limit=6)
    defaults.update(overrides)
    return ParallelConfig(**defaults)


def assert_exactly_once(arrivals, results, predicate):
    r_stream = [t for t in arrivals if t.relation == "R"]
    s_stream = [t for t in arrivals if t.relation == "S"]
    expected = reference_join(r_stream, s_stream, predicate, WINDOW)
    check = check_exactly_once(results, expected)
    assert check.ok, f"lost or duplicated results: {check}"


def run_with_actions(arrivals, predicate, actions, *, config=None,
                     parallel=None):
    """Ingest ``arrivals``, invoking ``actions[i](cluster)`` right
    before tuple ``i``; returns ``(cluster, report)``."""
    cluster = ParallelCluster(config or make_config(), predicate,
                              parallel or fast_parallel())
    with cluster:
        for i, t in enumerate(arrivals):
            if i in actions:
                actions[i](cluster)
            cluster.ingest(t)
        report = cluster.drain()
    return cluster, report


class TestMigrateUnit:
    def test_unit_moves_and_results_stay_exactly_once(self):
        arrivals = make_arrivals(31)
        moved = {}

        def migrate(cluster):
            unit = cluster.units_of("worker0")[0]
            moved["unit"] = unit
            moved["target"] = cluster.migrate_unit(unit)

        cluster, report = run_with_actions(arrivals, HASH, {150: migrate})
        assert report.migrations >= 1
        assert moved["unit"] in cluster.units_of(moved["target"])
        assert moved["unit"] not in cluster.units_of("worker0")
        assert_exactly_once(arrivals, cluster.results, HASH)

    def test_migration_started_just_before_drain_settles(self):
        """drain() must complete in-flight handoffs, not strand them."""
        arrivals = make_arrivals(31, n=200)
        n = len(arrivals)

        def migrate(cluster):
            cluster.migrate_unit(cluster.units_of("worker1")[0])

        cluster, report = run_with_actions(arrivals, HASH,
                                           {n - 1: migrate})
        assert report.migrations == 1
        assert cluster.migrating_unit_ids == ()
        assert_exactly_once(arrivals, cluster.results, HASH)

    def test_validation_errors(self):
        cluster = ParallelCluster(make_config(), HASH, fast_parallel())
        with cluster:
            with pytest.raises(ParallelError):
                cluster.migrate_unit("nope")
            unit = cluster.units_of("worker0")[0]
            with pytest.raises(ParallelError):
                cluster.migrate_unit(unit, "worker0")  # already there
            cluster.migrate_unit(unit, "worker1")
            with pytest.raises(ParallelError):
                cluster.migrate_unit(unit)  # already migrating
            retiree = cluster.retire_worker("worker1")
            other = cluster.units_of("worker0")[0]
            with pytest.raises(ParallelError):
                cluster.migrate_unit(other, retiree)  # retiring target


class TestScaleOutIn:
    def test_add_worker_rebalances_onto_it(self):
        arrivals = make_arrivals(33)
        added = {}

        def grow(cluster):
            added["id"] = cluster.add_worker()

        cluster, report = run_with_actions(
            arrivals, HASH, {120: grow},
            config=make_config(r_joiners=3, s_joiners=3))
        assert report.workers_added == 1
        assert report.workers == 3
        # The newcomer ended up hosting a fair share (6 units / 3).
        assert len(cluster.units_of(added["id"])) == 2
        assert_exactly_once(arrivals, cluster.results, HASH)

    def test_retire_worker_empties_and_removes_it(self):
        arrivals = make_arrivals(33)
        retired = {}

        def shrink(cluster):
            retired["id"] = cluster.retire_worker()

        cluster, report = run_with_actions(
            arrivals, HASH, {120: shrink},
            parallel=fast_parallel(workers=3))
        assert report.workers_retired == 1
        assert report.workers == 2
        assert retired["id"] not in cluster.worker_ids
        assert_exactly_once(arrivals, cluster.results, HASH)

    def test_scale_cycle_under_band_join(self):
        """Grow, shrink, grow again across a random-routing run."""
        arrivals = make_arrivals(35, n=500)
        actions = {100: lambda c: c.scale_to(4),
                   250: lambda c: c.scale_to(2),
                   400: lambda c: c.scale_to(3)}
        cluster, report = run_with_actions(
            arrivals, BAND, actions,
            config=make_config(r_joiners=3, s_joiners=3))
        assert report.workers == 3
        assert report.workers_added >= 2
        # On a loaded machine the scale_to(2) retirements may still be
        # quiescing when the regrow lands, which un-retires one of them
        # (the flap-abort path) — so only one completed retirement is
        # guaranteed here.  The deterministic ≥2-out/≥2-in gate lives
        # in E19 on the virtual clock.
        assert report.workers_retired >= 1
        assert_exactly_once(arrivals, cluster.results, BAND)

    def test_scale_flap_aborts_pending_retirement(self):
        """scale_to up while a retirement is still quiescing cancels
        it: the cheap abort path, no unit ever moved."""
        cluster = ParallelCluster(make_config(), HASH, fast_parallel())
        with cluster:
            cluster.scale_to(1)
            assert any(h.retiring for h in cluster.handles)
            cluster.scale_to(2)
            assert not any(h.retiring for h in cluster.handles)
            assert cluster.migrations_aborted >= 1
            assert cluster.migrating_unit_ids == ()

    def test_cannot_retire_last_worker_or_scale_to_zero(self):
        cluster = ParallelCluster(make_config(), HASH,
                                  fast_parallel(workers=1))
        with cluster:
            with pytest.raises(ParallelError):
                cluster.retire_worker()
            with pytest.raises(ConfigurationError):
                cluster.scale_to(0)

    def test_transport_knobs_retune_live(self):
        cluster = ParallelCluster(make_config(), HASH, fast_parallel())
        with cluster:
            cluster.set_transfer_batch(4)
            cluster.set_max_unacked(16)
            assert cluster.parallel.transfer_batch == 4
            assert cluster.parallel.max_unacked == 16
            with pytest.raises(ConfigurationError):
                cluster.set_transfer_batch(0)
            with pytest.raises(ConfigurationError):
                cluster.set_max_unacked(0)


class TestKillMidMigration:
    """The acceptance case: SIGKILL while a handoff is in flight."""

    @pytest.mark.parametrize("victim", ["source", "target"])
    def test_kill_either_side_mid_quiesce(self, victim):
        arrivals = make_arrivals(37, n=500)

        def fault(cluster):
            unit = cluster.units_of("worker0")[0]
            target = cluster.migrate_unit(unit)
            assert unit in cluster.migrating_unit_ids
            cluster.kill_worker(target if victim == "target"
                                else "worker0")

        cluster, report = run_with_actions(arrivals, HASH, {200: fault})
        assert report.migrations >= 1
        assert report.restarts >= 1
        assert cluster.migrating_unit_ids == ()
        assert_exactly_once(arrivals, cluster.results, HASH)

    def test_kill_source_of_retiring_worker(self):
        """Retirement survives its own worker dying: the respawned
        incarnation finishes settling, then leaves the pool."""
        arrivals = make_arrivals(39, n=500)

        def fault(cluster):
            retiree = cluster.retire_worker("worker1")
            cluster.kill_worker(retiree)

        cluster, report = run_with_actions(
            arrivals, HASH, {200: fault},
            parallel=fast_parallel(workers=3))
        assert report.workers_retired == 1
        assert report.workers == 2
        assert_exactly_once(arrivals, cluster.results, HASH)


class TestCloseIdempotent:
    def test_double_close_is_a_no_op(self):
        """Regression: a second close must return immediately instead
        of re-joining dead processes."""
        cluster = ParallelCluster(make_config(), HASH, fast_parallel())
        cluster.close()
        cluster.close()  # must not raise, hang, or re-join
        assert not any(h.alive for h in cluster.handles)

    def test_close_after_drain_is_a_no_op(self):
        cluster = ParallelCluster(make_config(), HASH, fast_parallel())
        arrivals = make_arrivals(41, n=100)
        for t in arrivals:
            cluster.ingest(t)
        cluster.drain()
        cluster.close()
        cluster.close()

    def test_close_mid_migration_aborts_cleanly(self):
        cluster = ParallelCluster(make_config(), HASH, fast_parallel())
        arrivals = make_arrivals(41, n=100)
        for t in arrivals[:50]:
            cluster.ingest(t)
        cluster.migrate_unit(cluster.units_of("worker0")[0])
        assert cluster.migrating_unit_ids != ()
        cluster.close()
        assert cluster.migrating_unit_ids == ()
        assert cluster.migrations_aborted >= 1
        cluster.close()  # still idempotent with the aborted handoff

    def test_close_with_retiring_worker(self):
        cluster = ParallelCluster(make_config(), HASH, fast_parallel())
        cluster.retire_worker("worker1")
        cluster.close()
        assert not any(h.alive for h in cluster.handles)
        cluster.close()


class TestContinueWorker:
    def test_none_pid_is_a_no_op(self):
        cluster = ParallelCluster(make_config(), HASH, fast_parallel())
        with cluster:
            cluster.continue_worker(None)

    def test_reaped_pid_is_a_no_op(self):
        """The chaos race: the stopped incarnation was killed and
        respawned before its scheduled SIGCONT fired."""
        cluster = ParallelCluster(make_config(), HASH, fast_parallel())
        with cluster:
            pid = cluster.stop_worker("worker0")
            cluster.kill_worker("worker0")
            cluster.continue_worker(pid)  # already reaped: no raise
