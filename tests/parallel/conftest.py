"""Shared fixtures of the multiprocess-runtime suite."""

import random

import pytest

from repro.core.tuples import StreamTuple


def make_arrivals(seed: int, n: int = 400, *, key_space: int = 12,
                  value_space: int = 40) -> list[StreamTuple]:
    """A deterministic interleaved two-relation arrival sequence.

    Timestamps advance by small random steps (so punctuations and
    window expiry both trigger); each tuple carries an equi-join key
    ``k`` and a numeric band attribute ``v``.
    """
    rng = random.Random(seed)
    arrivals: list[StreamTuple] = []
    ts = 0.0
    seqs = {"R": 0, "S": 0}
    for _ in range(n):
        ts += rng.uniform(0.0005, 0.003)
        relation = "R" if rng.random() < 0.5 else "S"
        arrivals.append(StreamTuple(
            relation=relation, ts=ts,
            values={"k": rng.randint(0, key_space),
                    "v": rng.randint(0, value_space)},
            seq=seqs[relation]))
        seqs[relation] += 1
    return arrivals


@pytest.fixture
def arrivals():
    return make_arrivals(7)
