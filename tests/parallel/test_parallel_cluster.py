"""Tests for the ParallelCluster coordinator: API mirror, config
validation, reporting, metrics backhaul, lifecycle, CLI."""

import pytest

from repro.__main__ import main
from repro.core.biclique import BicliqueConfig
from repro.core.predicates import BandJoinPredicate, EquiJoinPredicate
from repro.core.windows import TimeWindow
from repro.errors import ConfigurationError, ParallelError
from repro.obs.trace import Tracer
from repro.parallel import MAX_ROUTERS, ParallelCluster, ParallelConfig

from .conftest import make_arrivals


def make_config(**overrides):
    defaults = dict(window=TimeWindow(30.0), r_joiners=2, s_joiners=2,
                    routers=2, archive_period=5.0)
    defaults.update(overrides)
    return BicliqueConfig(**defaults)


class TestConfigValidation:
    @pytest.mark.parametrize("field, value", [
        ("workers", 0), ("transfer_batch", 0), ("max_unacked", 0),
        ("supervise_every", 0), ("restart_limit", -1),
        ("heartbeat_interval", 0.0), ("heartbeat_timeout", -1.0),
    ])
    def test_rejects_bad_knobs(self, field, value):
        with pytest.raises(ConfigurationError):
            ParallelConfig(**{field: value})

    def test_rejects_router_pool_past_sort_order_cap(self):
        with pytest.raises(ConfigurationError, match="router"):
            ParallelCluster(make_config(routers=MAX_ROUTERS + 1),
                            EquiJoinPredicate("k", "k"))

    def test_accepts_router_pool_at_cap(self):
        with ParallelCluster(make_config(routers=MAX_ROUTERS),
                             EquiJoinPredicate("k", "k"),
                             ParallelConfig(workers=1)) as cluster:
            assert len(cluster._stampers) == MAX_ROUTERS


class TestApiMirror:
    def test_auto_routing_resolves_like_the_engine(self):
        with ParallelCluster(make_config(), EquiJoinPredicate("k", "k"),
                             ParallelConfig(workers=1)) as low:
            assert low.routing_mode == "hash"
        with ParallelCluster(make_config(), BandJoinPredicate("v", "v", 2.0),
                             ParallelConfig(workers=1)) as high:
            assert high.routing_mode == "random"

    def test_unit_naming_and_worker_assignment(self):
        with ParallelCluster(make_config(r_joiners=3, s_joiners=2),
                             EquiJoinPredicate("k", "k"),
                             ParallelConfig(workers=2)) as cluster:
            assert cluster.unit_ids("R") == ["R0", "R1", "R2"]
            assert cluster.unit_ids("S") == ["S0", "S1"]
            assert cluster.unit_ids() == ["R0", "R1", "R2", "S0", "S1"]
            assert cluster.worker_ids == ["worker0", "worker1"]
            # Interleaved round-robin: every worker hosts both sides.
            for handle in cluster.handles:
                sides = {unit.side for unit in handle.units}
                assert sides == {"R", "S"}

    def test_run_returns_results_and_report(self, arrivals):
        cluster = ParallelCluster(make_config(), EquiJoinPredicate("k", "k"),
                                  ParallelConfig(workers=2))
        results, report = cluster.run(arrivals)
        assert report.tuples_ingested == len(arrivals)
        assert report.results == len(results) > 0
        assert report.restarts == 0
        assert report.workers == 2
        assert report.duration > 0
        assert report.stages is None  # untraced run
        assert set(report.worker_stats) == {"worker0", "worker1"}

    def test_retain_results_false_keeps_count_only(self, arrivals):
        cluster = ParallelCluster(make_config(retain_results=False),
                                  EquiJoinPredicate("k", "k"),
                                  ParallelConfig(workers=1))
        results, report = cluster.run(arrivals)
        assert results == []
        assert report.results > 0


class TestMetricsBackhaul:
    def test_report_metrics_merge_worker_and_coordinator(self, arrivals):
        cluster = ParallelCluster(make_config(), EquiJoinPredicate("k", "k"),
                                  ParallelConfig(workers=2))
        _, report = cluster.run(arrivals)
        metrics = report.metrics
        # Coordinator-side series.
        assert metrics['repro_router_tuples_ingested_total{router="router0"}'] \
            + metrics['repro_router_tuples_ingested_total{router="router1"}'] \
            == len(arrivals)
        assert metrics["repro_engine_results_total"] == report.results
        assert metrics["repro_parallel_batches_total"] == cluster.batches_sent
        assert metrics["repro_parallel_worker_restarts_total"] == 0
        assert metrics["repro_parallel_workers"] == 2
        # Worker-side series survived the dump/absorb backhaul.
        assert metrics['repro_worker_units{worker="worker0"}'] == 2
        stored = [v for k, v in metrics.items()
                  if k.startswith("repro_joiner_tuples_stored_total")]
        assert stored and sum(stored) > 0

    def test_traced_run_produces_stage_breakdown(self, arrivals):
        tracer = Tracer(sample_rate=1.0)
        cluster = ParallelCluster(make_config(), EquiJoinPredicate("k", "k"),
                                  ParallelConfig(workers=2), tracer=tracer)
        _, report = cluster.run(arrivals)
        assert report.stages is not None
        assert report.stages.samples == report.results
        assert report.stages.skipped == 0


class TestLifecycle:
    def test_single_use_after_drain(self, arrivals):
        cluster = ParallelCluster(make_config(), EquiJoinPredicate("k", "k"),
                                  ParallelConfig(workers=1))
        cluster.run(arrivals)
        with pytest.raises(ParallelError, match="closed"):
            cluster.ingest(arrivals[0])
        with pytest.raises(ParallelError, match="closed"):
            cluster.drain()

    def test_context_manager_kills_undrained_workers(self):
        with ParallelCluster(make_config(), EquiJoinPredicate("k", "k"),
                             ParallelConfig(workers=2)) as cluster:
            handles = cluster.handles
            assert all(handle.alive for handle in handles)
        assert not any(handle.alive for handle in handles)

    def test_close_is_idempotent(self):
        cluster = ParallelCluster(make_config(), EquiJoinPredicate("k", "k"),
                                  ParallelConfig(workers=1))
        cluster.close()
        cluster.close()

    def test_kill_worker_rejects_unknown_id(self):
        with ParallelCluster(make_config(), EquiJoinPredicate("k", "k"),
                             ParallelConfig(workers=1)) as cluster:
            with pytest.raises(ParallelError, match="unknown worker"):
                cluster.kill_worker("worker99")


class TestBackpressure:
    def test_max_unacked_bounds_the_ledger(self):
        arrivals = make_arrivals(11, n=600)
        parallel = ParallelConfig(workers=1, transfer_batch=4, max_unacked=2)
        cluster = ParallelCluster(make_config(), EquiJoinPredicate("k", "k"),
                                  parallel)
        orig_flush = cluster._flush_unit
        high_water = 0

        def watching_flush(unit_id):
            nonlocal high_water
            high_water = max(high_water, *(len(h.unacked)
                                           for h in cluster.handles))
            orig_flush(unit_id)

        cluster._flush_unit = watching_flush
        cluster.run(arrivals)
        assert 0 < high_water <= parallel.max_unacked


class TestCli:
    def test_parallel_subcommand_smoke(self, capsys):
        assert main(["repro", "parallel"]) == 0
        out = capsys.readouterr().out
        assert "parallel runtime" in out
        assert "exactly-once check: OK" in out
