"""Documentation/consistency guards.

DESIGN.md promises an experiment index mapping every table/figure to a
bench target, and EXPERIMENTS.md promises a paper-vs-measured entry per
experiment.  These tests keep those promises true as the benchmark
suite grows — doc drift fails CI like any other bug.
"""

import pathlib
import re

REPO = pathlib.Path(__file__).resolve().parent.parent


def bench_files():
    return sorted(p.name for p in (REPO / "benchmarks").glob("test_bench_*.py"))


class TestExperimentIndex:
    def test_every_bench_listed_in_design(self):
        design = (REPO / "DESIGN.md").read_text()
        for name in bench_files():
            assert name in design, f"{name} missing from DESIGN.md"

    def test_every_bench_discussed_in_experiments(self):
        experiments = (REPO / "EXPERIMENTS.md").read_text()
        for name in bench_files():
            assert name in experiments, f"{name} missing from EXPERIMENTS.md"

    def test_every_bench_listed_in_benchmarks_readme(self):
        readme = (REPO / "benchmarks" / "README.md").read_text()
        for name in bench_files():
            assert name in readme, f"{name} missing from benchmarks/README.md"


class TestLinks:
    def test_readme_relative_links_resolve(self):
        readme = (REPO / "README.md").read_text()
        for target in re.findall(r"\]\(([^)#]+)\)", readme):
            if target.startswith(("http://", "https://")):
                continue
            assert (REPO / target).exists(), f"broken README link: {target}"

    def test_design_mentions_all_packages(self):
        design = (REPO / "DESIGN.md").read_text()
        packages = [p.name for p in (REPO / "src" / "repro").iterdir()
                    if p.is_dir() and (p / "__init__.py").exists()]
        for package in packages:
            assert package in design, \
                f"package {package} not described in DESIGN.md"


class TestExamplesRunnable:
    def test_every_example_has_main_guard(self):
        for example in (REPO / "examples").glob("*.py"):
            text = example.read_text()
            assert '__main__' in text, f"{example.name} lacks a main guard"
            assert text.startswith("#!/usr/bin/env python3"), example.name
            assert '"""' in text.splitlines()[1], \
                f"{example.name} lacks a module docstring"
