"""Tests for repro.metrics.counters."""

import pytest

from repro.metrics import CounterSet, NetworkStats, ThroughputWindow


class TestCounterSet:
    def test_starts_at_zero(self):
        assert CounterSet().get("x") == 0

    def test_increments(self):
        counters = CounterSet()
        counters.inc("x")
        counters.inc("x", 4)
        assert counters.get("x") == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            CounterSet().inc("x", -1)

    def test_as_dict(self):
        counters = CounterSet()
        counters.inc("a")
        counters.inc("b", 2)
        assert counters.as_dict() == {"a": 1, "b": 2}


class TestNetworkStats:
    def test_record_by_kind(self):
        stats = NetworkStats()
        stats.record("store", 100)
        stats.record("join", 100, count=3)
        stats.record("punctuation", 16)
        stats.record("result", 50)
        assert stats.store_messages == 1
        assert stats.join_messages == 3
        assert stats.punctuation_messages == 1
        assert stats.result_messages == 1
        assert stats.data_messages == 4
        assert stats.total_messages == 6
        assert stats.bytes_sent == 100 + 300 + 16 + 50

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            NetworkStats().record("gossip")


class TestThroughputWindow:
    def test_rate_over_horizon(self):
        window = ThroughputWindow(horizon=10.0)
        for i in range(100):
            window.record(ts=i * 0.1)  # 10/s for 10 seconds
        assert window.rate(now=10.0) == pytest.approx(10.0, rel=0.1)

    def test_old_samples_age_out(self):
        window = ThroughputWindow(horizon=10.0)
        for i in range(50):
            window.record(ts=i * 0.1)
        assert window.rate(now=100.0) == 0.0

    def test_batched_record(self):
        window = ThroughputWindow(horizon=10.0)
        window.record(ts=1.0, count=5)
        assert window.rate(now=1.0) == pytest.approx(0.5)
