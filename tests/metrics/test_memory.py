"""Tests for repro.metrics.memory (heap envelope, snapshots)."""

import pytest

from repro.metrics import MB, JvmHeapModel, MemorySnapshot


class TestJvmHeapModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            JvmHeapModel(min_free_ratio=0.5, max_free_ratio=0.2)
        with pytest.raises(ValueError):
            JvmHeapModel(xms_bytes=10, xmx_bytes=5)

    def test_starts_at_xms(self):
        model = JvmHeapModel()
        assert model.mapped_bytes == model.xms_bytes

    def test_grows_with_live_set(self):
        model = JvmHeapModel(baseline_bytes=0)
        mapped = model.update(200 * MB)
        # MinHeapFreeRatio=20%: at least 240 MB mapped
        assert mapped >= 240 * MB

    def test_envelope_bounds(self):
        model = JvmHeapModel(baseline_bytes=0)
        mapped = model.update(100 * MB)
        assert 120 * MB <= mapped <= 140 * MB

    def test_trims_when_live_set_shrinks(self):
        model = JvmHeapModel(baseline_bytes=0)
        high = model.update(400 * MB)
        low = model.update(100 * MB)
        assert low < high
        assert 120 * MB <= low <= 140 * MB

    def test_clamped_to_xmx(self):
        model = JvmHeapModel(baseline_bytes=0)
        mapped = model.update(2000 * MB)
        assert mapped == model.xmx_bytes

    def test_clamped_to_xms(self):
        model = JvmHeapModel(baseline_bytes=0)
        assert model.update(0) == model.xms_bytes

    def test_baseline_included(self):
        """The thesis run starts at ~60 MB with an empty window."""
        model = JvmHeapModel()
        mapped = model.update(0)
        assert mapped >= 60 * MB

    def test_utilisation_fraction(self):
        model = JvmHeapModel(baseline_bytes=0)
        model.update(400 * MB)
        assert 0.0 < model.utilisation() <= 1.0


class TestMemorySnapshot:
    def test_totals(self):
        snap = MemorySnapshot(time=1.0, per_unit_live_bytes={"a": 10, "b": 30})
        assert snap.total_live_bytes == 40
        assert snap.max_unit_live_bytes == 30

    def test_imbalance(self):
        snap = MemorySnapshot(time=1.0, per_unit_live_bytes={"a": 10, "b": 30})
        assert snap.imbalance() == pytest.approx(1.5)

    def test_imbalance_of_balanced_is_one(self):
        snap = MemorySnapshot(time=1.0, per_unit_live_bytes={"a": 20, "b": 20})
        assert snap.imbalance() == 1.0

    def test_empty_snapshot(self):
        snap = MemorySnapshot(time=0.0, per_unit_live_bytes={})
        assert snap.total_live_bytes == 0
        assert snap.imbalance() == 1.0
