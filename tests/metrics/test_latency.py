"""Tests for repro.metrics.latency."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import LatencyRecorder, LatencySummary, percentile


class TestPercentile:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_single_value(self):
        assert percentile([3.0], 0.99) == 3.0

    def test_median_of_odd_list(self):
        assert percentile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0], 0.5) == 1.5

    def test_extremes(self):
        values = sorted([5.0, 1.0, 3.0])
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 5.0

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
                    max_size=50))
    def test_monotone_in_quantile(self, values):
        ordered = sorted(values)
        quantiles = [0.0, 0.25, 0.5, 0.75, 0.95, 1.0]
        results = [percentile(ordered, q) for q in quantiles]
        assert results == sorted(results)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
                    max_size=50), st.floats(min_value=0, max_value=1))
    def test_within_range(self, values, q):
        ordered = sorted(values)
        assert ordered[0] <= percentile(ordered, q) <= ordered[-1]

    @given(st.floats(min_value=0, max_value=1))
    def test_two_element_list_interpolates_linearly(self, q):
        assert percentile([10.0, 20.0], q) == pytest.approx(10.0 + 10.0 * q)

    def test_two_element_endpoints_exact(self):
        values = [2.0, 7.0]
        assert percentile(values, 0.0) == 2.0
        assert percentile(values, 1.0) == 7.0

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
                    max_size=50))
    def test_endpoints_are_exact_order_statistics(self, values):
        ordered = sorted(values)
        # q=0 and q=1 must return the min/max *exactly* — no
        # interpolation artefacts at the rank boundaries.
        assert percentile(ordered, 0.0) == ordered[0]
        assert percentile(ordered, 1.0) == ordered[-1]

    def test_nan_quantile_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0, 2.0], float("nan"))

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1,
                    max_size=50),
           st.floats(min_value=0, max_value=1),
           st.floats(min_value=0, max_value=1))
    def test_monotone_in_arbitrary_quantile_pairs(self, values, q1, q2):
        ordered = sorted(values)
        lo, hi = min(q1, q2), max(q1, q2)
        assert percentile(ordered, lo) <= percentile(ordered, hi)


class TestLatencyRecorder:
    def test_empty_summary(self):
        summary = LatencyRecorder().summary()
        assert summary == LatencySummary.empty()

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-0.1)

    def test_rejects_nan(self):
        recorder = LatencyRecorder()
        with pytest.raises(ValueError):
            recorder.record(float("nan"))
        assert len(recorder) == 0  # nothing slipped in

    def test_empty_round_trip(self):
        # An untouched recorder's summary IS the canonical empty
        # summary, and empty() is self-consistent (all-zero, count 0).
        empty = LatencySummary.empty()
        assert LatencyRecorder().summary() == empty
        assert empty.count == 0
        assert (empty.mean, empty.p50, empty.p95, empty.p99,
                empty.max) == (0.0, 0.0, 0.0, 0.0, 0.0)
        assert LatencySummary.empty() == empty

    def test_summary_statistics(self):
        recorder = LatencyRecorder()
        for v in [1.0, 2.0, 3.0, 4.0]:
            recorder.record(v)
        summary = recorder.summary()
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.p50 == 2.5
        assert summary.max == 4.0

    def test_len(self):
        recorder = LatencyRecorder()
        recorder.record(1.0)
        assert len(recorder) == 1
