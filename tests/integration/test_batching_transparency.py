"""Transport-batching transparency: batching must never change results.

The differential counterpart of ``test_overload_transparency`` for the
micro-batched data plane.  The same seeded workload is run with
batching off (the seed behaviour), at ``batch_size=8`` and at
``batch_size=64``:

- **synchronous mode** demands full identity — the results *list*
  (content and order), every joiner's logical counters, every chained
  index's counters, every router's logical counters and the causal
  trace must be byte-equal;
- **simulated mode** demands logical identity — identical result pair
  sets, identical per-component logical counters, a zero-pressure
  overload ledger — while executing strictly *fewer* simulator events
  (the whole point of batching);
- batching must stay transparent under crash/replay recovery and under
  a wire-level reordering network.

Only the ``repro_batch_*`` metric family (which exists solely in the
batched runs) may appear on one side of the diff.
"""

import pytest

from repro import (
    BatchingConfig,
    BicliqueConfig,
    BicliqueEngine,
    EquiJoinPredicate,
    TimeWindow,
    merge_by_time,
)
from repro.cluster import SimulatedCluster
from repro.cluster.matrix_runtime import MatrixSimulatedCluster
from repro.matrix.engine import MatrixConfig
from repro.obs.trace import SPAN_DELIVER, Tracer
from repro.simulation import SeededRng
from repro.simulation.faults import CrashFault, FaultPlan
from repro.simulation.network import FixedDelayNetwork, ReorderNetwork
from repro.workloads import ConstantRate, EquiJoinWorkload, UniformKeys

PREDICATE = EquiJoinPredicate("k", "k")
WINDOW = TimeWindow(seconds=4.0)
DURATION = 15.0
SEEDS = [3, 41, 1234]
BATCHINGS = [None, BatchingConfig(batch_size=8), BatchingConfig(batch_size=64)]


def biclique_config(**overrides):
    defaults = dict(window=WINDOW, r_joiners=2, s_joiners=2, routers=2,
                    routing="hash", archive_period=1.0,
                    punctuation_interval=0.2)
    defaults.update(overrides)
    return BicliqueConfig(**defaults)


def arrivals_for(seed, rate=40.0, duration=DURATION):
    wl = EquiJoinWorkload(keys=UniformKeys(16), seed=seed)
    r, s = wl.materialise(ConstantRate(rate), duration)
    return r, s, list(merge_by_time(r, s))


def logical_counters(engine):
    """Every batching-independent counter the engine exposes."""
    return {
        "joiners": {uid: (j.stats.envelopes_received, j.stats.tuples_stored,
                          j.stats.probes_processed, j.stats.results_emitted,
                          j.stats.punctuations_received,
                          j.stats.duplicates_dropped)
                    for uid, j in engine.joiners.items()},
        "indexes": {uid: (j.index.stats.inserts, j.index.stats.probes,
                          j.index.stats.comparisons, j.index.stats.matches,
                          j.index.stats.window_filtered,
                          j.index.stats.tuples_expired)
                    for uid, j in engine.joiners.items()},
        "routers": {r.router_id: (r.stats.tuples_ingested,
                                  r.stats.store_messages,
                                  r.stats.join_messages,
                                  r.stats.punctuations)
                    for r in engine.routers},
        "network_bytes": engine.network_stats.bytes_sent,
    }


def split_trace(tracer):
    """(ordered non-deliver spans, deliver-span multiset).

    Batching moves *when* a delivery lands and groups member deliveries
    together, so deliver spans compare as a time-free multiset; every
    other span kind must match exactly, in order.
    """
    ordered = [(s.kind, s.actor, s.tuple_id, s.partner, s.detail)
               for s in tracer.spans if s.kind != SPAN_DELIVER]
    delivers = sorted((s.actor, s.tuple_id, s.detail)
                      for s in tracer.spans if s.kind == SPAN_DELIVER)
    return ordered, delivers


# ---------------------------------------------------------------------------
# Synchronous mode: byte identity
# ---------------------------------------------------------------------------
def run_sync(seed, batching):
    _r, _s, arrivals = arrivals_for(seed)
    tracer = Tracer()
    engine = BicliqueEngine(biclique_config(), PREDICATE, tracer=tracer,
                            batching=batching)
    for t in arrivals:
        engine.ingest(t)
    engine.finish()
    return engine, tracer


class TestSyncByteIdentity:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("batching", BATCHINGS[1:],
                             ids=["batch8", "batch64"])
    def test_results_and_counters_identical(self, seed, batching):
        baseline, base_trace = run_sync(seed, None)
        batched, batch_trace = run_sync(seed, batching)
        assert batched.results == baseline.results  # content AND order
        assert logical_counters(batched) == logical_counters(baseline)
        base_ordered, base_delivers = split_trace(base_trace)
        batch_ordered, batch_delivers = split_trace(batch_trace)
        assert batch_ordered == base_ordered
        assert batch_delivers == base_delivers

    def test_batched_run_actually_batched(self):
        batched, _ = run_sync(SEEDS[0], BatchingConfig(batch_size=8))
        assert sum(r.stats.batches_sent for r in batched.routers) > 0


# ---------------------------------------------------------------------------
# Simulated mode: logical identity, fewer events
# ---------------------------------------------------------------------------
def run_cluster(seed, batching, *, network=None, faults=None,
                replay_recovery=False):
    _r, _s, arrivals = arrivals_for(seed)
    cluster = SimulatedCluster(
        biclique_config(replay_recovery=replay_recovery),
        PREDICATE, network=network, faults=faults, batching=batching)
    report = cluster.run(iter(arrivals), DURATION)
    return cluster, report


def result_keys(engine):
    return sorted((res.r.ident, res.s.ident) for res in engine.results)


class TestSimulatedLogicalIdentity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_identical_results_and_counters(self, seed):
        base, base_report = run_cluster(seed, None)
        runs = [run_cluster(seed, b) for b in BATCHINGS[1:]]
        for cluster, report in runs:
            assert result_keys(cluster.engine) == result_keys(base.engine)
            assert report.tuples_ingested == base_report.tuples_ingested
            assert report.results == base_report.results
            assert logical_counters(cluster.engine) == \
                logical_counters(base.engine)

    def test_unbatched_metrics_unchanged_by_feature(self):
        """With batching disabled the repro_batch_* family must not
        exist at all: the snapshot stays identical to the seed's."""
        _cluster, report = run_cluster(SEEDS[0], None)
        assert not any(k.startswith("repro_batch_")
                       for k in report.metrics)

    def test_batched_run_executes_fewer_events(self):
        def events(report):
            return next(v for k, v in report.metrics.items()
                        if k.startswith("repro_sim_events_executed_total"))

        _b, base_report = run_cluster(SEEDS[0], None)
        _c, batched_report = run_cluster(SEEDS[0], BatchingConfig(batch_size=8))
        assert events(batched_report) < events(base_report)
        assert any(k.startswith("repro_batch_messages_total")
                   for k in batched_report.metrics)


class TestBatchingUnderFaults:
    @pytest.mark.parametrize("batching", BATCHINGS[1:],
                             ids=["batch8", "batch64"])
    def test_crash_replay_recovery_is_exact(self, batching):
        """With window-replay recovery a mid-run crash loses nothing and
        duplicates nothing — batched exactly like unbatched."""
        faults = FaultPlan((CrashFault(at=DURATION / 2, target="R0",
                                       outage=0.5),))
        base, _ = run_cluster(7, None, faults=faults, replay_recovery=True)
        batched, _ = run_cluster(7, batching, faults=faults,
                                 replay_recovery=True)
        base_keys = result_keys(base.engine)
        batch_keys = result_keys(batched.engine)
        assert batch_keys == base_keys
        # Exactly-once: no pair produced twice in either run.
        assert len(set(batch_keys)) == len(batch_keys)
        assert len(set(base_keys)) == len(base_keys)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_reordering_network_transparent(self, seed):
        """The ordering protocol already repairs wire-level disorder;
        batches must ride through it unchanged."""
        def net():
            return ReorderNetwork(FixedDelayNetwork(0.002),
                                  SeededRng(seed, "reorder-net"),
                                  reorder_probability=0.3)

        base, _ = run_cluster(seed, None, network=net())
        batched, _ = run_cluster(seed, BatchingConfig(batch_size=8),
                                 network=net())
        assert result_keys(batched.engine) == result_keys(base.engine)


# ---------------------------------------------------------------------------
# The matrix deployment gets the same guarantee
# ---------------------------------------------------------------------------
class TestMatrixBatching:
    def run_matrix(self, batching):
        _r, _s, arrivals = arrivals_for(11, rate=30.0, duration=10.0)
        cluster = MatrixSimulatedCluster(
            MatrixConfig(window=WINDOW, rows=2, cols=2,
                         punctuation_interval=0.2),
            PREDICATE, routers=2, batching=batching)
        cluster.run(iter(arrivals), 10.0)
        return sorted((res.r.ident, res.s.ident)
                      for res in cluster.engine.results)

    def test_identical_result_sets(self):
        base = self.run_matrix(None)
        assert base  # the workload joins something
        assert self.run_matrix(BatchingConfig(batch_size=8)) == base
        assert self.run_matrix(BatchingConfig(batch_size=64)) == base
