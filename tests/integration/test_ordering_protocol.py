"""Integration tests of the tuple-ordering protocol under real network
disorder (thesis §3.3, Figure 8).

The engine runs on the simulated broker with per-channel FIFO delivery,
so disorder can only arise *across* channels — which requires at least
two routers (with a single router every joiner sees one FIFO channel
that already carries the global order).  With two routers and jittery
or adversarial channel delays, the store and join copies of two tuples
race exactly as in Figure 8; the protocol must fix the races and the
unprotected ablation must demonstrably exhibit them.
"""

from repro import BicliqueConfig, EquiJoinPredicate, TimeWindow, stream_from_pairs
from repro.broker import Broker
from repro.core.biclique import BicliqueEngine
from repro.harness import check_exactly_once, reference_join
from repro.simulation import (
    JitterNetwork,
    PerChannelDelayNetwork,
    ReorderNetwork,
    SeededRng,
    Simulator,
)
from repro.workloads import ConstantRate, EquiJoinWorkload, UniformKeys

WINDOW = TimeWindow(seconds=5.0)
PREDICATE = EquiJoinPredicate("k", "k")


def finish_simulated(sim, engine):
    """Drain in-flight deliveries, then flush the ordering buffers."""
    sim.run()
    engine.punctuate_all()
    sim.run()
    for joiner in engine.joiners.values():
        joiner.flush()


def run_on_network(network_factory, *, ordered: bool, seed: int = 1,
                   duration: float = 20.0, rate: float = 40.0,
                   routing: str = "hash", routers: int = 2):
    sim = Simulator()
    broker = Broker(sim, network_factory(sim))
    config = BicliqueConfig(
        window=WINDOW, r_joiners=2, s_joiners=2, routers=routers,
        routing=routing, archive_period=1.0, punctuation_interval=0.2,
        ordered=ordered, expiry_slack=3.0)
    engine = BicliqueEngine(config, PREDICATE, broker=broker)

    workload = EquiJoinWorkload(keys=UniformKeys(15), seed=seed)
    arrivals = list(workload.arrivals(ConstantRate(rate), duration))
    for t in arrivals:
        sim.schedule_at(t.ts, lambda t=t: engine.ingest(t))
    finish_simulated(sim, engine)

    r = [t for t in arrivals if t.relation == "R"]
    s = [t for t in arrivals if t.relation == "S"]
    expected = reference_join(r, s, PREDICATE, WINDOW)
    return check_exactly_once(engine.results, expected)


def jitter(sim):
    return JitterNetwork(base=0.005, jitter=0.5, rng=SeededRng(99, "net"))


class TestProtocolUnderDisorder:
    def test_ordered_engine_is_exact_under_heavy_jitter(self):
        check = run_on_network(jitter, ordered=True)
        assert check.ok, check

    def test_ordered_engine_exact_with_random_routing(self):
        check = run_on_network(jitter, ordered=True, routing="random")
        assert check.ok, check

    def test_unordered_engine_fails_under_jitter(self):
        """The ablation: without the protocol, cross-channel races must
        produce missed and/or duplicate results."""
        check = run_on_network(jitter, ordered=False, routing="random")
        assert not check.ok
        assert check.duplicates > 0 or check.missing > 0

    def test_single_router_is_immune_even_unordered(self):
        """With one router, every joiner consumes a single FIFO channel
        that already carries the global order — disorder needs >= 2
        routers, which is why the protocol matters for scaled router
        pools."""
        check = run_on_network(jitter, ordered=False, routers=1)
        assert check.ok, check

    def test_zero_jitter_unordered_is_coincidentally_exact(self):
        def no_jitter(sim):
            return JitterNetwork(base=0.005, jitter=0.0,
                                 rng=SeededRng(1, "net"))
        check = run_on_network(no_jitter, ordered=False)
        assert check.ok, check


class TestReorderNetworkMasked:
    """A wire that violates pairwise FIFO (ReorderNetwork) is repaired
    by the broker's per-channel sequence gates before the ordering
    protocol ever sees the traffic — so even the *unordered* engine,
    which is defenceless against in-channel inversions, stays exact on
    a single router."""

    @staticmethod
    def reorder(sim):
        return ReorderNetwork(
            JitterNetwork(base=0.005, jitter=0.05, rng=SeededRng(99, "net")),
            SeededRng(17, "reorder"),
            reorder_probability=0.5, max_inflight=4)

    def test_ordered_engine_exact_on_reordering_wire(self):
        check = run_on_network(self.reorder, ordered=True, routing="random")
        assert check.ok, check

    def test_gates_mask_inversions_for_single_router(self):
        """One router + unordered engine relies *entirely* on channel
        FIFO; only the sequence gates stand between the wire inversions
        and duplicate/missed results."""
        check = run_on_network(self.reorder, ordered=False, routers=1)
        assert check.ok, check


class TestFigure8Scenarios:
    """Deterministic reconstructions of the Figure 8 races.

    Two tuples r (via router0) and s (via router1) and hand-picked
    channel delays force the exact interleavings of Figure 8(c)
    (missed result) and 8(d) (duplicate result).
    """

    def _run(self, ordered: bool, delays: dict[tuple[str, str], float]):
        sim = Simulator()
        network = PerChannelDelayNetwork(default=0.0)
        for (sender, receiver), delay in delays.items():
            network.set_delay(sender, receiver, delay)
        broker = Broker(sim, network)
        config = BicliqueConfig(
            window=WINDOW, r_joiners=1, s_joiners=1, routers=2,
            routing="random", archive_period=1.0,
            punctuation_interval=10.0,  # no mid-run punctuation
            ordered=ordered, expiry_slack=1.0)
        engine = BicliqueEngine(config, PREDICATE, broker=broker)

        r = stream_from_pairs("R", [(0.00, {"k": 1})])
        s = stream_from_pairs("S", [(0.01, {"k": 1})])
        # Entry queue round-robin: first tuple → router0, second → router1.
        sim.schedule_at(0.00, lambda: engine.ingest(r[0]))
        sim.schedule_at(0.01, lambda: engine.ingest(s[0]))
        finish_simulated(sim, engine)
        expected = reference_join(r, s, PREDICATE, WINDOW)
        return check_exactly_once(engine.results, expected)

    # Duplicate (Fig 8(d)): R0 sees store(r) then join(s) → result;
    # S0 sees join(r) LATE (slow router0→S0), after store(s) → result again.
    DUPLICATE_DELAYS = {("router0", "S0"): 0.5}

    # Miss (Fig 8(c)): R0 sees store(r) LATE (slow router0→R0), after
    # join(s) → no result; S0 sees join(r) early, before store(s) → none.
    MISS_DELAYS = {("router0", "R0"): 0.5}

    def test_duplicate_race_without_protocol(self):
        check = self._run(ordered=False, delays=self.DUPLICATE_DELAYS)
        assert check.duplicates == 1
        assert check.produced == 2

    def test_duplicate_race_fixed_by_protocol(self):
        check = self._run(ordered=True, delays=self.DUPLICATE_DELAYS)
        assert check.ok, check

    def test_miss_race_without_protocol(self):
        check = self._run(ordered=False, delays=self.MISS_DELAYS)
        assert check.missing == 1
        assert check.produced == 0

    def test_miss_race_fixed_by_protocol(self):
        check = self._run(ordered=True, delays=self.MISS_DELAYS)
        assert check.ok, check

    def test_in_order_arrivals_exact_either_way(self):
        check_unordered = self._run(ordered=False, delays={})
        check_ordered = self._run(ordered=True, delays={})
        assert check_unordered.ok
        assert check_ordered.ok
