"""Property-based integration tests: every engine configuration must
produce exactly the reference result set, exactly once.

This is the master invariant of the whole system (thesis §3.3): the
join-biclique with any routing strategy, any subgrouping, any unit
counts — and the join-matrix baseline with any geometry — all compute
the same windowed join.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    BandJoinPredicate,
    BicliqueConfig,
    ConjunctionPredicate,
    CrossPredicate,
    EquiJoinPredicate,
    StreamJoinEngine,
    ThetaJoinPredicate,
    TimeWindow,
    stream_from_pairs,
)
from repro.core.streams import merge_by_time
from repro.harness import check_exactly_once, reference_join
from repro.matrix import MatrixConfig, MatrixEngine


def gen_streams(draw):
    n_r = draw(st.integers(0, 35))
    n_s = draw(st.integers(0, 35))
    keys = draw(st.integers(1, 6))
    r_gap = draw(st.sampled_from([0.2, 0.5, 1.0]))
    s_gap = draw(st.sampled_from([0.2, 0.5, 1.0]))
    r = stream_from_pairs(
        "R", [(i * r_gap, {"k": draw(st.integers(0, keys)), "v": float(i)})
              for i in range(n_r)])
    s = stream_from_pairs(
        "S", [(i * s_gap, {"k": draw(st.integers(0, keys)), "v": float(i)})
              for i in range(n_s)])
    return r, s


PREDICATES = [
    EquiJoinPredicate("k", "k"),
    BandJoinPredicate("v", "v", band=2.0),
    ThetaJoinPredicate("v", "<", "v"),
    ThetaJoinPredicate("k", "!=", "k"),
    CrossPredicate(),
    ConjunctionPredicate([EquiJoinPredicate("k", "k"),
                          BandJoinPredicate("v", "v", band=5.0)]),
]


class TestBicliqueExactlyOnce:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_any_config_matches_reference(self, data):
        r, s = gen_streams(data.draw)
        predicate = data.draw(st.sampled_from(PREDICATES), label="predicate")
        window = TimeWindow(seconds=data.draw(st.sampled_from([2.0, 5.0, 20.0]),
                                              label="window"))
        r_joiners = data.draw(st.integers(1, 4), label="r_joiners")
        s_joiners = data.draw(st.integers(1, 4), label="s_joiners")
        config = BicliqueConfig(
            window=window,
            r_joiners=r_joiners,
            s_joiners=s_joiners,
            routers=data.draw(st.integers(1, 2), label="routers"),
            routing=data.draw(st.sampled_from(["random", "auto"]),
                              label="routing"),
            r_subgroups=data.draw(st.integers(1, min(2, r_joiners)),
                                  label="r_sub"),
            s_subgroups=data.draw(st.integers(1, min(2, s_joiners)),
                                  label="s_sub"),
            archive_period=data.draw(st.sampled_from([0.5, 2.0, None]),
                                     label="period"),
            punctuation_interval=data.draw(st.sampled_from([0.1, 1.0]),
                                           label="punct"),
            ordered=data.draw(st.booleans(), label="ordered"),
            expiry_slack=5.0,  # multiple routers can skew the global order
        )
        if config.routing == "auto" and predicate.selectivity_class == "low" \
                and (config.r_subgroups > 1 or config.s_subgroups > 1):
            config = BicliqueConfig(**{**config.__dict__, "routing": "random"})
        engine = StreamJoinEngine(config, predicate)
        results, report = engine.run(r, s)
        expected = reference_join(r, s, predicate, window)
        check = check_exactly_once(results, expected)
        assert check.ok, (check, config, predicate)


class TestMatrixExactlyOnce:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_any_grid_matches_reference(self, data):
        r, s = gen_streams(data.draw)
        predicate = data.draw(st.sampled_from(PREDICATES), label="predicate")
        window = TimeWindow(seconds=data.draw(st.sampled_from([2.0, 20.0]),
                                              label="window"))
        config = MatrixConfig(
            window=window,
            rows=data.draw(st.integers(1, 3), label="rows"),
            cols=data.draw(st.integers(1, 3), label="cols"),
            partitioning=data.draw(st.sampled_from(["random", "hash"]),
                                   label="partitioning")
            if predicate.key_attribute("R") is not None else "random",
            archive_period=data.draw(st.sampled_from([0.5, None]),
                                     label="period"),
            ordered=data.draw(st.booleans(), label="ordered"),
        )
        engine = MatrixEngine(config, predicate)
        for t in merge_by_time(r, s):
            engine.ingest(t)
        engine.finish()
        expected = reference_join(r, s, predicate, window)
        check = check_exactly_once(engine.results, expected)
        assert check.ok, (check, config, predicate)


class TestModelsAgree:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_biclique_and_matrix_identical_result_sets(self, data):
        r, s = gen_streams(data.draw)
        predicate = data.draw(st.sampled_from(PREDICATES[:3]))
        window = TimeWindow(seconds=5.0)
        biclique = StreamJoinEngine(
            BicliqueConfig(window=window, r_joiners=2, s_joiners=2,
                           archive_period=1.0, punctuation_interval=0.5),
            predicate)
        b_results, _ = biclique.run(r, s)
        matrix = MatrixEngine(
            MatrixConfig(window=window, rows=2, cols=2, archive_period=1.0),
            predicate)
        for t in merge_by_time(r, s):
            matrix.ingest(t)
        matrix.finish()
        assert {res.key for res in b_results} == \
            {res.key for res in matrix.results}
