"""Overload-layer transparency: enabling backpressure must not change
a run that never hits its limits.

The differential counterpart of ``test_trace_transparency``: the same
seeded, comfortably-underloaded workload is run with the overload layer
off and with backpressure + credits enabled at generous bounds.  Every
observable product of the run — join results, metrics snapshot,
autoscaling timeline and decisions — must be identical; only the
``repro_overload_*`` metric family (which exists solely in the enabled
run) may differ, and every pressure indicator in it must be zero.
"""

import pytest

from repro import BicliqueConfig, EquiJoinPredicate, TimeWindow, merge_by_time
from repro.cluster import HpaConfig, SimulatedCluster
from repro.overload import OverloadConfig
from repro.workloads import ConstantRate, EquiJoinWorkload, UniformKeys

PREDICATE = EquiJoinPredicate("k", "k")
WINDOW = TimeWindow(seconds=4.0)
DURATION = 18.0

#: Generous bounds an underloaded run never approaches.
GENEROUS = dict(entry_queue_depth=10_000, joiner_queue_depth=10_000,
                credits_per_joiner=10_000)


def run_once(seed, overload, *, rate=30.0):
    wl = EquiJoinWorkload(keys=UniformKeys(12), seed=seed)
    r, s = wl.materialise(ConstantRate(rate), DURATION)
    arrivals = list(merge_by_time(r, s))
    cluster = SimulatedCluster(
        BicliqueConfig(window=WINDOW, r_joiners=2, s_joiners=2,
                       routing="hash", punctuation_interval=0.2),
        PREDICATE,
        hpa={"R": HpaConfig(min_replicas=1, max_replicas=3, period=10.0)},
        overload=overload)
    report = cluster.run(iter(arrivals), DURATION)
    return cluster, report


def observable_outcome(cluster, report):
    """Everything a run produces, minus the overload layer's own
    telemetry (asserted separately)."""
    metrics = {k: v for k, v in (report.metrics or {}).items()
               if not k.startswith("repro_overload_")}
    return {
        "results": list(cluster.engine.results),
        "tuples_ingested": report.tuples_ingested,
        "result_count": report.results,
        "metrics": metrics,
        "timeline": list(report.timeline),
        "hpa_decisions": report.hpa_decisions,
        "scale_events": list(report.scale_events),
    }


class TestOverloadTransparency:
    @pytest.mark.parametrize("seed", [3, 41, 1234])
    @pytest.mark.parametrize("policy", ["block", "drop-tail", "semantic"])
    def test_underloaded_run_is_untouched(self, seed, policy):
        plain_cluster, plain_report = run_once(seed, None)
        enabled_cluster, enabled_report = run_once(
            seed, OverloadConfig(policy=policy, **GENEROUS))
        plain = observable_outcome(plain_cluster, plain_report)
        enabled = observable_outcome(enabled_cluster, enabled_report)
        assert plain["result_count"] > 0
        for key in plain:
            assert enabled[key] == plain[key], (
                f"overload layer ({policy}) perturbed {key!r}")

    def test_overload_telemetry_reports_no_pressure(self):
        _, report = run_once(3, OverloadConfig(policy="block", **GENEROUS))
        o = report.overload
        assert o.reconciled
        assert o.total_shed == 0
        assert o.deferrals == 0
        assert o.parks == 0
        assert o.credit_stalls == 0
        assert o.max_admission_delay == 0.0
        assert sum(o.admitted.values()) == o.total_offered
        # The overload metric family exists and is all-clear.
        metrics = report.metrics
        assert metrics["repro_overload_deferrals_total"] == 0
        assert metrics['repro_overload_shed_total{side="R"}'] == 0
        assert metrics['repro_overload_shed_total{side="S"}'] == 0
        assert metrics["repro_overload_parks_total"] == 0
        assert metrics["repro_overload_credit_stalls_total"] == 0

    def test_event_count_is_identical(self):
        """The layer adds zero simulation events when never stressed —
        the strongest non-perturbation statement available."""
        _, plain = run_once(3, None)
        _, enabled = run_once(3, OverloadConfig(policy="block", **GENEROUS))
        key = "repro_sim_events_executed_total"
        assert plain.metrics[key] == enabled.metrics[key]
