"""Trace transparency: observing a run must not change it.

The zero-perturbation contract of the tentpole observability layer,
checked differentially: the same seeded workload is run three times —
tracer off, sampled, and full — and everything the run *produces*
(join results, the ClusterReport's metrics snapshot and counters, the
autoscaling timeline and decisions) must be identical across the three
modes.  Only the trace itself may differ.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
import pytest

from repro import BicliqueConfig, EquiJoinPredicate, TimeWindow, merge_by_time
from repro.cluster import HpaConfig, SimulatedCluster
from repro.obs import NOOP_TRACER, Tracer
from repro.simulation import CrashFault, FaultPlan
from repro.workloads import ConstantRate, EquiJoinWorkload, UniformKeys

PREDICATE = EquiJoinPredicate("k", "k")
WINDOW = TimeWindow(seconds=4.0)
DURATION = 18.0


def run_once(seed, tracer, *, faults=None, rate=30.0):
    wl = EquiJoinWorkload(keys=UniformKeys(12), seed=seed)
    r, s = wl.materialise(ConstantRate(rate), DURATION)
    arrivals = list(merge_by_time(r, s))
    cluster = SimulatedCluster(
        BicliqueConfig(window=WINDOW, r_joiners=2, s_joiners=2,
                       routing="hash", punctuation_interval=0.2,
                       replay_recovery=faults is not None),
        PREDICATE,
        hpa={"R": HpaConfig(min_replicas=1, max_replicas=3,
                            period=10.0)},
        faults=faults or FaultPlan(),
        tracer=tracer)
    report = cluster.run(iter(arrivals), DURATION)
    return cluster, report


def observable_outcome(cluster, report):
    """Everything a run produces, minus the trace itself."""
    return {
        "results": list(cluster.engine.results),
        "tuples_ingested": report.tuples_ingested,
        "result_count": report.results,
        "metrics": report.metrics,
        "timeline": list(report.timeline),
        "hpa_decisions": report.hpa_decisions,
        "scale_events": list(report.scale_events),
        "fault_events": list(report.fault_events),
        "restarts": report.restarts,
    }


MODES = {
    "off": lambda: NOOP_TRACER,
    "sampled": lambda: Tracer(sample_rate=0.25),
    "full": lambda: Tracer(),
}


class TestTracerTransparency:
    @pytest.mark.parametrize("seed", [3, 41, 1234])
    def test_all_modes_identical_outcome(self, seed):
        baseline = None
        for mode, make_tracer in MODES.items():
            cluster, report = run_once(seed, make_tracer())
            outcome = observable_outcome(cluster, report)
            assert outcome["result_count"] > 0
            assert outcome["metrics"], "registry snapshot missing"
            if baseline is None:
                baseline = outcome
            else:
                for key in baseline:
                    assert outcome[key] == baseline[key], (
                        f"tracer mode {mode!r} perturbed {key!r}")

    def test_transparent_under_crash_and_replay(self):
        faults = FaultPlan((CrashFault(at=8.0, target="R0", outage=1.0),))
        _, plain = run_once(7, NOOP_TRACER, faults=faults)
        cluster, traced = run_once(7, Tracer(), faults=faults)
        assert plain.fault_events == traced.fault_events
        assert plain.restarts == traced.restarts == {"R0": 1}
        assert plain.metrics == traced.metrics
        assert plain.results == traced.results
        # The traced run actually observed the recovery.
        assert cluster.tracer.counts_by_kind().get("replay", 0) > 0

    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**16),
           sample_rate=st.sampled_from([0.1, 0.5, 1.0]))
    def test_property_random_workloads(self, seed, sample_rate):
        _, plain = run_once(seed, NOOP_TRACER, rate=15.0)
        _, traced = run_once(seed, Tracer(sample_rate=sample_rate),
                             rate=15.0)
        assert plain.results == traced.results
        assert plain.metrics == traced.metrics
        assert plain.timeline == traced.timeline
        assert plain.hpa_decisions == traced.hpa_decisions
        assert plain.scale_events == traced.scale_events

    def test_traced_results_match_reference_join(self):
        from repro.harness import check_exactly_once, reference_join

        wl = EquiJoinWorkload(keys=UniformKeys(12), seed=5)
        r, s = wl.materialise(ConstantRate(30.0), DURATION)
        cluster, _ = run_once(5, Tracer())
        expected = reference_join(r, s, PREDICATE, WINDOW)
        check = check_exactly_once(cluster.engine.results, expected)
        assert check.ok, (check.duplicates, check.spurious, check.missing)


class TestTraceDeterminism:
    def test_same_seed_same_trace_bytes(self, tmp_path):
        a_cluster, _ = run_once(11, Tracer())
        b_cluster, _ = run_once(11, Tracer())
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        a_cluster.tracer.write_jsonl(a)
        b_cluster.tracer.write_jsonl(b)
        assert a.read_bytes() == b.read_bytes()
        assert a.stat().st_size > 0

    def test_sampled_chains_are_subset_and_complete(self):
        full_cluster, _ = run_once(11, Tracer())
        sampled_cluster, _ = run_once(11, Tracer(sample_rate=0.25))
        full, sampled = full_cluster.tracer, sampled_cluster.tracer
        assert 0 < len(sampled.spans) < len(full.spans)
        # Sampling keeps whole chains: every sampled tuple's span list
        # is exactly its span list in the full trace.
        sampled_ids = {s.tuple_id for s in sampled.spans
                       if s.tuple_id is not None}
        for tuple_id in sorted(sampled_ids)[:50]:
            assert sampled.spans_of(tuple_id) == full.spans_of(tuple_id)
