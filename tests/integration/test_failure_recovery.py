"""Failure-injection tests: crash-and-restart of joiner units.

The architecture's resilience claim (thesis §3.1): units are isolated
and independently "resilient to failure".  With no replication, a
crashed unit loses its window state; the engine's recovery model is a
stateless restart on the same durable subscription.  These tests pin
the exact blast radius: only pairs whose stored half lived on the
crashed unit and whose probe arrived before the state naturally
refilled can be lost — everything after one window extent is exact
again, and nothing is ever duplicated.
"""

import pytest

from repro import (
    BicliqueConfig,
    BicliqueEngine,
    EquiJoinPredicate,
    TimeWindow,
    merge_by_time,
)
from repro.harness import check_exactly_once, reference_join
from repro.workloads import ConstantRate, EquiJoinWorkload, UniformKeys

WINDOW = TimeWindow(seconds=5.0)
PREDICATE = EquiJoinPredicate("k", "k")


def build(routing="hash"):
    return BicliqueEngine(
        BicliqueConfig(window=WINDOW, r_joiners=2, s_joiners=2,
                       routing=routing, archive_period=1.0,
                       punctuation_interval=0.2),
        PREDICATE)


def workload(duration=30.0):
    wl = EquiJoinWorkload(keys=UniformKeys(20), seed=99)
    r, s = wl.materialise(ConstantRate(60.0), duration)
    return r, s, list(merge_by_time(r, s))


class TestCrashRecovery:
    @pytest.mark.parametrize("routing", ["hash", "random"])
    def test_no_duplicates_and_bounded_loss(self, routing):
        r, s, arrivals = workload()
        engine = build(routing)
        crash_at = len(arrivals) // 2
        crash_ts = arrivals[crash_at].ts
        for t in arrivals[:crash_at]:
            engine.ingest(t)
        engine.fail_unit("R0")
        for t in arrivals[crash_at:]:
            engine.ingest(t)
        engine.finish()

        expected = reference_join(r, s, PREDICATE, WINDOW)
        check = check_exactly_once(engine.results, expected)
        # Never duplicates, never fabricated results.
        assert check.duplicates == 0
        assert check.spurious == 0
        # Some results are lost (the crash was real)...
        assert check.missing > 0
        # ...but every missing pair involves pre-crash state: a pair
        # whose *older* member arrived after the crash cannot be lost.
        produced = {res.key for res in engine.results}
        ts_of = {t.ident: t.ts for t in arrivals}
        for r_ident, s_ident in expected - produced:
            assert min(ts_of[r_ident], ts_of[s_ident]) < crash_ts

    def test_exact_again_after_one_window(self):
        """Pairs living entirely >= one window after the crash are all
        produced: the lost state has fully expired from relevance."""
        r, s, arrivals = workload()
        engine = build()
        crash_at = len(arrivals) // 3
        crash_ts = arrivals[crash_at].ts
        for t in arrivals[:crash_at]:
            engine.ingest(t)
        engine.fail_unit("R0")
        engine.fail_unit("S1")  # multiple simultaneous failures
        for t in arrivals[crash_at:]:
            engine.ingest(t)
        engine.finish()

        expected = reference_join(r, s, PREDICATE, WINDOW)
        produced = {res.key for res in engine.results}
        ts_of = {t.ident: t.ts for t in arrivals}
        healed = {pair for pair in expected
                  if min(ts_of[pair[0]], ts_of[pair[1]])
                  >= crash_ts + WINDOW.seconds}
        assert healed, "workload too short to observe healing"
        assert healed <= produced

    def test_replacement_unit_resumes_storing(self):
        r, s, arrivals = workload(duration=10.0)
        engine = build()
        half = len(arrivals) // 2
        for t in arrivals[:half]:
            engine.ingest(t)
        stored_before = engine.joiners["R0"].stored_tuples
        assert stored_before > 0
        replacement = engine.fail_unit("R0")
        assert replacement.stored_tuples == 0
        for t in arrivals[half:]:
            engine.ingest(t)
        engine.finish()
        assert engine.joiners["R0"].stored_tuples > 0

    def test_crash_without_traffic_is_harmless(self):
        r, s, arrivals = workload(duration=10.0)
        engine = build()
        engine.fail_unit("R1")  # crash before any tuple arrived
        for t in arrivals:
            engine.ingest(t)
        engine.finish()
        expected = reference_join(r, s, PREDICATE, WINDOW)
        assert check_exactly_once(engine.results, expected).ok

    def test_group_membership_survives_crash(self):
        engine = build()
        engine.fail_unit("R0")
        assert engine.groups["R"].active_units() == ["R0", "R1"]
        assert "R0" in engine.joiners


def build_with_replay(routing="hash"):
    return BicliqueEngine(
        BicliqueConfig(window=WINDOW, r_joiners=2, s_joiners=2,
                       routing=routing, archive_period=1.0,
                       punctuation_interval=0.2, replay_recovery=True),
        PREDICATE)


class TestReplayRecovery:
    """With ``replay_recovery`` enabled the replacement unit rebuilds
    its window state from the routers' replay log (store-only, never
    re-probed), closing the blast radius to zero while preserving
    exactly-once output."""

    @pytest.mark.parametrize("routing", ["hash", "random"])
    def test_zero_loss_zero_duplicates(self, routing):
        r, s, arrivals = workload()
        engine = build_with_replay(routing)
        crash_at = len(arrivals) // 2
        for t in arrivals[:crash_at]:
            engine.ingest(t)
        engine.fail_unit("R0")
        for t in arrivals[crash_at:]:
            engine.ingest(t)
        engine.finish()

        expected = reference_join(r, s, PREDICATE, WINDOW)
        check = check_exactly_once(engine.results, expected)
        assert check.duplicates == 0
        assert check.spurious == 0
        assert check.missing == 0
        assert check.ok

    def test_replacement_state_is_restored_not_reprobed(self):
        r, s, arrivals = workload()
        engine = build_with_replay()
        crash_at = len(arrivals) // 2
        for t in arrivals[:crash_at]:
            engine.ingest(t)
        stored_before = engine.joiners["R0"].stored_tuples
        replacement = engine.fail_unit("R0")
        assert replacement.stats.tuples_restored > 0
        # The restored window is the crashed unit's live extent.
        assert replacement.stored_tuples <= stored_before
        # Store-only replay: restoring ran no probes, emitted nothing.
        assert replacement.stats.probes_processed == 0
        assert replacement.stats.results_emitted == 0

    def test_multiple_crashes_still_exact(self):
        r, s, arrivals = workload()
        engine = build_with_replay()
        third = len(arrivals) // 3
        for t in arrivals[:third]:
            engine.ingest(t)
        engine.fail_unit("R0")
        engine.fail_unit("S1")
        for t in arrivals[third:2 * third]:
            engine.ingest(t)
        engine.fail_unit("R0")  # crash the replacement too
        for t in arrivals[2 * third:]:
            engine.ingest(t)
        engine.finish()

        expected = reference_join(r, s, PREDICATE, WINDOW)
        assert check_exactly_once(engine.results, expected).ok

    def test_crash_and_restart_split_api(self):
        """`crash_unit` + `restart_unit` bound an outage window during
        which the unit's inbox buffers (no traffic is lost)."""
        r, s, arrivals = workload(duration=10.0)
        engine = build_with_replay()
        half = len(arrivals) // 2
        for t in arrivals[:half]:
            engine.ingest(t)
        engine.crash_unit("R0")
        assert "R0" not in engine.joiners
        for t in arrivals[half:half + 20]:
            engine.ingest(t)
        engine.restart_unit("R0")
        for t in arrivals[half + 20:]:
            engine.ingest(t)
        engine.finish()
        expected = reference_join(r, s, PREDICATE, WINDOW)
        assert check_exactly_once(engine.results, expected).ok

    def test_router_crash_and_restart_is_exact(self):
        """A crashed router stalls the watermark (joiners buffer); the
        replacement reuses its identity with the counter re-aligned to
        the surviving pool, so output stays exactly-once."""
        r, s, arrivals = workload()
        engine = build_with_replay()
        half = len(arrivals) // 2
        for t in arrivals[:half]:
            engine.ingest(t)
        engine.crash_router("router0")
        for t in arrivals[half:half + 40]:
            engine.ingest(t)
        engine.restart_router("router0")
        for t in arrivals[half + 40:]:
            engine.ingest(t)
        engine.finish()
        expected = reference_join(r, s, PREDICATE, WINDOW)
        assert check_exactly_once(engine.results, expected).ok
