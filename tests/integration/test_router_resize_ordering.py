"""Regression: router-pool resizes must not skew the global order.

The fuzz-found hash+resize result loss (ROADMAP, PR-4 era): growing the
router pool mid-run inserted the newcomer with its counter floored at
the pool max while the survivors sat mid-rotation, so the stamped
``(counter, router_id)`` keys stopped extending arrival order — a later
tuple could sort *before* an earlier one, its probe released ahead of
the earlier tuple's store, and the pair was silently missed (thesis
Fig. 8 (c)).  ``BicliqueEngine._realign_router_pool`` now advances the
whole pool to a common counter floor and restarts the entry-queue
rotation at the smallest router id on every pool grow/restart.
"""

from __future__ import annotations

from repro import (BicliqueConfig, BicliqueEngine, EquiJoinPredicate,
                   StreamSource, TimeWindow)
from repro.core.biclique import ENTRY_DESTINATION, ROUTER_GROUP
from repro.harness import check_exactly_once, reference_join

WINDOW = TimeWindow(seconds=6.0)
PREDICATE = EquiJoinPredicate("k", "k")


class _Driver:
    """Replays one engine lifecycle and checks it against the oracle."""

    def __init__(self, r_joiners: int = 2, s_joiners: int = 1) -> None:
        self.engine = BicliqueEngine(
            BicliqueConfig(window=WINDOW, r_joiners=r_joiners,
                           s_joiners=s_joiners, routers=1, routing="hash",
                           archive_period=1.5, punctuation_interval=0.4,
                           expiry_slack=3.0),
            PREDICATE)
        self.r_stream: list = []
        self.s_stream: list = []
        self._r = StreamSource("R")
        self._s = StreamSource("S")
        self.now = 0.0

    def ingest(self, count: int, keys: int, gap: float) -> None:
        for _ in range(count):
            self.now += gap
            source = self._r if (len(self.r_stream)
                                 <= len(self.s_stream)) else self._s
            t = source.emit(self.now, {"k": (len(self.r_stream)
                                             + len(self.s_stream)) % keys})
            (self.r_stream if t.relation == "R"
             else self.s_stream).append(t)
            self.engine.ingest(t)

    def check(self):
        self.engine.finish()
        expected = reference_join(self.r_stream, self.s_stream,
                                  PREDICATE, WINDOW)
        return check_exactly_once(self.engine.results, expected)


class TestRouterResizeOrdering:
    def test_pinned_resize_then_scale_out_loses_nothing(self):
        """The minimized fuzz counterexample, replayed verbatim.

        Before the fix this lost exactly one pair: the last R tuple's
        probe sorted before an earlier S tuple's store after two pool
        grows left the counters rotation-skewed.
        """
        d = _Driver()
        d.engine.scale_routers(2)
        d.ingest(1, 5, 0.05)
        d.engine.scale_routers(3)
        d.ingest(11, 1, 0.6)
        d.engine.scale_out("R", 1, now=d.now)
        d.ingest(1, 4, 0.2)
        check = d.check()
        assert check.ok, f"resize skewed the global order: {check}"

    def test_roadmap_recipe_resize_then_scale_in(self):
        """The ROADMAP reproduction shape: resize -> scale_in -> reap."""
        d = _Driver()
        d.ingest(12, 3, 0.6)
        d.engine.reap_drained(now=d.now)
        d.engine.scale_routers(2)
        d.engine.scale_in("R", now=d.now)
        d.ingest(12, 3, 0.6)
        d.engine.reap_drained(now=d.now)
        check = d.check()
        assert check.ok, f"lost or duplicated results: {check}"

    def test_repeated_grows_and_shrinks_stay_exact(self):
        d = _Driver(r_joiners=2, s_joiners=2)
        for routers in (3, 1, 2, 4, 2):
            d.ingest(9, 2, 0.2)
            d.engine.scale_routers(routers)
        d.ingest(9, 2, 0.2)
        check = d.check()
        assert check.ok, f"lost or duplicated results: {check}"

    def test_grow_aligns_counters_and_restarts_rotation(self):
        """The mechanism itself: common floor + id-ordered rotation."""
        d = _Driver()
        d.engine.scale_routers(2)
        d.ingest(1, 5, 0.05)
        d.engine.scale_routers(3)
        floors = {r.router_id: r.next_counter for r in d.engine.routers}
        assert len(set(floors.values())) == 1, (
            f"pool counters not aligned after grow: {floors}")
        queue = d.engine.broker.queue(f"{ENTRY_DESTINATION}.{ROUTER_GROUP}")
        assert queue.consumer_ids == sorted(queue.consumer_ids)
        assert queue._rr_next == 0

    def test_router_crash_restart_realigns(self):
        d = _Driver()
        d.engine.scale_routers(2)
        d.ingest(7, 2, 0.2)
        d.engine.crash_router("router0")
        d.ingest(6, 2, 0.2)
        d.engine.restart_router("router0")
        d.ingest(7, 2, 0.2)
        floors = {r.router_id: r.next_counter for r in d.engine.routers}
        # After realignment the counters may only differ by rotation
        # position (at most one full cycle).
        assert max(floors.values()) - min(floors.values()) <= 1, floors
