"""Stateful fuzzing of the biclique engine lifecycle.

A hypothesis rule-based state machine drives an engine through random
interleavings of ingestion, joiner scale-out/in, reaping, router-pool
resizing and punctuation, then checks the master invariant at teardown:
the produced results are exactly the reference pairs, exactly once.
(Failure injection is fuzzed separately with a weaker invariant — no
duplicates, bounded loss — since crashes legitimately lose state.)
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro import (
    BicliqueConfig,
    BicliqueEngine,
    EquiJoinPredicate,
    StreamSource,
    TimeWindow,
)
from repro.harness import check_exactly_once, reference_join

WINDOW = TimeWindow(seconds=6.0)
PREDICATE = EquiJoinPredicate("k", "k")


class BicliqueLifecycleMachine(RuleBasedStateMachine):
    """Random lifecycles must never break exactly-once."""

    @initialize(routing=st.sampled_from(["hash", "random"]),
                r_joiners=st.integers(1, 3),
                s_joiners=st.integers(1, 3))
    def setup(self, routing, r_joiners, s_joiners):
        self.engine = BicliqueEngine(
            BicliqueConfig(window=WINDOW, r_joiners=r_joiners,
                           s_joiners=s_joiners, routers=1, routing=routing,
                           archive_period=1.5, punctuation_interval=0.4,
                           expiry_slack=3.0),
            PREDICATE)
        self.r_source = StreamSource("R")
        self.s_source = StreamSource("S")
        self.r_stream = []
        self.s_stream = []
        self.now = 0.0

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------
    @rule(count=st.integers(1, 12), keys=st.integers(1, 5),
          gap=st.sampled_from([0.05, 0.2, 0.6]))
    def ingest_batch(self, count, keys, gap):
        for i in range(count):
            self.now += gap
            source = self.r_source if (len(self.r_stream)
                                       <= len(self.s_stream)) else self.s_source
            t = source.emit(self.now, {"k": (len(self.r_stream)
                                             + len(self.s_stream)) % keys})
            (self.r_stream if t.relation == "R" else self.s_stream).append(t)
            self.engine.ingest(t)

    @rule(side=st.sampled_from(["R", "S"]), count=st.integers(1, 2))
    def scale_out(self, side, count):
        self.engine.scale_out(side, count, now=self.now)

    @precondition(lambda self: any(
        len(self.engine.groups[side].active_units()) > 1
        for side in ("R", "S")))
    @rule(side=st.sampled_from(["R", "S"]))
    def scale_in(self, side):
        if len(self.engine.groups[side].active_units()) > 1:
            self.engine.scale_in(side, now=self.now)

    @rule()
    def reap(self):
        self.engine.reap_drained(now=self.now)

    @rule(count=st.integers(1, 3))
    def resize_router_pool(self, count):
        self.engine.scale_routers(count)

    @rule()
    def punctuate(self):
        self.engine.punctuate_all()

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    @invariant()
    def no_duplicates_so_far(self):
        keys = [res.key for res in self.engine.results]
        assert len(keys) == len(set(keys))

    @invariant()
    def memory_accounting_sane(self):
        for joiner in self.engine.joiners.values():
            if joiner.stored_tuples == 0:
                assert joiner.live_bytes == 0
            else:
                assert joiner.live_bytes > 0

    def teardown(self):
        if not hasattr(self, "engine"):
            return
        self.engine.finish()
        expected = reference_join(self.r_stream, self.s_stream,
                                  PREDICATE, WINDOW)
        check = check_exactly_once(self.engine.results, expected)
        assert check.ok, check


BicliqueLifecycleMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None)

TestBicliqueLifecycle = BicliqueLifecycleMachine.TestCase


class FailureFuzzMachine(RuleBasedStateMachine):
    """Crashes may lose results but never fabricate or duplicate them."""

    @initialize()
    def setup(self):
        self.engine = BicliqueEngine(
            BicliqueConfig(window=WINDOW, r_joiners=2, s_joiners=2,
                           routers=1, routing="hash", archive_period=1.5,
                           punctuation_interval=0.4, expiry_slack=3.0),
            PREDICATE)
        self.r_source = StreamSource("R")
        self.s_source = StreamSource("S")
        self.r_stream = []
        self.s_stream = []
        self.now = 0.0

    @rule(count=st.integers(1, 10), keys=st.integers(1, 4))
    def ingest_batch(self, count, keys):
        for i in range(count):
            self.now += 0.2
            source = self.r_source if (len(self.r_stream)
                                       <= len(self.s_stream)) else self.s_source
            t = source.emit(self.now, {"k": (len(self.r_stream)
                                             + len(self.s_stream)) % keys})
            (self.r_stream if t.relation == "R" else self.s_stream).append(t)
            self.engine.ingest(t)

    @rule(unit=st.sampled_from(["R0", "R1", "S0", "S1"]))
    def crash(self, unit):
        self.engine.fail_unit(unit)

    def teardown(self):
        if not hasattr(self, "engine"):
            return
        self.engine.finish()
        expected = reference_join(self.r_stream, self.s_stream,
                                  PREDICATE, WINDOW)
        check = check_exactly_once(self.engine.results, expected)
        assert check.duplicates == 0, check
        assert check.spurious == 0, check


FailureFuzzMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None)

TestFailureFuzz = FailureFuzzMachine.TestCase
