"""Late/out-of-order arrivals at the system boundary.

The thesis assumes sources emit in timestamp order, but real feeds
deliver bounded-late events.  The engine tolerates this without any
special path: exactly-once holds for *any* consistent global order
(the two-sided store/probe argument never references timestamps), the
symmetric window predicate keeps the match set timestamp-exact, and
Theorem-1 discarding stays safe as long as ``expiry_slack`` covers the
maximum timestamp disorder.  These tests pin that contract — including
the failure when slack is insufficient, which is what makes the knob
meaningful rather than decorative.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    BicliqueConfig,
    EquiJoinPredicate,
    StreamJoinEngine,
    TimeWindow,
    stream_from_pairs,
)
from repro.core.streams import merge_by_time
from repro.harness import check_exactly_once, reference_join
from repro.simulation import SeededRng
from repro.workloads import bounded_shuffle

WINDOW = TimeWindow(seconds=5.0)
PREDICATE = EquiJoinPredicate("k", "k")


def ordered_arrivals(n=120, keys=6, gap=0.25):
    r = stream_from_pairs("R", [(i * gap, {"k": i % keys})
                                for i in range(n // 2)])
    s = stream_from_pairs("S", [(i * gap * 1.1, {"k": i % keys})
                                for i in range(n // 2)])
    return r, s, list(merge_by_time(r, s))


def max_ts_disorder(arrivals) -> float:
    """Largest backwards timestamp jump in an arrival sequence."""
    worst = 0.0
    high = float("-inf")
    for t in arrivals:
        high = max(high, t.ts)
        worst = max(worst, high - t.ts)
    return worst


def run(arrivals, slack):
    engine = StreamJoinEngine(
        BicliqueConfig(window=WINDOW, r_joiners=2, s_joiners=2,
                       routing="hash", archive_period=1.0,
                       punctuation_interval=0.5, expiry_slack=slack),
        PREDICATE)
    return engine.run_interleaved(arrivals)


class TestBoundedDisorder:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 40), st.integers(0, 100))
    def test_exact_with_sufficient_slack(self, displacement, seed):
        r, s, arrivals = ordered_arrivals()
        shuffled = bounded_shuffle(arrivals, displacement, SeededRng(seed))
        slack = max_ts_disorder(shuffled)
        results, _ = run(shuffled, slack)
        expected = reference_join(r, s, PREDICATE, WINDOW)
        check = check_exactly_once(results, expected)
        assert check.ok, (check, displacement, slack)

    def test_zero_slack_loses_results_under_heavy_disorder(self):
        """Without the margin, early-processed future probes discard
        state that late-arriving older probes still need."""
        r, s, arrivals = ordered_arrivals()
        worst_check = None
        for seed in range(12):
            shuffled = bounded_shuffle(arrivals, 35, SeededRng(seed))
            if max_ts_disorder(shuffled) <= WINDOW.seconds * 0.5:
                continue
            results, _ = run(shuffled, slack=0.0)
            expected = reference_join(r, s, PREDICATE, WINDOW)
            check = check_exactly_once(results, expected)
            if not check.ok:
                worst_check = check
                break
        assert worst_check is not None, \
            "expected at least one seed to exhibit premature-expiry loss"
        assert worst_check.missing > 0
        assert worst_check.duplicates == 0  # disorder never duplicates

    def test_disorder_never_creates_spurious_results(self):
        r, s, arrivals = ordered_arrivals()
        shuffled = bounded_shuffle(arrivals, 50, SeededRng(3))
        results, _ = run(shuffled, slack=0.0)
        expected = reference_join(r, s, PREDICATE, WINDOW)
        check = check_exactly_once(results, expected)
        assert check.spurious == 0
        assert check.duplicates == 0
