"""Integration tests: elasticity semantics of both models (E8 invariants).

The join-biclique scales without touching stored state; the join-matrix
must migrate.  These tests pin the *mechanisms* (draining, epoch-based
hash re-routing, reshape migration accounting) end-to-end with live
streams crossing the scaling events.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    BicliqueConfig,
    BicliqueEngine,
    EquiJoinPredicate,
    TimeWindow,
    merge_by_time,
)
from repro.harness import check_exactly_once, reference_join
from repro.matrix import MatrixConfig, MatrixEngine
from repro.workloads import ConstantRate, EquiJoinWorkload, UniformKeys

WINDOW = TimeWindow(seconds=5.0)
PREDICATE = EquiJoinPredicate("k", "k")


def workload(duration=20.0, rate=30.0, seed=5):
    wl = EquiJoinWorkload(keys=UniformKeys(12), seed=seed)
    r, s = wl.materialise(ConstantRate(rate), duration)
    return r, s, list(merge_by_time(r, s))


class TestBicliqueNoMigration:
    def test_scale_out_leaves_existing_state_in_place(self):
        r, s, arrivals = workload()
        engine = BicliqueEngine(
            BicliqueConfig(window=WINDOW, r_joiners=2, s_joiners=2,
                           routing="hash", archive_period=1.0,
                           punctuation_interval=0.2),
            PREDICATE)
        half = len(arrivals) // 2
        for t in arrivals[:half]:
            engine.ingest(t)
        stored_before = {uid: j.stored_tuples
                         for uid, j in engine.joiners.items()}
        engine.scale_out("R", 1, now=arrivals[half].ts)
        # scaling moved nothing: every pre-existing unit kept its tuples
        for uid, count in stored_before.items():
            assert engine.joiners[uid].stored_tuples == count
        assert engine.joiners["R2"].stored_tuples == 0

    def test_new_unit_receives_new_tuples(self):
        r, s, arrivals = workload()
        engine = BicliqueEngine(
            BicliqueConfig(window=WINDOW, r_joiners=1, s_joiners=1,
                           routing="hash", archive_period=1.0,
                           punctuation_interval=0.2),
            PREDICATE)
        half = len(arrivals) // 2
        for t in arrivals[:half]:
            engine.ingest(t)
        engine.scale_out("R", 1, now=arrivals[half].ts)
        for t in arrivals[half:]:
            engine.ingest(t)
        engine.finish()
        assert engine.joiners["R1"].stored_tuples > 0

    def test_draining_unit_answers_probes_until_reaped(self):
        r, s, arrivals = workload()
        engine = BicliqueEngine(
            BicliqueConfig(window=WINDOW, r_joiners=2, s_joiners=1,
                           routing="random", archive_period=1.0,
                           punctuation_interval=0.2),
            PREDICATE)
        half = len(arrivals) // 2
        for t in arrivals[:half]:
            engine.ingest(t)
        drained = engine.scale_in("R", now=arrivals[half].ts)
        probes_before = engine.joiners[drained].stats.probes_processed
        for t in arrivals[half:]:
            engine.ingest(t)
        engine.finish()
        assert engine.joiners[drained].stats.probes_processed > probes_before

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.data())
    def test_random_scale_sequences_stay_exact(self, data):
        """Any interleaving of scale-out/scale-in/reap events with the
        stream keeps results exactly-once."""
        r, s, arrivals = workload(duration=12.0, rate=25.0,
                                  seed=data.draw(st.integers(0, 100)))
        engine = BicliqueEngine(
            BicliqueConfig(window=WINDOW, r_joiners=2, s_joiners=2,
                           routing=data.draw(st.sampled_from(["hash",
                                                              "random"])),
                           archive_period=1.0, punctuation_interval=0.2),
            PREDICATE)
        n_events = data.draw(st.integers(0, 4), label="n_events")
        positions = sorted(
            data.draw(st.integers(1, len(arrivals) - 1),
                      label=f"pos{i}") for i in range(n_events))
        cursor = 0
        for pos in positions:
            for t in arrivals[cursor:pos]:
                engine.ingest(t)
            cursor = pos
            now = arrivals[pos].ts
            side = data.draw(st.sampled_from(["R", "S"]), label="side")
            action = data.draw(st.sampled_from(["out", "in", "reap"]),
                               label="action")
            if action == "out":
                engine.scale_out(side, 1, now=now)
            elif action == "in":
                if len(engine.groups[side].active_units()) > 1:
                    engine.scale_in(side, now=now)
            else:
                engine.reap_drained(now=now)
        for t in arrivals[cursor:]:
            engine.ingest(t)
        engine.finish()
        expected = reference_join(r, s, PREDICATE, WINDOW)
        check = check_exactly_once(engine.results, expected)
        assert check.ok, check


class TestMatrixMigrationCost:
    def test_matrix_reshape_migrates_biclique_does_not(self):
        """The E8 headline: same scale event, matrix pays migration
        bytes, biclique pays none."""
        r, s, arrivals = workload()
        half = len(arrivals) // 2

        matrix = MatrixEngine(
            MatrixConfig(window=WINDOW, rows=2, cols=2,
                         partitioning="hash", archive_period=1.0), PREDICATE)
        for t in arrivals[:half]:
            matrix.ingest(t)
        matrix.reshape(2, 3, now=arrivals[half].ts)
        for t in arrivals[half:]:
            matrix.ingest(t)
        matrix.finish()
        assert matrix.migration.bytes_migrated > 0

        biclique = BicliqueEngine(
            BicliqueConfig(window=WINDOW, r_joiners=2, s_joiners=2,
                           routing="hash", archive_period=1.0,
                           punctuation_interval=0.2), PREDICATE)
        for t in arrivals[:half]:
            biclique.ingest(t)
        biclique.scale_out("S", 1, now=arrivals[half].ts)
        for t in arrivals[half:]:
            biclique.ingest(t)
        biclique.finish()
        # identical results, zero migration
        assert {x.key for x in biclique.results} == \
            {x.key for x in matrix.results}
