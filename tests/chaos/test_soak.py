"""Soak harness: scoring, scorecard shape, determinism of the setup."""

import json

import pytest

from repro.chaos.soak import (RoundScore, SoakConfig, format_round,
                              make_workload, run_round, run_soak,
                              write_scorecard)
from repro.errors import ConfigurationError
from random import Random


class TestSoakConfig:
    def test_defaults_are_the_ci_smoke_shape(self):
        config = SoakConfig()
        assert config.rounds == 10
        assert config.faults_per_round == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SoakConfig(rounds=0)
        with pytest.raises(ConfigurationError):
            SoakConfig(tuples_per_round=5)
        with pytest.raises(ConfigurationError):
            SoakConfig(workers=0)
        with pytest.raises(ConfigurationError):
            SoakConfig(faults_per_round=-1)
        with pytest.raises(ConfigurationError):
            SoakConfig(resizes_per_round=-1)
        with pytest.raises(ConfigurationError):
            SoakConfig(shm_faults_per_round=-1)

    def test_effective_resizes_follows_the_switch(self):
        assert SoakConfig().effective_resizes == 2
        assert SoakConfig(resizes_per_round=5).effective_resizes == 5
        assert SoakConfig(resizes=False).effective_resizes == 0
        assert SoakConfig(resizes=False,
                          resizes_per_round=5).effective_resizes == 0


class TestWorkload:
    def test_deterministic_given_rng_state(self):
        a = make_workload(Random(3), 50)
        b = make_workload(Random(3), 50)
        assert a == b

    def test_interleaves_both_relations_with_advancing_time(self):
        arrivals = make_workload(Random(3), 200)
        relations = {t.relation for t in arrivals}
        assert relations == {"R", "S"}
        ts = [t.ts for t in arrivals]
        assert ts == sorted(ts)


class TestRounds:
    def test_round_without_faults_is_clean(self):
        config = SoakConfig(rounds=1, tuples_per_round=120,
                            faults_per_round=0, seed=11, resizes=False,
                            shm_faults_per_round=0)
        score = run_round(config, 0)
        assert score.ok
        assert score.lost == 0 and score.duplicated == 0
        assert score.restarts == 0
        assert score.faults == ()
        assert score.migrations == 0

    def test_round_with_kill_recovers_exactly_once(self):
        config = SoakConfig(rounds=1, tuples_per_round=200,
                            faults_per_round=2, seed=11, kinds=("kill",),
                            resizes=False, shm_faults_per_round=0)
        score = run_round(config, 0)
        assert score.ok, f"kill round lost results: {score}"
        assert score.restarts >= 1
        assert score.faults_injected == {"kill": 2}

    def test_round_with_resizes_migrates_exactly_once(self):
        """The elastic acceptance case at soak scale: resize
        disturbances fold in and the round still scores clean."""
        config = SoakConfig(rounds=1, tuples_per_round=200,
                            faults_per_round=0, seed=11,
                            shm_faults_per_round=0)
        score = run_round(config, 0)
        assert score.ok, f"resize round lost results: {score}"
        assert score.migrations >= 1
        assert sum(score.faults_injected.values()) == 2

    def test_round_with_shm_faults_quarantines_exactly_once(self):
        """The default plan corrupts ring records; every flip must be
        caught (quarantine, not bad data) and the round still scores
        exactly-once."""
        config = SoakConfig(rounds=1, tuples_per_round=120,
                            faults_per_round=0, seed=11, resizes=False)
        score = run_round(config, 0)
        assert score.ok, f"shm-fault round lost results: {score}"
        assert set(score.faults_injected) <= {"corrupt_shm_header",
                                              "corrupt_shm_slab"}
        assert sum(score.faults_injected.values()) == 2
        assert score.quarantines >= 1
        assert score.corrupt_frames >= 1

    def test_rounds_alternate_routing_modes(self):
        config = SoakConfig(rounds=2, tuples_per_round=120,
                            faults_per_round=0, seed=11, resizes=False)
        assert run_round(config, 0).mode == "hash"
        assert run_round(config, 1).mode == "random"


class TestScorecard:
    def test_shape_totals_and_verdict(self, tmp_path):
        config = SoakConfig(rounds=2, tuples_per_round=150,
                            faults_per_round=1, seed=23)
        seen = []
        scorecard = run_soak(config, progress=seen.append)
        assert len(seen) == 2
        assert scorecard["harness"] == "repro.chaos.soak"
        assert scorecard["config"]["rounds"] == 2
        assert len(scorecard["rounds"]) == 2
        totals = scorecard["totals"]
        assert totals["rounds"] == 2
        assert totals["lost"] == 0 and totals["duplicated"] == 0
        assert totals["migrations"] >= 0
        assert totals["aborted_migrations"] >= 0
        assert scorecard["ok"]

        out = tmp_path / "scorecard.json"
        write_scorecard(scorecard, out)
        # Compare through json both ways: tuples serialise as lists.
        assert json.loads(out.read_text()) == json.loads(
            json.dumps(scorecard))

    def test_format_round_is_one_line(self):
        line = format_round(RoundScore(
            round=0, seed=1, mode="hash", faults=("kill@10",),
            expected=100, produced=100, lost=0, duplicated=0, spurious=0,
            restarts=1, quarantines=0, redeliveries=2, redundant_acks=0,
            corrupt_frames=0, duration=0.5, ok=True, migrations=3))
        assert "\n" not in line
        assert "ok" in line and "kill@10" in line
        assert "migrations=3" in line
