"""Fault-plan vocabulary: validation, ordering, generator determinism."""

import pytest

from repro.chaos.plan import (ALL_FAULT_KINDS, ChaosConfig, CorruptFrame,
                              HangWorker, KillWorker, PipeStall, StallWorker,
                              random_fault_plan)
from repro.errors import ConfigurationError


class TestFaultValidation:
    def test_negative_index_rejected(self):
        with pytest.raises(ConfigurationError):
            KillWorker(at_tuple=-1, worker=0)
        with pytest.raises(ConfigurationError):
            KillWorker(at_tuple=0, worker=-1)

    def test_nonpositive_durations_rejected(self):
        with pytest.raises(ConfigurationError):
            StallWorker(at_tuple=0, worker=0, duration=0.0)
        with pytest.raises(ConfigurationError):
            HangWorker(at_tuple=0, worker=0, seconds=-1.0)
        with pytest.raises(ConfigurationError):
            PipeStall(at_tuple=0, worker=0, duration=0.0)

    def test_corrupt_mode_and_count_validated(self):
        with pytest.raises(ConfigurationError):
            CorruptFrame(at_tuple=0, worker=0, mode="garble")
        with pytest.raises(ConfigurationError):
            CorruptFrame(at_tuple=0, worker=0, count=0)

    def test_faults_are_frozen(self):
        fault = KillWorker(at_tuple=3, worker=1)
        with pytest.raises(AttributeError):
            fault.at_tuple = 9


class TestChaosConfig:
    def test_faults_sorted_by_ingest_index(self):
        config = ChaosConfig(faults=(
            KillWorker(at_tuple=50, worker=0),
            StallWorker(at_tuple=10, worker=1),
            CorruptFrame(at_tuple=30, worker=0)))
        assert [f.at_tuple for f in config.faults] == [10, 30, 50]

    def test_len_and_kinds(self):
        config = ChaosConfig(faults=(
            KillWorker(at_tuple=1, worker=0),
            KillWorker(at_tuple=2, worker=1),
            PipeStall(at_tuple=3, worker=0)))
        assert len(config) == 3
        assert config.kinds == ("kill", "pipe_stall")

    def test_empty_plan_is_valid(self):
        assert len(ChaosConfig()) == 0


class TestRandomFaultPlan:
    def test_same_seed_same_plan(self):
        a = random_fault_plan(42, 300, 2, faults=8)
        b = random_fault_plan(42, 300, 2, faults=8)
        assert a.faults == b.faults

    def test_different_seeds_differ(self):
        a = random_fault_plan(1, 300, 2, faults=8)
        b = random_fault_plan(2, 300, 2, faults=8)
        assert a.faults != b.faults

    def test_fires_in_the_middle_of_the_run(self):
        plan = random_fault_plan(7, 300, 2, faults=20)
        assert all(30 <= f.at_tuple < 270 for f in plan.faults)

    def test_worker_indices_within_pool(self):
        plan = random_fault_plan(7, 300, 3, faults=20)
        assert all(0 <= f.worker < 3 for f in plan.faults)

    def test_kind_restriction_respected(self):
        plan = random_fault_plan(7, 300, 2, faults=12,
                                 kinds=("kill", "stall"))
        assert set(f.kind for f in plan.faults) <= {"kill", "stall"}

    def test_all_kinds_reachable(self):
        plan = random_fault_plan(5, 1000, 2, faults=120)
        drawn = {(f"corrupt_{f.mode}" if isinstance(f, CorruptFrame)
                  else f.kind) for f in plan.faults}
        assert drawn == set(ALL_FAULT_KINDS)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            random_fault_plan(1, 0, 2)
        with pytest.raises(ConfigurationError):
            random_fault_plan(1, 300, 0)
        with pytest.raises(ConfigurationError):
            random_fault_plan(1, 300, 2, faults=-1)
        with pytest.raises(ConfigurationError):
            random_fault_plan(1, 300, 2, kinds=("nope",))
        with pytest.raises(ConfigurationError):
            random_fault_plan(1, 300, 2, kinds=())
