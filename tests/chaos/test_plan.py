"""Fault-plan vocabulary: validation, ordering, generator determinism."""

import pytest

from repro.chaos.plan import (ALL_FAULT_KINDS, SCALE_FAULT_KINDS,
                              ChaosConfig, CorruptFrame, HangWorker,
                              KillDuringMigration, KillWorker, PipeStall,
                              ScaleIn, ScaleOut, StallWorker,
                              random_fault_plan)
from repro.errors import ConfigurationError


class TestFaultValidation:
    def test_negative_index_rejected(self):
        with pytest.raises(ConfigurationError):
            KillWorker(at_tuple=-1, worker=0)
        with pytest.raises(ConfigurationError):
            KillWorker(at_tuple=0, worker=-1)

    def test_nonpositive_durations_rejected(self):
        with pytest.raises(ConfigurationError):
            StallWorker(at_tuple=0, worker=0, duration=0.0)
        with pytest.raises(ConfigurationError):
            HangWorker(at_tuple=0, worker=0, seconds=-1.0)
        with pytest.raises(ConfigurationError):
            PipeStall(at_tuple=0, worker=0, duration=0.0)

    def test_corrupt_mode_and_count_validated(self):
        with pytest.raises(ConfigurationError):
            CorruptFrame(at_tuple=0, worker=0, mode="garble")
        with pytest.raises(ConfigurationError):
            CorruptFrame(at_tuple=0, worker=0, count=0)

    def test_faults_are_frozen(self):
        fault = KillWorker(at_tuple=3, worker=1)
        with pytest.raises(AttributeError):
            fault.at_tuple = 9


class TestScaleFaultValidation:
    def test_negative_index_rejected(self):
        with pytest.raises(ConfigurationError):
            ScaleOut(at_tuple=-1)
        with pytest.raises(ConfigurationError):
            KillDuringMigration(at_tuple=-1)

    def test_nonpositive_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            ScaleOut(at_tuple=0, count=0)
        with pytest.raises(ConfigurationError):
            ScaleIn(at_tuple=0, count=-1)

    def test_victim_validated(self):
        with pytest.raises(ConfigurationError):
            KillDuringMigration(at_tuple=0, victim="bystander")
        assert KillDuringMigration(at_tuple=0, victim="target").victim \
            == "target"

    def test_scale_faults_are_frozen_and_sortable(self):
        fault = ScaleIn(at_tuple=3)
        with pytest.raises(AttributeError):
            fault.count = 9
        config = ChaosConfig(faults=(
            ScaleOut(at_tuple=50), KillWorker(at_tuple=10, worker=0),
            KillDuringMigration(at_tuple=30)))
        assert [f.at_tuple for f in config.faults] == [10, 30, 50]
        assert config.kinds == ("kill", "kill_mid_migration", "scale_out")


class TestChaosConfig:
    def test_faults_sorted_by_ingest_index(self):
        config = ChaosConfig(faults=(
            KillWorker(at_tuple=50, worker=0),
            StallWorker(at_tuple=10, worker=1),
            CorruptFrame(at_tuple=30, worker=0)))
        assert [f.at_tuple for f in config.faults] == [10, 30, 50]

    def test_len_and_kinds(self):
        config = ChaosConfig(faults=(
            KillWorker(at_tuple=1, worker=0),
            KillWorker(at_tuple=2, worker=1),
            PipeStall(at_tuple=3, worker=0)))
        assert len(config) == 3
        assert config.kinds == ("kill", "pipe_stall")

    def test_empty_plan_is_valid(self):
        assert len(ChaosConfig()) == 0


class TestRandomFaultPlan:
    def test_same_seed_same_plan(self):
        a = random_fault_plan(42, 300, 2, faults=8)
        b = random_fault_plan(42, 300, 2, faults=8)
        assert a.faults == b.faults

    def test_different_seeds_differ(self):
        a = random_fault_plan(1, 300, 2, faults=8)
        b = random_fault_plan(2, 300, 2, faults=8)
        assert a.faults != b.faults

    def test_fires_in_the_middle_of_the_run(self):
        plan = random_fault_plan(7, 300, 2, faults=20)
        assert all(30 <= f.at_tuple < 270 for f in plan.faults)

    def test_worker_indices_within_pool(self):
        plan = random_fault_plan(7, 300, 3, faults=20)
        assert all(0 <= f.worker < 3 for f in plan.faults)

    def test_kind_restriction_respected(self):
        plan = random_fault_plan(7, 300, 2, faults=12,
                                 kinds=("kill", "stall"))
        assert set(f.kind for f in plan.faults) <= {"kill", "stall"}

    def test_all_kinds_reachable(self):
        plan = random_fault_plan(5, 1000, 2, faults=120)
        drawn = {(f"corrupt_{f.mode}" if isinstance(f, CorruptFrame)
                  else f.kind) for f in plan.faults}
        assert drawn == set(ALL_FAULT_KINDS)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            random_fault_plan(1, 0, 2)
        with pytest.raises(ConfigurationError):
            random_fault_plan(1, 300, 0)
        with pytest.raises(ConfigurationError):
            random_fault_plan(1, 300, 2, faults=-1)
        with pytest.raises(ConfigurationError):
            random_fault_plan(1, 300, 2, kinds=("nope",))
        with pytest.raises(ConfigurationError):
            random_fault_plan(1, 300, 2, kinds=())
        with pytest.raises(ConfigurationError):
            random_fault_plan(1, 300, 2, resizes=-1)
        with pytest.raises(ConfigurationError):
            random_fault_plan(1, 300, 2, resizes=1, scale_kinds=("nope",))
        with pytest.raises(ConfigurationError):
            random_fault_plan(1, 300, 2, resizes=1, scale_kinds=())


class TestResizeDraws:
    def test_resizes_only_add_events_to_the_base_plan(self):
        """The regression-baseline property: under a fixed seed, the
        base faults are byte-identical with resizes on or off."""
        off = random_fault_plan(42, 300, 2, faults=6)
        on = random_fault_plan(42, 300, 2, faults=6, resizes=3)
        base_of_on = tuple(f for f in on.faults
                           if f.kind not in SCALE_FAULT_KINDS)
        assert base_of_on == off.faults
        assert len(on) == len(off) + 3

    def test_resize_events_are_scale_kinds_within_bounds(self):
        plan = random_fault_plan(9, 300, 2, faults=0, resizes=30)
        assert len(plan) == 30
        for fault in plan.faults:
            assert fault.kind in SCALE_FAULT_KINDS
            assert 30 <= fault.at_tuple < 270
            if isinstance(fault, (ScaleOut, ScaleIn)):
                assert 1 <= fault.count <= 2
            else:
                assert fault.victim in ("source", "target")

    def test_all_scale_kinds_reachable(self):
        plan = random_fault_plan(5, 1000, 2, faults=0, resizes=60)
        assert {f.kind for f in plan.faults} == set(SCALE_FAULT_KINDS)

    def test_scale_kind_restriction_respected(self):
        plan = random_fault_plan(7, 300, 2, faults=0, resizes=12,
                                 scale_kinds=("kill_mid_migration",))
        assert {f.kind for f in plan.faults} == {"kill_mid_migration"}
