"""Injector mechanics, tested without a live cluster where possible."""

import time

import pytest

from repro.chaos.injector import ChaosInjector, corrupt_bytes
from repro.chaos.plan import (ChaosConfig, CorruptFrame, HangWorker,
                              KillDuringMigration, KillWorker, PipeStall,
                              ScaleIn, ScaleOut, StallWorker)
from repro.errors import ParallelError
from repro.parallel.codec import encode_frame, try_decode_frame


class _FakeCluster:
    """Records fault-API calls the way ParallelCluster would receive
    them; pids are synthetic (no real signals are sent)."""

    def __init__(self, workers=2, tuples_ingested=0):
        self.worker_ids = [f"worker{i}" for i in range(workers)]
        self.tuples_ingested = tuples_ingested
        self.calls = []

    def kill_worker(self, worker_id):
        self.calls.append(("kill", worker_id))

    def stop_worker(self, worker_id):
        self.calls.append(("stop", worker_id))
        return None  # no real pid: nothing to SIGCONT later

    def hang_worker(self, worker_id, seconds):
        self.calls.append(("hang", worker_id, seconds))


class _FakeElasticCluster(_FakeCluster):
    """Adds the elastic surface the scale faults drive."""

    def __init__(self, workers=2, units_per_worker=2, migrating=(),
                 migrate_fails_for=()):
        super().__init__(workers=workers)
        self._units = {w: [f"{w}-U{i}" for i in range(units_per_worker)]
                       for w in self.worker_ids}
        self.migrating_unit_ids = tuple(migrating)
        self._migrate_fails_for = set(migrate_fails_for)

    @property
    def active_worker_ids(self):
        return list(self.worker_ids)

    @property
    def active_worker_count(self):
        return len(self.worker_ids)

    def units_of(self, worker_id):
        return list(self._units[worker_id])

    def scale_to(self, n):
        self.calls.append(("scale_to", n))
        while len(self.worker_ids) < n:
            worker_id = f"worker{len(self.worker_ids)}"
            self.worker_ids.append(worker_id)
            self._units[worker_id] = []

    def migrate_unit(self, unit_id, target=None):
        if unit_id in self._migrate_fails_for:
            raise ParallelError("no eligible target")
        self.calls.append(("migrate", unit_id))
        return "worker1"


class TestCorruptBytes:
    def test_flip_breaks_the_checksum(self):
        frame = encode_frame({"k": 1})
        (mutated,) = corrupt_bytes(frame, "flip")
        assert mutated != frame and len(mutated) == len(frame)
        ok, obj = try_decode_frame(mutated)
        assert not ok and obj is None

    def test_truncate_breaks_the_length(self):
        frame = encode_frame(list(range(50)))
        (mutated,) = corrupt_bytes(frame, "truncate")
        assert len(mutated) < len(frame)
        ok, _ = try_decode_frame(mutated)
        assert not ok

    def test_duplicate_returns_the_frame_twice(self):
        frame = encode_frame("payload")
        assert corrupt_bytes(frame, "duplicate") == [frame, frame]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            corrupt_bytes(b"x" * 32, "garble")


class TestFiring:
    def test_fires_due_faults_in_order(self):
        injector = ChaosInjector(ChaosConfig(faults=(
            KillWorker(at_tuple=5, worker=0),
            HangWorker(at_tuple=10, worker=1, seconds=0.2),
            KillWorker(at_tuple=50, worker=1))))
        cluster = _FakeCluster(tuples_ingested=12)
        injector.on_ingest(cluster)
        assert cluster.calls == [("kill", "worker0"),
                                 ("hang", "worker1", 0.2)]
        assert injector.injected == {"kill": 1, "hang": 1}
        cluster.tuples_ingested = 60
        injector.on_ingest(cluster)
        assert cluster.calls[-1] == ("kill", "worker1")

    def test_worker_index_wraps_around_the_pool(self):
        injector = ChaosInjector(ChaosConfig(faults=(
            KillWorker(at_tuple=0, worker=5),)))
        cluster = _FakeCluster(workers=2)
        injector.on_ingest(cluster)
        assert cluster.calls == [("kill", "worker1")]

    def test_stall_without_pid_schedules_nothing(self):
        injector = ChaosInjector(ChaosConfig(faults=(
            StallWorker(at_tuple=0, worker=0, duration=0.05),)))
        injector.on_ingest(_FakeCluster())
        assert injector.injected == {"stall": 1}
        injector.tick()  # must not raise with nothing scheduled
        injector.resume_all()

    def test_injected_counts_corruption_modes_separately(self):
        injector = ChaosInjector(ChaosConfig(faults=(
            CorruptFrame(at_tuple=0, worker=0, mode="flip"),
            CorruptFrame(at_tuple=0, worker=0, mode="truncate"),)))
        injector.on_ingest(_FakeCluster())
        assert injector.injected == {"corrupt_flip": 1,
                                     "corrupt_truncate": 1}


class TestScaleFaultFiring:
    def test_scale_out_grows_by_count(self):
        injector = ChaosInjector(ChaosConfig(faults=(
            ScaleOut(at_tuple=0, count=2),)))
        cluster = _FakeElasticCluster(workers=2)
        injector.on_ingest(cluster)
        assert cluster.calls == [("scale_to", 4)]
        assert injector.injected == {"scale_out": 1}

    def test_scale_in_clamps_at_one_worker(self):
        injector = ChaosInjector(ChaosConfig(faults=(
            ScaleIn(at_tuple=0, count=5),)))
        cluster = _FakeElasticCluster(workers=2)
        injector.on_ingest(cluster)
        assert cluster.calls == [("scale_to", 1)]
        assert injector.injected == {"scale_in": 1}

    def test_kill_mid_migration_kills_the_source(self):
        injector = ChaosInjector(ChaosConfig(faults=(
            KillDuringMigration(at_tuple=0, victim="source"),)))
        cluster = _FakeElasticCluster(workers=2)
        injector.on_ingest(cluster)
        assert cluster.calls == [("migrate", "worker0-U0"),
                                 ("kill", "worker0")]
        assert injector.injected == {"kill_mid_migration": 1}

    def test_kill_mid_migration_kills_the_target(self):
        injector = ChaosInjector(ChaosConfig(faults=(
            KillDuringMigration(at_tuple=0, victim="target"),)))
        cluster = _FakeElasticCluster(workers=2)
        injector.on_ingest(cluster)
        assert cluster.calls == [("migrate", "worker0-U0"),
                                 ("kill", "worker1")]

    def test_kill_mid_migration_grows_a_single_worker_pool_first(self):
        injector = ChaosInjector(ChaosConfig(faults=(
            KillDuringMigration(at_tuple=0),)))
        cluster = _FakeElasticCluster(workers=1)
        injector.on_ingest(cluster)
        assert cluster.calls[0] == ("scale_to", 2)
        assert cluster.calls[-1][0] == "kill"

    def test_kill_mid_migration_skips_already_migrating_units(self):
        injector = ChaosInjector(ChaosConfig(faults=(
            KillDuringMigration(at_tuple=0),)))
        cluster = _FakeElasticCluster(workers=2,
                                      migrating=("worker0-U0",))
        injector.on_ingest(cluster)
        assert cluster.calls == [("migrate", "worker0-U1"),
                                 ("kill", "worker0")]

    def test_kill_mid_migration_tries_the_next_unit_on_failure(self):
        injector = ChaosInjector(ChaosConfig(faults=(
            KillDuringMigration(at_tuple=0),)))
        cluster = _FakeElasticCluster(
            workers=2, migrate_fails_for=("worker0-U0", "worker0-U1"))
        injector.on_ingest(cluster)
        assert cluster.calls == [("migrate", "worker1-U0"),
                                 ("kill", "worker1")]

    def test_kill_mid_migration_degrades_to_counted_no_op(self):
        injector = ChaosInjector(ChaosConfig(faults=(
            KillDuringMigration(at_tuple=0),)))
        all_units = [f"worker{w}-U{i}" for w in range(2) for i in range(2)]
        cluster = _FakeElasticCluster(workers=2, migrating=all_units)
        injector.on_ingest(cluster)
        assert cluster.calls == []
        assert injector.injected == {"kill_mid_migration": 1}


class TestFrameBoundary:
    def test_armed_corruption_hits_the_next_n_frames(self):
        injector = ChaosInjector(ChaosConfig(faults=(
            CorruptFrame(at_tuple=0, worker=0, mode="flip", count=2),)))
        injector.on_ingest(_FakeCluster())
        good = encode_frame("x")
        first = injector.on_output_frame("worker0", good)
        second = injector.on_output_frame("worker0", good)
        third = injector.on_output_frame("worker0", good)
        assert not try_decode_frame(first[0])[0]
        assert not try_decode_frame(second[0])[0]
        assert third == [good]  # armament exhausted

    def test_corruption_targets_only_the_armed_worker(self):
        injector = ChaosInjector(ChaosConfig(faults=(
            CorruptFrame(at_tuple=0, worker=0),)))
        injector.on_ingest(_FakeCluster())
        good = encode_frame("x")
        assert injector.on_output_frame("worker1", good) == [good]

    def test_pipe_stall_holds_fifo_until_deadline(self):
        injector = ChaosInjector(ChaosConfig(faults=(
            PipeStall(at_tuple=0, worker=0, duration=0.1),)))
        injector.on_ingest(_FakeCluster())
        frames = [encode_frame(i) for i in range(3)]
        for frame in frames:
            assert injector.on_output_frame("worker0", frame) == []
        assert injector.holding == 3
        assert injector.release_due() == []  # not due yet
        time.sleep(0.12)
        released = injector.release_due()
        # Per-worker FIFO is load-bearing: settled frames must stay a
        # seq-order prefix (see the injector module docstring).
        assert released == [("worker0", f) for f in frames]
        assert injector.holding == 0
        # After release the stall is gone: frames flow through again.
        assert injector.on_output_frame("worker0", frames[0]) == [frames[0]]

    def test_stall_holds_frames_even_past_deadline_until_released(self):
        """A frame arriving after the deadline but before release_due
        must still be held — overtaking would reorder settlement."""
        injector = ChaosInjector(ChaosConfig(faults=(
            PipeStall(at_tuple=0, worker=0, duration=0.01),)))
        injector.on_ingest(_FakeCluster())
        early = encode_frame("early")
        injector.on_output_frame("worker0", early)
        time.sleep(0.03)  # deadline passed, release_due not yet called
        late = encode_frame("late")
        assert injector.on_output_frame("worker0", late) == []
        assert injector.release_due() == [("worker0", early),
                                          ("worker0", late)]

    def test_untargeted_worker_flows_through(self):
        injector = ChaosInjector(ChaosConfig())
        frame = encode_frame("x")
        assert injector.on_output_frame("worker0", frame) == [frame]
        assert injector.exhausted
