"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import (
    BandJoinPredicate,
    EquiJoinPredicate,
    TimeWindow,
    stream_from_pairs,
)
from repro.simulation import SeededRng


@pytest.fixture
def rng() -> SeededRng:
    return SeededRng(1234, "tests")


@pytest.fixture
def equi_predicate() -> EquiJoinPredicate:
    return EquiJoinPredicate("k", "k")


@pytest.fixture
def band_predicate() -> BandJoinPredicate:
    return BandJoinPredicate("v", "v", band=3.0)


@pytest.fixture
def window() -> TimeWindow:
    return TimeWindow(seconds=10.0)


def make_streams(n_r: int = 60, n_s: int = 50, *, n_keys: int = 8,
                 r_gap: float = 0.5, s_gap: float = 0.6):
    """Two small deterministic streams sharing key attribute "k" and a
    numeric attribute "v" (usable for both equi and band predicates)."""
    r = stream_from_pairs(
        "R", [(i * r_gap, {"k": i % n_keys, "v": float(i)})
              for i in range(n_r)])
    s = stream_from_pairs(
        "S", [(i * s_gap, {"k": i % n_keys, "v": float(i)})
              for i in range(n_s)])
    return r, s


@pytest.fixture
def small_streams():
    return make_streams()
