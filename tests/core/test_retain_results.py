"""Tests for BicliqueConfig.retain_results (count-only result mode)."""

from repro import (
    BicliqueConfig,
    BicliqueEngine,
    EquiJoinPredicate,
    TimeWindow,
    merge_by_time,
    stream_from_pairs,
)


def run(retain: bool):
    engine = BicliqueEngine(
        BicliqueConfig(window=TimeWindow(10.0), archive_period=2.0,
                       punctuation_interval=0.5, retain_results=retain),
        EquiJoinPredicate("k", "k"))
    r = stream_from_pairs("R", [(i * 0.4, {"k": i % 4}) for i in range(30)])
    s = stream_from_pairs("S", [(i * 0.5, {"k": i % 4}) for i in range(30)])
    for t in merge_by_time(r, s):
        engine.ingest(t)
    engine.finish()
    return engine


class TestRetainResults:
    def test_default_retains_objects(self):
        engine = run(retain=True)
        assert engine.results_count == len(engine.results) > 0

    def test_count_only_mode_drops_objects(self):
        engine = run(retain=False)
        assert engine.results == []
        assert engine.results_count > 0

    def test_counts_identical_across_modes(self):
        assert run(retain=True).results_count == \
            run(retain=False).results_count

    def test_latency_still_recorded(self):
        engine = run(retain=False)
        assert engine.latency.summary().count == engine.results_count
