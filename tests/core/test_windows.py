"""Tests for repro.core.windows (sliding-window semantics, Theorem 1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import CountWindow, TimeWindow
from repro.errors import WindowError


class TestTimeWindow:
    def test_rejects_non_positive_extent(self):
        with pytest.raises(WindowError):
            TimeWindow(seconds=0)
        with pytest.raises(WindowError):
            TimeWindow(seconds=-1)

    def test_contains_within_window(self):
        w = TimeWindow(seconds=10)
        assert w.contains(stored_ts=0.0, probe_ts=10.0)
        assert w.contains(stored_ts=0.0, probe_ts=5.0)

    def test_contains_is_symmetric(self):
        """|Δ| <= Ws: a stored tuple from the probe's future also counts."""
        w = TimeWindow(seconds=10)
        assert w.contains(stored_ts=15.0, probe_ts=10.0)
        assert not w.contains(stored_ts=25.0, probe_ts=10.0)

    def test_contains_boundary_inclusive(self):
        w = TimeWindow(seconds=10)
        assert w.contains(0.0, 10.0)
        assert not w.contains(0.0, 10.000001)

    def test_expiry_is_forward_only(self):
        """Theorem 1 discards only strictly-older-than-window tuples."""
        w = TimeWindow(seconds=10)
        assert w.is_expired(stored_ts=0.0, probe_ts=10.1)
        assert not w.is_expired(stored_ts=0.0, probe_ts=10.0)
        assert not w.is_expired(stored_ts=20.0, probe_ts=10.0)

    @given(st.floats(min_value=0, max_value=1e6),
           st.floats(min_value=0, max_value=1e6))
    def test_expired_implies_not_contained(self, stored, probe):
        """An expired tuple can never be a (forward) window match."""
        w = TimeWindow(seconds=50.0)
        if w.is_expired(stored, probe):
            assert not w.contains(stored, probe)

    @given(st.floats(min_value=0.1, max_value=1e3),
           st.floats(min_value=0, max_value=1e6),
           st.floats(min_value=0, max_value=1e6))
    def test_contains_symmetry_property(self, extent, a, b):
        w = TimeWindow(seconds=extent)
        assert w.contains(a, b) == w.contains(b, a)

    def test_str(self):
        assert "600" in str(TimeWindow(seconds=600))


class TestCountWindow:
    def test_rejects_non_positive(self):
        with pytest.raises(WindowError):
            CountWindow(count=0)

    def test_holds_count(self):
        assert CountWindow(count=100).count == 100

    def test_str(self):
        assert "100" in str(CountWindow(count=100))
