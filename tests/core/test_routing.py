"""Tests for repro.core.routing (groups, ContRand, ContHash, epochs)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EquiJoinPredicate, StreamTuple, TimeWindow
from repro.core.routing import (
    HashRouting,
    JoinerGroup,
    RandomRouting,
    stable_hash,
)
from repro.errors import RoutingError, ScalingError


def r_tuple(ts: float, key: int, seq: int = 0) -> StreamTuple:
    return StreamTuple("R", ts, {"k": key}, seq=seq)


def s_tuple(ts: float, key: int, seq: int = 0) -> StreamTuple:
    return StreamTuple("S", ts, {"k": key}, seq=seq)


def make_groups(n_r=2, n_s=3, r_sub=1, s_sub=1):
    groups = {"R": JoinerGroup("R", r_sub), "S": JoinerGroup("S", s_sub)}
    for i in range(n_r):
        groups["R"].add_unit(f"R{i}")
    for i in range(n_s):
        groups["S"].add_unit(f"S{i}")
    return groups


class TestJoinerGroup:
    def test_bad_side_rejected(self):
        with pytest.raises(RoutingError):
            JoinerGroup("T")

    def test_duplicate_unit_rejected(self):
        group = JoinerGroup("R")
        group.add_unit("R0")
        with pytest.raises(ScalingError):
            group.add_unit("R0")

    def test_units_balance_across_subgroups(self):
        group = JoinerGroup("R", subgroup_count=2)
        for i in range(4):
            group.add_unit(f"R{i}")
        assert len(group.active_units(0)) == 2
        assert len(group.active_units(1)) == 2

    def test_draining_excluded_from_active(self):
        group = JoinerGroup("R")
        group.add_unit("R0")
        group.add_unit("R1")
        group.start_draining("R1", now=5.0)
        assert group.active_units() == ["R0"]
        assert group.all_units() == ["R0", "R1"]

    def test_cannot_drain_last_active_unit(self):
        group = JoinerGroup("R")
        group.add_unit("R0")
        with pytest.raises(ScalingError):
            group.start_draining("R0", now=0.0)

    def test_cannot_drain_twice(self):
        group = JoinerGroup("R")
        group.add_unit("R0")
        group.add_unit("R1")
        group.start_draining("R1", now=0.0)
        with pytest.raises(ScalingError):
            group.start_draining("R1", now=1.0)

    def test_drained_units_after_window(self):
        group = JoinerGroup("R")
        group.add_unit("R0")
        group.add_unit("R1")
        group.start_draining("R1", now=0.0)
        window = TimeWindow(seconds=10.0)
        assert group.drained_units(now=5.0, window=window) == []
        assert group.drained_units(now=10.5, window=window) == ["R1"]

    def test_remove_unit(self):
        group = JoinerGroup("R")
        group.add_unit("R0")
        group.add_unit("R1")
        group.remove_unit("R1")
        assert group.all_units() == ["R0"]

    def test_unknown_unit_rejected(self):
        group = JoinerGroup("R")
        with pytest.raises(RoutingError):
            group.subgroup_of("ghost")


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash(42) == stable_hash(42)

    def test_spreads_values(self):
        buckets = {stable_hash(i) % 16 for i in range(1000)}
        assert len(buckets) == 16


class TestRandomRouting:
    def test_store_target_is_single_unit_per_subgroup(self):
        strategy = RandomRouting(make_groups())
        targets = strategy.store_targets(r_tuple(0.0, 1), now=0.0)
        assert len(targets) == 1
        assert targets[0].startswith("R")

    def test_store_round_robin_balances(self):
        strategy = RandomRouting(make_groups(n_r=2))
        counts = {"R0": 0, "R1": 0}
        for i in range(10):
            counts[strategy.store_targets(r_tuple(0.0, i), 0.0)[0]] += 1
        assert counts == {"R0": 5, "R1": 5}

    def test_join_targets_broadcast_to_opposite_side(self):
        strategy = RandomRouting(make_groups(n_r=2, n_s=3))
        targets = strategy.join_targets(r_tuple(0.0, 1), now=0.0)
        assert sorted(targets) == ["S0", "S1", "S2"]

    def test_subgroups_reduce_join_fanout_and_add_replicas(self):
        strategy = RandomRouting(make_groups(n_r=4, n_s=4, r_sub=2, s_sub=2))
        stores = strategy.store_targets(r_tuple(0.0, 1), now=0.0)
        assert len(stores) == 2  # one replica per R subgroup
        joins = strategy.join_targets(r_tuple(0.0, 1), now=0.0)
        assert len(joins) == 2  # half of the 4 S units

    def test_join_subgroups_rotate(self):
        strategy = RandomRouting(make_groups(n_r=4, n_s=4, r_sub=2, s_sub=2))
        first = set(strategy.join_targets(r_tuple(0.0, 1), 0.0))
        second = set(strategy.join_targets(r_tuple(0.0, 2), 0.0))
        assert first != second
        assert first | second == {"S0", "S1", "S2", "S3"}

    def test_draining_unit_not_stored_to_but_still_probed(self):
        groups = make_groups(n_r=2, n_s=2)
        strategy = RandomRouting(groups)
        groups["S"].start_draining("S1", now=0.0)
        for i in range(6):
            assert strategy.store_targets(s_tuple(0.0, i), 0.0) == [["S0"], ["S0"]][0]
        assert "S1" in strategy.join_targets(r_tuple(0.0, 1), 0.0)

    def test_empty_side_raises(self):
        groups = {"R": JoinerGroup("R"), "S": JoinerGroup("S")}
        groups["R"].add_unit("R0")
        strategy = RandomRouting(groups)
        with pytest.raises(RoutingError):
            strategy.join_targets(r_tuple(0.0, 1), 0.0)


class TestHashRouting:
    def _strategy(self, n_r=2, n_s=2, partitions=16, window=10.0):
        groups = make_groups(n_r=n_r, n_s=n_s)
        return groups, HashRouting(groups, EquiJoinPredicate("k", "k"),
                                   TimeWindow(seconds=window),
                                   partitions=partitions)

    def test_requires_key_attribute(self):
        from repro import CrossPredicate
        groups = make_groups()
        with pytest.raises(RoutingError):
            HashRouting(groups, CrossPredicate(), TimeWindow(10.0))

    def test_rejects_subgroups(self):
        groups = make_groups(n_r=4, n_s=4, r_sub=2, s_sub=2)
        with pytest.raises(RoutingError):
            HashRouting(groups, EquiJoinPredicate("k", "k"), TimeWindow(10.0))

    def test_store_and_probe_collocate_equal_keys(self):
        _, strategy = self._strategy()
        for key in range(50):
            store = strategy.store_targets(s_tuple(0.0, key), 0.0)
            probe = strategy.join_targets(r_tuple(0.0, key), 0.0)
            assert store == probe
            assert len(store) == 1

    def test_fanout_is_one_without_scaling(self):
        _, strategy = self._strategy()
        assert len(strategy.join_targets(r_tuple(0.0, 7), 0.0)) == 1

    def test_same_key_always_same_unit(self):
        _, strategy = self._strategy()
        targets = {strategy.store_targets(r_tuple(0.0, 7), 0.0)[0]
                   for _ in range(10)}
        assert len(targets) == 1

    def test_scale_out_probes_old_and_new_owner_within_window(self):
        groups, strategy = self._strategy(n_r=1, n_s=1, window=10.0)
        # find a key stored on R0
        key = 3
        old_owner = strategy.store_targets(r_tuple(0.0, key), 0.0)[0]
        groups["R"].add_unit("R9")
        strategy.on_membership_change(now=5.0)
        new_owner = strategy.store_targets(r_tuple(5.0, key), 5.0)[0]
        probes = strategy.join_targets(s_tuple(6.0, key), 6.0)
        assert old_owner in probes
        assert new_owner in probes

    def test_old_owner_dropped_after_window_horizon(self):
        groups, strategy = self._strategy(n_r=1, n_s=1, window=10.0)
        key = 3
        old_owner = strategy.store_targets(r_tuple(0.0, key), 0.0)[0]
        groups["R"].add_unit("R9")
        strategy.on_membership_change(now=5.0)
        probes_late = strategy.join_targets(s_tuple(20.0, key), 20.0)
        new_owner = strategy.store_targets(r_tuple(20.0, key), 20.0)[0]
        # epoch [0, 5) expired at horizon 10: old owner only probed if
        # it still owns some partitions in the new assignment.
        assert new_owner in probes_late
        if old_owner != new_owner:
            assert len(probes_late) == 1

    def test_no_op_membership_change_keeps_single_epoch(self):
        groups, strategy = self._strategy()
        strategy.on_membership_change(now=1.0)
        strategy.on_membership_change(now=2.0)
        assert len(strategy.join_targets(r_tuple(3.0, 5), 3.0)) == 1

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_collocation_property(self, key):
        _, strategy = self._strategy(n_r=3, n_s=4, partitions=64)
        store = strategy.store_targets(s_tuple(1.0, key, seq=1), 1.0)
        probe = strategy.join_targets(r_tuple(1.0, key, seq=2), 1.0)
        assert set(store) <= set(probe) or set(store) == set(probe)
