"""Tests for repro.core.streams."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import Attribute, Schema, StreamSource, merge_by_time, stream_from_pairs
from repro.core.streams import check_time_ordered
from repro.errors import SchemaError


class TestStreamSource:
    def test_assigns_sequence_numbers(self):
        src = StreamSource("R")
        t0 = src.emit(0.0, {"k": 1})
        t1 = src.emit(1.0, {"k": 2})
        assert (t0.seq, t1.seq) == (0, 1)
        assert src.emitted == 2

    def test_rejects_timestamp_regression(self):
        src = StreamSource("R")
        src.emit(5.0, {"k": 1})
        with pytest.raises(SchemaError):
            src.emit(4.0, {"k": 2})

    def test_equal_timestamps_allowed(self):
        src = StreamSource("R")
        src.emit(5.0, {"k": 1})
        src.emit(5.0, {"k": 2})

    def test_validates_against_schema(self):
        schema = Schema("E", [Attribute("k", int)])
        src = StreamSource("R", schema)
        src.emit(0.0, {"k": 1})
        with pytest.raises(SchemaError):
            src.emit(1.0, {"wrong": 1})

    def test_relation_is_stamped(self):
        assert StreamSource("S").emit(0.0, {"a": 1}).relation == "S"


class TestMergeByTime:
    def test_interleaves_by_timestamp(self):
        r = stream_from_pairs("R", [(0.0, {"i": 0}), (2.0, {"i": 2})])
        s = stream_from_pairs("S", [(1.0, {"i": 1}), (3.0, {"i": 3})])
        merged = list(merge_by_time(r, s))
        assert [t["i"] for t in merged] == [0, 1, 2, 3]

    def test_ties_broken_by_relation_then_seq(self):
        r = stream_from_pairs("R", [(1.0, {"i": 0}), (1.0, {"i": 1})])
        s = stream_from_pairs("S", [(1.0, {"i": 2})])
        merged = list(merge_by_time(r, s))
        assert [(t.relation, t.seq) for t in merged] == \
            [("R", 0), ("R", 1), ("S", 0)]

    def test_merge_of_single_stream_is_identity(self):
        r = stream_from_pairs("R", [(0.0, {"i": 0}), (1.0, {"i": 1})])
        assert list(merge_by_time(r)) == r

    @given(st.lists(st.floats(min_value=0, max_value=100), max_size=30),
           st.lists(st.floats(min_value=0, max_value=100), max_size=30))
    def test_merge_is_always_time_ordered(self, ts_a, ts_b):
        r = stream_from_pairs("R", [(ts, {"i": 0}) for ts in sorted(ts_a)])
        s = stream_from_pairs("S", [(ts, {"i": 0}) for ts in sorted(ts_b)])
        merged = list(merge_by_time(r, s))
        check_time_ordered(merged)
        assert len(merged) == len(r) + len(s)


class TestCheckTimeOrdered:
    def test_accepts_ordered(self):
        check_time_ordered(stream_from_pairs("R", [(0.0, {}), (1.0, {})]))

    def test_rejects_unordered(self):
        from repro import StreamTuple
        bad = [StreamTuple("R", 2.0, {}), StreamTuple("R", 1.0, {})]
        with pytest.raises(SchemaError):
            check_time_ordered(bad)
