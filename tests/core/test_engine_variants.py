"""Engine-level variant tests: timestamp policies, conjunctions,
window-type validation and subgroup auto-routing interplay."""

import pytest

from repro import (
    BandJoinPredicate,
    BicliqueConfig,
    ConjunctionPredicate,
    CountWindow,
    EquiJoinPredicate,
    StreamJoinEngine,
    ThetaJoinPredicate,
    TimeWindow,
    stream_from_pairs,
)
from repro.errors import ConfigurationError
from repro.harness import check_exactly_once, reference_join


def streams(n=40):
    r = stream_from_pairs("R", [(i * 0.4, {"k": i % 5, "v": float(i)})
                                for i in range(n)])
    s = stream_from_pairs("S", [(i * 0.5, {"k": i % 5, "v": float(i)})
                                for i in range(n)])
    return r, s


def config(**overrides):
    defaults = dict(window=TimeWindow(8.0), r_joiners=2, s_joiners=2,
                    archive_period=2.0, punctuation_interval=0.5)
    defaults.update(overrides)
    return BicliqueConfig(**defaults)


class TestWindowValidation:
    def test_count_window_rejected_by_engine_config(self):
        with pytest.raises(ConfigurationError):
            config(window=CountWindow(count=100))

    def test_non_window_rejected(self):
        with pytest.raises(ConfigurationError):
            config(window=5.0)


class TestTimestampPolicies:
    def test_min_policy_tags_results_with_older_input(self):
        r, s = streams()
        engine = StreamJoinEngine(config(timestamp_policy="min"),
                                  EquiJoinPredicate("k", "k"))
        results, _ = engine.run(r, s)
        assert results
        for res in results:
            assert res.ts == min(res.r.ts, res.s.ts)

    def test_max_policy_is_default(self):
        r, s = streams()
        engine = StreamJoinEngine(config(), EquiJoinPredicate("k", "k"))
        results, _ = engine.run(r, s)
        for res in results:
            assert res.ts == max(res.r.ts, res.s.ts)

    def test_policies_produce_same_pair_set(self):
        r, s = streams()
        pred = EquiJoinPredicate("k", "k")
        res_min, _ = StreamJoinEngine(config(timestamp_policy="min"),
                                      pred).run(r, s)
        res_max, _ = StreamJoinEngine(config(timestamp_policy="max"),
                                      pred).run(r, s)
        assert {x.key for x in res_min} == {x.key for x in res_max}


class TestConjunctionRouting:
    def test_conjunction_with_equi_auto_routes_hash(self):
        pred = ConjunctionPredicate([
            EquiJoinPredicate("k", "k"),
            BandJoinPredicate("v", "v", band=3.0),
        ])
        engine = StreamJoinEngine(config(), pred)
        assert engine.engine.routing_mode == "hash"
        r, s = streams()
        results, report = engine.run(r, s)
        expected = reference_join(r, s, pred, TimeWindow(8.0))
        assert check_exactly_once(results, expected).ok
        # Hash routing fan-out stays 2 even for the conjunction.
        assert report.network.data_messages == 2 * report.tuples_ingested

    def test_theta_only_conjunction_auto_routes_random(self):
        pred = ConjunctionPredicate([
            ThetaJoinPredicate("v", "<", "v"),
            BandJoinPredicate("v", "v", band=10.0),
        ])
        engine = StreamJoinEngine(config(), pred)
        assert engine.engine.routing_mode == "random"
        r, s = streams()
        results, _ = engine.run(r, s)
        expected = reference_join(r, s, pred, TimeWindow(8.0))
        assert check_exactly_once(results, expected).ok


class TestSubgroupInteractions:
    def test_subgroups_with_unequal_sides(self):
        pred = BandJoinPredicate("v", "v", band=2.0)
        cfg = config(r_joiners=4, s_joiners=2, r_subgroups=2, s_subgroups=1,
                     routing="random")
        engine = StreamJoinEngine(cfg, pred)
        r, s = streams()
        results, report = engine.run(r, s)
        expected = reference_join(r, s, pred, TimeWindow(8.0))
        assert check_exactly_once(results, expected).ok
        # R tuples stored twice (2 subgroups), S tuples once.
        stored = engine.engine.total_stored_tuples()
        live_r = sum(j.stored_tuples for j in engine.engine.joiners.values()
                     if j.side == "R")
        live_s = stored - live_r
        # window expiry complicates exact counts; compare via stats
        stored_r_events = sum(
            j.stats.tuples_stored for j in engine.engine.joiners.values()
            if j.side == "R")
        stored_s_events = sum(
            j.stats.tuples_stored for j in engine.engine.joiners.values()
            if j.side == "S")
        assert stored_r_events == 2 * len(r)
        assert stored_s_events == len(s)

    def test_subgroup_scale_out_keeps_balance(self):
        pred = BandJoinPredicate("v", "v", band=2.0)
        cfg = config(r_joiners=4, s_joiners=4, r_subgroups=2, s_subgroups=2,
                     routing="random")
        engine = StreamJoinEngine(cfg, pred)
        r, s = streams(n=60)
        from repro import merge_by_time
        arrivals = list(merge_by_time(r, s))
        half = len(arrivals) // 2
        for t in arrivals[:half]:
            engine.engine.ingest(t)
        new = engine.engine.scale_out("R", 2, now=arrivals[half].ts)
        # new units balance across the two subgroups
        subgroups = {engine.engine.groups["R"].subgroup_of(uid)
                     for uid in new}
        assert subgroups == {0, 1}
        for t in arrivals[half:]:
            engine.engine.ingest(t)
        engine.engine.finish()
        expected = reference_join(r, s, pred, TimeWindow(8.0))
        assert check_exactly_once(engine.engine.results, expected).ok
