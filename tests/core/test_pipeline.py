"""Tests for repro.core.pipeline (N-way left-deep cascades)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    BandJoinPredicate,
    BicliqueConfig,
    EquiJoinPredicate,
    TimeWindow,
    stream_from_pairs,
)
from repro.core.pipeline import (
    CascadePipeline,
    PipelineStage,
    reference_pipeline,
)
from repro.errors import ConfigurationError


def config(window_seconds=6.0, **overrides):
    defaults = dict(window=TimeWindow(window_seconds), r_joiners=2,
                    s_joiners=2, archive_period=1.5,
                    punctuation_interval=0.4)
    defaults.update(overrides)
    return BicliqueConfig(**defaults)


def four_streams(n=20):
    a = stream_from_pairs("A", [(i * 0.4, {"x": i % 3}) for i in range(n)])
    b = stream_from_pairs("B", [(i * 0.5, {"x": i % 3, "y": i % 2})
                                for i in range(n)])
    c = stream_from_pairs("C", [(i * 0.45, {"y": i % 2, "z": i % 4})
                                for i in range(n)])
    d = stream_from_pairs("D", [(i * 0.55, {"z": i % 4}) for i in range(n)])
    return a, b, c, d


class TestValidation:
    def test_needs_two_streams(self):
        with pytest.raises(ConfigurationError):
            CascadePipeline(["A"], [])

    def test_stage_count_must_match(self):
        with pytest.raises(ConfigurationError):
            CascadePipeline(["A", "B", "C"], [
                PipelineStage(config(), EquiJoinPredicate("A.x", "x"))])

    def test_unique_names(self):
        with pytest.raises(ConfigurationError):
            CascadePipeline(["A", "A"], [
                PipelineStage(config(), EquiJoinPredicate("A.x", "x"))])

    def test_stream_count_checked_at_run(self):
        pipeline = CascadePipeline(["A", "B"], [
            PipelineStage(config(), EquiJoinPredicate("A.x", "x"))])
        with pytest.raises(ConfigurationError):
            pipeline.run([[]])


class TestTwoWayEquivalence:
    def test_two_stream_pipeline_matches_reference_join(self):
        """A 1-stage pipeline is just the ordinary windowed join."""
        from repro.harness import reference_join
        a, b, _, _ = four_streams(n=30)
        stage = PipelineStage(config(), EquiJoinPredicate("A.x", "x"))
        pipeline = CascadePipeline(["A", "B"], [stage])
        results, report = pipeline.run([a, b])
        plain = reference_join(a, b, EquiJoinPredicate("x", "x"),
                               TimeWindow(6.0))
        got = {(res.idents[0][1], res.idents[1][1]) for res in results}
        assert got == {(ri[1], si[1]) for ri, si in plain}
        assert report.results == len(plain)


class TestFourWay:
    def _stages(self):
        return [
            PipelineStage(config(6.0), EquiJoinPredicate("A.x", "x")),
            PipelineStage(config(5.0), EquiJoinPredicate("B.y", "y")),
            PipelineStage(config(4.0), EquiJoinPredicate("C.z", "z")),
        ]

    def test_matches_reference(self):
        a, b, c, d = four_streams()
        stages = self._stages()
        pipeline = CascadePipeline(["A", "B", "C", "D"], stages)
        results, report = pipeline.run([a, b, c, d])
        expected = reference_pipeline([a, b, c, d], ["A", "B", "C", "D"],
                                      stages)
        produced = [res.key for res in results]
        assert len(produced) == len(set(produced))  # exactly once
        assert set(produced) == expected
        assert report.per_stage_results[-1] == len(expected)

    def test_idents_name_all_four_streams(self):
        a, b, c, d = four_streams()
        pipeline = CascadePipeline(["A", "B", "C", "D"], self._stages())
        results, _ = pipeline.run([a, b, c, d])
        assert results
        for res in results:
            assert [name for name, _ in res.idents] == ["A", "B", "C", "D"]

    def test_downstream_slack_widened(self):
        pipeline = CascadePipeline(["A", "B", "C", "D"], self._stages())
        # stage 1 must tolerate stage-0 lateness (6 s window), stage 2
        # the maximum upstream window.
        assert pipeline.engines[1].config.expiry_slack >= 6.0
        assert pipeline.engines[2].config.expiry_slack >= 6.0

    def test_mixed_predicates(self):
        a, b, c, d = four_streams()
        stages = [
            PipelineStage(config(6.0), EquiJoinPredicate("A.x", "x")),
            PipelineStage(config(5.0, routing="random"),
                          BandJoinPredicate("B.y", "y", band=0.0)),
            PipelineStage(config(4.0), EquiJoinPredicate("C.z", "z")),
        ]
        pipeline = CascadePipeline(["A", "B", "C", "D"], stages)
        results, _ = pipeline.run([a, b, c, d])
        expected = reference_pipeline([a, b, c, d], ["A", "B", "C", "D"],
                                      stages)
        assert {res.key for res in results} == expected

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 15),
           st.integers(0, 15), st.integers(1, 3))
    def test_property_any_sizes(self, n_a, n_b, n_c, n_d, keys):
        a = stream_from_pairs("A", [(i * 0.4, {"x": i % keys})
                                    for i in range(n_a)])
        b = stream_from_pairs("B", [(i * 0.5, {"x": i % keys, "y": i % 2})
                                    for i in range(n_b)])
        c = stream_from_pairs("C", [(i * 0.45, {"y": i % 2, "z": i % 2})
                                    for i in range(n_c)])
        d = stream_from_pairs("D", [(i * 0.55, {"z": i % 2})
                                    for i in range(n_d)])
        stages = self._stages()
        pipeline = CascadePipeline(["A", "B", "C", "D"], stages)
        results, _ = pipeline.run([a, b, c, d])
        expected = reference_pipeline([a, b, c, d], ["A", "B", "C", "D"],
                                      stages)
        produced = [res.key for res in results]
        assert len(produced) == len(set(produced))
        assert set(produced) == expected
