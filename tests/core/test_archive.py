"""Tests for repro.core.archive (partial-historical state)."""

import pytest

from repro import (
    BicliqueConfig,
    EquiJoinPredicate,
    StreamJoinEngine,
    StreamTuple,
    TimeWindow,
    stream_from_pairs,
)
from repro.core.archive import ArchivedSlice, ArchiveStore, query_history
from repro.errors import ConfigurationError


def s_tuple(ts, key, seq=0):
    return StreamTuple("S", ts, {"k": key}, seq=seq)


def make_slice(lo, hi, keys, unit="S0"):
    tuples = tuple(s_tuple(lo + i * (hi - lo) / max(1, len(keys) - 1), k,
                           seq=i)
                   for i, k in enumerate(keys))
    return ArchivedSlice(unit_id=unit, relation="S", min_ts=lo, max_ts=hi,
                         tuples=tuples)


class TestArchiveStore:
    def test_append_accounts_bytes_and_slices(self):
        store = ArchiveStore()
        store.append(make_slice(0.0, 1.0, [1, 2, 3]))
        assert len(store) == 1
        assert store.slices_written == 1
        assert store.tuple_count == 3
        assert store.bytes_written > 0

    def test_empty_slices_ignored(self):
        store = ArchiveStore()
        store.append(ArchivedSlice("S0", "S", 0.0, 0.0, ()))
        assert len(store) == 0

    def test_probe_matches_predicate(self):
        store = ArchiveStore()
        store.append(make_slice(0.0, 1.0, [1, 2, 1]))
        probe = StreamTuple("R", 5.0, {"k": 1})
        matches = store.probe(EquiJoinPredicate("k", "k"), probe)
        assert len(matches) == 2

    def test_probe_prunes_by_time_range(self):
        store = ArchiveStore()
        store.append(make_slice(0.0, 1.0, [1, 1]))
        store.append(make_slice(10.0, 11.0, [1, 1]))
        probe = StreamTuple("R", 50.0, {"k": 1})
        matches = store.probe(EquiJoinPredicate("k", "k"), probe,
                              lo=9.0, hi=12.0)
        assert len(matches) == 2
        assert all(9.0 <= m.ts <= 12.0 for m in matches)

    def test_overlap_logic(self):
        slice_ = make_slice(5.0, 8.0, [1])
        assert slice_.overlaps(7.0, 10.0)
        assert slice_.overlaps(0.0, 5.0)
        assert not slice_.overlaps(8.1, 9.0)


class TestEngineArchiving:
    def _run_engine(self, archive_expired=True):
        r = stream_from_pairs("R", [(float(i), {"k": i % 4})
                                    for i in range(60)])
        s = stream_from_pairs("S", [(i * 1.1, {"k": i % 4})
                                    for i in range(50)])
        engine = StreamJoinEngine(
            BicliqueConfig(window=TimeWindow(5.0), r_joiners=2, s_joiners=2,
                           routing="hash", archive_period=1.0,
                           punctuation_interval=0.5,
                           archive_expired=archive_expired),
            EquiJoinPredicate("k", "k"))
        engine.run(r, s)
        return engine.engine, r, s

    def test_expired_tuples_land_in_archives(self):
        engine, r, s = self._run_engine()
        archived = sum(j.archive.tuple_count for j in engine.joiners.values())
        assert archived > 0
        # archive + live together hold every stored tuple exactly once
        live = engine.total_stored_tuples()
        assert archived + live == len(r) + len(s)

    def test_online_results_unaffected_by_archiving(self):
        with_archive, r, s = self._run_engine(archive_expired=True)
        without, _, _ = self._run_engine(archive_expired=False)
        assert {x.key for x in with_archive.results} == \
            {x.key for x in without.results}

    def test_archives_hold_only_own_relation(self):
        engine, _, _ = self._run_engine()
        for joiner in engine.joiners.values():
            for slice_ in joiner.archive.slices():
                assert slice_.relation == joiner.side
                assert all(t.relation == joiner.side for t in slice_.tuples)

    def test_archive_disabled_by_default(self):
        engine, _, _ = self._run_engine(archive_expired=False)
        assert all(j.archive is None for j in engine.joiners.values())


class TestQueryHistory:
    def _engine(self):
        r = stream_from_pairs("R", [(float(i), {"k": i % 4})
                                    for i in range(60)])
        s = stream_from_pairs("S", [(i * 1.1, {"k": i % 4})
                                    for i in range(50)])
        facade = StreamJoinEngine(
            BicliqueConfig(window=TimeWindow(5.0), r_joiners=2, s_joiners=2,
                           routing="hash", archive_period=1.0,
                           punctuation_interval=0.5, archive_expired=True),
            EquiJoinPredicate("k", "k"))
        facade.run(r, s)
        return facade.engine, r, s

    def test_requires_archiving_enabled(self):
        facade = StreamJoinEngine(
            BicliqueConfig(window=TimeWindow(5.0)),
            EquiJoinPredicate("k", "k"))
        with pytest.raises(ConfigurationError):
            query_history(facade.engine, StreamTuple("R", 0.0, {"k": 1}))

    def test_full_history_recoverable(self):
        """live + archived state answers the full-history join for any
        probe, even though the online window was only 5 s."""
        engine, r, s = self._engine()
        probe = StreamTuple("R", 100.0, {"k": 2}, seq=999)
        result = query_history(engine, probe)
        expected = [t for t in s if t["k"] == 2]
        got = sorted(t.ident for t in result.all_matches)
        assert got == sorted(t.ident for t in expected)

    def test_time_range_restriction(self):
        engine, r, s = self._engine()
        probe = StreamTuple("R", 100.0, {"k": 2}, seq=999)
        result = query_history(engine, probe, lo=10.0, hi=20.0)
        assert all(10.0 <= t.ts <= 20.0 for t in result.all_matches)
        assert result.all_matches  # range is populated

    def test_probe_from_s_side(self):
        engine, r, s = self._engine()
        probe = StreamTuple("S", 100.0, {"k": 3}, seq=999)
        result = query_history(engine, probe)
        expected = [t for t in r if t["k"] == 3]
        assert sorted(t.ident for t in result.all_matches) == \
            sorted(t.ident for t in expected)

    def test_no_duplicates_across_tiers(self):
        engine, r, s = self._engine()
        probe = StreamTuple("R", 100.0, {"k": 0}, seq=999)
        result = query_history(engine, probe)
        idents = [t.ident for t in result.all_matches]
        assert len(idents) == len(set(idents))
