"""Tests for full-history joins (the unbounded 'window' of §2.2)."""

import math

import pytest

from repro import (
    BicliqueConfig,
    EquiJoinPredicate,
    FullHistoryWindow,
    StreamJoinEngine,
    TimeWindow,
    stream_from_pairs,
)
from repro.core.chained_index import ChainedInMemoryIndex
from repro.core.tuples import StreamTuple
from repro.harness import check_exactly_once, reference_join


class TestFullHistoryWindow:
    def test_contains_everything(self):
        w = FullHistoryWindow()
        assert w.contains(0.0, 1e12)
        assert w.contains(1e12, 0.0)

    def test_nothing_expires(self):
        w = FullHistoryWindow()
        assert not w.is_expired(0.0, 1e12)

    def test_infinite_extent(self):
        assert FullHistoryWindow().seconds == math.inf


class TestFullHistoryChainedIndex:
    def test_expire_is_a_noop(self):
        index = ChainedInMemoryIndex(
            EquiJoinPredicate("k", "k"), "S", FullHistoryWindow(),
            archive_period=1.0)
        for i in range(20):
            index.insert(StreamTuple("S", float(i), {"k": 1}, seq=i))
        assert index.expire(probe_ts=1e9) == 0
        assert len(index) == 20

    def test_probe_reaches_ancient_state(self):
        index = ChainedInMemoryIndex(
            EquiJoinPredicate("k", "k"), "S", FullHistoryWindow(),
            archive_period=1.0)
        index.insert(StreamTuple("S", 0.0, {"k": 7}, seq=0))
        matches = index.probe(StreamTuple("R", 1e9, {"k": 7}, seq=0))
        assert len(matches) == 1

    def test_still_slices_into_subindexes(self):
        index = ChainedInMemoryIndex(
            EquiJoinPredicate("k", "k"), "S", FullHistoryWindow(),
            archive_period=2.0)
        for i in range(20):
            index.insert(StreamTuple("S", float(i), {"k": 1}, seq=i))
        assert index.subindex_count > 1


class TestFullHistoryEngine:
    def _streams(self):
        r = stream_from_pairs("R", [(float(i), {"k": i % 3})
                                    for i in range(40)])
        s = stream_from_pairs("S", [(i * 1.7, {"k": i % 3})
                                    for i in range(30)])
        return r, s

    @pytest.mark.parametrize("routing", ["hash", "random"])
    def test_all_historic_pairs_produced(self, routing):
        r, s = self._streams()
        pred = EquiJoinPredicate("k", "k")
        engine = StreamJoinEngine(
            BicliqueConfig(window=FullHistoryWindow(), r_joiners=2,
                           s_joiners=2, routing=routing, archive_period=5.0,
                           punctuation_interval=0.5),
            pred)
        results, report = engine.run(r, s)
        expected = reference_join(r, s, pred, FullHistoryWindow())
        assert check_exactly_once(results, expected).ok
        # Nothing was ever discarded.
        assert report.stored_tuples_final == len(r) + len(s)

    def test_history_superset_of_windowed(self):
        r, s = self._streams()
        pred = EquiJoinPredicate("k", "k")
        full = StreamJoinEngine(
            BicliqueConfig(window=FullHistoryWindow(), archive_period=5.0,
                           punctuation_interval=0.5), pred)
        windowed = StreamJoinEngine(
            BicliqueConfig(window=TimeWindow(5.0), archive_period=1.0,
                           punctuation_interval=0.5), pred)
        full_results, _ = full.run(r, s)
        win_results, _ = windowed.run(r, s)
        assert {x.key for x in win_results} <= {x.key for x in full_results}
        assert len(full_results) > len(win_results)

    def test_scale_out_under_full_history(self):
        """Epoch-based hash routing must keep probing old owners forever
        under full history (the horizon never passes)."""
        from repro import BicliqueEngine, merge_by_time
        r, s = self._streams()
        pred = EquiJoinPredicate("k", "k")
        engine = BicliqueEngine(
            BicliqueConfig(window=FullHistoryWindow(), r_joiners=1,
                           s_joiners=1, routing="hash", archive_period=5.0,
                           punctuation_interval=0.5), pred)
        arrivals = list(merge_by_time(r, s))
        half = len(arrivals) // 2
        for t in arrivals[:half]:
            engine.ingest(t)
        engine.scale_out("R", 1, now=arrivals[half].ts)
        engine.scale_out("S", 1, now=arrivals[half].ts)
        for t in arrivals[half:]:
            engine.ingest(t)
        engine.finish()
        expected = reference_join(r, s, pred, FullHistoryWindow())
        assert check_exactly_once(engine.results, expected).ok
