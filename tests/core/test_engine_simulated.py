"""Tests for StreamJoinEngine.run_simulated and the CLI entry point."""

from repro import BicliqueConfig, EquiJoinPredicate, StreamJoinEngine, TimeWindow
from repro.cluster import ClusterConfig, HpaConfig
from repro.workloads import ConstantRate, EquiJoinWorkload, UniformKeys


class TestRunSimulated:
    def test_returns_cluster_and_report(self):
        workload = EquiJoinWorkload(keys=UniformKeys(50), seed=5)
        profile = ConstantRate(20.0)
        engine = StreamJoinEngine(
            BicliqueConfig(window=TimeWindow(10.0), r_joiners=1,
                           s_joiners=1, archive_period=2.0,
                           punctuation_interval=0.5),
            EquiJoinPredicate("k", "k"))
        cluster, report = engine.run_simulated(
            workload.arrivals(profile, 20.0), 20.0, rate_fn=profile.rate,
            cluster_config=ClusterConfig(timeline_interval=5.0))
        assert report.tuples_ingested == 400
        assert report.results == len(cluster.engine.results) > 0
        assert report.timeline

    def test_with_autoscaler(self):
        workload = EquiJoinWorkload(keys=UniformKeys(50), seed=5)
        profile = ConstantRate(20.0)
        engine = StreamJoinEngine(
            BicliqueConfig(window=TimeWindow(10.0), r_joiners=1,
                           s_joiners=1, archive_period=2.0,
                           punctuation_interval=0.5),
            EquiJoinPredicate("k", "k"))
        hpa = HpaConfig(metric="cpu", target_utilisation=0.8, period=5.0)
        cluster, report = engine.run_simulated(
            workload.arrivals(profile, 15.0), 15.0, hpa={"R": hpa})
        assert "R" in report.hpa_decisions
        assert report.hpa_decisions["R"]


class TestMainEntryPoint:
    def test_demo_command(self, capsys):
        from repro.__main__ import main
        assert main(["repro", "demo"]) == 0
        out = capsys.readouterr().out
        assert "exactly-once check: OK" in out

    def test_info_command(self, capsys):
        from repro.__main__ import main
        assert main(["repro", "info"]) == 0
        assert "version" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        from repro.__main__ import main
        assert main(["repro", "frobnicate"]) == 2
