"""Lifecycle guards: single-use facade, idempotent finish, pod cleanup."""

import pytest

from repro import (
    BicliqueConfig,
    BicliqueEngine,
    EquiJoinPredicate,
    ReproError,
    StreamJoinEngine,
    TimeWindow,
    stream_from_pairs,
)


def small_streams():
    r = stream_from_pairs("R", [(i * 0.5, {"k": i % 3}) for i in range(20)])
    s = stream_from_pairs("S", [(i * 0.6, {"k": i % 3}) for i in range(20)])
    return r, s


class TestSingleUseFacade:
    def test_second_run_rejected(self):
        r, s = small_streams()
        engine = StreamJoinEngine(
            BicliqueConfig(window=TimeWindow(5.0), archive_period=1.0,
                           punctuation_interval=0.5),
            EquiJoinPredicate("k", "k"))
        engine.run(r, s)
        with pytest.raises(ReproError):
            engine.run(r, s)

    def test_run_interleaved_also_guarded(self):
        engine = StreamJoinEngine(
            BicliqueConfig(window=TimeWindow(5.0)),
            EquiJoinPredicate("k", "k"))
        engine.run_interleaved([])
        with pytest.raises(ReproError):
            engine.run_interleaved([])


class TestFinishIdempotent:
    def test_double_finish_adds_nothing(self):
        r, s = small_streams()
        engine = BicliqueEngine(
            BicliqueConfig(window=TimeWindow(5.0), archive_period=1.0,
                           punctuation_interval=0.5),
            EquiJoinPredicate("k", "k"))
        from repro import merge_by_time
        for t in merge_by_time(r, s):
            engine.ingest(t)
        engine.finish()
        count = engine.results_count
        engine.finish()
        assert engine.results_count == count


class TestPodCleanupOnReap:
    def test_scaled_in_pod_unregistered_from_metrics(self):
        from repro.cluster import ClusterConfig, CostModel, HpaConfig, \
            SimulatedCluster
        from repro.workloads import EquiJoinWorkload, UniformKeys

        # Overload then underload: the HPA scales out, then in; reaping
        # must remove the drained unit's pod from the metrics registry.
        from repro.workloads import StepRateProfile
        profile = StepRateProfile([(0.0, 40.0), (30.0, 5.0)])
        hpa = HpaConfig(metric="cpu", target_utilisation=0.8,
                        min_replicas=1, max_replicas=3, period=5.0,
                        scale_down_cooldown=10.0)
        cluster = SimulatedCluster(
            BicliqueConfig(window=TimeWindow(10.0), r_joiners=1,
                           s_joiners=1, routing="hash", archive_period=2.0,
                           punctuation_interval=0.2),
            EquiJoinPredicate("k", "k"),
            ClusterConfig(cost_model=CostModel().scaled(600.0),
                          metrics_interval=5.0, reap_interval=5.0),
            hpa={"R": hpa})
        workload = EquiJoinWorkload(keys=UniformKeys(100), seed=8)
        report = cluster.run(workload.arrivals(profile, 90.0), 90.0)
        outs = [e for e in report.scale_events if e[2] == "out"]
        ins = [e for e in report.scale_events if e[2] == "in"]
        assert outs and ins, report.scale_events
        live_units = set(cluster.engine.joiners)
        # every joiner pod in the registry corresponds to a live unit
        joiner_pods = {n for n in cluster.metrics.pod_names
                       if n.startswith("joiner-")}
        assert joiner_pods == {f"joiner-{uid}" for uid in live_units}
        assert len(joiner_pods) < 1 + len(outs) + 1  # some pod was reaped
