"""Unit tests for the transport micro-batching building blocks.

Covers the :mod:`repro.core.batching` data types, the batch-aware
:class:`~repro.core.ordering.ReorderBuffer` entry points, the
``probe_into`` fast path of the sub-indexes, the single-pass monolithic
expiry, tuple-weighted queue depth accounting, and the router's
buffer/flush/deferred-ack discipline.
"""

import pytest

from repro import BatchingConfig, EquiJoinPredicate, TimeWindow
from repro.broker.message import Message
from repro.broker.queue import MessageQueue, message_weight
from repro.core.batching import EnvelopeBatch, iter_envelopes, payload_tuple_count
from repro.core.chained_index import ChainedInMemoryIndex
from repro.core.indexes import index_factory
from repro.core.ordering import (KIND_JOIN, KIND_PUNCTUATION, KIND_STORE,
                                 Envelope, ReorderBuffer)
from repro.core.router import Router
from repro.core.streams import StreamSource
from repro.errors import ConfigurationError
from repro.metrics.counters import NetworkStats

PREDICATE = EquiJoinPredicate("k", "k")


def tuples(n, relation="R", keys=4, dt=0.1):
    source = StreamSource(relation)
    return [source.emit(i * dt, {"k": i % keys, "v": float(i)})
            for i in range(n)]


def env(counter, router_id="r0", kind=KIND_STORE, t=None):
    if t is None:
        t = tuples(1)[0]
    return Envelope(kind=kind, router_id=router_id, counter=counter, tuple=t)


class TestBatchingConfig:
    def test_defaults_are_disabled(self):
        config = BatchingConfig()
        assert config.batch_size == 1
        assert not config.enabled

    def test_enabled_when_size_above_one(self):
        assert BatchingConfig(batch_size=2).enabled

    def test_rejects_zero_batch_size(self):
        with pytest.raises(ConfigurationError):
            BatchingConfig(batch_size=0)

    def test_rejects_negative_linger(self):
        with pytest.raises(ConfigurationError):
            BatchingConfig(batch_size=8, batch_linger=-0.1)


class TestEnvelopeBatch:
    def test_preserves_member_order(self):
        members = [env(i) for i in range(5)]
        batch = EnvelopeBatch(tuple(members))
        assert list(batch) == members
        assert len(batch) == 5
        assert batch.tuple_count == 5

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            EnvelopeBatch(())

    def test_rejects_punctuations(self):
        punctuation = Envelope(kind=KIND_PUNCTUATION, router_id="r0", counter=3)
        with pytest.raises(ConfigurationError):
            EnvelopeBatch((env(0), punctuation))

    def test_size_is_sum_of_members(self):
        members = [env(i) for i in range(3)]
        batch = EnvelopeBatch(tuple(members))
        assert batch.size_bytes() == sum(e.size_bytes() for e in members)

    def test_payload_tuple_count(self):
        assert payload_tuple_count(EnvelopeBatch((env(0), env(1)))) == 2
        assert payload_tuple_count(env(0)) == 1
        assert payload_tuple_count("punctuation") == 1

    def test_iter_envelopes(self):
        members = (env(0), env(1))
        assert list(iter_envelopes(EnvelopeBatch(members))) == list(members)
        assert list(iter_envelopes(members[0])) == [members[0]]
        assert list(iter_envelopes(object())) == []


class TestReorderBufferBatch:
    def buffer(self, routers=("r0", "r1")):
        buf = ReorderBuffer()
        for router_id in routers:
            buf.register_router(router_id)
        return buf

    def test_push_accepts_without_releasing(self):
        buf = self.buffer()
        assert buf.push(env(0, "r0"))
        assert buf.pending == 1
        assert buf.release_ready() == []  # no punctuation yet

    def test_add_batch_equals_sequential_adds(self):
        ts = tuples(6)
        sequence = [env(i, "r0", KIND_STORE, ts[i]) for i in range(3)]
        sequence.append(Envelope(kind=KIND_PUNCTUATION, router_id="r0",
                                 counter=3))
        sequence.append(Envelope(kind=KIND_PUNCTUATION, router_id="r1",
                                 counter=3))

        one_by_one = self.buffer()
        released_a = []
        for e in sequence:
            released_a.extend(one_by_one.add(e))

        batched = self.buffer()
        released_b = batched.add_batch(sequence)
        assert released_a == released_b
        assert [e.counter for e in released_b] == [0, 1, 2]

    def test_add_batch_drops_duplicates_when_dedup(self):
        buf = ReorderBuffer(dedup=True)
        buf.register_router("r0")
        first = env(0, "r0")
        buf.add_batch([first, first])
        assert buf.duplicates_dropped == 1


class TestProbeInto:
    @pytest.mark.parametrize("predicate", [
        EquiJoinPredicate("k", "k"),
        pytest.param(None, id="cross"),
    ])
    def test_probe_wrapper_matches_probe_into(self, predicate):
        from repro.core.predicates import CrossPredicate
        predicate = predicate or CrossPredicate()
        index = index_factory(predicate, "S")()
        for t in tuples(20, relation="S"):
            index.insert(t)
        probe = tuples(1, relation="R", keys=1)[0]

        matches, comparisons = index.probe(predicate, probe)
        out = []
        comparisons_into = index.probe_into(predicate, probe, out)
        assert out == matches
        assert comparisons_into == comparisons

    def test_probe_into_appends_to_existing_list(self):
        index = index_factory(PREDICATE, "S")()
        for t in tuples(8, relation="S"):
            index.insert(t)
        probe = tuples(1, relation="R", keys=1)[0]
        out = ["sentinel"]
        index.probe_into(PREDICATE, probe, out)
        assert out[0] == "sentinel"
        assert len(out) > 1


class TestChainedIndexFastPath:
    def test_boundary_filter_matches_per_tuple_filter(self):
        """A fully-in-window sub-index must yield the same matches the
        per-tuple window filter would."""
        window = TimeWindow(seconds=2.0)
        chained = ChainedInMemoryIndex(PREDICATE, "S", window,
                                       archive_period=0.5)
        stored = tuples(30, relation="S", dt=0.1)
        for t in stored:
            chained.insert(t)
        probe = StreamSource("R").emit(3.0, {"k": 0})
        matches = chained.probe(probe)
        expected = [t for t in stored
                    if t["k"] == 0 and window.contains(t.ts, probe.ts)]
        assert sorted(m.ident for m in matches) == \
            sorted(t.ident for t in expected)

    def test_monolithic_expiry_single_pass_with_sink(self):
        window = TimeWindow(seconds=1.0)
        archived: list = []
        chained = ChainedInMemoryIndex(PREDICATE, "S", window,
                                       archive_period=None,
                                       archive_sink=archived.extend)
        stored = tuples(30, relation="S", dt=0.1)  # ts 0.0 .. 2.9
        for t in stored:
            chained.insert(t)
        discarded = chained.expire(probe_ts=3.0)
        expired = [t for t in stored if window.is_expired(t.ts, 3.0)]
        assert discarded == len(expired)
        assert sorted(t.ident for t in archived) == \
            sorted(t.ident for t in expired)
        assert len(chained) == len(stored) - discarded
        assert chained.stats.tuples_expired == discarded


class TestTupleWeightedDepth:
    def message(self, payload):
        return Message(routing_key="x", payload=payload)

    def test_message_weight(self):
        assert message_weight(self.message(env(0))) == 1
        batch = EnvelopeBatch(tuple(env(i) for i in range(5)))
        assert message_weight(self.message(batch)) == 5
        assert message_weight(self.message("opaque")) == 1

    def test_backlog_depth_counts_tuples(self):
        queue = MessageQueue("q")
        batch = EnvelopeBatch(tuple(env(i) for i in range(4)))
        queue.offer(self.message(batch))  # no consumer: buffered
        queue.offer(self.message(env(9)))
        assert queue.backlog_depth == 2  # messages
        assert queue.depth == 5          # tuples

    def test_eviction_restores_weight(self):
        queue = MessageQueue("q")
        batch = EnvelopeBatch(tuple(env(i) for i in range(4)))
        queue.offer(self.message(batch))
        queue.evict_oldest()
        assert queue.depth == 0


class _RecordingChannels:
    """ChannelLayer stand-in recording (destination, payload) sends."""

    def __init__(self):
        self.sent = []

    def send(self, destination, payload, *, sender=""):
        self.sent.append((destination, payload))


class _StaticStrategy:
    """Routing stub: one store target, one join target."""

    def store_targets(self, t, now):
        return ["u-store"]

    def join_targets(self, t, now):
        return ["u-join"]

    def all_unit_ids(self):
        return ["u-store", "u-join"]


def make_router(batch_size=4, linger=0.0):
    router = Router("r0", _StaticStrategy(), _RecordingChannels(),
                    NetworkStats(),
                    batching=BatchingConfig(batch_size=batch_size,
                                            batch_linger=linger))
    return router


class TestRouterBatching:
    def test_buffers_until_size_then_flushes(self):
        router = make_router(batch_size=3)
        for i, t in enumerate(tuples(2)):
            router.route_tuple(t, now=0.0)
            router._settle_input(-1, 0.0)
        assert router.channels.sent == []
        assert router.pending_batched_tuples == 2
        router.route_tuple(tuples(3)[2], now=0.0)
        router._settle_input(-1, 0.0)
        assert router.pending_batched_tuples == 0
        # Two inboxes, each one batch of 3 members.
        assert len(router.channels.sent) == 2
        for _dest, payload in router.channels.sent:
            assert isinstance(payload, EnvelopeBatch)
            assert len(payload) == 3
        assert router.stats.batch_flushes_size == 1
        assert router.stats.batches_sent == 2
        assert router.stats.batched_envelopes == 6

    def test_singleton_buffer_ships_bare_envelope(self):
        router = make_router(batch_size=2)
        for t in tuples(1):
            router.route_tuple(t, now=0.0)
        router.flush_batches()
        assert all(isinstance(payload, Envelope)
                   for _dest, payload in router.channels.sent)
        assert router.stats.batches_sent == 0

    def test_punctuation_flushes_buffers_first(self):
        router = make_router(batch_size=100)
        for t in tuples(3):
            router.route_tuple(t, now=0.0)
        router.emit_punctuation()
        kinds = [getattr(p, "kind", "batch")
                 for _dest, p in router.channels.sent]
        # Both data batches precede every punctuation.
        assert kinds[:2] == ["batch", "batch"]
        assert set(kinds[2:]) == {KIND_PUNCTUATION}
        assert router.stats.batch_flushes_punctuation == 1

    def test_acks_deferred_until_flush_and_fire_after_sends(self):
        events = []
        router = make_router(batch_size=2)
        router.acker = lambda tag: events.append(("ack", tag))
        original_send = router.channels.send

        def send(dest, payload, *, sender=""):
            events.append(("send", dest))
            original_send(dest, payload, sender=sender)

        router.channels.send = send
        ts = tuples(2)
        router.route_tuple(ts[0], now=0.0)
        router._settle_input(7, 0.0)
        assert events == []  # nothing acked before the flush
        router.route_tuple(ts[1], now=0.0)
        router._settle_input(8, 0.0)
        assert [e[0] for e in events] == ["send", "send", "ack", "ack"]
        assert [tag for kind, tag in events if kind == "ack"] == [7, 8]

    def test_linger_timer_flushes(self):
        scheduled = []

        class FakeEvent:
            cancelled = False

            def cancel(self):
                self.cancelled = True

        router = make_router(batch_size=100, linger=0.5)
        router.batch_scheduler = lambda delay, fn: (
            scheduled.append((delay, fn)) or FakeEvent())
        router.route_tuple(tuples(1)[0], now=0.0)
        router._settle_input(-1, 0.0)
        assert scheduled and scheduled[0][0] == 0.5
        scheduled[0][1]()  # fire the linger
        assert router.pending_batched_tuples == 0
        assert router.stats.batch_flushes_linger == 1

    def test_join_kind_batches_alongside_store(self):
        router = make_router(batch_size=2)
        for t in tuples(2):
            router.route_tuple(t, now=0.0)
            router._settle_input(-1, 0.0)
        by_dest = dict(router.channels.sent)
        assert {e.kind for e in by_dest["joiner.u-store.inbox"]} == {KIND_STORE}
        assert {e.kind for e in by_dest["joiner.u-join.inbox"]} == {KIND_JOIN}
