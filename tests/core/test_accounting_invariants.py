"""Property tests for the memory/stats accounting invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EquiJoinPredicate, StreamTuple, TimeWindow
from repro.core.chained_index import ChainedInMemoryIndex
from repro.core.indexes import ENTRY_OVERHEAD_BYTES


def s_tuple(ts, key, seq, payload=""):
    return StreamTuple("S", ts, {"k": key, "p": payload}, seq=seq)


class TestByteAccounting:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=50),
                              st.integers(0, 5),
                              st.text(max_size=20)),
                    max_size=30),
           st.sampled_from([1.0, 5.0, None]))
    def test_bytes_equal_sum_of_live_tuples(self, rows, period):
        """At all times the chain's byte figure equals the sum over the
        currently live tuples — inserts add, expiry subtracts, nothing
        drifts."""
        index = ChainedInMemoryIndex(
            EquiJoinPredicate("k", "k"), "S", TimeWindow(10.0),
            archive_period=period)
        rows = sorted(rows, key=lambda row: row[0])
        for seq, (ts, key, payload) in enumerate(rows):
            index.insert(s_tuple(ts, key, seq, payload))
        expected = sum(t.size_bytes() + ENTRY_OVERHEAD_BYTES
                       for t in index.all_tuples())
        assert index.bytes == expected

        # ...and the invariant survives expiry.
        if rows:
            index.expire(probe_ts=rows[-1][0] + 7.0)
            expected = sum(t.size_bytes() + ENTRY_OVERHEAD_BYTES
                           for t in index.all_tuples())
            assert index.bytes == expected

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=30), max_size=30))
    def test_len_equals_live_tuples(self, timestamps):
        index = ChainedInMemoryIndex(
            EquiJoinPredicate("k", "k"), "S", TimeWindow(5.0),
            archive_period=1.0)
        for seq, ts in enumerate(sorted(timestamps)):
            index.insert(s_tuple(ts, seq % 3, seq))
        assert len(index) == len(list(index.all_tuples()))
        if timestamps:
            index.expire(probe_ts=max(timestamps) + 2.0)
            assert len(index) == len(list(index.all_tuples()))


class TestStatsInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.booleans(),
                              st.floats(min_value=0, max_value=40),
                              st.integers(0, 3)),
                    max_size=40))
    def test_expired_plus_live_equals_inserted(self, events):
        """Every inserted tuple is either still live or was counted as
        expired — no silent loss, no double-counting."""
        index = ChainedInMemoryIndex(
            EquiJoinPredicate("k", "k"), "S", TimeWindow(5.0),
            archive_period=1.0)
        events = sorted(events, key=lambda event: event[1])
        seq = 0
        for is_insert, ts, key in events:
            if is_insert:
                index.insert(s_tuple(ts, key, seq))
                seq += 1
            else:
                index.probe(StreamTuple("R", ts, {"k": key, "p": ""}))
        assert index.stats.inserts == \
            len(index) + index.stats.tuples_expired
