"""Tests for repro.core.planning (deployment cost planning)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import (
    BandJoinPredicate,
    BicliqueConfig,
    ConjunctionPredicate,
    CrossPredicate,
    EquiJoinPredicate,
    StreamJoinEngine,
    TimeWindow,
)
from repro.core.planning import (
    contrand_messages_per_tuple,
    contrand_replication_factor,
    conthash_messages_per_tuple,
    matrix_messages_per_tuple,
    optimal_contrand_subgroups,
    plan_deployment,
)
from repro.errors import ConfigurationError


class TestClosedForms:
    def test_pure_biclique_fanout(self):
        assert contrand_messages_per_tuple(8, 1) == 9.0  # 1 + m

    def test_subgrouped_fanout(self):
        assert contrand_messages_per_tuple(8, 2) == 6.0  # 2 + 4

    def test_hash_constant(self):
        assert conthash_messages_per_tuple() == 2.0

    def test_matrix_sqrt(self):
        assert matrix_messages_per_tuple(16) == 4.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            contrand_messages_per_tuple(0)
        with pytest.raises(ConfigurationError):
            contrand_messages_per_tuple(4, 5)
        with pytest.raises(ConfigurationError):
            matrix_messages_per_tuple(0)


class TestOptimalSubgroups:
    @pytest.mark.parametrize("m,expected", [
        (1, 1), (2, 1), (4, 2), (9, 3), (16, 4), (100, 10),
    ])
    def test_square_root_rule(self, m, expected):
        assert optimal_contrand_subgroups(m) == expected

    def test_budget_caps_replication(self):
        assert optimal_contrand_subgroups(100, max_replication=3) == 3

    def test_budget_of_one_is_pure_biclique(self):
        assert optimal_contrand_subgroups(100, max_replication=1) == 1

    @given(st.integers(1, 200))
    def test_optimum_is_global(self, m):
        k = optimal_contrand_subgroups(m)
        best = contrand_messages_per_tuple(m, k)
        for candidate in range(1, m + 1):
            assert best <= contrand_messages_per_tuple(m, candidate) + 1e-9

    @given(st.integers(1, 200))
    def test_optimal_fanout_near_two_sqrt_m(self, m):
        k = optimal_contrand_subgroups(m)
        assert contrand_messages_per_tuple(m, k) <= 2 * math.sqrt(m) + 1

    def test_replication_factor_is_subgroups(self):
        assert contrand_replication_factor(3) == 3


class TestPlanDeployment:
    def test_equi_plans_hash(self):
        plan = plan_deployment(EquiJoinPredicate("k", "k"), 8)
        assert plan.routing == "hash"
        assert plan.messages_per_tuple == 2.0
        assert plan.replication_factor == 1
        assert plan.beats_matrix_fanout

    def test_conjunction_with_equi_plans_hash(self):
        pred = ConjunctionPredicate([EquiJoinPredicate("k", "k"),
                                     BandJoinPredicate("v", "v", 1.0)])
        assert plan_deployment(pred, 8).routing == "hash"

    def test_band_plans_random_with_budgeted_subgroups(self):
        plan = plan_deployment(BandJoinPredicate("v", "v", 1.0), 16,
                               max_replication=4)
        assert plan.routing == "random"
        assert plan.subgroups == 4
        assert plan.messages_per_tuple == 8.0  # 4 + 16/4

    def test_cross_plans_random(self):
        assert plan_deployment(CrossPredicate(), 4).routing == "random"

    def test_unbudgeted_band_is_pure_biclique(self):
        plan = plan_deployment(BandJoinPredicate("v", "v", 1.0), 16)
        assert plan.subgroups == 1
        assert plan.messages_per_tuple == 17.0

    def test_plan_matches_measured_fanout(self):
        """The plan's predicted fan-out equals what the engine sends."""
        from repro.workloads import BandJoinWorkload, ConstantRate
        pred = BandJoinPredicate("v", "v", band=2.0)
        plan = plan_deployment(pred, 4, max_replication=2)
        engine = StreamJoinEngine(
            BicliqueConfig(window=TimeWindow(5.0), r_joiners=4, s_joiners=4,
                           routing=plan.routing,
                           r_subgroups=plan.subgroups,
                           s_subgroups=plan.subgroups,
                           archive_period=1.0, punctuation_interval=0.5),
            pred)
        r, s = BandJoinWorkload(seed=1).materialise(ConstantRate(100.0), 5.0)
        _, report = engine.run(r, s)
        measured = report.network.data_messages / report.tuples_ingested
        assert measured == pytest.approx(plan.messages_per_tuple)
