"""Tests for repro.core.multiway (cascaded three-way joins)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    BandJoinPredicate,
    BicliqueConfig,
    EquiJoinPredicate,
    FullHistoryWindow,
    TimeWindow,
    stream_from_pairs,
)
from repro.core.multiway import CascadeJoin, reference_cascade
from repro.errors import ConfigurationError


def config(window, **overrides):
    defaults = dict(window=window, r_joiners=2, s_joiners=2, routers=1,
                    archive_period=2.0, punctuation_interval=0.5)
    defaults.update(overrides)
    return BicliqueConfig(**defaults)


def streams(n=30, keys=4):
    r = stream_from_pairs("R", [(i * 0.4, {"a": i % keys, "x": float(i)})
                                for i in range(n)])
    s = stream_from_pairs("S", [(i * 0.5, {"a": i % keys, "b": i % 3})
                                for i in range(n)])
    t = stream_from_pairs("T", [(i * 0.45, {"b": i % 3, "y": float(i)})
                                for i in range(n)])
    return r, s, t


class TestCascadeCorrectness:
    def test_matches_reference_equi_equi(self):
        r, s, t = streams()
        w1, w2 = TimeWindow(5.0), TimeWindow(4.0)
        pred1 = EquiJoinPredicate("a", "a")
        pred2 = EquiJoinPredicate("S.b", "b")
        cascade = CascadeJoin(config(w1), pred1, config(w2), pred2)
        results, report = cascade.run(r, s, t)
        expected = reference_cascade(r, s, t, pred1, w1, pred2, w2)
        assert {res.key for res in results} == expected
        assert len(results) == len(expected)  # no duplicates
        assert report.results == len(expected)

    def test_matches_reference_with_band_second_stage(self):
        r, s, t = streams()
        w1, w2 = TimeWindow(5.0), TimeWindow(4.0)
        pred1 = EquiJoinPredicate("a", "a")
        pred2 = BandJoinPredicate("R.x", "y", band=2.0)
        cascade = CascadeJoin(config(w1), pred1,
                              config(w2, routing="random"), pred2)
        results, _ = cascade.run(r, s, t)
        expected = reference_cascade(r, s, t, pred1, w1, pred2, w2)
        assert {res.key for res in results} == expected

    def test_composite_attributes_are_prefixed(self):
        r, s, t = streams(n=10)
        pred1 = EquiJoinPredicate("a", "a")
        # Predicate on the R side of the original pair.
        pred2 = EquiJoinPredicate("R.a", "b")
        w = TimeWindow(10.0)
        cascade = CascadeJoin(config(w), pred1, config(w), pred2)
        results, _ = cascade.run(r, s, t)
        expected = reference_cascade(r, s, t, pred1, w, pred2, w)
        assert {res.key for res in results} == expected

    def test_empty_t_stream(self):
        r, s, _ = streams()
        w = TimeWindow(5.0)
        cascade = CascadeJoin(config(w), EquiJoinPredicate("a", "a"),
                              config(w), EquiJoinPredicate("S.b", "b"))
        results, report = cascade.run(r, s, [])
        assert results == []
        assert report.intermediate_results > 0  # stage 1 still joined

    def test_full_history_both_stages(self):
        r, s, t = streams(n=15)
        cascade = CascadeJoin(
            config(FullHistoryWindow()), EquiJoinPredicate("a", "a"),
            config(FullHistoryWindow()), EquiJoinPredicate("S.b", "b"))
        results, _ = cascade.run(r, s, t)
        expected = reference_cascade(
            r, s, t, EquiJoinPredicate("a", "a"), FullHistoryWindow(),
            EquiJoinPredicate("S.b", "b"), FullHistoryWindow())
        assert {res.key for res in results} == expected

    def test_full_history_first_requires_full_history_second(self):
        with pytest.raises(ConfigurationError):
            CascadeJoin(
                config(FullHistoryWindow()), EquiJoinPredicate("a", "a"),
                config(TimeWindow(5.0)), EquiJoinPredicate("S.b", "b"))

    def test_stage2_slack_widened_automatically(self):
        cascade = CascadeJoin(
            config(TimeWindow(7.0)), EquiJoinPredicate("a", "a"),
            config(TimeWindow(4.0)), EquiJoinPredicate("S.b", "b"))
        assert cascade.stage2.config.expiry_slack >= 7.0

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(0, 25), st.integers(0, 25), st.integers(0, 25),
           st.integers(1, 4), st.sampled_from([2.0, 6.0]),
           st.sampled_from([2.0, 6.0]))
    def test_cascade_property(self, n_r, n_s, n_t, keys, w1_s, w2_s):
        r = stream_from_pairs("R", [(i * 0.5, {"a": i % keys, "x": float(i)})
                                    for i in range(n_r)])
        s = stream_from_pairs("S", [(i * 0.6, {"a": i % keys, "b": i % 2})
                                    for i in range(n_s)])
        t = stream_from_pairs("T", [(i * 0.4, {"b": i % 2})
                                    for i in range(n_t)])
        w1, w2 = TimeWindow(w1_s), TimeWindow(w2_s)
        pred1 = EquiJoinPredicate("a", "a")
        pred2 = EquiJoinPredicate("S.b", "b")
        cascade = CascadeJoin(config(w1), pred1, config(w2), pred2)
        results, _ = cascade.run(r, s, t)
        expected = reference_cascade(r, s, t, pred1, w1, pred2, w2)
        produced = [res.key for res in results]
        assert len(produced) == len(set(produced))  # exactly once
        assert set(produced) == expected
