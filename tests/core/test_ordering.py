"""Tests for repro.core.ordering (Definitions 7-8, Figure 8 scenarios)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import StreamTuple
from repro.core.ordering import (
    KIND_JOIN,
    KIND_PUNCTUATION,
    KIND_STORE,
    Envelope,
    ReorderBuffer,
)
from repro.errors import OrderingError


def data_env(router: str, counter: int, kind: str = KIND_STORE) -> Envelope:
    t = StreamTuple("R", float(counter), {"k": counter}, seq=counter)
    return Envelope(kind=kind, router_id=router, counter=counter, tuple=t)


def punct(router: str, counter: int) -> Envelope:
    return Envelope(kind=KIND_PUNCTUATION, router_id=router, counter=counter)


class TestSingleRouter:
    def test_nothing_released_before_punctuation(self):
        buf = ReorderBuffer()
        buf.register_router("r0")
        assert buf.add(data_env("r0", 0)) == []
        assert buf.add(data_env("r0", 1)) == []
        assert buf.pending == 2

    def test_punctuation_releases_up_to_watermark(self):
        buf = ReorderBuffer()
        buf.register_router("r0")
        buf.add(data_env("r0", 0))
        buf.add(data_env("r0", 1))
        buf.add(data_env("r0", 2))
        released = buf.add(punct("r0", 2))
        assert [e.counter for e in released] == [0, 1]
        assert buf.pending == 1

    def test_release_order_is_counter_order(self):
        buf = ReorderBuffer()
        buf.register_router("r0")
        buf.add(data_env("r0", 0))
        buf.add(data_env("r0", 1))
        released = buf.add(punct("r0", 10))
        assert [e.counter for e in released] == [0, 1]

    def test_envelope_from_unregistered_router_rejected(self):
        buf = ReorderBuffer()
        with pytest.raises(OrderingError):
            buf.add(data_env("ghost", 0))

    def test_counter_regression_detected(self):
        buf = ReorderBuffer()
        buf.register_router("r0")
        buf.add(data_env("r0", 5))
        with pytest.raises(OrderingError):
            buf.add(data_env("r0", 5))

    def test_punctuation_regression_detected(self):
        buf = ReorderBuffer()
        buf.register_router("r0")
        buf.add(punct("r0", 10))
        with pytest.raises(OrderingError):
            buf.add(punct("r0", 5))

    def test_same_counter_store_and_join_both_buffered(self):
        """A tuple's store and join copies share a counter; a joiner that
        receives both (possible with subgrouping) keeps both."""
        buf = ReorderBuffer()
        buf.register_router("r0")
        buf.add(data_env("r0", 0, KIND_STORE))
        with pytest.raises(OrderingError):
            # ...but a *data* counter repeat on one channel is a FIFO
            # violation: a unit never legitimately sees the same counter
            # twice from one router.
            buf.add(data_env("r0", 0, KIND_JOIN))


class TestMultiRouter:
    def test_watermark_is_minimum_over_routers(self):
        buf = ReorderBuffer()
        buf.register_router("r0")
        buf.register_router("r1")
        buf.add(data_env("r0", 0))
        buf.add(data_env("r1", 0))
        assert buf.add(punct("r0", 5)) == []  # r1 still at -1
        released = buf.add(punct("r1", 1))
        assert {(e.router_id, e.counter) for e in released} == \
            {("r0", 0), ("r1", 0)}

    def test_per_channel_fifo_enforced_per_router(self):
        buf = ReorderBuffer()
        buf.register_router("a")
        buf.add(data_env("a", 1))
        with pytest.raises(OrderingError):
            buf.add(data_env("a", 0))

    def test_release_sorted_globally(self):
        buf = ReorderBuffer()
        buf.register_router("a")
        buf.register_router("b")
        buf.add(data_env("b", 0))
        buf.add(data_env("a", 0))
        buf.add(data_env("a", 1))
        buf.add(data_env("b", 2))
        buf.add(punct("a", 10))
        released = buf.add(punct("b", 10))
        assert [(e.counter, e.router_id) for e in released] == \
            [(0, "a"), (0, "b"), (1, "a"), (2, "b")]

    def test_unregister_router_unblocks(self):
        buf = ReorderBuffer()
        buf.register_router("a")
        buf.register_router("b")
        buf.add(data_env("a", 0))
        buf.add(punct("a", 5))
        assert buf.pending == 1  # blocked by b's missing punctuation
        released = buf.unregister_router("b")
        assert [e.counter for e in released] == [0]

    def test_unregister_unknown_router_rejected(self):
        buf = ReorderBuffer()
        with pytest.raises(OrderingError):
            buf.unregister_router("ghost")


class TestDrain:
    def test_drain_releases_everything(self):
        buf = ReorderBuffer()
        buf.register_router("r0")
        for i in range(5):
            buf.add(data_env("r0", i))
        drained = buf.drain()
        assert len(drained) == 5
        assert buf.pending == 0


class TestOrderConsistencyProperty:
    @settings(max_examples=50, deadline=None)
    @given(st.data())
    def test_two_buffers_release_subsequences_of_one_global_order(self, data):
        """Definition 7: feed two joiners overlapping subsets of the same
        stamped tuples with interleaved punctuations in any arrival
        order (FIFO per router) — both must release subsequences of the
        same global (counter, router) sequence."""
        n_routers = data.draw(st.integers(1, 3))
        routers = [f"r{i}" for i in range(n_routers)]
        counts = {r: data.draw(st.integers(0, 8), label=f"count-{r}")
                  for r in routers}

        buffers = [ReorderBuffer(), ReorderBuffer()]
        for buf in buffers:
            for r in routers:
                buf.register_router(r)

        released = [[], []]
        # Per-buffer subset selection and independent arrival interleaving.
        for b, buf in enumerate(buffers):
            events = []
            for r in routers:
                chan = [data_env(r, c) for c in range(counts[r])
                        if data.draw(st.booleans(), label=f"take-{b}-{r}-{c}")]
                chan.append(punct(r, counts[r]))
                events.append(chan)
            # round-robin-ish merge with random channel choice,
            # preserving per-channel FIFO
            while any(events):
                idx = data.draw(
                    st.integers(0, len(events) - 1), label="chan")
                if events[idx]:
                    released[b].extend(buf.add(events[idx].pop(0)))

        keys = [[(e.counter, e.router_id) for e in rel] for rel in released]
        # each released sequence is sorted by the global order
        assert keys[0] == sorted(keys[0])
        assert keys[1] == sorted(keys[1])
        # and the common elements appear in the same relative order
        common = set(keys[0]) & set(keys[1])
        filtered0 = [k for k in keys[0] if k in common]
        filtered1 = [k for k in keys[1] if k in common]
        assert filtered0 == filtered1


class TestDedupMode:
    """``dedup=True``: at-least-once transports may deliver duplicate
    copies; the per-channel counter uniqueness turns any regression
    into a safe drop instead of a protocol violation."""

    def _buf(self):
        buf = ReorderBuffer(dedup=True)
        buf.register_router("r0")
        return buf

    def test_duplicate_data_envelope_dropped(self):
        buf = self._buf()
        buf.add(data_env("r0", 0))
        assert buf.add(data_env("r0", 0)) == []
        assert buf.duplicates_dropped == 1
        released = buf.add(punct("r0", 1))
        assert [e.counter for e in released] == [0]

    def test_duplicate_of_buffered_envelope_dropped(self):
        """The copy can arrive before the original is released."""
        buf = self._buf()
        buf.add(data_env("r0", 3))
        assert buf.add(data_env("r0", 3)) == []
        assert buf.pending == 1  # original still buffered, exactly once

    def test_duplicate_after_release_dropped(self):
        buf = self._buf()
        buf.add(data_env("r0", 0))
        buf.add(punct("r0", 1))
        assert buf.add(data_env("r0", 0)) == []
        assert buf.duplicates_dropped == 1

    def test_duplicate_punctuation_dropped(self):
        buf = self._buf()
        buf.add(punct("r0", 5))
        assert buf.add(punct("r0", 3)) == []  # stale copy overtaken
        assert buf.duplicates_dropped == 1
        assert buf.watermark() == 5

    def test_repeated_equal_punctuation_is_not_a_duplicate(self):
        """Punctuations legitimately repeat a counter when no tuples
        flowed in between; only a *regression* marks a duplicate."""
        buf = self._buf()
        buf.add(punct("r0", 5))
        buf.add(punct("r0", 5))
        assert buf.duplicates_dropped == 0

    def test_fresh_envelopes_unaffected(self):
        buf = self._buf()
        released = []
        for c in range(5):
            released += buf.add(data_env("r0", c))
        released += buf.add(punct("r0", 5))
        assert [e.counter for e in released] == [0, 1, 2, 3, 4]
        assert buf.duplicates_dropped == 0

    def test_default_mode_still_raises(self):
        buf = ReorderBuffer()
        buf.register_router("r0")
        buf.add(data_env("r0", 1))
        with pytest.raises(OrderingError):
            buf.add(data_env("r0", 1))
