"""Tests for repro.core.predicates."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import (
    BandJoinPredicate,
    ConjunctionPredicate,
    CrossPredicate,
    EquiJoinPredicate,
    StreamTuple,
    ThetaJoinPredicate,
)
from repro.errors import PredicateError


def r_tuple(**values) -> StreamTuple:
    return StreamTuple("R", 0.0, values)


def s_tuple(**values) -> StreamTuple:
    return StreamTuple("S", 0.0, values)


class TestEquiJoin:
    def test_matches_equal_keys(self):
        pred = EquiJoinPredicate("a", "b")
        assert pred.matches(r_tuple(a=5), s_tuple(b=5))
        assert not pred.matches(r_tuple(a=5), s_tuple(b=6))

    def test_selectivity_class_low(self):
        assert EquiJoinPredicate("a", "b").selectivity_class == "low"

    def test_key_attributes_per_side(self):
        pred = EquiJoinPredicate("a", "b")
        assert pred.key_attribute("R") == "a"
        assert pred.key_attribute("S") == "b"

    def test_unknown_side_rejected(self):
        with pytest.raises(PredicateError):
            EquiJoinPredicate("a", "b").key_attribute("T")


class TestThetaJoin:
    @pytest.mark.parametrize("op,a,b,expected", [
        ("<", 1, 2, True), ("<", 2, 2, False),
        ("<=", 2, 2, True), ("<=", 3, 2, False),
        (">", 3, 2, True), (">", 2, 2, False),
        (">=", 2, 2, True), (">=", 1, 2, False),
        ("!=", 1, 2, True), ("!=", 2, 2, False),
        ("==", 2, 2, True), ("==", 1, 2, False),
    ])
    def test_operators(self, op, a, b, expected):
        pred = ThetaJoinPredicate("a", op, "b")
        assert pred.matches(r_tuple(a=a), s_tuple(b=b)) is expected

    def test_unknown_operator_rejected(self):
        with pytest.raises(PredicateError):
            ThetaJoinPredicate("a", "<>", "b")

    def test_selectivity_class_high(self):
        assert ThetaJoinPredicate("a", "<", "b").selectivity_class == "high"


class TestBandJoin:
    def test_within_band_matches(self):
        pred = BandJoinPredicate("a", "b", band=2.0)
        assert pred.matches(r_tuple(a=5.0), s_tuple(b=7.0))
        assert pred.matches(r_tuple(a=5.0), s_tuple(b=3.0))
        assert not pred.matches(r_tuple(a=5.0), s_tuple(b=7.5))

    def test_band_boundary_inclusive(self):
        pred = BandJoinPredicate("a", "b", band=2.0)
        assert pred.matches(r_tuple(a=0.0), s_tuple(b=2.0))

    def test_zero_band_is_numeric_equality(self):
        pred = BandJoinPredicate("a", "b", band=0.0)
        assert pred.matches(r_tuple(a=1.5), s_tuple(b=1.5))
        assert not pred.matches(r_tuple(a=1.5), s_tuple(b=1.6))

    def test_negative_band_rejected(self):
        with pytest.raises(PredicateError):
            BandJoinPredicate("a", "b", band=-1.0)

    def test_probe_range(self):
        assert BandJoinPredicate("a", "b", 3.0).probe_range(10.0) == (7.0, 13.0)

    @given(st.floats(-100, 100), st.floats(-100, 100))
    def test_symmetry_property(self, a, b):
        pred = BandJoinPredicate("a", "b", band=5.0)
        assert pred.matches(r_tuple(a=a), s_tuple(b=b)) == \
            pred.matches(r_tuple(a=b), s_tuple(b=a))


class TestConjunction:
    def test_requires_conjuncts(self):
        with pytest.raises(PredicateError):
            ConjunctionPredicate([])

    def test_all_must_match(self):
        pred = ConjunctionPredicate([
            EquiJoinPredicate("k", "k"),
            BandJoinPredicate("v", "v", band=1.0),
        ])
        assert pred.matches(r_tuple(k=1, v=5.0), s_tuple(k=1, v=5.5))
        assert not pred.matches(r_tuple(k=1, v=5.0), s_tuple(k=2, v=5.5))
        assert not pred.matches(r_tuple(k=1, v=5.0), s_tuple(k=1, v=9.0))

    def test_selectivity_low_with_equi_conjunct(self):
        pred = ConjunctionPredicate([
            BandJoinPredicate("v", "v", band=1.0),
            EquiJoinPredicate("k", "k"),
        ])
        assert pred.selectivity_class == "low"
        assert isinstance(pred.indexable_conjunct, EquiJoinPredicate)

    def test_selectivity_high_without_equi(self):
        pred = ConjunctionPredicate([BandJoinPredicate("v", "v", band=1.0)])
        assert pred.selectivity_class == "high"

    def test_key_attribute_comes_from_indexable_conjunct(self):
        pred = ConjunctionPredicate([
            BandJoinPredicate("v", "w", band=1.0),
            EquiJoinPredicate("a", "b"),
        ])
        assert pred.key_attribute("R") == "a"
        assert pred.key_attribute("S") == "b"


class TestCross:
    def test_always_matches(self):
        pred = CrossPredicate()
        assert pred.matches(r_tuple(x=1), s_tuple(y=2))

    def test_no_key_attribute(self):
        assert CrossPredicate().key_attribute("R") is None
