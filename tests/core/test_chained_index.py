"""Tests for repro.core.chained_index (archive period P, Theorem 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EquiJoinPredicate, StreamTuple, TimeWindow
from repro.core.chained_index import ChainedInMemoryIndex
from repro.errors import IndexError_


def r_tuple(ts: float, seq: int, **values) -> StreamTuple:
    return StreamTuple("R", ts, values, seq=seq)


def s_tuple(ts: float, seq: int, **values) -> StreamTuple:
    return StreamTuple("S", ts, values, seq=seq)


def make_index(window=10.0, period=2.0, predicate=None):
    return ChainedInMemoryIndex(
        predicate or EquiJoinPredicate("k", "k"), stored_side="S",
        window=TimeWindow(seconds=window), archive_period=period)


class TestConstruction:
    def test_rejects_non_positive_period(self):
        with pytest.raises(IndexError_):
            make_index(period=0.0)

    def test_rejects_negative_slack(self):
        with pytest.raises(IndexError_):
            ChainedInMemoryIndex(EquiJoinPredicate("k", "k"), "S",
                                 TimeWindow(10.0), 1.0, expiry_slack=-1.0)

    def test_monolithic_mode_allowed(self):
        index = make_index(period=None)
        assert index.archive_period is None


class TestDataIndexing:
    def test_starts_with_one_active_subindex(self):
        assert make_index().subindex_count == 1

    def test_archives_when_span_exceeds_period(self):
        index = make_index(period=2.0)
        index.insert(s_tuple(0.0, 0, k=1))
        index.insert(s_tuple(1.5, 1, k=1))
        assert index.subindex_count == 1  # span 1.5 <= P
        index.insert(s_tuple(2.5, 2, k=1))
        assert index.subindex_count == 2  # span 2.5 > P → archived

    def test_long_stream_creates_many_subindexes(self):
        index = make_index(window=100.0, period=1.0)
        for i in range(50):
            index.insert(s_tuple(i * 0.5, i, k=1))
        # 25 seconds of data in slices spanning P plus one arrival gap
        # (archival triggers on the first insert exceeding the period):
        # 4 tuples / 1.5 s per slice → ceil(50/4) = 13 sub-indexes.
        assert 10 <= index.subindex_count <= 17
        assert len(index) == 50

    def test_monolithic_never_archives(self):
        index = make_index(window=100.0, period=None)
        for i in range(50):
            index.insert(s_tuple(i * 1.0, i, k=1))
        assert index.subindex_count == 1


class TestDataDiscarding:
    def test_expires_whole_subindexes(self):
        index = make_index(window=10.0, period=2.0)
        for i in range(20):
            index.insert(s_tuple(float(i), i, k=1))
        discarded = index.expire(probe_ts=25.0)
        # tuples with ts < 15 may go; tuples in [15, 19] must stay
        assert discarded > 0
        remaining = {t.seq for t in index.all_tuples()}
        assert {15, 16, 17, 18, 19} <= remaining

    def test_expiry_is_subindex_granular(self):
        """A sub-index with any live tuple is kept whole — chained
        discarding trades a little memory for O(1) expiry."""
        index = make_index(window=5.0, period=2.0)
        for i in range(10):
            index.insert(s_tuple(float(i), i, k=1))
        index.expire(probe_ts=8.0)
        # Theorem 1: only sub-indexes whose max_ts < 3.0 were dropped.
        for t in index.all_tuples():
            # the straddling sub-index may retain some expired tuples
            assert t.ts >= 0.0
        live = {t.seq for t in index.all_tuples()}
        assert {3, 4, 5, 6, 7, 8, 9} <= live

    def test_never_discards_live_tuples(self):
        index = make_index(window=10.0, period=3.0)
        for i in range(30):
            index.insert(s_tuple(float(i), i, k=1))
        index.expire(probe_ts=29.0)
        live = {t.seq for t in index.all_tuples()}
        assert all(seq in live for seq in range(19, 30))

    def test_expire_counts_tuples(self):
        index = make_index(window=2.0, period=1.0)
        for i in range(10):
            index.insert(s_tuple(float(i), i, k=1))
        total = index.expire(probe_ts=100.0)
        assert total == 10
        assert len(index) == 0

    def test_fully_stale_active_subindex_is_replaced(self):
        index = make_index(window=2.0, period=100.0)  # never archives
        index.insert(s_tuple(0.0, 0, k=1))
        index.insert(s_tuple(1.0, 1, k=1))
        assert index.expire(probe_ts=50.0) == 2
        assert len(index) == 0

    def test_monolithic_expiry_filters_tuples(self):
        index = make_index(window=5.0, period=None)
        for i in range(10):
            index.insert(s_tuple(float(i), i, k=1))
        index.expire(probe_ts=9.0)
        live = sorted(t.seq for t in index.all_tuples())
        assert live == [4, 5, 6, 7, 8, 9]

    def test_expiry_slack_retains_borderline_state(self):
        index = ChainedInMemoryIndex(
            EquiJoinPredicate("k", "k"), "S", TimeWindow(5.0),
            archive_period=1.0, expiry_slack=3.0)
        for i in range(10):
            index.insert(s_tuple(float(i), i, k=1))
        index.expire(probe_ts=9.0)
        # without slack, tuples older than 4.0 could go; with slack 3,
        # only tuples older than 1.0 may go.
        live = {t.seq for t in index.all_tuples()}
        assert {2, 3, 4, 5, 6, 7, 8, 9} <= live


class TestJoinProcessing:
    def test_probe_rejects_same_relation(self):
        index = make_index()
        with pytest.raises(IndexError_):
            index.probe(s_tuple(0.0, 0, k=1))

    def test_probe_matches_across_subindexes(self):
        index = make_index(window=100.0, period=1.0)
        for i in range(10):
            index.insert(s_tuple(float(i), i, k=i % 2))
        matches = index.probe(r_tuple(10.0, 0, k=0))
        assert sorted(m.seq for m in matches) == [0, 2, 4, 6, 8]

    def test_probe_filters_window_boundary(self):
        """Candidates in the straddling sub-index outside the window are
        filtered per tuple."""
        index = make_index(window=3.0, period=10.0)  # one big sub-index
        for i in range(10):
            index.insert(s_tuple(float(i), i, k=1))
        matches = index.probe(r_tuple(9.0, 0, k=1))
        assert sorted(m.ts for m in matches) == [6.0, 7.0, 8.0, 9.0]
        assert index.stats.window_filtered > 0

    def test_probe_triggers_expiry_first(self):
        index = make_index(window=2.0, period=1.0)
        for i in range(10):
            index.insert(s_tuple(float(i), i, k=1))
        index.probe(r_tuple(50.0, 0, k=1))
        assert len(index) < 10

    def test_stats_accumulate(self):
        index = make_index(window=100.0, period=1.0)
        for i in range(10):
            index.insert(s_tuple(float(i), i, k=1))
        index.probe(r_tuple(10.0, 0, k=1))
        stats = index.stats
        assert stats.inserts == 10
        assert stats.probes == 1
        assert stats.matches == 10
        assert stats.comparisons >= 10


class TestChainedVsMonolithicEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=50),
                              st.integers(min_value=0, max_value=5)),
                    max_size=40),
           st.floats(min_value=0, max_value=60),
           st.integers(min_value=0, max_value=5))
    def test_same_probe_results(self, inserts, probe_ts, probe_key):
        """Chained and monolithic indexes agree on every probe, for any
        insert history and archive period (results-equivalence of the
        E5 ablation)."""
        inserts = sorted(inserts)  # stream order
        chained = make_index(window=10.0, period=2.0)
        mono = make_index(window=10.0, period=None)
        for i, (ts, key) in enumerate(inserts):
            chained.insert(s_tuple(ts, i, k=key))
            mono.insert(s_tuple(ts, i, k=key))
        probe = r_tuple(max(probe_ts, max([ts for ts, _ in inserts], default=0.0)),
                        0, k=probe_key)
        got_chained = sorted(m.seq for m in chained.probe(probe))
        got_mono = sorted(m.seq for m in mono.probe(probe))
        assert got_chained == got_mono
