"""Tests for repro.core.engine (the StreamJoinEngine facade)."""

from repro import (
    BicliqueConfig,
    EquiJoinPredicate,
    StreamJoinEngine,
    TimeWindow,
    stream_from_pairs,
)
from repro.harness import check_exactly_once, reference_join


def config(**overrides):
    defaults = dict(window=TimeWindow(seconds=8.0), r_joiners=2, s_joiners=2,
                    routers=1, archive_period=2.0, punctuation_interval=0.5)
    defaults.update(overrides)
    return BicliqueConfig(**defaults)


def streams():
    r = stream_from_pairs("R", [(i * 0.4, {"k": i % 4}) for i in range(30)])
    s = stream_from_pairs("S", [(i * 0.5, {"k": i % 4}) for i in range(25)])
    return r, s


class TestRun:
    def test_returns_results_and_report(self):
        r, s = streams()
        pred = EquiJoinPredicate("k", "k")
        engine = StreamJoinEngine(config(), pred)
        results, report = engine.run(r, s)
        expected = reference_join(r, s, pred, TimeWindow(seconds=8.0))
        assert check_exactly_once(results, expected).ok
        assert report.results == len(expected)
        assert report.duplicates == 0

    def test_report_counts_ingested(self):
        r, s = streams()
        engine = StreamJoinEngine(config(), EquiJoinPredicate("k", "k"))
        _, report = engine.run(r, s)
        assert report.tuples_ingested == len(r) + len(s)

    def test_report_network_messages_positive(self):
        r, s = streams()
        engine = StreamJoinEngine(config(), EquiJoinPredicate("k", "k"))
        _, report = engine.run(r, s)
        assert report.network.data_messages >= len(r) + len(s)

    def test_memory_sampling_reports_peak(self):
        r, s = streams()
        engine = StreamJoinEngine(config(), EquiJoinPredicate("k", "k"))
        _, report = engine.run(r, s, sample_memory_every=5)
        assert report.peak_live_bytes > 0

    def test_empty_streams(self):
        engine = StreamJoinEngine(config(), EquiJoinPredicate("k", "k"))
        results, report = engine.run([], [])
        assert results == []
        assert report.results == 0

    def test_one_empty_stream(self):
        r, _ = streams()
        engine = StreamJoinEngine(config(), EquiJoinPredicate("k", "k"))
        results, report = engine.run(r, [])
        assert results == []
        assert report.stored_tuples_final == len(r)

    def test_run_interleaved_accepts_premerged(self):
        from repro import merge_by_time
        r, s = streams()
        pred = EquiJoinPredicate("k", "k")
        engine = StreamJoinEngine(config(), pred)
        results, _ = engine.run_interleaved(list(merge_by_time(r, s)))
        expected = reference_join(r, s, pred, TimeWindow(seconds=8.0))
        assert check_exactly_once(results, expected).ok

    def test_latency_summary_present(self):
        r, s = streams()
        engine = StreamJoinEngine(config(), EquiJoinPredicate("k", "k"))
        _, report = engine.run(r, s)
        assert report.latency.count == report.results
