"""Tests for repro.core.tuples (schemas, tuples, join results)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import Attribute, Schema, StreamTuple, make_result
from repro.core.tuples import TUPLE_OVERHEAD_BYTES
from repro.errors import SchemaError


class TestSchema:
    def test_requires_attributes(self):
        with pytest.raises(SchemaError):
            Schema("empty", [])

    def test_rejects_duplicate_names(self):
        with pytest.raises(SchemaError):
            Schema("dup", [Attribute("a"), Attribute("a")])

    def test_contains_and_len(self):
        schema = Schema("E", [Attribute("a"), Attribute("b")])
        assert "a" in schema and "b" in schema and "c" not in schema
        assert len(schema) == 2

    def test_attribute_lookup(self):
        schema = Schema("E", [Attribute("a", int)])
        assert schema.attribute("a").dtype is int
        with pytest.raises(SchemaError):
            schema.attribute("missing")

    def test_validate_accepts_exact_instance(self):
        schema = Schema("E", [Attribute("a", int), Attribute("b", str)])
        schema.validate({"a": 1, "b": "x"})

    def test_validate_rejects_missing_attribute(self):
        schema = Schema("E", [Attribute("a"), Attribute("b")])
        with pytest.raises(SchemaError):
            schema.validate({"a": 1})

    def test_validate_rejects_extra_attribute(self):
        schema = Schema("E", [Attribute("a")])
        with pytest.raises(SchemaError):
            schema.validate({"a": 1, "z": 2})

    def test_validate_rejects_type_mismatch(self):
        schema = Schema("E", [Attribute("a", int)])
        with pytest.raises(SchemaError):
            schema.validate({"a": "not-an-int"})

    def test_object_dtype_accepts_anything(self):
        Attribute("a").validate(object())


class TestStreamTuple:
    def test_attribute_access(self):
        t = StreamTuple("R", 1.0, {"k": 7})
        assert t["k"] == 7
        assert t.get("k") == 7
        assert t.get("missing", "d") == "d"

    def test_unknown_attribute_raises_schema_error(self):
        t = StreamTuple("R", 1.0, {"k": 7})
        with pytest.raises(SchemaError):
            t["nope"]

    def test_ident_is_relation_and_seq(self):
        t = StreamTuple("S", 2.0, {"k": 1}, seq=42)
        assert t.ident == ("S", 42)

    def test_size_accounts_overhead_and_payload(self):
        t = StreamTuple("R", 0.0, {"n": 1, "s": "abcd"})
        assert t.size_bytes() == TUPLE_OVERHEAD_BYTES + 8 + 4

    @given(st.text(max_size=100))
    def test_string_payload_sized_by_length(self, text):
        t = StreamTuple("R", 0.0, {"s": text})
        assert t.size_bytes() == TUPLE_OVERHEAD_BYTES + len(text)

    def test_tuples_are_immutable(self):
        t = StreamTuple("R", 1.0, {"k": 7})
        with pytest.raises(AttributeError):
            t.ts = 2.0


class TestJoinResult:
    def _pair(self):
        r = StreamTuple("R", 1.0, {"k": 1}, seq=5)
        s = StreamTuple("S", 3.0, {"k": 1}, seq=9)
        return r, s

    def test_max_timestamp_policy(self):
        r, s = self._pair()
        assert make_result(r, s).ts == 3.0

    def test_min_timestamp_policy(self):
        r, s = self._pair()
        assert make_result(r, s, timestamp_policy="min").ts == 1.0

    def test_unknown_policy_rejected(self):
        r, s = self._pair()
        with pytest.raises(ValueError):
            make_result(r, s, timestamp_policy="median")

    def test_key_is_pair_of_idents(self):
        r, s = self._pair()
        assert make_result(r, s).key == (("R", 5), ("S", 9))

    def test_producer_and_time_recorded(self):
        r, s = self._pair()
        result = make_result(r, s, produced_at=4.5, producer="R0")
        assert result.produced_at == 4.5
        assert result.producer == "R0"
