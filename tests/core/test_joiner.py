"""Tests for repro.core.joiner (store branch, join branch, ordering)."""

import pytest

from repro import EquiJoinPredicate, StreamTuple, TimeWindow
from repro.core.joiner import Joiner
from repro.core.ordering import KIND_JOIN, KIND_PUNCTUATION, KIND_STORE, Envelope
from repro.errors import ConfigurationError


def r_tuple(ts, key, seq=0):
    return StreamTuple("R", ts, {"k": key}, seq=seq)


def s_tuple(ts, key, seq=0):
    return StreamTuple("S", ts, {"k": key}, seq=seq)


def make_joiner(side="R", ordered=False, window=10.0, period=2.0):
    results = []
    joiner = Joiner(
        unit_id=f"{side}0", side=side, predicate=EquiJoinPredicate("k", "k"),
        window=TimeWindow(seconds=window), archive_period=period,
        result_sink=results.append, ordered=ordered)
    joiner.register_router("router0")
    return joiner, results


def env(kind, t, counter, router="router0"):
    return Envelope(kind=kind, router_id=router, counter=counter, tuple=t)


def punct(counter, router="router0"):
    return Envelope(kind=KIND_PUNCTUATION, router_id=router, counter=counter)


class TestValidation:
    def test_bad_side_rejected(self):
        with pytest.raises(ConfigurationError):
            Joiner("X0", "X", EquiJoinPredicate("k", "k"),
                   TimeWindow(10.0), 1.0, lambda r: None)

    def test_store_of_wrong_relation_rejected(self):
        joiner, _ = make_joiner(side="R")
        with pytest.raises(ConfigurationError):
            joiner.on_envelope(env(KIND_STORE, s_tuple(0.0, 1), 0))

    def test_probe_with_own_relation_rejected(self):
        joiner, _ = make_joiner(side="R")
        with pytest.raises(ConfigurationError):
            joiner.on_envelope(env(KIND_JOIN, r_tuple(0.0, 1), 0))


class TestUnorderedProcessing:
    def test_store_then_probe_produces_result(self):
        joiner, results = make_joiner(side="R")
        joiner.on_envelope(env(KIND_STORE, r_tuple(0.0, 7), 0))
        joiner.on_envelope(env(KIND_JOIN, s_tuple(1.0, 7, seq=1), 1))
        assert len(results) == 1
        assert results[0].r.ident == ("R", 0)
        assert results[0].s.ident == ("S", 1)

    def test_probe_before_store_misses(self):
        """Figure 8: a probe that arrives before the matching store finds
        nothing — the opposite side is responsible for that pair."""
        joiner, results = make_joiner(side="R")
        joiner.on_envelope(env(KIND_JOIN, s_tuple(1.0, 7), 0))
        joiner.on_envelope(env(KIND_STORE, r_tuple(0.0, 7), 1))
        assert results == []

    def test_non_matching_keys_no_result(self):
        joiner, results = make_joiner(side="R")
        joiner.on_envelope(env(KIND_STORE, r_tuple(0.0, 7), 0))
        joiner.on_envelope(env(KIND_JOIN, s_tuple(1.0, 8, seq=1), 1))
        assert results == []

    def test_result_operand_order_normalised_on_s_side(self):
        joiner, results = make_joiner(side="S")
        joiner.on_envelope(env(KIND_STORE, s_tuple(0.0, 7), 0))
        joiner.on_envelope(env(KIND_JOIN, r_tuple(1.0, 7, seq=1), 1))
        assert results[0].r.relation == "R"
        assert results[0].s.relation == "S"

    def test_window_expiry_drops_old_state(self):
        joiner, results = make_joiner(side="R", window=5.0, period=1.0)
        joiner.on_envelope(env(KIND_STORE, r_tuple(0.0, 7), 0))
        joiner.on_envelope(env(KIND_JOIN, s_tuple(100.0, 7, seq=1), 1))
        assert results == []
        assert joiner.stored_tuples == 0

    def test_multiple_matches(self):
        joiner, results = make_joiner(side="R")
        for i in range(5):
            joiner.on_envelope(env(KIND_STORE, r_tuple(0.1 * i, 7, seq=i), i))
        joiner.on_envelope(env(KIND_JOIN, s_tuple(1.0, 7, seq=0), 5))
        assert len(results) == 5

    def test_stats_track_operations(self):
        joiner, _ = make_joiner(side="R")
        joiner.on_envelope(env(KIND_STORE, r_tuple(0.0, 7), 0))
        joiner.on_envelope(env(KIND_JOIN, s_tuple(1.0, 7, seq=1), 1))
        joiner.on_envelope(env(KIND_PUNCTUATION, None, 2))
        stats = joiner.stats
        assert stats.tuples_stored == 1
        assert stats.probes_processed == 1
        assert stats.results_emitted == 1
        assert stats.punctuations_received == 1
        assert stats.envelopes_received == 3

    def test_live_bytes_grow_with_state(self):
        joiner, _ = make_joiner(side="R")
        assert joiner.live_bytes == 0
        joiner.on_envelope(env(KIND_STORE, r_tuple(0.0, 7), 0))
        assert joiner.live_bytes > 0


class TestOrderedProcessing:
    def test_processing_deferred_until_punctuation(self):
        joiner, results = make_joiner(side="R", ordered=True)
        joiner.on_envelope(env(KIND_STORE, r_tuple(0.0, 7), 0))
        joiner.on_envelope(env(KIND_JOIN, s_tuple(1.0, 7, seq=1), 1))
        assert results == []  # buffered
        joiner.on_envelope(punct(2))
        assert len(results) == 1

    def test_reordered_arrival_fixed_by_protocol(self):
        """Store and probe arrive swapped (store counter < probe counter,
        but probe delivered first): the reorder buffer restores the
        global order, so the result is still produced."""
        joiner, results = make_joiner(side="R", ordered=True)
        joiner.register_router("router1")
        joiner.on_envelope(env(KIND_JOIN, s_tuple(1.0, 7, seq=1), 1,
                               router="router1"))
        joiner.on_envelope(env(KIND_STORE, r_tuple(0.0, 7), 0))
        # both routers must punctuate before release
        joiner.on_envelope(punct(5, router="router0"))
        joiner.on_envelope(punct(5, router="router1"))
        assert len(results) == 1

    def test_flush_releases_buffered(self):
        joiner, results = make_joiner(side="R", ordered=True)
        joiner.on_envelope(env(KIND_STORE, r_tuple(0.0, 7), 0))
        joiner.on_envelope(env(KIND_JOIN, s_tuple(1.0, 7, seq=1), 1))
        joiner.flush()
        assert len(results) == 1

    def test_unregister_router_processes_unblocked(self):
        joiner, results = make_joiner(side="R", ordered=True)
        joiner.register_router("router1")
        joiner.on_envelope(env(KIND_STORE, r_tuple(0.0, 7), 0))
        joiner.on_envelope(env(KIND_JOIN, s_tuple(1.0, 7, seq=1), 1))
        joiner.on_envelope(punct(5, router="router0"))
        assert results == []  # router1 never punctuated
        joiner.unregister_router("router1")
        assert len(results) == 1
