"""Tests for repro.core.router."""

from repro import EquiJoinPredicate, StreamTuple, TimeWindow
from repro.broker import Broker, ChannelLayer
from repro.core.ordering import KIND_JOIN, KIND_PUNCTUATION, KIND_STORE
from repro.core.router import Router, joiner_inbox
from repro.core.routing import HashRouting, JoinerGroup, RandomRouting
from repro.metrics import NetworkStats


def setup_router(routing="random", n_r=2, n_s=2):
    groups = {"R": JoinerGroup("R"), "S": JoinerGroup("S")}
    for i in range(n_r):
        groups["R"].add_unit(f"R{i}")
    for i in range(n_s):
        groups["S"].add_unit(f"S{i}")
    if routing == "hash":
        strategy = HashRouting(groups, EquiJoinPredicate("k", "k"),
                               TimeWindow(10.0), partitions=8)
    else:
        strategy = RandomRouting(groups)
    broker = Broker()
    channels = ChannelLayer(broker)
    inboxes = {}
    for uid in strategy.all_unit_ids():
        sink = []
        inboxes[uid] = sink
        channels.declare_destination(joiner_inbox(uid))
        channels.subscribe(joiner_inbox(uid), uid,
                           lambda d, s=sink: s.append(d.message.payload),
                           group=f"{uid}.group")
    stats = NetworkStats()
    router = Router("router0", strategy, channels, stats)
    return router, inboxes, stats


def r_tuple(ts, key, seq=0):
    return StreamTuple("R", ts, {"k": key}, seq=seq)


class TestCounters:
    def test_counter_increments_per_tuple(self):
        router, _, _ = setup_router()
        assert router.next_counter == 0
        router.route_tuple(r_tuple(0.0, 1), now=0.0)
        assert router.next_counter == 1
        router.route_tuple(r_tuple(0.1, 2), now=0.1)
        assert router.next_counter == 2

    def test_store_and_join_copies_share_counter(self):
        router, inboxes, _ = setup_router()
        router.route_tuple(r_tuple(0.0, 1), now=0.0)
        counters = {env.counter
                    for sink in inboxes.values() for env in sink}
        assert counters == {0}


class TestDispatch:
    def test_random_routing_broadcasts_join_stream(self):
        router, inboxes, _ = setup_router("random", n_r=2, n_s=3)
        router.route_tuple(r_tuple(0.0, 1), now=0.0)
        join_envs = [env for uid, sink in inboxes.items() if uid.startswith("S")
                     for env in sink]
        assert len(join_envs) == 3
        assert all(e.kind == KIND_JOIN for e in join_envs)

    def test_random_routing_stores_once(self):
        router, inboxes, _ = setup_router("random", n_r=2)
        router.route_tuple(r_tuple(0.0, 1), now=0.0)
        store_envs = [env for uid, sink in inboxes.items() if uid.startswith("R")
                      for env in sink]
        assert len(store_envs) == 1
        assert store_envs[0].kind == KIND_STORE

    def test_hash_routing_sends_exactly_two_messages(self):
        router, inboxes, stats = setup_router("hash")
        sent = router.route_tuple(r_tuple(0.0, 7), now=0.0)
        assert sent == 2
        assert stats.store_messages == 1
        assert stats.join_messages == 1

    def test_network_stats_accumulate_bytes(self):
        router, _, stats = setup_router("hash")
        router.route_tuple(r_tuple(0.0, 7), now=0.0)
        assert stats.bytes_sent > 0


class TestPunctuation:
    def test_punctuation_reaches_every_unit(self):
        router, inboxes, stats = setup_router("random", n_r=2, n_s=3)
        sent = router.emit_punctuation()
        assert sent == 5
        for sink in inboxes.values():
            assert len(sink) == 1
            assert sink[0].kind == KIND_PUNCTUATION

    def test_punctuation_carries_next_counter(self):
        router, inboxes, _ = setup_router()
        router.route_tuple(r_tuple(0.0, 1), now=0.0)
        router.emit_punctuation()
        punct = [env for sink in inboxes.values() for env in sink
                 if env.kind == KIND_PUNCTUATION][0]
        assert punct.counter == 1

    def test_punctuation_counted_in_stats(self):
        router, _, stats = setup_router()
        router.emit_punctuation()
        assert stats.punctuation_messages == 4


class TestRateStatistics:
    def test_input_rate_reflects_recent_tuples(self):
        router, _, _ = setup_router()
        for i in range(50):
            router.route_tuple(r_tuple(i * 0.1, i, seq=i), now=i * 0.1)
        rate = router.input_rate(now=5.0)
        assert 5.0 <= rate <= 15.0  # ~10 tuples/sec over the horizon

    def test_rate_decays_after_traffic_stops(self):
        router, _, _ = setup_router()
        for i in range(10):
            router.route_tuple(r_tuple(i * 0.1, i, seq=i), now=i * 0.1)
        assert router.input_rate(now=100.0) == 0.0
