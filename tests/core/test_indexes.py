"""Tests for repro.core.indexes (hash / sorted / brute-force probing)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import (
    BandJoinPredicate,
    ConjunctionPredicate,
    CrossPredicate,
    EquiJoinPredicate,
    StreamTuple,
    ThetaJoinPredicate,
)
from repro.core.indexes import (
    BruteForceIndex,
    HashIndex,
    SortedIndex,
    index_factory,
)
from repro.errors import IndexError_


def stored(side: str, ts: float, seq: int, **values) -> StreamTuple:
    return StreamTuple(side, ts, values, seq=seq)


def brute_probe(tuples, predicate, probe):
    """Oracle: evaluate the predicate by brute force."""
    out = []
    for t in tuples:
        if probe.relation == "R":
            ok = predicate.matches(probe, t)
        else:
            ok = predicate.matches(t, probe)
        if ok:
            out.append(t)
    return out


class TestBookkeeping:
    def test_rejects_wrong_relation(self):
        index = BruteForceIndex("S")
        with pytest.raises(IndexError_):
            index.insert(stored("R", 0.0, 0, k=1))

    def test_tracks_min_max_ts(self):
        index = BruteForceIndex("S")
        index.insert(stored("S", 5.0, 0, k=1))
        index.insert(stored("S", 2.0, 1, k=1))
        index.insert(stored("S", 9.0, 2, k=1))
        assert (index.min_ts, index.max_ts) == (2.0, 9.0)
        assert index.time_span() == 7.0

    def test_empty_index_span_zero(self):
        assert BruteForceIndex("S").time_span() == 0.0

    def test_len_and_bytes_grow(self):
        index = BruteForceIndex("S")
        assert len(index) == 0 and index.bytes == 0
        index.insert(stored("S", 0.0, 0, k=1))
        assert len(index) == 1 and index.bytes > 0


class TestHashIndex:
    def test_probe_finds_equal_keys_only(self):
        index = HashIndex("S", "k")
        for i in range(10):
            index.insert(stored("S", float(i), i, k=i % 3))
        pred = EquiJoinPredicate("k", "k")
        probe = stored("R", 10.0, 0, k=1)
        matches, comparisons = index.probe(pred, probe)
        assert all(m["k"] == 1 for m in matches)
        assert len(matches) == len([i for i in range(10) if i % 3 == 1])
        # bucket-limited comparisons, not a full scan
        assert comparisons == len(matches)

    def test_probe_missing_key_is_empty(self):
        index = HashIndex("S", "k")
        index.insert(stored("S", 0.0, 0, k=1))
        matches, comparisons = index.probe(
            EquiJoinPredicate("k", "k"), stored("R", 1.0, 0, k=99))
        assert matches == [] and comparisons == 0

    def test_conjunction_rechecks_residual_predicates(self):
        index = HashIndex("S", "k")
        index.insert(stored("S", 0.0, 0, k=1, v=10.0))
        index.insert(stored("S", 0.0, 1, k=1, v=50.0))
        pred = ConjunctionPredicate([
            EquiJoinPredicate("k", "k"),
            BandJoinPredicate("v", "v", band=5.0),
        ])
        matches, _ = index.probe(pred, stored("R", 1.0, 0, k=1, v=12.0))
        assert [m.seq for m in matches] == [0]

    def test_non_equi_predicate_falls_back_to_scan(self):
        index = HashIndex("S", "k")
        for i in range(5):
            index.insert(stored("S", 0.0, i, k=i))
        pred = ThetaJoinPredicate("k", "<", "k")
        matches, comparisons = index.probe(pred, stored("R", 1.0, 0, k=2))
        assert sorted(m["k"] for m in matches) == [3, 4]
        assert comparisons == 5

    def test_all_tuples_roundtrip(self):
        index = HashIndex("S", "k")
        for i in range(5):
            index.insert(stored("S", 0.0, i, k=i % 2))
        assert sorted(t.seq for t in index.all_tuples()) == list(range(5))


class TestSortedIndex:
    def _filled(self, values):
        index = SortedIndex("S", "v")
        for i, v in enumerate(values):
            index.insert(stored("S", 0.0, i, v=v))
        return index

    def test_band_probe_range(self):
        index = self._filled([0.0, 1.0, 2.0, 3.0, 4.0, 5.0])
        pred = BandJoinPredicate("v", "v", band=1.0)
        matches, comparisons = index.probe(pred, stored("R", 1.0, 0, v=2.5))
        assert sorted(m["v"] for m in matches) == [2.0, 3.0]
        assert comparisons == 2  # only the candidate range was touched

    def test_equi_probe_on_sorted(self):
        index = self._filled([1.0, 2.0, 2.0, 3.0])
        pred = EquiJoinPredicate("v", "v")
        matches, _ = index.probe(pred, stored("R", 1.0, 0, v=2.0))
        assert len(matches) == 2

    @pytest.mark.parametrize("op,probe_rel,value,expected", [
        ("<", "R", 2.0, [3.0, 4.0]),     # stored s > 2
        ("<=", "R", 2.0, [2.0, 3.0, 4.0]),
        (">", "R", 2.0, [0.0, 1.0]),     # stored s < 2
        (">=", "R", 2.0, [0.0, 1.0, 2.0]),
        ("<", "S", 2.0, [0.0, 1.0]),     # stored r < 2 (probe from S)
        (">", "S", 2.0, [3.0, 4.0]),     # stored r > 2
    ])
    def test_theta_probe_directions(self, op, probe_rel, value, expected):
        index = SortedIndex(("S" if probe_rel == "R" else "R"), "v")
        for i, v in enumerate([0.0, 1.0, 2.0, 3.0, 4.0]):
            index.insert(stored(index.stored_side, 0.0, i, v=v))
        pred = ThetaJoinPredicate("v", op, "v")
        matches, _ = index.probe(pred, stored(probe_rel, 1.0, 0, v=value))
        assert sorted(m["v"] for m in matches) == expected

    def test_not_equal_scans_all(self):
        index = self._filled([1.0, 2.0, 3.0])
        pred = ThetaJoinPredicate("v", "!=", "v")
        matches, comparisons = index.probe(pred, stored("R", 1.0, 0, v=2.0))
        assert sorted(m["v"] for m in matches) == [1.0, 3.0]
        assert comparisons == 3

    @given(st.lists(st.floats(min_value=-50, max_value=50), max_size=40),
           st.floats(min_value=-50, max_value=50),
           st.floats(min_value=0, max_value=20))
    def test_band_probe_matches_oracle(self, values, probe_value, band):
        index = self._filled(values)
        pred = BandJoinPredicate("v", "v", band=band)
        probe = stored("R", 1.0, 0, v=probe_value)
        matches, _ = index.probe(pred, probe)
        expected = brute_probe(list(index.all_tuples()), pred, probe)
        assert sorted(m.seq for m in matches) == sorted(m.seq for m in expected)

    @given(st.lists(st.integers(min_value=-20, max_value=20), max_size=30),
           st.integers(min_value=-20, max_value=20),
           st.sampled_from(["<", "<=", ">", ">=", "==", "!="]),
           st.sampled_from(["R", "S"]))
    def test_theta_probe_matches_oracle(self, values, probe_value, op, probe_rel):
        side = "S" if probe_rel == "R" else "R"
        index = SortedIndex(side, "v")
        for i, v in enumerate(values):
            index.insert(stored(side, 0.0, i, v=v))
        pred = ThetaJoinPredicate("v", op, "v")
        probe = stored(probe_rel, 1.0, 0, v=probe_value)
        matches, _ = index.probe(pred, probe)
        expected = brute_probe(list(index.all_tuples()), pred, probe)
        assert sorted(m.seq for m in matches) == sorted(m.seq for m in expected)


class TestIndexFactory:
    def test_equi_gets_hash_index(self):
        make = index_factory(EquiJoinPredicate("a", "b"), "S")
        assert isinstance(make(), HashIndex)

    def test_conjunction_with_equi_gets_hash_index(self):
        pred = ConjunctionPredicate([
            BandJoinPredicate("v", "v", band=1.0),
            EquiJoinPredicate("a", "b"),
        ])
        assert isinstance(index_factory(pred, "R")(), HashIndex)

    def test_band_gets_sorted_index(self):
        make = index_factory(BandJoinPredicate("a", "b", band=1.0), "S")
        assert isinstance(make(), SortedIndex)

    def test_theta_gets_sorted_index(self):
        make = index_factory(ThetaJoinPredicate("a", "<", "b"), "R")
        assert isinstance(make(), SortedIndex)

    def test_cross_gets_brute_force(self):
        make = index_factory(CrossPredicate(), "S")
        assert isinstance(make(), BruteForceIndex)

    def test_key_attr_matches_stored_side(self):
        pred = EquiJoinPredicate("a", "b")
        assert index_factory(pred, "R")().key_attr == "a"
        assert index_factory(pred, "S")().key_attr == "b"
