"""Pickle round-trip guards for the wire-path dataclasses.

The multiprocess runtime (:mod:`repro.parallel`) moves the protocol
types across process boundaries via pickle, and ``slots=True`` frozen
dataclasses have historically been a pickling trap (no ``__dict__``,
``__getstate__`` behaviour changed across Python versions).  These
tests pin the property independently of the parallel suite: every type
that may appear inside a wire frame must round-trip to an *equal*
object under every pickle protocol the codec might speak.
"""

import pickle

import pytest

from repro.broker.message import Delivery, Message
from repro.core.batching import EnvelopeBatch
from repro.core.ordering import KIND_JOIN, KIND_PUNCTUATION, KIND_STORE, Envelope
from repro.core.tuples import StreamTuple, make_result

PROTOCOLS = sorted({2, pickle.DEFAULT_PROTOCOL, pickle.HIGHEST_PROTOCOL})


def roundtrip(obj, protocol):
    return pickle.loads(pickle.dumps(obj, protocol=protocol))


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestWirePickle:
    def test_stream_tuple(self, protocol):
        t = StreamTuple(relation="R", ts=1.5, values={"k": 3, "v": "x"},
                        seq=42)
        clone = roundtrip(t, protocol)
        assert clone == t
        assert clone.ident == t.ident
        assert clone["k"] == 3

    def test_envelope_all_kinds(self, protocol):
        t = StreamTuple(relation="S", ts=2.0, values={"k": 1}, seq=7)
        for env in (
            Envelope(kind=KIND_STORE, router_id="router0", counter=3,
                     tuple=t),
            Envelope(kind=KIND_JOIN, router_id="router1", counter=4,
                     tuple=t),
            Envelope(kind=KIND_PUNCTUATION, router_id="router0", counter=9),
        ):
            clone = roundtrip(env, protocol)
            assert clone == env
            assert clone.order_key == env.order_key

    def test_envelope_batch(self, protocol):
        t = StreamTuple(relation="R", ts=0.5, values={"k": 2}, seq=1)
        batch = EnvelopeBatch((
            Envelope(kind=KIND_STORE, router_id="router0", counter=0,
                     tuple=t),
            Envelope(kind=KIND_JOIN, router_id="router0", counter=1,
                     tuple=t),
        ))
        clone = roundtrip(batch, protocol)
        assert list(clone) == list(batch)
        assert clone.tuple_count == batch.tuple_count

    def test_join_result(self, protocol):
        r = StreamTuple(relation="R", ts=1.0, values={"k": 5}, seq=0)
        s = StreamTuple(relation="S", ts=1.2, values={"k": 5}, seq=0)
        result = make_result(r, s, produced_at=1.3)
        clone = roundtrip(result, protocol)
        assert clone == result
        assert clone.key == result.key

    def test_broker_message_and_delivery(self, protocol):
        message = Message(routing_key="joiner.R0.inbox", payload={"x": 1},
                          sender="router0")
        delivery = Delivery(message=message, queue="q", consumer="R0",
                            time=3.0, tag=17, redelivered=True)
        clone = roundtrip(delivery, protocol)
        assert clone == delivery
        assert clone.message.payload == {"x": 1}
