"""Tests for repro.core.biclique (topology wiring and elastic scaling)."""

import pytest

from repro import (
    BandJoinPredicate,
    BicliqueConfig,
    BicliqueEngine,
    EquiJoinPredicate,
    TimeWindow,
    stream_from_pairs,
)
from repro.core.streams import merge_by_time
from repro.errors import ConfigurationError, ScalingError
from repro.harness import check_exactly_once, reference_join


def config(**overrides) -> BicliqueConfig:
    defaults = dict(window=TimeWindow(seconds=10.0), r_joiners=2, s_joiners=2,
                    routers=1, archive_period=2.0, punctuation_interval=0.5)
    defaults.update(overrides)
    return BicliqueConfig(**defaults)


def streams(n=40, keys=5):
    r = stream_from_pairs("R", [(i * 0.3, {"k": i % keys, "v": float(i)})
                                for i in range(n)])
    s = stream_from_pairs("S", [(i * 0.35, {"k": i % keys, "v": float(i)})
                                for i in range(n)])
    return r, s


def run_engine(engine, r, s):
    for t in merge_by_time(r, s):
        engine.ingest(t)
    engine.finish()


class TestConfigValidation:
    def test_needs_joiners_on_both_sides(self):
        with pytest.raises(ConfigurationError):
            config(r_joiners=0)

    def test_needs_a_router(self):
        with pytest.raises(ConfigurationError):
            config(routers=0)

    def test_unknown_routing_mode(self):
        with pytest.raises(ConfigurationError):
            config(routing="clever")

    def test_subgroups_cannot_exceed_joiners(self):
        with pytest.raises(ConfigurationError):
            config(r_joiners=2, r_subgroups=3)

    def test_punctuation_interval_positive(self):
        with pytest.raises(ConfigurationError):
            config(punctuation_interval=0.0)


class TestTopology:
    def test_unit_naming(self):
        engine = BicliqueEngine(config(r_joiners=2, s_joiners=3),
                                EquiJoinPredicate("k", "k"))
        assert engine.unit_ids("R") == ["R0", "R1"]
        assert engine.unit_ids("S") == ["S0", "S1", "S2"]
        assert len(engine.unit_ids()) == 5

    def test_auto_routing_picks_hash_for_equi(self):
        engine = BicliqueEngine(config(), EquiJoinPredicate("k", "k"))
        assert engine.routing_mode == "hash"

    def test_auto_routing_picks_random_for_band(self):
        engine = BicliqueEngine(config(), BandJoinPredicate("v", "v", 1.0))
        assert engine.routing_mode == "random"

    def test_explicit_routing_respected(self):
        engine = BicliqueEngine(config(routing="random"),
                                EquiJoinPredicate("k", "k"))
        assert engine.routing_mode == "random"

    def test_broker_queues_exist_per_joiner(self):
        engine = BicliqueEngine(config(), EquiJoinPredicate("k", "k"))
        names = engine.broker.queue_names()
        assert any("R0" in n for n in names)
        assert any("S1" in n for n in names)


class TestCorrectness:
    @pytest.mark.parametrize("routing", ["hash", "random"])
    def test_exactly_once_results(self, routing):
        pred = EquiJoinPredicate("k", "k")
        engine = BicliqueEngine(config(routing=routing), pred)
        r, s = streams()
        run_engine(engine, r, s)
        expected = reference_join(r, s, pred, TimeWindow(seconds=10.0))
        assert check_exactly_once(engine.results, expected).ok

    def test_multiple_routers_still_exact(self):
        pred = EquiJoinPredicate("k", "k")
        engine = BicliqueEngine(config(routers=3, expiry_slack=2.0), pred)
        r, s = streams()
        run_engine(engine, r, s)
        expected = reference_join(r, s, pred, TimeWindow(seconds=10.0))
        assert check_exactly_once(engine.results, expected).ok

    def test_memory_snapshot_counts_all_units(self):
        engine = BicliqueEngine(config(), EquiJoinPredicate("k", "k"))
        r, s = streams()
        run_engine(engine, r, s)
        snap = engine.memory_snapshot()
        assert set(snap.per_unit_live_bytes) == set(engine.unit_ids())
        assert snap.total_live_bytes > 0


class TestScaling:
    def test_scale_out_adds_units(self):
        engine = BicliqueEngine(config(), EquiJoinPredicate("k", "k"))
        new = engine.scale_out("R", 2, now=1.0)
        assert new == ["R2", "R3"]
        assert len(engine.groups["R"].active_units()) == 4

    def test_scale_out_requires_positive_count(self):
        engine = BicliqueEngine(config(), EquiJoinPredicate("k", "k"))
        with pytest.raises(ScalingError):
            engine.scale_out("R", 0)

    def test_scale_in_marks_draining(self):
        engine = BicliqueEngine(config(), EquiJoinPredicate("k", "k"))
        unit = engine.scale_in("R", now=0.0)
        assert unit == "R1"
        assert engine.groups["R"].active_units() == ["R0"]
        assert unit in engine.joiners  # still present until drained

    def test_scale_in_refuses_last_unit(self):
        engine = BicliqueEngine(config(r_joiners=1), EquiJoinPredicate("k", "k"))
        with pytest.raises(ScalingError):
            engine.scale_in("R")

    def test_reap_removes_only_after_window(self):
        engine = BicliqueEngine(config(), EquiJoinPredicate("k", "k"))
        engine.scale_in("R", now=0.0)
        assert engine.reap_drained(now=5.0) == []
        assert engine.reap_drained(now=11.0) == ["R1"]
        assert "R1" not in engine.joiners
        assert not any("R1" in n for n in engine.broker.queue_names())

    def test_results_exact_across_scale_out(self):
        pred = EquiJoinPredicate("k", "k")
        engine = BicliqueEngine(config(routing="hash"), pred)
        r, s = streams(n=60)
        arrivals = list(merge_by_time(r, s))
        half = len(arrivals) // 2
        for t in arrivals[:half]:
            engine.ingest(t)
        engine.scale_out("R", 1, now=arrivals[half].ts)
        engine.scale_out("S", 1, now=arrivals[half].ts)
        for t in arrivals[half:]:
            engine.ingest(t)
        engine.finish()
        expected = reference_join(r, s, pred, TimeWindow(seconds=10.0))
        assert check_exactly_once(engine.results, expected).ok

    def test_results_exact_across_scale_in(self):
        pred = EquiJoinPredicate("k", "k")
        engine = BicliqueEngine(config(routing="hash", r_joiners=3), pred)
        r, s = streams(n=60)
        arrivals = list(merge_by_time(r, s))
        third = len(arrivals) // 3
        for t in arrivals[:third]:
            engine.ingest(t)
        engine.scale_in("R", now=arrivals[third].ts)
        for t in arrivals[third:2 * third]:
            engine.ingest(t)
        engine.reap_drained(now=arrivals[2 * third].ts)
        for t in arrivals[2 * third:]:
            engine.ingest(t)
        engine.finish()
        expected = reference_join(r, s, pred, TimeWindow(seconds=10.0))
        assert check_exactly_once(engine.results, expected).ok

    def test_random_routing_scale_events_exact(self):
        pred = BandJoinPredicate("v", "v", 2.0)
        engine = BicliqueEngine(config(routing="random", s_joiners=3), pred)
        r, s = streams(n=60)
        arrivals = list(merge_by_time(r, s))
        half = len(arrivals) // 2
        for t in arrivals[:half]:
            engine.ingest(t)
        engine.scale_out("R", 1, now=arrivals[half].ts)
        engine.scale_in("S", now=arrivals[half].ts)
        for t in arrivals[half:]:
            engine.ingest(t)
        engine.finish()
        expected = reference_join(r, s, pred, TimeWindow(seconds=10.0))
        assert check_exactly_once(engine.results, expected).ok
