"""Tests for dynamic router-pool scaling (thesis §4.3)."""

import pytest

from repro import (
    BicliqueConfig,
    BicliqueEngine,
    EquiJoinPredicate,
    TimeWindow,
    merge_by_time,
    stream_from_pairs,
)
from repro.errors import ScalingError
from repro.harness import check_exactly_once, reference_join

WINDOW = TimeWindow(seconds=10.0)
PREDICATE = EquiJoinPredicate("k", "k")


def build(routers=1):
    return BicliqueEngine(
        BicliqueConfig(window=WINDOW, r_joiners=2, s_joiners=2,
                       routers=routers, routing="hash", archive_period=2.0,
                       punctuation_interval=0.5, expiry_slack=3.0),
        PREDICATE)


def streams(n=50):
    r = stream_from_pairs("R", [(i * 0.3, {"k": i % 6}) for i in range(n)])
    s = stream_from_pairs("S", [(i * 0.35, {"k": i % 6}) for i in range(n)])
    return r, s


class TestRouterScaling:
    def test_scale_out_adds_competing_routers(self):
        engine = build(routers=1)
        engine.scale_routers(3)
        assert len(engine.routers) == 3
        r, s = streams()
        for t in merge_by_time(r, s):
            engine.ingest(t)
        # competing consumers: every router ingested a share
        shares = [router.stats.tuples_ingested for router in engine.routers]
        assert all(share > 0 for share in shares)
        assert sum(shares) == len(r) + len(s)

    def test_scale_in_rejects_empty_pool(self):
        engine = build(routers=2)
        with pytest.raises(ScalingError):
            engine.scale_routers(0)

    def test_router_ids_never_reused(self):
        engine = build(routers=2)
        engine.scale_routers(1)
        engine.scale_routers(2)
        ids = [router.router_id for router in engine.routers]
        assert ids == ["router0", "router2"]

    def test_results_exact_across_router_scale_out(self):
        engine = build(routers=1)
        r, s = streams()
        arrivals = list(merge_by_time(r, s))
        half = len(arrivals) // 2
        for t in arrivals[:half]:
            engine.ingest(t)
        engine.scale_routers(3)
        for t in arrivals[half:]:
            engine.ingest(t)
        engine.finish()
        expected = reference_join(r, s, PREDICATE, WINDOW)
        assert check_exactly_once(engine.results, expected).ok

    def test_results_exact_across_router_scale_in(self):
        engine = build(routers=3)
        r, s = streams()
        arrivals = list(merge_by_time(r, s))
        half = len(arrivals) // 2
        for t in arrivals[:half]:
            engine.ingest(t)
        engine.scale_routers(1)
        for t in arrivals[half:]:
            engine.ingest(t)
        engine.finish()
        expected = reference_join(r, s, PREDICATE, WINDOW)
        assert check_exactly_once(engine.results, expected).ok

    def test_scale_in_unblocks_watermark(self):
        """A removed router must not hold the joiners' watermark back:
        its final punctuation and unregistration release buffered work."""
        engine = build(routers=2)
        r, s = streams(n=10)
        for t in merge_by_time(r, s):
            engine.ingest(t)
        # some envelopes are typically still buffered behind punctuation
        engine.scale_routers(1)
        engine.punctuate_all()
        pending = sum(j.reorder.pending for j in engine.joiners.values())
        assert pending == 0

    def test_joiner_reorder_registration_follows_pool(self):
        engine = build(routers=2)
        engine.scale_routers(3)
        for joiner in engine.joiners.values():
            assert joiner.reorder.registered_routers == [
                "router0", "router1", "router2"]
        engine.scale_routers(1)
        for joiner in engine.joiners.values():
            assert joiner.reorder.registered_routers == ["router0"]
