"""Tests for repro.overload.credits (credit-based flow control)."""

import pytest

from repro.errors import ConfigurationError
from repro.overload import CreditController


class TestBalances:
    def test_units_start_at_limit(self):
        flow = CreditController(4)
        flow.register("R0")
        assert flow.available("R0") == 4
        assert not flow.exhausted()

    def test_acquire_and_grant_round_trip(self):
        flow = CreditController(2)
        flow.register("R0")
        flow.acquire("R0")
        flow.acquire("R0")
        assert flow.exhausted()
        flow.grant("R0")
        assert not flow.exhausted()
        assert flow.available("R0") == 1

    def test_untracked_units_are_transparent(self):
        flow = CreditController(2)
        flow.acquire("ghost")  # no-op: never registered
        flow.grant("ghost")
        assert flow.acquires == 0 and flow.grants == 0

    def test_balance_may_go_negative_for_multicast(self):
        flow = CreditController(1)
        flow.register("R0")
        flow.acquire("R0")
        flow.acquire("R0")  # admitted multicast completes atomically
        assert flow.available("R0") == -1
        flow.grant("R0")
        assert flow.exhausted()  # still at 0: one grant is not enough

    def test_grant_caps_at_limit(self):
        flow = CreditController(3)
        flow.register("R0")
        flow.grant("R0")
        assert flow.available("R0") == 3

    def test_pool_exhausts_on_any_unit(self):
        flow = CreditController(1)
        flow.register("R0")
        flow.register("R1")
        flow.acquire("R0")
        assert flow.exhausted()  # R1 still has credit, pool still parks
        assert flow.min_available() == 0

    def test_stall_counts_transitions_not_acquires(self):
        flow = CreditController(1)
        flow.register("R0")
        flow.acquire("R0")
        flow.acquire("R0")
        assert flow.stalls == 1

    def test_rejects_non_positive_limit(self):
        with pytest.raises(ConfigurationError):
            CreditController(0)


class TestMembership:
    def test_reregistration_keeps_balance(self):
        """A restarted joiner inherits its predecessor's outstanding
        envelopes — its balance must not snap back to the limit."""
        flow = CreditController(4)
        flow.register("R0")
        flow.acquire("R0")
        flow.register("R0")
        assert flow.available("R0") == 3

    def test_unregister_frees_the_gate(self):
        flow = CreditController(1)
        flow.register("R0")
        flow.acquire("R0")
        assert flow.exhausted()
        flow.unregister("R0")
        assert not flow.exhausted()


class TestWaiters:
    def test_waiter_fires_on_grant(self):
        flow = CreditController(1)
        flow.register("R0")
        flow.acquire("R0")
        fired = []
        flow.add_waiter(lambda: fired.append(True))
        flow.grant("R0")
        assert fired == [True]

    def test_waiter_not_woken_while_exhausted(self):
        flow = CreditController(1)
        flow.register("R0")
        flow.register("R1")
        flow.acquire("R0")
        flow.acquire("R1")
        fired = []
        flow.add_waiter(lambda: fired.append(True))
        flow.grant("R0")  # R1 still dry: no wake
        assert fired == []
        flow.grant("R1")
        assert fired == [True]

    def test_scheduler_deduplicates_wakes(self):
        scheduled = []
        flow = CreditController(2, scheduler=scheduled.append)
        flow.register("R0")
        flow.acquire("R0")
        flow.add_waiter(lambda: None)
        flow.grant("R0")
        flow.grant("R0")  # second grant: wake already pending
        assert len(scheduled) == 1

    def test_idle_controller_schedules_nothing(self):
        """No waiters -> no scheduler events: the non-perturbation
        property the differential test relies on."""
        scheduled = []
        flow = CreditController(2, scheduler=scheduled.append)
        flow.register("R0")
        for _ in range(10):
            flow.acquire("R0")
            flow.grant("R0")
        assert scheduled == []

    def test_unregister_wakes_waiters(self):
        flow = CreditController(1)
        flow.register("R0")
        flow.acquire("R0")
        fired = []
        flow.add_waiter(lambda: fired.append(True))
        flow.unregister("R0")
        assert fired == [True]
