"""Tests for repro.overload.accounting (the shed ledger)."""

from repro.overload import ShedAccounting, SideLedger


class TestSideLedger:
    def test_reconciles_when_columns_add_up(self):
        ledger = SideLedger(offered=10, admitted=7, shed=3)
        assert ledger.reconciled
        assert ledger.recall_loss == 0.3

    def test_detects_unaccounted_loss(self):
        assert not SideLedger(offered=10, admitted=7, shed=2).reconciled

    def test_empty_side_has_zero_recall_loss(self):
        assert SideLedger().recall_loss == 0.0


class TestShedAccounting:
    def test_offered_equals_admitted_plus_shed(self):
        acc = ShedAccounting()
        for _ in range(5):
            acc.record_offered("R")
        for _ in range(3):
            acc.record_admitted("R")
        for _ in range(2):
            acc.record_shed("R", "admission")
        assert acc.reconciled
        assert acc.offered == 5 and acc.admitted == 3 and acc.shed == 2
        assert acc.sheds_by_reason == {"admission": 2}

    def test_sides_are_independent(self):
        acc = ShedAccounting()
        acc.record_offered("R")
        acc.record_admitted("R")
        acc.record_offered("S")
        acc.record_shed("S", "admission")
        assert acc.sides["R"].recall_loss == 0.0
        assert acc.sides["S"].recall_loss == 1.0
        assert acc.reconciled

    def test_post_admission_shed_keeps_invariant(self):
        """A park-evicted tuple was admitted first; shedding it later
        must move it between columns, not double-count it."""
        acc = ShedAccounting()
        acc.record_offered("R")
        acc.record_admitted("R")
        assert acc.reconciled
        acc.record_shed("R", "park-evict", after_admission=True)
        assert acc.reconciled
        assert acc.admitted == 0 and acc.shed == 1 and acc.offered == 1

    def test_delay_aggregates(self):
        acc = ShedAccounting()
        acc.record_offered("R")
        acc.record_admitted("R", delay=0.0)  # no delay: not counted
        acc.record_offered("R")
        acc.record_admitted("R", delay=0.4)
        acc.record_offered("R")
        acc.record_admitted("R", delay=0.2)
        assert acc.admitted_delayed == 2
        assert acc.max_admission_delay == 0.4
        assert abs(acc.mean_admission_delay - 0.3) < 1e-12

    def test_deferral_counter(self):
        acc = ShedAccounting()
        acc.record_deferral()
        acc.record_deferral()
        assert acc.deferrals == 2
