"""Tests for repro.overload.policies (admission verdicts)."""

import pytest

from repro.core.tuples import StreamTuple
from repro.errors import ConfigurationError
from repro.overload import (
    ADMIT,
    DEFER,
    POLICY_NAMES,
    SHED,
    BlockProducerPolicy,
    DropOldestPolicy,
    DropTailPolicy,
    SemanticSheddingPolicy,
    make_policy,
)
from repro.simulation import SeededRng


def t(value: float = 0.0) -> StreamTuple:
    return StreamTuple("R", 0.0, {"k": 1, "v": value}, seq=0)


RNG = SeededRng(5, "policy-test")


class TestBlockProducer:
    def test_admits_below_capacity(self):
        assert BlockProducerPolicy().decide(t(), 0.99, RNG) == ADMIT

    def test_defers_at_capacity(self):
        assert BlockProducerPolicy().decide(t(), 1.0, RNG) == DEFER

    def test_never_sheds(self):
        policy = BlockProducerPolicy()
        for severity in (0.0, 0.5, 1.0, 2.0):
            assert policy.decide(t(), severity, RNG) != SHED


class TestDropTail:
    def test_admits_below_capacity(self):
        assert DropTailPolicy().decide(t(), 0.5, RNG) == ADMIT

    def test_sheds_at_capacity(self):
        assert DropTailPolicy().decide(t(), 1.0, RNG) == SHED


class TestDropOldest:
    def test_always_admits(self):
        policy = DropOldestPolicy()
        for severity in (0.0, 1.0, 5.0):
            assert policy.decide(t(), severity, RNG) == ADMIT

    def test_signals_park_eviction(self):
        assert DropOldestPolicy().evicts_parked
        assert not DropTailPolicy().evicts_parked


class TestSemantic:
    def test_admits_below_watermark(self):
        policy = SemanticSheddingPolicy(low_watermark=0.5)
        rng = SeededRng(1, "sem")
        assert all(policy.decide(t(), 0.5, rng) == ADMIT for _ in range(50))

    def test_sheds_probabilistically_above_watermark(self):
        policy = SemanticSheddingPolicy(low_watermark=0.5)
        rng = SeededRng(1, "sem")
        verdicts = [policy.decide(t(), 0.8, rng) for _ in range(200)]
        assert verdicts.count(SHED) > 0
        assert verdicts.count(ADMIT) > 0  # not a hard cut-off

    def test_high_value_tuples_survive(self):
        policy = SemanticSheddingPolicy(
            low_watermark=0.0, value_fn=lambda tup: tup["v"])
        rng = SeededRng(2, "sem")
        precious = [policy.decide(t(1.0), 0.9, rng) for _ in range(100)]
        worthless = [policy.decide(t(0.0), 0.9, rng) for _ in range(100)]
        assert precious.count(SHED) == 0
        assert worthless.count(SHED) > 50

    def test_full_queue_defers_when_not_shedding(self):
        """The block backstop: a full queue never admits."""
        policy = SemanticSheddingPolicy(
            low_watermark=0.5, value_fn=lambda tup: 1.0)
        rng = SeededRng(3, "sem")
        assert all(policy.decide(t(), 1.2, rng) == DEFER for _ in range(20))

    def test_value_clamped_to_unit_interval(self):
        policy = SemanticSheddingPolicy(value_fn=lambda tup: 7.5)
        assert policy.value(t()) == 1.0
        policy = SemanticSheddingPolicy(value_fn=lambda tup: -3.0)
        assert policy.value(t()) == 0.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            SemanticSheddingPolicy(low_watermark=1.0)
        with pytest.raises(ConfigurationError):
            SemanticSheddingPolicy(max_probability=1.5)


class TestMakePolicy:
    def test_all_registered_names_construct(self):
        for name in POLICY_NAMES:
            assert make_policy(name).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy("fifo")
