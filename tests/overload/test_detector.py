"""Tests for repro.overload.detector (straggler detection)."""

import pytest

from repro.errors import ConfigurationError
from repro.overload import StragglerConfig, StragglerDetector


def feed(detector, unit, samples, *, backlog):
    """Feed (now, arrived_total, serviced_total) samples for one unit."""
    for now, arrived, serviced in samples:
        detector.observe(unit, now, arrived, serviced, backlog)


class TestDetection:
    def test_healthy_unit_not_flagged(self):
        det = StragglerDetector()
        feed(det, "R0", [(i, 10 * i, 10 * i) for i in range(6)], backlog=0)
        assert not det.is_straggler("R0")

    def test_lagging_unit_flagged(self):
        det = StragglerDetector(StragglerConfig(min_backlog=8))
        # Arrivals at 10/s, service at 4/s, backlog well above the floor.
        feed(det, "R0", [(i, 10 * i, 4 * i) for i in range(6)], backlog=40)
        assert det.is_straggler("R0")
        assert det.hot_units() == frozenset({"R0"})
        assert det.flagged_total == 1

    def test_recovered_unit_unflagged(self):
        det = StragglerDetector(StragglerConfig(alpha=1.0, min_backlog=8))
        feed(det, "R0", [(i, 10 * i, 4 * i) for i in range(4)], backlog=40)
        assert det.is_straggler("R0")
        # Service catches up and the backlog drains.
        feed(det, "R0", [(4 + i, 40 + 10 * i, 16 + 12 * i)
                         for i in range(1, 4)], backlog=2)
        assert not det.is_straggler("R0")
        assert det.flagged_total == 1  # transitions, not ticks

    def test_small_backlog_never_flags(self):
        """An idle or nearly-idle unit must not be called a straggler
        even if its (noise-level) rates look lagging."""
        det = StragglerDetector(StragglerConfig(min_backlog=8))
        feed(det, "R0", [(i, 2 * i, i) for i in range(6)], backlog=3)
        assert not det.is_straggler("R0")

    def test_first_sample_only_primes(self):
        det = StragglerDetector()
        det.observe("R0", 0.0, 100, 0, backlog=100)
        assert det.arrival_rate("R0") == 0.0
        assert not det.is_straggler("R0")

    def test_rates_are_per_second_ewma(self):
        det = StragglerDetector(StragglerConfig(alpha=1.0))
        feed(det, "R0", [(0.0, 0, 0), (2.0, 30, 10)], backlog=20)
        assert det.arrival_rate("R0") == pytest.approx(15.0)
        assert det.service_rate("R0") == pytest.approx(5.0)

    def test_forget_clears_state(self):
        det = StragglerDetector(StragglerConfig(min_backlog=8))
        feed(det, "R0", [(i, 10 * i, 4 * i) for i in range(6)], backlog=40)
        det.forget("R0")
        assert not det.is_straggler("R0")
        assert det.arrival_rate("R0") == 0.0


class TestConfigValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            StragglerConfig(alpha=0.0)
        with pytest.raises(ConfigurationError):
            StragglerConfig(ratio=1.5)
        with pytest.raises(ConfigurationError):
            StragglerConfig(min_backlog=0)
