"""End-to-end backpressure and load-shedding on the simulated cluster.

One overloaded workload (offered rate ~2.5x the joiners' service
capacity), run under every admission policy plus an unprotected
baseline.  The assertions are the acceptance criteria of the overload
subsystem: bounded queues under backpressure, unbounded growth without
it, exact ``offered == admitted + shed`` reconciliation, and the
block-vs-shed latency/quality trade-off.
"""

import pytest

from repro import BicliqueConfig, EquiJoinPredicate, TimeWindow, merge_by_time
from repro.cluster import SimulatedCluster
from repro.cluster.resources import CostModel
from repro.cluster.runtime import ClusterConfig
from repro.overload import OverloadConfig
from repro.workloads import ConstantRate, EquiJoinWorkload, UniformKeys

PREDICATE = EquiJoinPredicate("k", "k")
RATE = 80.0
DURATION = 5.0
ENTRY_BOUND = 64


def run_cluster(policy=None):
    workload = EquiJoinWorkload(keys=UniformKeys(16), seed=3)
    r, s = workload.materialise(ConstantRate(RATE), DURATION)
    arrivals = list(merge_by_time(r, s))
    overload = None if policy is None else OverloadConfig(
        policy=policy, entry_queue_depth=ENTRY_BOUND,
        joiner_queue_depth=ENTRY_BOUND, credits_per_joiner=32)
    cluster = SimulatedCluster(
        BicliqueConfig(window=TimeWindow(2.0), r_joiners=2, s_joiners=2,
                       routing="random", punctuation_interval=0.2),
        PREDICATE,
        ClusterConfig(cost_model=CostModel().scaled(550.0)),
        overload=overload)
    report = cluster.run(iter(arrivals), DURATION)
    return cluster, report


@pytest.fixture(scope="module")
def baseline():
    return run_cluster(None)


@pytest.fixture(scope="module")
def block():
    return run_cluster("block")


@pytest.fixture(scope="module")
def drop_tail():
    return run_cluster("drop-tail")


@pytest.fixture(scope="module")
def drop_oldest():
    return run_cluster("drop-oldest")


@pytest.fixture(scope="module")
def semantic():
    return run_cluster("semantic")


def entry_peak(cluster):
    return cluster.overload.peak_entry_depth


def max_joiner_peak(cluster):
    return max(q.peak_depth for name, q in cluster.broker._queues.items()
               if name.startswith("joiner."))


class TestUnprotectedBaseline:
    def test_joiner_inboxes_grow_without_bound(self, baseline):
        """Offered load lands unchecked in the joiner inboxes: their
        occupancy grows far past what any bounded run tolerates."""
        cluster, report = baseline
        assert max_joiner_peak(cluster) > 150
        assert report.overload is None


class TestBlockPolicy:
    def test_bounds_entry_depth(self, block):
        cluster, _ = block
        assert entry_peak(cluster) <= ENTRY_BOUND

    def test_credits_bound_joiner_inboxes(self, block):
        """Each joiner's outstanding envelopes stay near its credit
        budget (32) instead of the baseline's unbounded growth."""
        cluster, _ = block
        assert max_joiner_peak(cluster) <= 2 * 32

    def test_lossless(self, block):
        _, report = block
        o = report.overload
        assert o.total_shed == 0
        assert o.reconciled
        assert sum(o.admitted.values()) == o.total_offered

    def test_backpressure_surfaces_as_admission_delay(self, block):
        _, report = block
        o = report.overload
        assert o.deferrals > 0
        assert o.max_admission_delay > 0.0
        assert o.mean_admission_delay > 0.0

    def test_credits_actually_stalled_routing(self, block):
        _, report = block
        assert report.overload.credit_stalls > 0
        assert report.overload.parks > 0


class TestDropTailPolicy:
    def test_bounds_entry_depth(self, drop_tail):
        cluster, _ = drop_tail
        assert entry_peak(cluster) <= ENTRY_BOUND

    def test_sheds_and_reconciles(self, drop_tail):
        _, report = drop_tail
        o = report.overload
        assert o.total_shed > 0
        assert o.reconciled
        assert o.sheds_by_reason.get("admission", 0) == o.total_shed

    def test_no_admission_delay(self, drop_tail):
        """Drop-tail trades recall for latency: the producer is never
        blocked, unlike the block policy."""
        _, report = drop_tail
        assert report.overload.deferrals == 0
        assert report.overload.max_admission_delay == 0.0

    def test_recall_loss_reported_per_side(self, drop_tail):
        _, report = drop_tail
        o = report.overload
        for side in ("R", "S"):
            assert o.recall_loss[side] == pytest.approx(
                o.shed[side] / o.offered[side])
            assert 0.0 < o.recall_loss[side] < 1.0


class TestDropOldestPolicy:
    def test_admits_everything_then_evicts_parked(self, drop_oldest):
        _, report = drop_oldest
        o = report.overload
        assert o.park_evictions > 0
        assert o.sheds_by_reason.get("park-evict", 0) == o.park_evictions

    def test_reconciles_despite_post_admission_sheds(self, drop_oldest):
        _, report = drop_oldest
        o = report.overload
        assert o.reconciled
        assert o.total_shed == o.park_evictions


class TestSemanticPolicy:
    def test_sheds_and_reconciles(self, semantic):
        _, report = semantic
        o = report.overload
        assert o.total_shed > 0
        assert o.reconciled


class TestTradeOff:
    def test_block_keeps_more_results_than_shedding(self, block, drop_tail):
        """The quality side of the trade-off: lossless backpressure
        out-joins drop-tail on the same offered load."""
        _, block_report = block
        _, shed_report = drop_tail
        assert block_report.results > shed_report.results

    def test_shedding_avoids_the_blocking_delay(self, block, drop_tail):
        """...and the latency side: shedding never stalls the source."""
        _, block_report = block
        _, shed_report = drop_tail
        assert block_report.overload.max_admission_delay \
            > shed_report.overload.max_admission_delay
