"""Tests for repro.overload.manager wiring glue and the hot-unit
routing filter (the straggler signal's two consumers)."""

import pytest

from repro.broker import Broker
from repro.core.routing import JoinerGroup, RandomRouting
from repro.core.tuples import StreamTuple
from repro.errors import ConfigurationError
from repro.overload import OverloadConfig, OverloadManager


def t(relation="R", ts=0.0):
    return StreamTuple(relation, ts, {"k": 1}, seq=0)


class DummyJoiner:
    def __init__(self, unit_id, inbox_queue):
        self.unit_id = unit_id
        self.inbox_queue = inbox_queue
        self.credit_grant = None


def make_manager(**overrides):
    broker = Broker()
    config = OverloadConfig(**{"policy": "block", "entry_queue_depth": 4,
                               "joiner_queue_depth": 8, **overrides})
    return OverloadManager(config, broker), broker


class TestConfigValidation:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            OverloadConfig(entry_queue_depth=0)
        with pytest.raises(ConfigurationError):
            OverloadConfig(credits_per_joiner=0)
        with pytest.raises(ConfigurationError):
            OverloadConfig(admission_retry=0.0)
        with pytest.raises(ConfigurationError):
            OverloadConfig(policy="nope")


class TestSeverity:
    def test_severity_tracks_entry_occupancy(self):
        manager, broker = make_manager()
        manager.attach_entry("entry")
        queue = broker.declare_queue("entry")
        assert queue.max_depth == 4
        assert manager.severity() == 0.0
        queue.in_flight = 2
        assert manager.severity() == pytest.approx(0.5)
        queue.in_flight = 4
        assert manager.severity() == pytest.approx(1.0)

    def test_no_entry_queue_means_no_pressure(self):
        manager, _ = make_manager()
        assert manager.severity() == 0.0


class TestInboxTracking:
    def test_mean_inbox_depth_filters_by_side(self):
        manager, broker = make_manager()
        for unit in ("R0", "R1", "S0"):
            manager.attach_inbox(unit, f"joiner.{unit}.inbox.{unit}.group")
        depths = {"R0": 4, "R1": 2, "S0": 10}
        for unit, depth in depths.items():
            broker.declare_queue(
                f"joiner.{unit}.inbox.{unit}.group").in_flight = depth
        assert manager.mean_inbox_depth("R") == pytest.approx(3.0)
        assert manager.mean_inbox_depth("S") == pytest.approx(10.0)
        assert manager.mean_inbox_depth() == pytest.approx(16 / 3)

    def test_detach_joiner_accumulates_peak(self):
        manager, broker = make_manager()
        joiner = DummyJoiner("R0", "joiner.R0.inbox.R0.group")
        manager.attach_joiner(joiner)
        queue = broker.declare_queue("joiner.R0.inbox.R0.group")
        queue.in_flight = 6
        queue.note_depth()
        manager.detach_joiner("R0")
        assert manager.peak_joiner_depth == 6


class TestCreditWiring:
    def test_attach_joiner_installs_grant_hook(self):
        manager, _ = make_manager()
        joiner = DummyJoiner("R0", "joiner.R0.inbox.R0.group")
        manager.attach_joiner(joiner)
        assert manager.credits.available("R0") \
            == manager.config.credits_per_joiner
        joiner.credit_grant()  # must route back into the controller
        assert manager.credits.grants == 1

    def test_attach_joiner_without_inbox_rejected(self):
        manager, _ = make_manager()
        with pytest.raises(ConfigurationError):
            manager.attach_joiner(DummyJoiner("R0", None))


class TestHotUnitRoutingFilter:
    def make_routing(self):
        groups = {"R": JoinerGroup("R"), "S": JoinerGroup("S")}
        for side in ("R", "S"):
            for i in range(3):
                groups[side].add_unit(f"{side}{i}")
        return RandomRouting(groups)

    def test_store_placement_avoids_hot_units(self):
        routing = self.make_routing()
        routing.hot_filter = lambda: frozenset({"R1"})
        picks = {routing.store_targets(t("R"), 0.0)[0] for _ in range(12)}
        assert "R1" not in picks
        assert picks == {"R0", "R2"}
        assert routing.hot_avoided > 0

    def test_join_broadcast_never_filtered(self):
        """Probes are correctness-critical: a hot unit still holds
        stored state that must be probed."""
        routing = self.make_routing()
        routing.hot_filter = lambda: frozenset({"S0", "S1", "S2"})
        assert routing.join_targets(t("R"), 0.0) == ["S0", "S1", "S2"]

    def test_all_hot_falls_back_to_normal_rotation(self):
        routing = self.make_routing()
        routing.hot_filter = lambda: frozenset({"R0", "R1", "R2"})
        picks = [routing.store_targets(t("R"), 0.0)[0] for _ in range(6)]
        assert picks == ["R0", "R1", "R2", "R0", "R1", "R2"]
        assert routing.hot_avoided == 0

    def test_no_filter_is_pure_round_robin(self):
        routing = self.make_routing()
        picks = [routing.store_targets(t("R"), 0.0)[0] for _ in range(6)]
        assert picks == ["R0", "R1", "R2", "R0", "R1", "R2"]
