"""Tests for repro.workloads.replay (trace capture/replay)."""

import pytest

from repro import StreamTuple
from repro.errors import ConfigurationError
from repro.workloads import ConstantRate, EquiJoinWorkload, UniformKeys
from repro.workloads.replay import load_trace, save_trace, split_relations


@pytest.fixture
def arrivals():
    wl = EquiJoinWorkload(keys=UniformKeys(10), seed=3)
    return list(wl.arrivals(ConstantRate(50.0), 2.0))


class TestRoundTrip:
    def test_save_returns_count(self, arrivals, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert save_trace(path, arrivals) == len(arrivals)

    def test_round_trip_identical(self, arrivals, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace(path, arrivals)
        loaded = load_trace(path)
        assert len(loaded) == len(arrivals)
        for original, restored in zip(arrivals, loaded):
            assert restored.relation == original.relation
            assert restored.ts == original.ts
            assert restored.seq == original.seq
            assert dict(restored.values) == dict(original.values)

    def test_replayed_trace_joins_identically(self, arrivals, tmp_path):
        from repro import (BicliqueConfig, EquiJoinPredicate,
                           StreamJoinEngine, TimeWindow)
        path = tmp_path / "trace.jsonl"
        save_trace(path, arrivals)
        loaded = load_trace(path)
        config = BicliqueConfig(window=TimeWindow(1.0), archive_period=0.5,
                                punctuation_interval=0.2)
        pred = EquiJoinPredicate("k", "k")
        res_a, _ = StreamJoinEngine(config, pred).run_interleaved(arrivals)
        config_b = BicliqueConfig(window=TimeWindow(1.0), archive_period=0.5,
                                  punctuation_interval=0.2)
        res_b, _ = StreamJoinEngine(config_b, pred).run_interleaved(loaded)
        assert {x.key for x in res_a} == {x.key for x in res_b}


class TestValidation:
    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"relation": "R"}\n')
        with pytest.raises(ConfigurationError):
            load_trace(path)

    def test_non_monotone_trace_rejected(self, tmp_path):
        path = tmp_path / "regress.jsonl"
        save_trace(path, [
            StreamTuple("R", 2.0, {"k": 1}, seq=0),
            StreamTuple("R", 1.0, {"k": 1}, seq=1),
        ])
        with pytest.raises(Exception):
            load_trace(path)

    def test_validation_can_be_disabled(self, tmp_path):
        path = tmp_path / "regress.jsonl"
        save_trace(path, [
            StreamTuple("R", 2.0, {"k": 1}, seq=0),
            StreamTuple("R", 1.0, {"k": 1}, seq=1),
        ])
        assert len(load_trace(path, validate=False)) == 2

    def test_blank_lines_skipped(self, arrivals, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace(path, arrivals)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_trace(path)) == len(arrivals)


class TestSplitRelations:
    def test_groups_by_relation(self, arrivals):
        streams = split_relations(arrivals)
        assert set(streams) == {"R", "S"}
        assert sum(len(v) for v in streams.values()) == len(arrivals)
        assert all(t.relation == "R" for t in streams["R"])
