"""Tests for repro.workloads.tpch."""

import pytest

from repro.core.streams import check_time_ordered
from repro.errors import ConfigurationError
from repro.workloads import TpchStreamWorkload


class TestValidation:
    def test_rates(self):
        with pytest.raises(ConfigurationError):
            TpchStreamWorkload(orders_per_second=0)
        with pytest.raises(ConfigurationError):
            TpchStreamWorkload(lineitem_spread=-1)
        with pytest.raises(ConfigurationError):
            TpchStreamWorkload(max_lineitems=0)


class TestGeneration:
    def _streams(self, duration=5.0, **kw):
        return TpchStreamWorkload(orders_per_second=20.0, seed=2,
                                  **kw).generate(duration)

    def test_streams_time_ordered(self):
        orders, lineitems = self._streams()
        check_time_ordered(orders)
        check_time_ordered(lineitems)

    def test_order_count_matches_rate(self):
        orders, _ = self._streams(duration=5.0)
        assert len(orders) == 100  # 20/s * 5s

    def test_orderkeys_unique(self):
        orders, _ = self._streams()
        keys = [o["orderkey"] for o in orders]
        assert len(set(keys)) == len(keys)

    def test_lineitems_reference_existing_orders(self):
        orders, lineitems = self._streams()
        order_keys = {o["orderkey"] for o in orders}
        assert all(li["orderkey"] in order_keys for li in lineitems)

    def test_multiplicity_within_bounds(self):
        from collections import Counter
        orders, lineitems = self._streams(duration=10.0, max_lineitems=7,
                                          lineitem_spread=0.0)
        per_order = Counter(li["orderkey"] for li in lineitems)
        assert all(1 <= n <= 7 for n in per_order.values())

    def test_lineitems_arrive_within_spread(self):
        orders, lineitems = self._streams(lineitem_spread=2.0)
        order_ts = {o["orderkey"]: o.ts for o in orders}
        for li in lineitems:
            delta = li.ts - order_ts[li["orderkey"]]
            assert 0.0 <= delta <= 2.0

    def test_relations_are_r_and_s(self):
        orders, lineitems = self._streams()
        assert all(o.relation == "R" for o in orders)
        assert all(li.relation == "S" for li in lineitems)

    def test_deterministic_for_seed(self):
        a_orders, a_items = TpchStreamWorkload(seed=3).generate(2.0)
        b_orders, b_items = TpchStreamWorkload(seed=3).generate(2.0)
        assert [o.values for o in a_orders] == [o.values for o in b_orders]
        assert [i.values for i in a_items] == [i.values for i in b_items]

    def test_joins_with_engine(self):
        """End-to-end: the TPC-H pair joins exactly once on orderkey."""
        from repro import (BicliqueConfig, EquiJoinPredicate,
                           StreamJoinEngine, TimeWindow)
        from repro.harness import check_exactly_once, reference_join
        orders, lineitems = self._streams(duration=3.0)
        pred = EquiJoinPredicate("orderkey", "orderkey")
        window = TimeWindow(seconds=10.0)
        engine = StreamJoinEngine(
            BicliqueConfig(window=window, r_joiners=2, s_joiners=2,
                           archive_period=1.0, punctuation_interval=0.2),
            pred)
        results, _ = engine.run(orders, lineitems)
        expected = reference_join(orders, lineitems, pred, window)
        assert check_exactly_once(results, expected).ok
        assert len(results) == len(lineitems)  # every item matches its order
