"""Tests for repro.workloads.generators."""

import pytest

from repro.core.streams import check_time_ordered
from repro.errors import ConfigurationError
from repro.workloads import (
    BandJoinWorkload,
    ConstantRate,
    EquiJoinWorkload,
    UniformKeys,
)


class TestEquiJoinWorkload:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EquiJoinWorkload(r_fraction=0.0)
        with pytest.raises(ConfigurationError):
            EquiJoinWorkload(payload_bytes=-1)

    def test_arrivals_are_time_ordered(self):
        wl = EquiJoinWorkload(keys=UniformKeys(10), seed=1)
        arrivals = list(wl.arrivals(ConstantRate(100.0), 2.0))
        check_time_ordered(arrivals)
        assert len(arrivals) == 200

    def test_deterministic_for_seed(self):
        wl1 = EquiJoinWorkload(keys=UniformKeys(10), seed=5)
        wl2 = EquiJoinWorkload(keys=UniformKeys(10), seed=5)
        a1 = [(t.relation, t["k"]) for t in wl1.arrivals(ConstantRate(50.0), 1.0)]
        a2 = [(t.relation, t["k"]) for t in wl2.arrivals(ConstantRate(50.0), 1.0)]
        assert a1 == a2

    def test_different_seeds_differ(self):
        wl1 = EquiJoinWorkload(keys=UniformKeys(10), seed=5)
        wl2 = EquiJoinWorkload(keys=UniformKeys(10), seed=6)
        a1 = [(t.relation, t["k"]) for t in wl1.arrivals(ConstantRate(50.0), 1.0)]
        a2 = [(t.relation, t["k"]) for t in wl2.arrivals(ConstantRate(50.0), 1.0)]
        assert a1 != a2

    def test_r_fraction_splits_sides(self):
        wl = EquiJoinWorkload(keys=UniformKeys(10), r_fraction=0.5, seed=2)
        arrivals = list(wl.arrivals(ConstantRate(500.0), 4.0))
        r_count = sum(1 for t in arrivals if t.relation == "R")
        assert r_count / len(arrivals) == pytest.approx(0.5, abs=0.05)

    def test_payload_size(self):
        wl = EquiJoinWorkload(keys=UniformKeys(10), payload_bytes=100, seed=1)
        t = next(iter(wl.arrivals(ConstantRate(10.0), 1.0)))
        assert len(t["payload"]) == 100

    def test_materialise_splits_relations(self):
        wl = EquiJoinWorkload(keys=UniformKeys(10), seed=1)
        r, s = wl.materialise(ConstantRate(100.0), 1.0)
        assert all(t.relation == "R" for t in r)
        assert all(t.relation == "S" for t in s)
        assert len(r) + len(s) == 100
        check_time_ordered(r)
        check_time_ordered(s)

    def test_per_relation_sequence_numbers(self):
        wl = EquiJoinWorkload(keys=UniformKeys(10), seed=1)
        r, s = wl.materialise(ConstantRate(100.0), 1.0)
        assert [t.seq for t in r] == list(range(len(r)))
        assert [t.seq for t in s] == list(range(len(s)))


class TestBandJoinWorkload:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BandJoinWorkload(value_range=0.0)

    def test_values_in_range(self):
        wl = BandJoinWorkload(value_range=100.0, seed=1)
        for t in wl.arrivals(ConstantRate(100.0), 1.0):
            assert 0.0 <= t["v"] < 100.0

    def test_selectivity_roughly_2band_over_range(self):
        """Expected match probability per pair ≈ 2*band/range."""
        from repro import BandJoinPredicate, TimeWindow
        from repro.harness import reference_join
        wl = BandJoinWorkload(value_range=100.0, seed=4)
        r, s = wl.materialise(ConstantRate(200.0), 4.0)
        pred = BandJoinPredicate("v", "v", band=5.0)
        pairs = reference_join(r, s, pred, TimeWindow(seconds=1e9))
        expected = len(r) * len(s) * (2 * 5.0 / 100.0)
        assert len(pairs) == pytest.approx(expected, rel=0.25)

    def test_deterministic(self):
        a = [t["v"] for t in BandJoinWorkload(seed=9).arrivals(ConstantRate(50.0), 1.0)]
        b = [t["v"] for t in BandJoinWorkload(seed=9).arrivals(ConstantRate(50.0), 1.0)]
        assert a == b
