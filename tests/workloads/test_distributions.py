"""Tests for repro.workloads.distributions."""

import pytest

from repro.errors import ConfigurationError
from repro.simulation import SeededRng
from repro.workloads import SequentialKeys, UniformKeys, ZipfKeys


class TestUniformKeys:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UniformKeys(0)

    def test_samples_in_range(self):
        dist = UniformKeys(10)
        rng = SeededRng(1)
        assert all(0 <= dist.sample(rng) < 10 for _ in range(500))

    def test_roughly_uniform(self):
        dist = UniformKeys(4)
        rng = SeededRng(1)
        counts = [0] * 4
        for _ in range(4000):
            counts[dist.sample(rng)] += 1
        assert min(counts) > 800  # expected 1000 each


class TestZipfKeys:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ZipfKeys(0, 1.0)
        with pytest.raises(ConfigurationError):
            ZipfKeys(10, -0.5)

    def test_samples_in_range(self):
        dist = ZipfKeys(20, 1.0)
        rng = SeededRng(1)
        assert all(0 <= dist.sample(rng) < 20 for _ in range(500))

    def test_theta_zero_is_uniform(self):
        dist = ZipfKeys(4, 0.0)
        for key in range(4):
            assert dist.probability(key) == pytest.approx(0.25)

    def test_probabilities_sum_to_one(self):
        dist = ZipfKeys(50, 1.0)
        total = sum(dist.probability(k) for k in range(50))
        assert total == pytest.approx(1.0)

    def test_skew_concentrates_on_small_keys(self):
        dist = ZipfKeys(100, 1.0)
        assert dist.probability(0) > 10 * dist.probability(99)

    def test_higher_theta_more_skew(self):
        mild = ZipfKeys(100, 0.5)
        heavy = ZipfKeys(100, 1.5)
        assert heavy.probability(0) > mild.probability(0)

    def test_empirical_matches_analytic(self):
        dist = ZipfKeys(10, 1.0)
        rng = SeededRng(7)
        n = 20000
        count0 = sum(1 for _ in range(n) if dist.sample(rng) == 0)
        assert count0 / n == pytest.approx(dist.probability(0), rel=0.1)

    def test_probability_out_of_range(self):
        with pytest.raises(ConfigurationError):
            ZipfKeys(10, 1.0).probability(10)


class TestSequentialKeys:
    def test_round_robin(self):
        dist = SequentialKeys(3)
        rng = SeededRng(1)
        assert [dist.sample(rng) for _ in range(7)] == [0, 1, 2, 0, 1, 2, 0]
