"""Tests for repro.workloads.rates."""

import pytest

from repro.errors import ConfigurationError
from repro.simulation import SeededRng
from repro.workloads import (
    ConstantRate,
    StepRateProfile,
    arrival_times,
    thesis_rate_profile,
)


class TestConstantRate:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ConstantRate(0)

    def test_flat(self):
        profile = ConstantRate(100.0)
        assert profile.rate(0.0) == 100.0
        assert profile.rate(1e6) == 100.0


class TestStepRateProfile:
    def test_must_start_at_zero(self):
        with pytest.raises(ConfigurationError):
            StepRateProfile([(1.0, 100.0)])

    def test_steps_must_increase(self):
        with pytest.raises(ConfigurationError):
            StepRateProfile([(0.0, 100.0), (0.0, 200.0)])

    def test_rates_positive(self):
        with pytest.raises(ConfigurationError):
            StepRateProfile([(0.0, 0.0)])

    def test_piecewise_lookup(self):
        profile = StepRateProfile([(0.0, 10.0), (5.0, 20.0)])
        assert profile.rate(0.0) == 10.0
        assert profile.rate(4.99) == 10.0
        assert profile.rate(5.0) == 20.0
        assert profile.rate(100.0) == 20.0


class TestThesisProfile:
    def test_exact_thesis_steps(self):
        """§5.2: 300 t/s at min 0, 400 at min 10, 200 at min 40,
        300 at min 50."""
        profile = thesis_rate_profile()
        assert profile.rate(0.0) == 300.0
        assert profile.rate(599.0) == 300.0
        assert profile.rate(600.0) == 400.0
        assert profile.rate(2399.0) == 400.0
        assert profile.rate(2400.0) == 200.0
        assert profile.rate(3000.0) == 300.0
        assert profile.rate(3599.0) == 300.0

    def test_scaling(self):
        profile = thesis_rate_profile(scale=0.1)
        assert profile.rate(0.0) == 30.0

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            thesis_rate_profile(scale=0.0)


class TestArrivalTimes:
    def test_deterministic_spacing(self):
        times = list(arrival_times(ConstantRate(10.0), 1.0))
        assert len(times) == 10
        assert times[0] == 0.0
        assert times[1] == pytest.approx(0.1)

    def test_rate_change_changes_spacing(self):
        profile = StepRateProfile([(0.0, 10.0), (1.0, 100.0)])
        times = list(arrival_times(profile, 2.0))
        early_gaps = times[1] - times[0]
        late_gaps = times[-1] - times[-2]
        assert early_gaps == pytest.approx(0.1)
        assert late_gaps == pytest.approx(0.01)

    def test_poisson_mean_rate(self):
        times = list(arrival_times(ConstantRate(100.0), 10.0,
                                   process="poisson", rng=SeededRng(3)))
        assert len(times) == pytest.approx(1000, rel=0.15)

    def test_poisson_requires_rng(self):
        with pytest.raises(ConfigurationError):
            list(arrival_times(ConstantRate(1.0), 1.0, process="poisson"))

    def test_all_within_duration(self):
        times = list(arrival_times(ConstantRate(50.0), 2.0))
        assert all(0 <= t < 2.0 for t in times)

    def test_unknown_process(self):
        with pytest.raises(ConfigurationError):
            list(arrival_times(ConstantRate(1.0), 1.0, process="burst"))
