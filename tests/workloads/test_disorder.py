"""Tests for repro.workloads.disorder."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.simulation import SeededRng
from repro.workloads import bounded_shuffle, displacement_profile


class TestBoundedShuffle:
    def test_zero_displacement_is_identity(self):
        items = list(range(10))
        assert bounded_shuffle(items, 0, SeededRng(1)) == items

    def test_negative_displacement_rejected(self):
        with pytest.raises(ConfigurationError):
            bounded_shuffle([1], -1, SeededRng(1))

    def test_result_is_permutation(self):
        items = list(range(50))
        shuffled = bounded_shuffle(items, 5, SeededRng(1))
        assert sorted(shuffled) == items

    def test_actually_shuffles(self):
        items = list(range(100))
        assert bounded_shuffle(items, 10, SeededRng(1)) != items

    @given(st.integers(min_value=1, max_value=10),
           st.integers(min_value=0, max_value=42))
    def test_displacement_bound_holds(self, max_disp, seed):
        items = [object() for _ in range(60)]
        shuffled = bounded_shuffle(items, max_disp, SeededRng(seed))
        assert max(displacement_profile(items, shuffled)) <= max_disp

    def test_deterministic(self):
        items = list(range(30))
        a = bounded_shuffle(items, 4, SeededRng(7))
        b = bounded_shuffle(items, 4, SeededRng(7))
        assert a == b
