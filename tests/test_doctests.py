"""Run the library's docstring examples as tests.

Keeps every ``>>>`` example in the public docstrings honest — a wrong
example in documentation is a bug like any other.
"""

import doctest
import importlib
import pkgutil

import repro


def iter_repro_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def test_all_docstring_examples_pass():
    failures = 0
    attempted = 0
    for module in iter_repro_modules():
        result = doctest.testmod(module, verbose=False)
        failures += result.failed
        attempted += result.attempted
    assert failures == 0
    # The library should keep at least a handful of runnable examples.
    assert attempted >= 5
