"""Simulated aggregate capacity: cost-model-based throughput estimates.

A single Python process cannot demonstrate multi-node speedups by
wall-clock (adding units adds interpreter overhead, not cores).  The
throughput experiments therefore report *simulated capacity*: run the
engine over a workload, charge every unit's measured operation counts
(stores, probes, comparisons, emits) to the CPU cost model, and invert
the bottleneck:

    capacity = tuples_ingested / busiest_unit_cpu_seconds

i.e. the sustainable input rate at which the most loaded unit is
exactly saturated, assuming units run in parallel (which they do in the
real deployment — they are share-nothing).  Routers are accounted the
same way.  This is the standard saturation analysis for shared-nothing
operators and reproduces the *shape* of the paper's scalability curves
from measured per-unit work, not from wall-clock noise.

The single-process limitation is about *this harness*, not the repo:
:mod:`repro.parallel` runs the same joiners across real worker
processes, and experiment E17
(``benchmarks/test_bench_e17_parallel_scaling.py``) measures genuine
wall-clock speedup there on multi-core machines.  The two views are
complementary — simulated capacity isolates the algorithmic scaling
shape at any unit count on any hardware; E17 certifies that real
processes cash it in where cores exist.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.resources import CostModel
from ..core.biclique import BicliqueEngine
from ..matrix.engine import MatrixEngine


@dataclass(frozen=True)
class CapacityEstimate:
    """Bottleneck-based throughput estimate for one engine run."""

    tuples_ingested: int
    bottleneck_unit: str
    bottleneck_cpu_seconds: float
    total_cpu_seconds: float
    capacity_tuples_per_second: float
    balance: float  # bottleneck / mean unit load (1.0 = perfectly even)


def _estimate(per_unit_work: dict[str, float], router_work: float,
              ingested: int) -> CapacityEstimate:
    if not per_unit_work or ingested == 0:
        return CapacityEstimate(ingested, "-", 0.0, router_work, float("inf"),
                                1.0)
    bottleneck_unit = max(per_unit_work, key=per_unit_work.get)
    bottleneck = per_unit_work[bottleneck_unit]
    mean = sum(per_unit_work.values()) / len(per_unit_work)
    capacity = ingested / bottleneck if bottleneck > 0 else float("inf")
    return CapacityEstimate(
        tuples_ingested=ingested,
        bottleneck_unit=bottleneck_unit,
        bottleneck_cpu_seconds=bottleneck,
        total_cpu_seconds=sum(per_unit_work.values()) + router_work,
        capacity_tuples_per_second=capacity,
        balance=bottleneck / mean if mean > 0 else 1.0,
    )


def biclique_capacity(engine: BicliqueEngine, ingested: int,
                      cost: CostModel | None = None) -> CapacityEstimate:
    """Capacity estimate for a completed biclique engine run."""
    cost = cost or CostModel()
    per_unit = {}
    for unit_id, joiner in engine.joiners.items():
        stats = joiner.stats
        per_unit[unit_id] = cost.joiner_work(
            stored=stats.tuples_stored,
            probes=stats.probes_processed,
            comparisons=joiner.index.stats.comparisons,
            results=stats.results_emitted,
            punctuations=stats.punctuations_received,
        )
    router_work = cost.router_work(
        sum(r.stats.tuples_ingested for r in engine.routers))
    return _estimate(per_unit, router_work, ingested)


def matrix_capacity(engine: MatrixEngine, ingested: int,
                    cost: CostModel | None = None) -> CapacityEstimate:
    """Capacity estimate for a completed matrix engine run."""
    cost = cost or CostModel()
    per_unit = {}
    for cell in engine.all_cells():
        per_unit[cell.cell_id] = cost.joiner_work(
            stored=cell.stats.tuples_received,
            probes=cell.stats.tuples_received,
            comparisons=cell.comparisons,
            results=cell.stats.results_emitted,
        )
    router_work = cost.router_work(ingested)
    return _estimate(per_unit, router_work, ingested)
