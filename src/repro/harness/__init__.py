"""Experiment harness: reference join, runners and table formatting."""

from .capacity import CapacityEstimate, biclique_capacity, matrix_capacity
from .reference import JoinCheck, check_exactly_once, reference_join, result_keys
from .runner import (
    ROW_HEADERS,
    EngineRunStats,
    run_biclique,
    run_matrix,
    square_matrix_side,
)
from .tables import format_cell, render_series, render_table

__all__ = [
    "CapacityEstimate",
    "biclique_capacity",
    "matrix_capacity",
    "JoinCheck",
    "check_exactly_once",
    "reference_join",
    "result_keys",
    "ROW_HEADERS",
    "EngineRunStats",
    "run_biclique",
    "run_matrix",
    "square_matrix_side",
    "format_cell",
    "render_series",
    "render_table",
]
