"""Plain-text table rendering for benchmark output.

Benchmarks print the same rows/series the paper and thesis figures
report; this module keeps the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_cell(value: object) -> str:
    """Human-friendly formatting for table cells."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    if isinstance(value, int) and abs(value) >= 1000:
        return f"{value:,}"
    return str(value)


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def render_series(name: str, points: Iterable[tuple[float, object]],
                  *, x_label: str = "t", y_label: str = "value") -> str:
    """Render an (x, y) series as two aligned columns."""
    rows = [(x, y) for x, y in points]
    return render_table([x_label, y_label], rows, title=name)
