"""Experiment runners: drive both engines over a workload and collect
comparable statistics rows.

Every benchmark follows the same shape: materialise a workload, run the
join-biclique engine and (where the experiment compares models) the
join-matrix engine over the identical input, verify exactly-once output
against the reference join, and report throughput / memory / network /
latency as one :class:`EngineRunStats` row per configuration.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Sequence

from ..core.biclique import BicliqueConfig
from ..core.engine import StreamJoinEngine
from ..core.predicates import JoinPredicate
from ..core.streams import merge_by_time
from ..core.tuples import StreamTuple
from ..matrix.engine import MatrixConfig, MatrixEngine
from .reference import check_exactly_once, reference_join


@dataclass(frozen=True)
class EngineRunStats:
    """One comparable row of engine-run statistics."""

    model: str
    units: int
    results: int
    correct: bool
    wall_seconds: float
    tuples_per_second: float
    data_messages: int
    messages_per_tuple: float
    peak_live_bytes: int
    stored_tuples_final: int
    comparisons: int
    mean_latency: float
    p99_latency: float

    def as_row(self) -> list[object]:
        return [self.model, self.units, self.results, self.correct,
                round(self.tuples_per_second), self.messages_per_tuple,
                self.peak_live_bytes, self.comparisons]


ROW_HEADERS = ["model", "units", "results", "correct", "tuples/s",
               "msgs/tuple", "peak bytes", "comparisons"]


def run_biclique(config: BicliqueConfig, predicate: JoinPredicate,
                 r_stream: Sequence[StreamTuple],
                 s_stream: Sequence[StreamTuple], *,
                 verify: bool = True,
                 sample_memory_every: int = 200) -> EngineRunStats:
    """Run the join-biclique engine over a workload; return its stats."""
    engine = StreamJoinEngine(config, predicate)
    results, report = engine.run(r_stream, s_stream,
                                 sample_memory_every=sample_memory_every)
    correct = True
    if verify:
        expected = reference_join(r_stream, s_stream, predicate, config.window)
        correct = check_exactly_once(results, expected).ok
    ingested = len(r_stream) + len(s_stream)
    return EngineRunStats(
        model=f"biclique/{engine.engine.routing_mode}",
        units=config.r_joiners + config.s_joiners,
        results=len(results),
        correct=correct,
        wall_seconds=report.wall_seconds,
        tuples_per_second=report.tuples_per_second,
        data_messages=report.network.data_messages,
        messages_per_tuple=report.network.data_messages / max(1, ingested),
        peak_live_bytes=report.peak_live_bytes,
        stored_tuples_final=report.stored_tuples_final,
        comparisons=report.comparisons,
        mean_latency=report.latency.mean,
        p99_latency=report.latency.p99,
    )


def run_matrix(config: MatrixConfig, predicate: JoinPredicate,
               r_stream: Sequence[StreamTuple],
               s_stream: Sequence[StreamTuple], *,
               verify: bool = True,
               sample_memory_every: int = 200) -> EngineRunStats:
    """Run the join-matrix engine over a workload; return its stats."""
    engine = MatrixEngine(config, predicate)
    started = _time.perf_counter()
    peak_bytes = 0
    ingested = 0
    for t in merge_by_time(r_stream, s_stream):
        engine.ingest(t)
        ingested += 1
        if sample_memory_every and ingested % sample_memory_every == 0:
            peak_bytes = max(peak_bytes,
                             engine.memory_snapshot().total_live_bytes)
    engine.finish()
    wall = _time.perf_counter() - started
    peak_bytes = max(peak_bytes, engine.memory_snapshot().total_live_bytes)

    correct = True
    if verify:
        expected = reference_join(r_stream, s_stream, predicate, config.window)
        correct = check_exactly_once(engine.results, expected).ok
    latency = engine.latency.summary()
    return EngineRunStats(
        model=f"matrix/{config.partitioning}",
        units=config.rows * config.cols,
        results=len(engine.results),
        correct=correct,
        wall_seconds=wall,
        tuples_per_second=ingested / wall if wall > 0 else 0.0,
        data_messages=engine.network_stats.data_messages,
        messages_per_tuple=engine.network_stats.data_messages / max(1, ingested),
        peak_live_bytes=peak_bytes,
        stored_tuples_final=engine.total_stored_tuples(),
        comparisons=engine.total_comparisons(),
        mean_latency=latency.mean,
        p99_latency=latency.p99,
    )


def square_matrix_side(units: int) -> int:
    """Largest square grid side that fits in ``units`` processing units."""
    side = 1
    while (side + 1) * (side + 1) <= units:
        side += 1
    return side
