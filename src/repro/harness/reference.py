"""Reference implementations used to validate the distributed engines.

:func:`reference_join` is a single-process nested-loop windowed join —
trivially correct by construction — producing the exact multiset of
``(r, s)`` pairs any correct engine must emit: all pairs with
``|r.ts - s.ts| <= Ws`` satisfying the predicate.  Every integration
test and benchmark checks engine output against it (as a set of input
identities, since result order is engine-dependent).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from ..core.predicates import JoinPredicate
from ..core.tuples import JoinResult, StreamTuple
from ..core.windows import TimeWindow

#: A result identity: ((r.relation, r.seq), (s.relation, s.seq)).
ResultKey = tuple[tuple[str, int], tuple[str, int]]


def reference_join(r_stream: Sequence[StreamTuple],
                   s_stream: Sequence[StreamTuple],
                   predicate: JoinPredicate,
                   window: TimeWindow) -> set[ResultKey]:
    """All matching pair identities under the symmetric window."""
    matches: set[ResultKey] = set()
    for r in r_stream:
        for s in s_stream:
            if window.contains(s.ts, r.ts) and predicate.matches(r, s):
                matches.add((r.ident, s.ident))
    return matches


def result_keys(results: Iterable[JoinResult]) -> list[ResultKey]:
    """Identities of produced results, in production order."""
    return [result.key for result in results]


def check_exactly_once(results: Iterable[JoinResult],
                       expected: set[ResultKey]) -> "JoinCheck":
    """Compare engine output against the reference pair set."""
    produced = Counter(result_keys(results))
    duplicates = {k: c for k, c in produced.items() if c > 1}
    missing = expected - set(produced)
    spurious = set(produced) - expected
    return JoinCheck(
        expected=len(expected),
        produced=sum(produced.values()),
        duplicates=sum(c - 1 for c in duplicates.values()),
        missing=len(missing),
        spurious=len(spurious),
    )


class JoinCheck:
    """Outcome of an exactly-once completeness check."""

    def __init__(self, expected: int, produced: int, duplicates: int,
                 missing: int, spurious: int) -> None:
        self.expected = expected
        self.produced = produced
        self.duplicates = duplicates
        self.missing = missing
        self.spurious = spurious

    @property
    def ok(self) -> bool:
        """True iff every expected pair was produced exactly once."""
        return (self.duplicates == 0 and self.missing == 0
                and self.spurious == 0)

    def __repr__(self) -> str:
        return (f"JoinCheck(expected={self.expected}, produced={self.produced}, "
                f"dup={self.duplicates}, missing={self.missing}, "
                f"spurious={self.spurious})")
