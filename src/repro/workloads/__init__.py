"""Workload generators: key distributions, rate profiles, stream pairs.

Substitutes for the data the source texts used (production streams,
TPC-H-derived streams, the thesis's stepped-rate generator) — see
DESIGN.md's substitution table.
"""

from .distributions import KeyDistribution, SequentialKeys, UniformKeys, ZipfKeys
from .disorder import bounded_shuffle, displacement_profile
from .generators import BandJoinWorkload, EquiJoinWorkload
from .replay import load_trace, save_trace, split_relations
from .rates import (
    ConstantRate,
    RateProfile,
    StepRateProfile,
    arrival_times,
    thesis_rate_profile,
)
from .tpch import TpchStreamWorkload

__all__ = [
    "KeyDistribution",
    "SequentialKeys",
    "UniformKeys",
    "ZipfKeys",
    "bounded_shuffle",
    "displacement_profile",
    "BandJoinWorkload",
    "EquiJoinWorkload",
    "ConstantRate",
    "RateProfile",
    "StepRateProfile",
    "arrival_times",
    "thesis_rate_profile",
    "TpchStreamWorkload",
    "load_trace",
    "save_trace",
    "split_relations",
]
