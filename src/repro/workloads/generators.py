"""Two-stream workload generators.

The common shape of every experiment's input: two relations R and S
arriving interleaved at a controlled total rate, with join keys drawn
from a configurable distribution.  Generators produce either
materialised streams (for the synchronous engine driver) or lazy
arrival iterators (for the discrete-event cluster runtime).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..core.streams import StreamSource
from ..core.tuples import StreamTuple
from ..errors import ConfigurationError
from ..simulation.random import SeededRng
from .distributions import KeyDistribution, UniformKeys
from .rates import RateProfile, arrival_times


@dataclass
class EquiJoinWorkload:
    """An equi-join workload: both relations share the key attribute "k".

    Attributes:
        keys: join-key distribution (shared by both relations).
        r_fraction: probability an arrival belongs to R (0.5 = balanced).
        payload_bytes: size of the opaque payload string per tuple, to
            make the memory experiments byte-meaningful.
        seed: experiment seed.
    """

    keys: KeyDistribution = field(default_factory=lambda: UniformKeys(1000))
    r_fraction: float = 0.5
    payload_bytes: int = 64
    seed: int = 1

    def __post_init__(self) -> None:
        if not 0 < self.r_fraction < 1:
            raise ConfigurationError("r_fraction must be in (0, 1)")
        if self.payload_bytes < 0:
            raise ConfigurationError("payload_bytes must be >= 0")

    def arrivals(self, profile: RateProfile, duration: float, *,
                 process: str = "deterministic") -> Iterator[StreamTuple]:
        """Lazy interleaved arrival sequence over ``[0, duration)``."""
        rng = SeededRng(self.seed, "equi-workload")
        side_rng = rng.fork("side")
        key_rng = rng.fork("keys")
        r_source = StreamSource("R")
        s_source = StreamSource("S")
        payload = "x" * self.payload_bytes
        for ts in arrival_times(profile, duration, process=process,
                                rng=rng.fork("arrivals")):
            key = self.keys.sample(key_rng)
            if side_rng.random() < self.r_fraction:
                yield r_source.emit(ts, {"k": key, "payload": payload})
            else:
                yield s_source.emit(ts, {"k": key, "payload": payload})

    def materialise(self, profile: RateProfile, duration: float, *,
                    process: str = "deterministic"
                    ) -> tuple[list[StreamTuple], list[StreamTuple]]:
        """Materialised ``(r_stream, s_stream)`` pair."""
        r_stream: list[StreamTuple] = []
        s_stream: list[StreamTuple] = []
        for t in self.arrivals(profile, duration, process=process):
            (r_stream if t.relation == "R" else s_stream).append(t)
        return r_stream, s_stream


@dataclass
class BandJoinWorkload:
    """A band-join workload over numeric values (theta-join benchmark).

    Both relations carry a numeric attribute ``v`` drawn uniformly from
    ``[0, value_range)``; the predicate of interest is
    ``|R.v - S.v| <= band``.  Expected selectivity per pair is about
    ``2 * band / value_range``, a knob the benchmarks sweep.
    """

    value_range: float = 1000.0
    r_fraction: float = 0.5
    payload_bytes: int = 64
    seed: int = 1

    def __post_init__(self) -> None:
        if self.value_range <= 0:
            raise ConfigurationError("value_range must be positive")
        if not 0 < self.r_fraction < 1:
            raise ConfigurationError("r_fraction must be in (0, 1)")

    def arrivals(self, profile: RateProfile, duration: float, *,
                 process: str = "deterministic") -> Iterator[StreamTuple]:
        rng = SeededRng(self.seed, "band-workload")
        side_rng = rng.fork("side")
        value_rng = rng.fork("values")
        r_source = StreamSource("R")
        s_source = StreamSource("S")
        payload = "x" * self.payload_bytes
        for ts in arrival_times(profile, duration, process=process,
                                rng=rng.fork("arrivals")):
            value = value_rng.uniform(0.0, self.value_range)
            if side_rng.random() < self.r_fraction:
                yield r_source.emit(ts, {"v": value, "payload": payload})
            else:
                yield s_source.emit(ts, {"v": value, "payload": payload})

    def materialise(self, profile: RateProfile, duration: float, *,
                    process: str = "deterministic"
                    ) -> tuple[list[StreamTuple], list[StreamTuple]]:
        r_stream: list[StreamTuple] = []
        s_stream: list[StreamTuple] = []
        for t in self.arrivals(profile, duration, process=process):
            (r_stream if t.relation == "R" else s_stream).append(t)
        return r_stream, s_stream
