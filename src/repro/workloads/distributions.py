"""Join-key distributions.

Skew is the central stressor for content-sensitive (hash) routing: a
zipfian key distribution concentrates storage and probe load on the
units owning hot keys, while content-insensitive (random) routing stays
balanced by construction — the E6 experiment.  All distributions draw
from a :class:`~repro.simulation.random.SeededRng` for reproducibility.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..simulation.random import SeededRng


class KeyDistribution:
    """Base class: draw one join-key value per call."""

    def sample(self, rng: SeededRng) -> int:
        raise NotImplementedError


@dataclass(frozen=True)
class UniformKeys(KeyDistribution):
    """Keys drawn uniformly from ``{0, ..., n_keys - 1}``."""

    n_keys: int

    def __post_init__(self) -> None:
        if self.n_keys < 1:
            raise ConfigurationError(f"n_keys must be >= 1, got {self.n_keys}")

    def sample(self, rng: SeededRng) -> int:
        return rng.randint(0, self.n_keys - 1)


class ZipfKeys(KeyDistribution):
    """Zipfian keys: P(key = i) ∝ 1 / (i + 1)^theta.

    ``theta = 0`` degenerates to uniform; ``theta = 1`` is the classic
    heavy skew used in the stream-join literature.  The CDF is
    precomputed, so sampling is O(log n).
    """

    def __init__(self, n_keys: int, theta: float) -> None:
        if n_keys < 1:
            raise ConfigurationError(f"n_keys must be >= 1, got {n_keys}")
        if theta < 0:
            raise ConfigurationError(f"theta must be >= 0, got {theta}")
        self.n_keys = n_keys
        self.theta = theta
        weights = [1.0 / (i + 1) ** theta for i in range(n_keys)]
        total = sum(weights)
        cumulative = 0.0
        self._cdf: list[float] = []
        for w in weights:
            cumulative += w / total
            self._cdf.append(cumulative)
        self._cdf[-1] = 1.0  # guard against float drift

    def sample(self, rng: SeededRng) -> int:
        return bisect.bisect_left(self._cdf, rng.random())

    def probability(self, key: int) -> float:
        """Exact probability mass of one key (for analytic checks)."""
        if not 0 <= key < self.n_keys:
            raise ConfigurationError(f"key {key} out of range")
        lo = self._cdf[key - 1] if key > 0 else 0.0
        return self._cdf[key] - lo


@dataclass
class SequentialKeys(KeyDistribution):
    """Deterministic round-robin keys 0, 1, ..., n-1, 0, 1, ...

    Useful in tests where exact match counts must be predictable.
    """

    n_keys: int
    _next: int = 0

    def sample(self, rng: SeededRng) -> int:
        key = self._next % self.n_keys
        self._next += 1
        return key
