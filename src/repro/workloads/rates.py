"""Input-rate profiles and arrival processes.

Thesis Figures 20/21 drive the system with a stepped total input rate:
300 tuples/s for 10 minutes, 400 t/s until minute 40, 200 t/s until
minute 50, then 300 t/s to the end of the hour.
:func:`thesis_rate_profile` reproduces exactly that shape (optionally
scaled, since the simulator can trade rate against the CPU cost model
without changing the dynamics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from ..errors import ConfigurationError
from ..simulation.random import SeededRng


class RateProfile:
    """Base class: instantaneous arrival rate (tuples/second) at time t."""

    def rate(self, t: float) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantRate(RateProfile):
    """A flat arrival rate."""

    tuples_per_second: float

    def __post_init__(self) -> None:
        if self.tuples_per_second <= 0:
            raise ConfigurationError("rate must be positive")

    def rate(self, t: float) -> float:
        return self.tuples_per_second


class StepRateProfile(RateProfile):
    """A piecewise-constant rate: ``[(start_time, rate), ...]``.

    Steps must start at 0 and be strictly increasing in time.
    """

    def __init__(self, steps: Sequence[tuple[float, float]]) -> None:
        if not steps:
            raise ConfigurationError("need at least one step")
        if steps[0][0] != 0:
            raise ConfigurationError("first step must start at time 0")
        last = -1.0
        for start, rate in steps:
            if start <= last:
                raise ConfigurationError("step times must strictly increase")
            if rate <= 0:
                raise ConfigurationError(f"rates must be positive, got {rate}")
            last = start
        self.steps = list(steps)

    def rate(self, t: float) -> float:
        current = self.steps[0][1]
        for start, rate in self.steps:
            if t >= start:
                current = rate
            else:
                break
        return current


def thesis_rate_profile(scale: float = 1.0) -> StepRateProfile:
    """The §5.2 input profile: 300/400/200/300 t/s at minutes 0/10/40/50."""
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive, got {scale}")
    return StepRateProfile([
        (0.0, 300.0 * scale),
        (600.0, 400.0 * scale),
        (2400.0, 200.0 * scale),
        (3000.0, 300.0 * scale),
    ])


def arrival_times(profile: RateProfile, duration: float, *,
                  process: str = "deterministic",
                  rng: SeededRng | None = None) -> Iterator[float]:
    """Arrival timestamps in ``[0, duration)`` under a rate profile.

    Args:
        process: ``"deterministic"`` (evenly spaced at the local rate)
            or ``"poisson"`` (exponential gaps, needs ``rng``).
    """
    if duration <= 0:
        raise ConfigurationError("duration must be positive")
    if process not in ("deterministic", "poisson"):
        raise ConfigurationError(f"unknown arrival process {process!r}")
    if process == "poisson" and rng is None:
        raise ConfigurationError("poisson arrivals need an rng")

    # The epsilon guard absorbs float accumulation error so that, e.g.,
    # a 10 t/s deterministic stream over 1 second yields exactly 10
    # arrivals rather than an 11th at t = 0.9999999999999999.
    epsilon = 1e-9 * max(1.0, duration)
    t = 0.0
    while t < duration - epsilon:
        yield t
        rate = profile.rate(t)
        if process == "deterministic":
            t += 1.0 / rate
        else:
            t += rng.expovariate(rate)
