"""Disorder injection for the ordering-protocol experiments (E10).

Real deployments see out-of-order *delivery* because messages take
different network paths (thesis §3.3).  In the simulator that disorder
comes from :class:`~repro.simulation.network.JitterNetwork`; this
module additionally provides *arrival-order* perturbation so the
synchronous driver can be stressed without a simulator: a bounded
shuffle displaces each element at most ``max_displacement`` positions
from where it started, modelling bounded network skew.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

from ..errors import ConfigurationError
from ..simulation.random import SeededRng

T = TypeVar("T")


def bounded_shuffle(items: Sequence[T], max_displacement: int,
                    rng: SeededRng) -> list[T]:
    """Permutation where no element moves more than ``max_displacement``.

    Implementation: tag each position ``i`` with a noisy sort key
    ``i + U(0, max_displacement)`` and sort.  An element at position
    ``i`` can end anywhere in ``[i - max_displacement,
    i + max_displacement]``, and displacement 0 returns the input
    order unchanged.
    """
    if max_displacement < 0:
        raise ConfigurationError(
            f"max_displacement must be >= 0, got {max_displacement}")
    if max_displacement == 0:
        return list(items)
    keyed = [(i + rng.random() * max_displacement, i, item)
             for i, item in enumerate(items)]
    keyed.sort(key=lambda entry: (entry[0], entry[1]))
    return [item for _, _, item in keyed]


def displacement_profile(original: Sequence[T],
                         shuffled: Sequence[T]) -> list[int]:
    """Per-element |new_pos - old_pos| (for asserting the bound)."""
    index_of = {id(item): i for i, item in enumerate(original)}
    return [abs(i - index_of[id(item)]) for i, item in enumerate(shuffled)]
