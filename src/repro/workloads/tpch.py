"""A TPC-H-derived streaming workload.

The stream-join literature (including the BiStream evaluation) builds
equi-join workloads by streaming TPC-H's ``Orders`` and ``Lineitem``
tables in timestamp order and joining on ``orderkey``.  We cannot ship
TPC-H data, so this module *synthesises* a statistically similar pair
of streams:

- each order has a unique ``orderkey``, a customer, and a total price;
- each order is followed (within a configurable spread) by 1–7 line
  items referencing its ``orderkey`` (TPC-H's lineitem multiplicity),
  carrying part, quantity and extended price attributes;
- both streams are emitted in timestamp order at a configurable rate.

The join ``Orders ⋈ Lineitem ON orderkey`` then has the same
key-multiplicity structure as the TPC-H-based experiments: every
lineitem matches exactly one order (if it is still inside the window).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.streams import StreamSource
from ..core.tuples import StreamTuple
from ..errors import ConfigurationError
from ..simulation.random import SeededRng


@dataclass
class TpchStreamWorkload:
    """Synthetic Orders/Lineitem stream pair joined on ``orderkey``.

    Attributes:
        orders_per_second: order arrival rate.
        lineitem_spread: line items of an order arrive within this many
            seconds after the order.
        max_lineitems: per-order multiplicity is uniform in
            ``[1, max_lineitems]`` (TPC-H uses 7).
        seed: experiment seed.
    """

    orders_per_second: float = 100.0
    lineitem_spread: float = 5.0
    max_lineitems: int = 7
    seed: int = 1

    def __post_init__(self) -> None:
        if self.orders_per_second <= 0:
            raise ConfigurationError("orders_per_second must be positive")
        if self.lineitem_spread < 0:
            raise ConfigurationError("lineitem_spread must be >= 0")
        if self.max_lineitems < 1:
            raise ConfigurationError("max_lineitems must be >= 1")

    def generate(self, duration: float
                 ) -> tuple[list[StreamTuple], list[StreamTuple]]:
        """Materialise ``(orders_stream, lineitem_stream)`` over
        ``[0, duration)``, each in timestamp order.

        Orders are emitted as relation ``"R"`` and line items as
        relation ``"S"`` so they plug directly into the engines.
        """
        rng = SeededRng(self.seed, "tpch")
        count_rng = rng.fork("lineitem-count")
        spread_rng = rng.fork("lineitem-spread")
        price_rng = rng.fork("prices")

        orders = StreamSource("R")
        order_stream: list[StreamTuple] = []
        lineitem_records: list[tuple[float, dict]] = []

        gap = 1.0 / self.orders_per_second
        orderkey = 0
        ts = 0.0
        epsilon = 1e-9 * max(1.0, duration)  # float-accumulation guard
        while ts < duration - epsilon:
            orderkey += 1
            order_stream.append(orders.emit(ts, {
                "orderkey": orderkey,
                "custkey": 1 + (orderkey * 7919) % 1500,
                "totalprice": round(price_rng.uniform(100.0, 50000.0), 2),
            }))
            n_items = count_rng.randint(1, self.max_lineitems)
            for line in range(1, n_items + 1):
                item_ts = ts + spread_rng.uniform(0.0, self.lineitem_spread)
                lineitem_records.append((item_ts, {
                    "orderkey": orderkey,
                    "linenumber": line,
                    "partkey": 1 + (orderkey * 31 + line) % 2000,
                    "quantity": count_rng.randint(1, 50),
                    "extendedprice": round(price_rng.uniform(10.0, 5000.0), 2),
                }))
            ts += gap

        lineitem_records.sort(key=lambda rec: rec[0])
        lineitems = StreamSource("S")
        lineitem_stream = [lineitems.emit(item_ts, values)
                           for item_ts, values in lineitem_records
                           if item_ts < duration]
        return order_stream, lineitem_stream
