"""Workload trace capture and replay.

Real evaluations replay recorded production traces so that competing
configurations see byte-identical input.  Our generators are seeded and
deterministic, but a *trace file* is still the right interface when

- a workload is expensive to generate and reused across many runs,
- a failing case must be attached to a bug report,
- someone wants to feed the engines data from outside this library.

The format is JSON Lines — one tuple per line::

    {"relation": "R", "ts": 1.25, "seq": 7, "values": {"k": 3}}

Only JSON-representable attribute values survive a round trip (the
generators in this package only produce ints, floats and strings).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from ..core.streams import check_time_ordered
from ..core.tuples import StreamTuple
from ..errors import ConfigurationError


def save_trace(path: str | Path, arrivals: Iterable[StreamTuple]) -> int:
    """Write an arrival sequence to a JSONL trace file.

    Returns the number of tuples written.  The arrival order is
    preserved verbatim (it is the experiment's input order).
    """
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for t in arrivals:
            fh.write(json.dumps({
                "relation": t.relation,
                "ts": t.ts,
                "seq": t.seq,
                "values": dict(t.values),
            }, separators=(",", ":")))
            fh.write("\n")
            count += 1
    return count


def load_trace(path: str | Path, *, validate: bool = True
               ) -> list[StreamTuple]:
    """Read a JSONL trace back into an arrival list.

    Args:
        validate: check per-relation timestamp monotonicity (the
            invariant every generator guarantees); disable only for
            intentionally malformed traces in tests.

    Raises:
        ConfigurationError: on malformed lines or invalid traces.
    """
    arrivals: list[StreamTuple] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                arrivals.append(StreamTuple(
                    relation=record["relation"],
                    ts=float(record["ts"]),
                    values=record["values"],
                    seq=int(record["seq"]),
                ))
            except (KeyError, TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"malformed trace line {lineno} in {path}: {exc}"
                ) from exc
    if validate:
        relations = {t.relation for t in arrivals}
        for relation in relations:
            check_time_ordered(t for t in arrivals
                               if t.relation == relation)
    return arrivals


def split_relations(arrivals: Iterable[StreamTuple]
                    ) -> dict[str, list[StreamTuple]]:
    """Group an arrival sequence into per-relation streams."""
    streams: dict[str, list[StreamTuple]] = {}
    for t in arrivals:
        streams.setdefault(t.relation, []).append(t)
    return streams
