"""Memory accounting and the JVM-style heap footprint envelope.

Two layers:

1. **Live-set accounting** — each joiner reports the byte footprint of
   its chained index (live tuples + bookkeeping).  This is the exact
   quantity the join-biclique vs. join-matrix comparison (E2) is about:
   biclique stores each tuple once, the matrix replicates it across a
   row or column of units.

2. **Heap envelope** — thesis Figure 21 measures *JVM heap*, not live
   bytes.  :class:`JvmHeapModel` reproduces the tuned-GC behaviour the
   thesis describes (``MinHeapFreeRatio=20``, ``MaxHeapFreeRatio=40``):
   the mapped heap tracks the live set with 20–40 % headroom, trimmed
   down when the live set shrinks, and clamped to ``-Xms``/``-Xmx``.
"""

from __future__ import annotations

from dataclasses import dataclass

MB = 1024 * 1024


@dataclass
class JvmHeapModel:
    """Mapped-heap envelope around a live data set (thesis §5.2).

    Attributes:
        min_free_ratio: percentage of excess memory, beyond the live
            set, below which the heap is grown (``MinHeapFreeRatio``).
        max_free_ratio: excess percentage above which the heap is
            trimmed (``MaxHeapFreeRatio``).
        xms_bytes: minimum heap (thesis default 58 MB).
        xmx_bytes: maximum heap (thesis default 926 MB).
    """

    min_free_ratio: float = 0.20
    max_free_ratio: float = 0.40
    xms_bytes: int = 58 * MB
    xmx_bytes: int = 926 * MB
    #: Fixed non-window baseline (framework, broker client, buffers):
    #: the thesis run starts "with the memory load at 60 MB".
    baseline_bytes: int = 60 * MB

    def __post_init__(self) -> None:
        if not 0 <= self.min_free_ratio <= self.max_free_ratio:
            raise ValueError("need 0 <= min_free_ratio <= max_free_ratio")
        if self.xms_bytes > self.xmx_bytes:
            raise ValueError("Xms cannot exceed Xmx")
        self._mapped = self.xms_bytes

    def update(self, live_bytes: int) -> int:
        """Advance the envelope for the current live set; return mapped heap."""
        live = live_bytes + self.baseline_bytes
        lo = live * (1 + self.min_free_ratio)
        hi = live * (1 + self.max_free_ratio)
        if self._mapped < lo:
            self._mapped = lo
        elif self._mapped > hi:
            self._mapped = hi
        self._mapped = min(max(self._mapped, self.xms_bytes), self.xmx_bytes)
        return int(self._mapped)

    @property
    def mapped_bytes(self) -> int:
        return int(self._mapped)

    def utilisation(self) -> float:
        """Mapped heap as a fraction of ``-Xmx`` (the HPA memory metric)."""
        return self._mapped / self.xmx_bytes


@dataclass(frozen=True)
class MemorySnapshot:
    """Point-in-time memory state of a set of processing units."""

    time: float
    per_unit_live_bytes: dict[str, int]

    @property
    def total_live_bytes(self) -> int:
        return sum(self.per_unit_live_bytes.values())

    @property
    def max_unit_live_bytes(self) -> int:
        return max(self.per_unit_live_bytes.values(), default=0)

    def imbalance(self) -> float:
        """max/mean live bytes across units (1.0 = perfectly balanced)."""
        if not self.per_unit_live_bytes:
            return 1.0
        mean = self.total_live_bytes / len(self.per_unit_live_bytes)
        if mean == 0:
            return 1.0
        return self.max_unit_live_bytes / mean
