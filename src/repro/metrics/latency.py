"""Latency recording and summary statistics.

Result latency is measured per :class:`~repro.core.tuples.JoinResult`
as ``produced_at - max(r.ts, s.ts)``: the time between the moment the
later input tuple entered the system and the moment the matching pair
was emitted.  The E3 benchmark reports the percentiles computed here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics over a set of latency observations."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @staticmethod
    def empty() -> "LatencySummary":
        return LatencySummary(count=0, mean=0.0, p50=0.0, p95=0.0,
                              p99=0.0, max=0.0)


class LatencyRecorder:
    """Accumulates latency observations and computes percentiles."""

    def __init__(self) -> None:
        self._values: list[float] = []

    def record(self, latency: float) -> None:
        if math.isnan(latency):
            raise ValueError("latency must be a number, got NaN")
        if latency < 0:
            raise ValueError(f"negative latency {latency!r}")
        self._values.append(latency)

    def __len__(self) -> int:
        return len(self._values)

    def summary(self) -> LatencySummary:
        if not self._values:
            return LatencySummary.empty()
        ordered = sorted(self._values)
        return LatencySummary(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            p50=percentile(ordered, 0.50),
            p95=percentile(ordered, 0.95),
            p99=percentile(ordered, 0.99),
            max=ordered[-1],
        )


def percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank-with-interpolation percentile of a sorted list.

    Args:
        ordered: observations sorted ascending (not checked, for speed).
        q: quantile in [0, 1].
    """
    if not ordered:
        raise ValueError("percentile of empty list")
    if math.isnan(q):
        raise ValueError("quantile must be a number, got NaN")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q!r}")
    if len(ordered) == 1:
        return ordered[0]
    rank = q * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    interpolated = ordered[lo] * (1 - frac) + ordered[hi] * frac
    # Clamp away float rounding so the result stays within the bracket.
    return min(max(interpolated, ordered[lo]), ordered[hi])
