"""Measurement utilities: counters, latency percentiles, memory models."""

from .counters import CounterSet, NetworkStats, ThroughputWindow
from .latency import LatencyRecorder, LatencySummary, percentile
from .memory import MB, JvmHeapModel, MemorySnapshot

__all__ = [
    "CounterSet",
    "NetworkStats",
    "ThroughputWindow",
    "LatencyRecorder",
    "LatencySummary",
    "percentile",
    "MB",
    "JvmHeapModel",
    "MemorySnapshot",
]
