"""Named counters for throughput and network accounting.

The network-cost experiment (E7) and the routing-strategy comparison
(E9) are driven entirely by these counters: every message the broker
delivers is classified (store / join / punctuation / result) and
attributed to the component that sent it.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field


class CounterSet:
    """A bag of named monotonically increasing counters."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = defaultdict(int)

    def inc(self, name: str, by: int = 1) -> None:
        if by < 0:
            raise ValueError(f"counters only increase; got by={by!r}")
        self._counts[name] += by

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> dict[str, int]:
        return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover
        items = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items()))
        return f"CounterSet({items})"


@dataclass
class NetworkStats:
    """Message/byte totals broken down by message purpose."""

    store_messages: int = 0
    join_messages: int = 0
    punctuation_messages: int = 0
    result_messages: int = 0
    bytes_sent: int = 0

    @property
    def data_messages(self) -> int:
        """Store + join messages (the fan-out the models differ on)."""
        return self.store_messages + self.join_messages

    @property
    def total_messages(self) -> int:
        return (self.store_messages + self.join_messages
                + self.punctuation_messages + self.result_messages)

    def record(self, kind: str, size_bytes: int = 0, count: int = 1) -> None:
        if kind == "store":
            self.store_messages += count
        elif kind == "join":
            self.join_messages += count
        elif kind == "punctuation":
            self.punctuation_messages += count
        elif kind == "result":
            self.result_messages += count
        else:
            raise ValueError(f"unknown message kind {kind!r}")
        self.bytes_sent += size_bytes * count


@dataclass
class ThroughputWindow:
    """Sliding throughput estimate: events per second over recent samples.

    The router uses this for its "statistics related to input data, such
    as rate of events per second" responsibility (thesis §3.1.1).
    """

    horizon: float = 10.0
    _samples: list[float] = field(default_factory=list)

    def record(self, ts: float, count: int = 1) -> None:
        self._samples.extend([ts] * count)
        self._trim(ts)

    def _trim(self, now: float) -> None:
        cutoff = now - self.horizon
        # samples are time-ordered; drop from the front
        i = 0
        while i < len(self._samples) and self._samples[i] < cutoff:
            i += 1
        if i:
            del self._samples[:i]

    def rate(self, now: float) -> float:
        """Events per second over the trailing horizon."""
        self._trim(now)
        if not self._samples:
            return 0.0
        return len(self._samples) / self.horizon
