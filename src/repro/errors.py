"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError`, so
callers can catch a single base class.  Sub-hierarchies mirror the main
subsystems: the stream-join core, the broker substrate, the simulation
kernel and the cluster substrate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An engine, broker or cluster object was configured inconsistently."""


class SchemaError(ReproError):
    """A tuple does not conform to the schema it claims to instantiate."""


class PredicateError(ReproError):
    """A join predicate was constructed or evaluated incorrectly."""


class WindowError(ReproError):
    """An invalid window specification (e.g. non-positive extent)."""


class IndexError_(ReproError):
    """An in-memory join index was used incorrectly.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`IndexError`.
    """


class OrderingError(ReproError):
    """The tuple-ordering protocol detected an impossible state.

    Examples: a counter regression on a pairwise-FIFO channel, or a
    punctuation that is smaller than one already delivered.
    """


class RoutingError(ReproError):
    """A router could not route a tuple (unknown relation, empty group...)."""


class BrokerError(ReproError):
    """Base class for errors in the AMQP-style broker substrate."""


class UnknownExchangeError(BrokerError):
    """A publish or bind referenced an exchange that does not exist."""


class UnknownQueueError(BrokerError):
    """A consume or bind referenced a queue that does not exist."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel reached an invalid state."""


class ClusterError(ReproError):
    """The cluster substrate (pods/deployments/autoscaler) failed."""


class ParallelError(ReproError):
    """The multiprocess execution runtime reached an invalid state.

    Examples: a worker process died more times than the supervision
    restart budget allows, or a worker reported an unrecoverable
    exception from its command loop.
    """


class CodecError(ParallelError):
    """A wire frame could not be decoded.

    Raised on magic/version mismatches, truncated frames and checksum
    failures — the coordinator treats a corrupt frame from a dying
    worker as end-of-stream, never as data.
    """


class ScalingError(ClusterError):
    """A scale-out/scale-in request could not be satisfied."""


class GatewayError(ReproError):
    """The network ingest gateway reached an invalid state.

    Examples: the gateway was started twice, drained before being
    started, or its bridge thread died with an unexpected exception.
    """


class ProtocolError(GatewayError):
    """A client frame violated the ingest wire protocol.

    Raised on malformed JSON records, schema violations (missing or
    mistyped fields), oversized frames and RFC-6455 framing errors.
    The gateway answers with an error reply (or closes the connection
    for unrecoverable framing damage) — a protocol error from one
    client never crashes the accept loop.
    """


class WorkerCrashError(ParallelError):
    """A worker process failed and could not be recovered."""
