"""Chaos engineering for the real multiprocess runtime.

What :mod:`repro.simulation.faults` is to the simulated cluster, this
package is to :class:`~repro.parallel.parallel_cluster.ParallelCluster`
— except the faults here are *real*: SIGKILL and SIGSTOP of live
worker processes, byte-level corruption and reordering-free stalls of
actual pipe frames, and in-band command-loop hangs.  Three layers:

- :mod:`repro.chaos.plan` — the fault vocabulary (frozen dataclasses
  keyed by ingest index) and a seeded randomized plan generator;
- :mod:`repro.chaos.injector` — the runtime that executes a plan
  against a live cluster through the coordinator's fault-injection
  hooks (never enabled unless a :class:`ChaosConfig` is passed in);
- :mod:`repro.chaos.soak` — the standing soak harness: bounded rounds
  of workload × randomized faults, scored for lost/duplicate results
  against the window-semantics reference join, emitted as a JSON
  scorecard (``python -m repro soak``).

The acceptance bar is the paper's: elasticity and failure handling
must *compose* — every injected fault is survived with zero lost and
zero duplicated join results.
"""

from .injector import ChaosInjector
from .plan import (ALL_FAULT_KINDS, NETWORK_FAULT_KINDS, SCALE_FAULT_KINDS,
                   ChaosConfig, CorruptFrame, DropConnection, HangWorker,
                   KillDuringMigration, KillWorker, MalformedFrame,
                   PartialWrite, PipeStall, ScaleIn, ScaleOut,
                   SlowlorisClient, StallWorker, random_fault_plan)
from .soak import SoakConfig, run_soak, write_scorecard

__all__ = [
    "ALL_FAULT_KINDS",
    "NETWORK_FAULT_KINDS",
    "SCALE_FAULT_KINDS",
    "ChaosConfig",
    "ChaosInjector",
    "CorruptFrame",
    "DropConnection",
    "HangWorker",
    "KillDuringMigration",
    "KillWorker",
    "MalformedFrame",
    "PartialWrite",
    "PipeStall",
    "ScaleIn",
    "ScaleOut",
    "SlowlorisClient",
    "SoakConfig",
    "StallWorker",
    "random_fault_plan",
    "run_soak",
    "write_scorecard",
]
