"""Fault plans for the multiprocess runtime.

A chaos run is described by a :class:`ChaosConfig`: a validated,
ingest-index-sorted tuple of fault events, each a frozen dataclass in
the style of :mod:`repro.simulation.faults` — declarative data, no
behaviour.  ``at_tuple`` is the coordinator's ingest count at which the
fault fires (``0`` = before the first tuple); ``worker`` is an index
into the cluster's worker pool, taken modulo the pool size so plans
are portable across pool configurations.

:func:`random_fault_plan` draws a deterministic plan from a seeded
``random.Random`` — the soak harness's source of adversarial but
reproducible schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import ClassVar, Union

from ..errors import ConfigurationError

#: Corruption modes of :class:`CorruptFrame`.
CORRUPT_MODES = ("flip", "truncate", "duplicate")

#: Targets of :class:`CorruptShmBatch`: the record's fixed header or
#: its packed body (the slab).
SHM_CORRUPT_PARTS = ("header", "slab")


@dataclass(frozen=True)
class KillWorker:
    """SIGKILL one worker process: the classic fail-stop crash."""

    at_tuple: int
    worker: int
    kind: ClassVar[str] = "kill"

    def __post_init__(self) -> None:
        _validate_base(self)


@dataclass(frozen=True)
class StallWorker:
    """SIGSTOP one worker, SIGCONT it ``duration`` seconds later.

    The hung-but-alive case: the process passes liveness checks but
    answers nothing.  Short stalls are absorbed (the backlog settles on
    resume); stalls outliving the heartbeat/deadline escalation get the
    worker killed and replayed — either way exactly-once must hold.
    """

    at_tuple: int
    worker: int
    duration: float = 0.3
    kind: ClassVar[str] = "stall"

    def __post_init__(self) -> None:
        _validate_base(self)
        _validate_duration(self.duration)


@dataclass(frozen=True)
class HangWorker:
    """Block one worker's command loop in-band for ``seconds``.

    Unlike :class:`StallWorker` the process keeps running — this
    models a pathological computation inside the loop, injected via
    the :class:`~repro.parallel.commands.Hang` command.
    """

    at_tuple: int
    worker: int
    seconds: float = 0.3
    kind: ClassVar[str] = "hang"

    def __post_init__(self) -> None:
        _validate_base(self)
        _validate_duration(self.seconds)


@dataclass(frozen=True)
class CorruptFrame:
    """Corrupt the next ``count`` output frames of one worker.

    Injected at the codec boundary on the coordinator side, so the
    worker itself is untouched — this is the torn/garbled-channel
    case.  Modes: ``flip`` XORs one payload byte (CRC must catch it),
    ``truncate`` cuts the frame short (header/length validation must
    catch it), ``duplicate`` delivers the frame twice (the settlement
    path must treat the second as a redundant ack).
    """

    at_tuple: int
    worker: int
    mode: str = "flip"
    count: int = 1
    kind: ClassVar[str] = "corrupt"

    def __post_init__(self) -> None:
        _validate_base(self)
        if self.mode not in CORRUPT_MODES:
            raise ConfigurationError(
                f"unknown corruption mode {self.mode!r} "
                f"(expected one of {CORRUPT_MODES})")
        if self.count < 1:
            raise ConfigurationError("count must be >= 1")


@dataclass(frozen=True)
class CorruptShmBatch:
    """Corrupt the next ``count`` shared-memory settlement records of
    one worker.

    The shm analogue of :class:`CorruptFrame`: bits flip between the
    worker's ring write and the coordinator's decode, so the packed
    record's own validation — not the pipe codec — must catch the
    damage and quarantine the worker.  ``part`` picks the target:
    ``"header"`` flips inside the fixed self-validating header (magic/
    length bookkeeping must reject it), ``"slab"`` flips inside the
    packed body (the CRC must).  On the pipe transport no ring records
    exist, so the armed fault simply never consumes — harmless, which
    keeps randomized plans portable across transports.
    """

    at_tuple: int
    worker: int
    part: str = "header"
    count: int = 1
    kind: ClassVar[str] = "corrupt_shm"

    def __post_init__(self) -> None:
        _validate_base(self)
        if self.part not in SHM_CORRUPT_PARTS:
            raise ConfigurationError(
                f"unknown shm corruption part {self.part!r} "
                f"(expected one of {SHM_CORRUPT_PARTS})")
        if self.count < 1:
            raise ConfigurationError("count must be >= 1")


@dataclass(frozen=True)
class PipeStall:
    """Withhold one worker's output frames for ``duration`` seconds.

    Frames produced while the stall is active are buffered by the
    injector and released later *in order* — per-worker FIFO is
    preserved, because settled frames must remain a seq-order prefix
    (out-of-order settlement would break the restore/redelivery
    disjointness the exactly-once argument rests on).  From the
    coordinator's view this is indistinguishable from a hung worker,
    so it may trigger a kill: the late frames then surface as
    redundant acks, never as duplicates.
    """

    at_tuple: int
    worker: int
    duration: float = 0.3
    kind: ClassVar[str] = "pipe_stall"

    def __post_init__(self) -> None:
        _validate_base(self)
        _validate_duration(self.duration)


@dataclass(frozen=True)
class ScaleOut:
    """Grow the active pool by ``count`` workers (live migration).

    Not a failure but a *disturbance*: every added worker triggers
    rebalancing handoffs that then run concurrently with whatever
    real faults the plan schedules around them.
    """

    at_tuple: int
    count: int = 1
    kind: ClassVar[str] = "scale_out"

    def __post_init__(self) -> None:
        _validate_at(self.at_tuple)
        if self.count < 1:
            raise ConfigurationError("count must be >= 1")


@dataclass(frozen=True)
class ScaleIn:
    """Shrink the active pool by ``count`` workers (live migration).

    Clamped at one worker; shrinking a single-worker pool is a no-op
    rather than a plan error, so randomized plans stay portable.
    """

    at_tuple: int
    count: int = 1
    kind: ClassVar[str] = "scale_in"

    def __post_init__(self) -> None:
        _validate_at(self.at_tuple)
        if self.count < 1:
            raise ConfigurationError("count must be >= 1")


@dataclass(frozen=True)
class KillDuringMigration:
    """Start a live unit handoff, then immediately SIGKILL one side.

    The sharpest elastic-scaling fault: the migration is still
    quiescing when the ``victim`` (``"source"`` or ``"target"``)
    dies, so recovery and the handoff state machine must compose —
    the acceptance criterion behind the two-phase design.  The
    injector picks a currently non-migrating unit at fire time (and
    grows the pool to two workers first if needed), keeping the fault
    self-contained and portable across plans.
    """

    at_tuple: int
    victim: str = "source"
    kind: ClassVar[str] = "kill_mid_migration"

    def __post_init__(self) -> None:
        _validate_at(self.at_tuple)
        if self.victim not in ("source", "target"):
            raise ConfigurationError(
                f"victim must be 'source' or 'target', got {self.victim!r}")


@dataclass(frozen=True)
class DropConnection:
    """Abruptly reset the driving client's connection before send
    ``at_tuple``.

    No close frame, no drain — the gateway sees a mid-stream EOF
    (possibly with replies still in flight, so the client loses acks
    it must recover via ``duplicate`` answers after reconnecting).
    Network faults are keyed by the *client's send index*, not the
    coordinator's ingest count, and are consumed by the gateway-aware
    driver through :meth:`~repro.chaos.injector.ChaosInjector.
    network_faults_due`.
    """

    at_tuple: int
    kind: ClassVar[str] = "drop_connection"

    def __post_init__(self) -> None:
        _validate_at(self.at_tuple)


@dataclass(frozen=True)
class SlowlorisClient:
    """Open a side connection that sends a frame prefix, then stalls.

    The classic slow-drip attacker: the partial frame pins gateway
    buffer state without ever completing.  The gateway's
    ``idle_deadline`` guard must disconnect it within ``duration``
    seconds of patience — and the stalled connection must never slow
    the driving client down.
    """

    at_tuple: int
    duration: float = 0.5
    kind: ClassVar[str] = "slowloris"

    def __post_init__(self) -> None:
        _validate_at(self.at_tuple)
        _validate_duration(self.duration)


@dataclass(frozen=True)
class PartialWrite:
    """Send half of record ``at_tuple``'s frame, then reset the
    connection.

    The torn-write case: the gateway must discard the incomplete tail
    without crashing or admitting a mangled record, and the client's
    resend on the fresh connection must keep the stream exactly-once
    (server-side identity dedup absorbs any ack the reset ate).
    """

    at_tuple: int
    kind: ClassVar[str] = "partial_write"

    def __post_init__(self) -> None:
        _validate_at(self.at_tuple)


@dataclass(frozen=True)
class MalformedFrame:
    """Send ``count`` syntactically invalid frames before record
    ``at_tuple``.

    The gateway must answer each with an ``error`` reply (counted in
    ``repro_gateway_malformed_total``) and keep the connection's reply
    sequencing intact — malformed input never crashes the accept loop
    and never desynchronises the ack stream.
    """

    at_tuple: int
    count: int = 1
    kind: ClassVar[str] = "malformed_frame"

    def __post_init__(self) -> None:
        _validate_at(self.at_tuple)
        if self.count < 1:
            raise ConfigurationError("count must be >= 1")


Fault = Union[KillWorker, StallWorker, HangWorker, CorruptFrame,
              CorruptShmBatch, PipeStall, ScaleOut, ScaleIn,
              KillDuringMigration, DropConnection, SlowlorisClient,
              PartialWrite, MalformedFrame]

#: Every fault kind the generator can draw, including the three
#: corruption modes spelled out (``corrupt_flip`` etc.).
ALL_FAULT_KINDS = ("kill", "stall", "hang", "corrupt_flip",
                   "corrupt_truncate", "corrupt_duplicate", "pipe_stall")

#: Resize-disturbance kinds, drawn separately (``resizes=`` parameter)
#: so plans with resizes disabled are byte-identical to pre-elastic
#: plans under the same seed.
SCALE_FAULT_KINDS = ("scale_out", "scale_in", "kill_mid_migration")

#: Network-edge fault kinds (``network_faults=`` parameter), executed
#: by the gateway-aware client driver rather than the coordinator.
NETWORK_FAULT_KINDS = ("drop_connection", "slowloris", "partial_write",
                       "malformed_frame")


def _validate_at(at_tuple: int) -> None:
    if at_tuple < 0:
        raise ConfigurationError("at_tuple must be >= 0")


def _validate_base(fault) -> None:
    _validate_at(fault.at_tuple)
    if fault.worker < 0:
        raise ConfigurationError("worker index must be >= 0")


def _validate_duration(seconds: float) -> None:
    if seconds <= 0:
        raise ConfigurationError("durations must be positive")


@dataclass(frozen=True)
class ChaosConfig:
    """A validated fault schedule for one cluster run.

    Passing a ``ChaosConfig`` (via a :class:`~repro.chaos.injector.
    ChaosInjector`) is the *only* way faults reach a cluster — a
    cluster built without one runs exactly the production code paths.
    """

    faults: tuple[Fault, ...] = ()

    def __post_init__(self) -> None:
        # Keep the schedule sorted by firing index so the injector can
        # consume it as a queue (stable: ties fire in authoring order).
        object.__setattr__(self, "faults", tuple(
            sorted(self.faults, key=lambda f: f.at_tuple)))

    def __len__(self) -> int:
        return len(self.faults)

    @property
    def kinds(self) -> tuple[str, ...]:
        """The distinct fault kinds present, sorted."""
        return tuple(sorted({f.kind for f in self.faults}))


def random_fault_plan(rng: Random | int, n_tuples: int, workers: int, *,
                      faults: int = 3, resizes: int = 0,
                      shm_faults: int = 0, network_faults: int = 0,
                      kinds: tuple[str, ...] = ALL_FAULT_KINDS,
                      scale_kinds: tuple[str, ...] = SCALE_FAULT_KINDS,
                      network_kinds: tuple[str, ...] = NETWORK_FAULT_KINDS,
                      min_duration: float = 0.05,
                      max_duration: float = 0.3) -> ChaosConfig:
    """Draw a deterministic randomized fault plan.

    ``rng`` may be a seed (int) or a ``random.Random``; the same seed
    and arguments always produce the same plan.  Fault indices are
    spread over the middle of the run (``[n/10, 9n/10)``) so every
    fault fires while tuples are still arriving and recovery is
    exercised under ingest pressure, not during drain.

    ``resizes`` adds that many scale disturbances (drawn from
    ``scale_kinds``) *after* the base faults, from the same stream —
    so under a fixed seed the base plan is identical with resizes on
    or off, and turning resizes on only *adds* events.  Regression
    baselines (and E18's fault-coverage gates) survive the flag.
    ``shm_faults`` follows the same discipline for
    :class:`CorruptShmBatch` events: drawn after the resizes, so
    pre-shm plans under the same seed are byte-identical prefixes.
    ``network_faults`` (gateway-edge events, drawn from
    ``network_kinds``) come last of all, extending the discipline —
    every seeded pre-gateway plan is a byte-identical prefix of its
    gateway variant.
    """
    if n_tuples < 1:
        raise ConfigurationError("n_tuples must be >= 1")
    if workers < 1:
        raise ConfigurationError("workers must be >= 1")
    if faults < 0 or resizes < 0 or shm_faults < 0 or network_faults < 0:
        raise ConfigurationError(
            "faults/resizes/shm_faults/network_faults must be >= 0")
    unknown = set(kinds) - set(ALL_FAULT_KINDS)
    if unknown:
        raise ConfigurationError(f"unknown fault kinds {sorted(unknown)}")
    if not kinds:
        raise ConfigurationError("need at least one fault kind")
    unknown = set(scale_kinds) - set(SCALE_FAULT_KINDS)
    if unknown:
        raise ConfigurationError(f"unknown scale kinds {sorted(unknown)}")
    if resizes and not scale_kinds:
        raise ConfigurationError("need at least one scale kind")
    unknown = set(network_kinds) - set(NETWORK_FAULT_KINDS)
    if unknown:
        raise ConfigurationError(f"unknown network kinds {sorted(unknown)}")
    if network_faults and not network_kinds:
        raise ConfigurationError("need at least one network kind")
    if isinstance(rng, int):
        rng = Random(rng)

    lo, hi = max(1, n_tuples // 10), max(2, 9 * n_tuples // 10)
    events: list[Fault] = []
    for _ in range(faults):
        kind = rng.choice(kinds)
        at = rng.randrange(lo, hi)
        worker = rng.randrange(workers)
        duration = rng.uniform(min_duration, max_duration)
        if kind == "kill":
            events.append(KillWorker(at, worker))
        elif kind == "stall":
            events.append(StallWorker(at, worker, duration))
        elif kind == "hang":
            events.append(HangWorker(at, worker, duration))
        elif kind == "pipe_stall":
            events.append(PipeStall(at, worker, duration))
        else:
            mode = kind.removeprefix("corrupt_")
            events.append(CorruptFrame(at, worker, mode,
                                       count=rng.randrange(1, 3)))
    for _ in range(resizes):
        kind = rng.choice(scale_kinds)
        at = rng.randrange(lo, hi)
        if kind == "scale_out":
            events.append(ScaleOut(at, count=rng.randrange(1, 3)))
        elif kind == "scale_in":
            events.append(ScaleIn(at, count=rng.randrange(1, 3)))
        else:
            events.append(KillDuringMigration(
                at, victim=rng.choice(("source", "target"))))
    for _ in range(shm_faults):
        events.append(CorruptShmBatch(
            at_tuple=rng.randrange(lo, hi), worker=rng.randrange(workers),
            part=rng.choice(SHM_CORRUPT_PARTS),
            count=rng.randrange(1, 3)))
    for _ in range(network_faults):
        kind = rng.choice(network_kinds)
        at = rng.randrange(lo, hi)
        if kind == "drop_connection":
            events.append(DropConnection(at))
        elif kind == "slowloris":
            events.append(SlowlorisClient(
                at, duration=rng.uniform(min_duration, max_duration)))
        elif kind == "partial_write":
            events.append(PartialWrite(at))
        else:
            events.append(MalformedFrame(at, count=rng.randrange(1, 3)))
    return ChaosConfig(faults=tuple(events))
