"""The chaos injector: executes a fault plan against a live cluster.

The coordinator owns the hook points and calls them at well-defined
moments; the injector owns the schedule and all fault state:

- :meth:`ChaosInjector.on_ingest` — called at the top of every
  ``ParallelCluster.ingest``; fires each fault whose ``at_tuple`` has
  been reached, through the cluster's fault-injection API
  (``kill_worker`` / ``stop_worker`` / ``hang_worker``) or by arming
  frame-level state consumed below.
- :meth:`ChaosInjector.on_output_frame` — called for every raw frame
  the coordinator reads from a worker pipe, *before* decoding; returns
  the frames to actually process (possibly corrupted, duplicated, or
  withheld).
- :meth:`ChaosInjector.release_due` — stalled frames whose hold
  expired, in per-worker FIFO order.  A pipe stall withholds **every**
  subsequent frame of that worker until release: letting newer frames
  overtake held ones would settle batches out of sequence order and
  break the prefix-settlement invariant the exactly-once recovery
  argument rests on.
- :meth:`ChaosInjector.tick` — timer-driven work (due SIGCONTs),
  called from the supervisor.
- :meth:`ChaosInjector.resume_all` — SIGCONT anything still stopped,
  called when the cluster closes.

Byte corruption is deterministic (fixed positions, XOR 0xFF) so a
seeded plan reproduces the exact same wire damage.
"""

from __future__ import annotations

import time
from collections import Counter, deque

from ..errors import ParallelError
from ..parallel.codec import HEADER_SIZE
from ..parallel.worker import WorkerHandle
from ..parallel.shm import PAYLOAD_HEADER_SIZE
from .plan import (NETWORK_FAULT_KINDS, ChaosConfig, CorruptFrame,
                   CorruptShmBatch, HangWorker, KillDuringMigration,
                   KillWorker, PipeStall, ScaleIn, ScaleOut, StallWorker)


class _Stall:
    """One active pipe stall: a release deadline and the held frames."""

    __slots__ = ("deadline", "frames")

    def __init__(self, deadline: float) -> None:
        self.deadline = deadline
        self.frames: list[bytes] = []


def corrupt_bytes(data: bytes, mode: str) -> list[bytes]:
    """Apply one corruption mode to a raw frame; returns the frames to
    deliver in its place (two for ``duplicate``)."""
    if mode == "flip":
        # XOR one payload byte: the header survives, the CRC must not.
        if len(data) <= HEADER_SIZE:
            return [data[:-1] + bytes([data[-1] ^ 0xFF])] if data else [b""]
        pos = HEADER_SIZE + (len(data) - HEADER_SIZE) // 2
        return [data[:pos] + bytes([data[pos] ^ 0xFF]) + data[pos + 1:]]
    if mode == "truncate":
        # A torn write: keep the header plus half the payload, so the
        # length check (not just the CRC) gets exercised too.
        keep = HEADER_SIZE + max(0, (len(data) - HEADER_SIZE) // 2)
        return [data[:keep]]
    if mode == "duplicate":
        return [data, data]
    raise ValueError(f"unknown corruption mode {mode!r}")


def corrupt_shm_record(payload, part: str) -> bytes:
    """Deterministically damage one packed ring record (copied out —
    the shared segment itself is never written, mirroring how
    :func:`corrupt_bytes` never touches the pipe)."""
    data = bytearray(payload)
    if part == "header":
        # Byte 4 is the version field: header validation must reject it
        # before any body parsing happens.
        pos = min(4, len(data) - 1) if data else 0
    elif part == "slab":
        # Mid-body flip: the header stays pristine, the CRC must catch.
        pos = PAYLOAD_HEADER_SIZE + max(
            0, (len(data) - PAYLOAD_HEADER_SIZE) // 2)
        pos = min(pos, len(data) - 1)
    else:
        raise ValueError(f"unknown shm corruption part {part!r}")
    if data:
        data[pos] ^= 0xFF
    return bytes(data)


class ChaosInjector:
    """Runtime state of one fault plan against one cluster run.

    Single-use: construct per cluster, pass as ``ParallelCluster(...,
    chaos=injector)``.  ``injected`` counts executed faults by kind —
    exported by the coordinator as
    ``repro_parallel_faults_injected_total{kind=...}``.
    """

    def __init__(self, config: ChaosConfig) -> None:
        self.config = config
        #: Coordinator-side faults, sorted by at_tuple.  Network-edge
        #: faults live in their own queue: they key on the *client's
        #: send index* and are consumed by the gateway driver through
        #: :meth:`network_faults_due`, never by the coordinator hooks.
        self._pending = deque(f for f in config.faults
                              if f.kind not in NETWORK_FAULT_KINDS)
        self._network = deque(f for f in config.faults
                              if f.kind in NETWORK_FAULT_KINDS)
        #: worker id → queue of armed corruption modes (one per frame).
        self._armed: dict[str, deque[str]] = {}
        #: worker id → queue of armed shm-record corruption parts.
        self._armed_shm: dict[str, deque[str]] = {}
        #: worker id → active pipe stall.
        self._stalls: dict[str, _Stall] = {}
        #: (resume_at, pid) of scheduled SIGCONTs.
        self._sigconts: list[tuple[float, int]] = []
        self.injected: Counter[str] = Counter()

    # -- plan execution ----------------------------------------------------
    def on_ingest(self, cluster) -> None:
        """Fire every fault due at the cluster's current ingest count."""
        while (self._pending
               and self._pending[0].at_tuple <= cluster.tuples_ingested):
            fault = self._pending.popleft()
            self._fire(cluster, fault)

    def _fire(self, cluster, fault) -> None:
        if isinstance(fault, (ScaleOut, ScaleIn, KillDuringMigration)):
            self._fire_scale(cluster, fault)
            key = fault.kind
        else:
            worker_id = cluster.worker_ids[fault.worker
                                           % len(cluster.worker_ids)]
            if isinstance(fault, KillWorker):
                cluster.kill_worker(worker_id)
            elif isinstance(fault, StallWorker):
                pid = cluster.stop_worker(worker_id)
                if pid is not None:
                    self._sigconts.append(
                        (time.monotonic() + fault.duration, pid))
            elif isinstance(fault, HangWorker):
                cluster.hang_worker(worker_id, fault.seconds)
            elif isinstance(fault, CorruptFrame):
                arms = self._armed.setdefault(worker_id, deque())
                arms.extend([fault.mode] * fault.count)
            elif isinstance(fault, CorruptShmBatch):
                arms = self._armed_shm.setdefault(worker_id, deque())
                arms.extend([fault.part] * fault.count)
            elif isinstance(fault, PipeStall):
                deadline = time.monotonic() + fault.duration
                stall = self._stalls.get(worker_id)
                if stall is None:
                    self._stalls[worker_id] = _Stall(deadline)
                else:
                    # Overlapping stalls extend the hold; frames stay
                    # FIFO.
                    stall.deadline = max(stall.deadline, deadline)
            else:  # pragma: no cover - plan validation prevents this
                raise TypeError(f"unknown fault {fault!r}")
            if isinstance(fault, CorruptFrame):
                key = f"corrupt_{fault.mode}"
            elif isinstance(fault, CorruptShmBatch):
                key = f"corrupt_shm_{fault.part}"
            else:
                key = fault.kind
        self.injected[key] += 1

    def _fire_scale(self, cluster, fault) -> None:
        """Execute one resize disturbance through the elastic API."""
        if isinstance(fault, ScaleOut):
            cluster.scale_to(cluster.active_worker_count + fault.count)
        elif isinstance(fault, ScaleIn):
            cluster.scale_to(
                max(1, cluster.active_worker_count - fault.count))
        else:
            self._kill_mid_migration(cluster, fault)

    def _kill_mid_migration(self, cluster, fault) -> None:
        """Start a handoff of a currently non-migrating unit, then
        SIGKILL the chosen side while the unit is still quiescing.

        Self-contained: grows the pool to two workers first if needed,
        and degrades to a no-op only when every unit is already
        migrating (still counted — the plan fired it).
        """
        if cluster.active_worker_count < 2:
            cluster.scale_to(2)
        migrating = set(cluster.migrating_unit_ids)
        for source_id in cluster.active_worker_ids:
            for unit_id in cluster.units_of(source_id):
                if unit_id in migrating:
                    continue
                try:
                    target_id = cluster.migrate_unit(unit_id)
                except ParallelError:
                    # No eligible target from this source (e.g. the
                    # rest of the pool is retiring); try another unit.
                    continue
                victim = (target_id if fault.victim == "target"
                          else source_id)
                cluster.kill_worker(victim)
                return

    # -- network edge ------------------------------------------------------
    def network_faults_due(self, sent: int) -> list:
        """Pop every network-edge fault due at the client's send count.

        The gateway-aware driver calls this before each send; returned
        faults are counted as injected (the driver executes them
        unconditionally — there is no arming state to consume later).
        """
        due = []
        while self._network and self._network[0].at_tuple <= sent:
            fault = self._network.popleft()
            self.injected[fault.kind] += 1
            due.append(fault)
        return due

    # -- frame boundary ----------------------------------------------------
    def on_output_frame(self, worker_id: str, data: bytes) -> list[bytes]:
        """Filter one raw frame read from ``worker_id``'s pipe."""
        stall = self._stalls.get(worker_id)
        if stall is not None:
            # Hold unconditionally while the stall exists — even past
            # the deadline — so release_due drains strictly in order.
            stall.frames.append(data)
            return []
        arms = self._armed.get(worker_id)
        if arms:
            return corrupt_bytes(data, arms.popleft())
        return [data]

    def on_shm_record(self, worker_id: str, payload):
        """Filter one packed ring record popped for ``worker_id``'s
        doorbell, before the coordinator decodes it.  Unarmed workers
        get the payload back untouched (zero-copy path preserved);
        an armed :class:`~repro.chaos.plan.CorruptShmBatch` pops one
        arm and returns a damaged copy."""
        arms = self._armed_shm.get(worker_id)
        if arms:
            return corrupt_shm_record(payload, arms.popleft())
        return payload

    def release_due(self) -> list[tuple[str, bytes]]:
        """Expired stalls' frames, per-worker FIFO, ready to process."""
        now = time.monotonic()
        released: list[tuple[str, bytes]] = []
        for worker_id in [w for w, s in self._stalls.items()
                          if s.deadline <= now]:
            stall = self._stalls.pop(worker_id)
            released.extend((worker_id, frame) for frame in stall.frames)
        return released

    # -- timers ------------------------------------------------------------
    def tick(self, cluster=None) -> None:
        """Deliver due SIGCONTs (dead pids are ignored — the supervisor
        may have killed the stopped worker first)."""
        now = time.monotonic()
        due = [pid for at, pid in self._sigconts if at <= now]
        self._sigconts = [(at, pid) for at, pid in self._sigconts
                          if at > now]
        for pid in due:
            WorkerHandle.resume(pid)

    def resume_all(self) -> None:
        """SIGCONT every still-scheduled pid immediately (cluster
        shutdown: nothing may stay stopped past the run)."""
        for _, pid in self._sigconts:
            WorkerHandle.resume(pid)
        self._sigconts.clear()

    # -- introspection -----------------------------------------------------
    @property
    def exhausted(self) -> bool:
        """Every scheduled fault has fired and nothing is held back."""
        return (not self._pending and not self._network
                and not self._sigconts and not self._stalls
                and not any(self._armed.values())
                and not any(self._armed_shm.values()))

    @property
    def holding(self) -> int:
        """Frames currently withheld by active pipe stalls."""
        return sum(len(s.frames) for s in self._stalls.values())
