"""The standing soak harness: workload × randomized faults, scored.

One soak run is ``rounds`` independent cluster runs.  Each round draws
a deterministic workload and a deterministic fault plan from its own
sub-seed, runs them against a real :class:`~repro.parallel.
parallel_cluster.ParallelCluster` with an attached
:class:`~repro.chaos.injector.ChaosInjector`, and scores the settled
results against :func:`~repro.harness.reference.reference_join` — the
independent window-semantics oracle.  Routing alternates between hash
(equi-join) and random (band-join) rounds, so both strategies take the
same beating.

The verdict is binary per round: zero lost, zero duplicated, zero
spurious results, or the round fails.  :func:`run_soak` aggregates the
rounds into a JSON-serialisable *scorecard* (``ok`` only when every
round passed) — the artifact the E18 benchmark and the CI chaos-smoke
job gate on, written by :func:`write_scorecard`.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from random import Random

from ..core.biclique import BicliqueConfig
from ..core.predicates import BandJoinPredicate, EquiJoinPredicate
from ..core.tuples import StreamTuple
from ..core.windows import TimeWindow
from ..errors import ConfigurationError
from ..harness.reference import check_exactly_once, reference_join
from ..parallel import ParallelCluster, ParallelConfig
from .injector import ChaosInjector
from .plan import ALL_FAULT_KINDS, NETWORK_FAULT_KINDS, random_fault_plan

#: Decorrelates per-round sub-seeds drawn from one soak seed.
_SEED_STRIDE = 10007


@dataclass(frozen=True)
class SoakConfig:
    """One soak campaign: how many rounds, how hard, which faults.

    The defaults are the CI smoke shape: 10 short rounds, 3 faults
    each, every fault kind enabled, ~1 minute wall on two cores.
    """

    rounds: int = 10
    seed: int = 2015
    tuples_per_round: int = 320
    faults_per_round: int = 3
    workers: int = 2
    kinds: tuple[str, ...] = ALL_FAULT_KINDS
    window: float = 0.2
    key_space: int = 12
    value_space: int = 40
    #: Fold scale disturbances (scale-out/scale-in/kill-mid-migration)
    #: into every round's plan.  Drawn *after* the base faults from the
    #: same per-round stream, so the base plans — and therefore the
    #: fault-coverage gates — are identical with resizes on or off.
    resizes: bool = True
    resizes_per_round: int = 2
    #: Shm-record corruptions per round (header/slab bit flips against
    #: the zero-copy data plane).  Drawn *after* the base faults and
    #: resizes, so enabling them leaves every earlier draw — and
    #: therefore the standing fault-coverage gates — untouched.  They
    #: degrade to portable no-ops under ``transport="pipe"``.
    shm_faults_per_round: int = 2
    #: Route every round's arrivals through a loopback ingest gateway
    #: (``python -m repro soak --gateway``): a real TCP client drives
    #: the workload record by record and the plan gains network-edge
    #: faults — connection drops, slowloris side-connections, partial
    #: writes, malformed frames.  Network faults are drawn *after*
    #: every other category, so seeded base plans stay byte-identical
    #: prefixes with the gateway on or off.
    gateway: bool = False
    network_faults_per_round: int = 2

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ConfigurationError("rounds must be >= 1")
        if self.tuples_per_round < 10:
            raise ConfigurationError("tuples_per_round must be >= 10")
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.faults_per_round < 0:
            raise ConfigurationError("faults_per_round must be >= 0")
        if self.resizes_per_round < 0:
            raise ConfigurationError("resizes_per_round must be >= 0")
        if self.shm_faults_per_round < 0:
            raise ConfigurationError("shm_faults_per_round must be >= 0")
        if self.network_faults_per_round < 0:
            raise ConfigurationError("network_faults_per_round must be >= 0")

    @property
    def effective_resizes(self) -> int:
        """Scale disturbances per round after the on/off switch."""
        return self.resizes_per_round if self.resizes else 0

    @property
    def effective_network_faults(self) -> int:
        """Network-edge faults per round after the gateway switch."""
        return self.network_faults_per_round if self.gateway else 0


@dataclass(frozen=True)
class RoundScore:
    """Outcome of one round, JSON-shaped via ``dataclasses.asdict``."""

    round: int
    seed: int
    mode: str
    faults: tuple[str, ...]
    expected: int
    produced: int
    lost: int
    duplicated: int
    spurious: int
    restarts: int
    quarantines: int
    redeliveries: int
    redundant_acks: int
    corrupt_frames: int
    duration: float
    ok: bool
    failure: str = ""
    faults_injected: dict = field(default_factory=dict)
    migrations: int = 0
    aborted_migrations: int = 0
    #: Network-edge faults executed by the gateway driver (0 outside
    #: ``--gateway`` rounds), and the connection resets the driving
    #: client performed healing them.
    network_faults: int = 0
    client_resets: int = 0


def make_workload(rng: Random, n: int, *, key_space: int = 12,
                  value_space: int = 40) -> list[StreamTuple]:
    """A deterministic interleaved two-relation arrival sequence
    (timestamps advance by small random steps so punctuations and
    window expiry both trigger mid-round)."""
    arrivals: list[StreamTuple] = []
    ts = 0.0
    seqs = {"R": 0, "S": 0}
    for _ in range(n):
        ts += rng.uniform(0.0005, 0.003)
        relation = "R" if rng.random() < 0.5 else "S"
        arrivals.append(StreamTuple(
            relation=relation, ts=ts,
            values={"k": rng.randint(0, key_space),
                    "v": rng.randint(0, value_space)},
            seq=seqs[relation]))
        seqs[relation] += 1
    return arrivals


def _round_parallel_config(config: SoakConfig) -> ParallelConfig:
    # Tuned for fault density, not throughput: small batches so killed
    # workers hold unacked work, tight supervision so every fault is
    # noticed while tuples still arrive, and a restart budget that a
    # plan of pure kills cannot exhaust (each fault burns at most one
    # restart, plus slack for deadline kills of stalled pipes).
    return ParallelConfig(
        workers=config.workers, transfer_batch=8, max_unacked=8,
        supervise_every=16, heartbeat_interval=0.2, heartbeat_timeout=1.0,
        restart_limit=(2 * (config.faults_per_round
                            + config.effective_resizes
                            + config.shm_faults_per_round) + 4),
        command_deadline=0.5, deadline_retries=2, deadline_backoff_cap=4)


def _run_gateway_round(cluster, injector: ChaosInjector, arrivals):
    """Drive one round's arrivals through a loopback ingest gateway.

    A single TCP client streams the workload in order (in-order
    resends plus server-side identity dedup keep ingest exactly-once
    and ordered); the plan's network faults are executed by the
    client's ``fault_hook`` at their scheduled send indices —
    slowloris faults open *side* connections that the gateway's idle
    guard must reap without slowing the driver down.
    """
    # Local import: the chaos package must stay importable (and the
    # non-gateway soak runnable) without the gateway subsystem loaded.
    from ..gateway.client import GatewayClient, open_slowloris
    from ..gateway.server import GatewayConfig, IngestGateway

    pending_actions: list[str] = []
    lorises: list = []
    gateway = IngestGateway(cluster, None, GatewayConfig(
        handoff_depth=512, idle_deadline=0.15, drain_deadline=2.0)).start()

    def fault_hook(index: int):
        for fault in injector.network_faults_due(index):
            if fault.kind == "drop_connection":
                pending_actions.append("drop")
            elif fault.kind == "partial_write":
                pending_actions.append("partial")
            elif fault.kind == "malformed_frame":
                pending_actions.extend(["malformed"] * fault.count)
            else:  # slowloris: a stalling side connection
                lorises.append(
                    open_slowloris("127.0.0.1", gateway.port))
        return pending_actions.pop(0) if pending_actions else None

    client = GatewayClient("127.0.0.1", gateway.port)
    try:
        client_report = client.stream(arrivals, fault_hook=fault_hook)
    finally:
        client.close()
        for sock in lorises:
            try:
                sock.close()
            except OSError:
                pass
        try:
            gateway.drain()
        finally:
            gateway.close()
    report = cluster.drain()
    return cluster.results, report, client_report.resets


def run_round(config: SoakConfig, round_index: int) -> RoundScore:
    """Run and score one workload × fault-plan round."""
    round_seed = config.seed * _SEED_STRIDE + round_index
    rng = Random(round_seed)
    arrivals = make_workload(rng, config.tuples_per_round,
                             key_space=config.key_space,
                             value_space=config.value_space)
    # Alternate routing strategies across rounds: equi-join resolves to
    # hash routing, band-join to random routing.
    if round_index % 2 == 0:
        mode, predicate = "hash", EquiJoinPredicate("k", "k")
    else:
        mode, predicate = "random", BandJoinPredicate("v", "v", 1.0)
    window = TimeWindow(config.window)
    plan = random_fault_plan(rng, len(arrivals), config.workers,
                             faults=config.faults_per_round,
                             resizes=config.effective_resizes,
                             shm_faults=config.shm_faults_per_round,
                             network_faults=config.effective_network_faults,
                             kinds=config.kinds)
    injector = ChaosInjector(plan)
    cluster = ParallelCluster(
        BicliqueConfig(window=window, r_joiners=2, s_joiners=2, routers=2,
                       archive_period=0.05, punctuation_interval=0.02),
        predicate, _round_parallel_config(config), chaos=injector)

    started = time.monotonic()
    failure = ""
    report = None
    client_resets = 0
    with cluster:
        try:
            if config.gateway:
                results, report, client_resets = _run_gateway_round(
                    cluster, injector, arrivals)
            else:
                results, report = cluster.run(arrivals)
        except Exception as exc:  # noqa: BLE001 - scored, not raised
            # A crashed coordinator is the worst score a round can get:
            # the whole point of the hardening is that no injected
            # fault reaches here.
            failure = f"{type(exc).__name__}: {exc}"
            results = cluster.results
    duration = time.monotonic() - started

    r_stream = [t for t in arrivals if t.relation == "R"]
    s_stream = [t for t in arrivals if t.relation == "S"]
    expected = reference_join(r_stream, s_stream, predicate, window)
    check = check_exactly_once(results, expected)
    return RoundScore(
        round=round_index, seed=round_seed, mode=mode,
        faults=tuple(f"{f.kind}@{f.at_tuple}" for f in plan.faults),
        expected=check.expected, produced=check.produced,
        lost=check.missing, duplicated=check.duplicates,
        spurious=check.spurious,
        restarts=report.restarts if report else cluster.restarts,
        quarantines=cluster.quarantines,
        redeliveries=cluster.redeliveries,
        redundant_acks=cluster.redundant_acks,
        corrupt_frames=cluster.corrupt_frames,
        duration=duration,
        ok=check.ok and not failure,
        failure=failure,
        faults_injected=dict(injector.injected),
        migrations=cluster.migrations_completed,
        aborted_migrations=cluster.migrations_aborted,
        network_faults=sum(count for kind, count in injector.injected.items()
                           if kind in NETWORK_FAULT_KINDS),
        client_resets=client_resets)


def run_soak(config: SoakConfig | None = None, *,
             progress=None) -> dict:
    """Run a full soak campaign; returns the scorecard dict.

    ``progress`` (optional) is called with each :class:`RoundScore` as
    it completes — the CLI uses it to print a live table.
    """
    config = config if config is not None else SoakConfig()
    scores = []
    for index in range(config.rounds):
        score = run_round(config, index)
        if progress is not None:
            progress(score)
        scores.append(score)

    totals = {
        "rounds": len(scores),
        "rounds_failed": sum(1 for s in scores if not s.ok),
        "expected": sum(s.expected for s in scores),
        "produced": sum(s.produced for s in scores),
        "lost": sum(s.lost for s in scores),
        "duplicated": sum(s.duplicated for s in scores),
        "spurious": sum(s.spurious for s in scores),
        "restarts": sum(s.restarts for s in scores),
        "quarantines": sum(s.quarantines for s in scores),
        "redeliveries": sum(s.redeliveries for s in scores),
        "redundant_acks": sum(s.redundant_acks for s in scores),
        "migrations": sum(s.migrations for s in scores),
        "aborted_migrations": sum(s.aborted_migrations for s in scores),
        "network_faults": sum(s.network_faults for s in scores),
        "client_resets": sum(s.client_resets for s in scores),
        "duration": sum(s.duration for s in scores),
    }
    faults_injected: dict[str, int] = {}
    for score in scores:
        for kind, count in score.faults_injected.items():
            faults_injected[kind] = faults_injected.get(kind, 0) + count
    totals["faults_injected"] = faults_injected
    return {
        "harness": "repro.chaos.soak",
        "config": asdict(config),
        "rounds": [asdict(s) for s in scores],
        "totals": totals,
        "ok": all(s.ok for s in scores),
    }


def write_scorecard(scorecard: dict, path) -> None:
    """Write one scorecard as pretty-printed JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(scorecard, fh, indent=2, sort_keys=True)
        fh.write("\n")


def format_round(score: RoundScore) -> str:
    """One fixed-width table line per round (CLI progress output)."""
    verdict = "ok" if score.ok else "FAIL"
    faults = ",".join(score.faults) or "-"
    return (f"round {score.round:2d} [{score.mode:>6}] "
            f"expected={score.expected:4d} lost={score.lost} "
            f"dup={score.duplicated} restarts={score.restarts} "
            f"quarantines={score.quarantines} "
            f"migrations={score.migrations} {score.duration:5.1f}s "
            f"{verdict}  {faults}")
