"""The join-matrix model deployed over the broker substrate.

:class:`MatrixEngine` (in :mod:`repro.matrix.engine`) drives cells
directly — ideal for correctness and capacity analysis.  This module
deploys the same grid **through the messaging substrate**, mirroring
how both models shared one Storm cluster in the paper's evaluation:

- an entry destination where a pool of matrix routers compete,
- one inbox queue per cell (pairwise-FIFO channels),
- router-stamped counters + punctuations, so the same ordering
  protocol guards the matrix against cross-channel disorder,
- the same scaling caveat: growing the grid still requires a reshape
  with state migration (exposed here as :meth:`reshape`, which drains
  in-flight traffic, migrates, and re-subscribes the new cells).

This makes apples-to-apples network experiments possible: identical
broker, identical network models, different join topology.
"""

from __future__ import annotations


from ..broker.broker import Broker
from ..broker.channels import ChannelLayer
from ..broker.message import Delivery
from ..core.batching import BatchingConfig, EnvelopeBatch
from ..core.ordering import KIND_PUNCTUATION, KIND_STORE, Envelope
from ..core.predicates import JoinPredicate
from ..core.routing import stable_hash
from ..core.tuples import JoinResult, StreamTuple
from ..errors import ConfigurationError, ScalingError
from ..metrics.counters import NetworkStats
from ..metrics.latency import LatencyRecorder
from ..metrics.memory import MemorySnapshot
from .cell import MatrixCell
from .engine import MatrixConfig, MigrationStats

ENTRY_DESTINATION = "matrix.tuples.exchange"
ROUTER_GROUP = "matrixroutergroup"


def cell_inbox(row: int, col: int) -> str:
    """Destination name of a cell's inbox."""
    return f"cell.{row}.{col}.inbox"


class _MatrixRouter:
    """One competing router of the distributed matrix deployment."""

    def __init__(self, router_id: str, engine: "DistributedMatrixEngine") -> None:
        self.router_id = router_id
        self.engine = engine
        self._next_counter = 0
        self.tuples_ingested = 0
        self.batching = engine.batching
        self._pending: dict[str, list[Envelope]] = {}
        self._pending_tuples = 0

    @property
    def next_counter(self) -> int:
        return self._next_counter

    def advance_counter_to(self, value: int) -> None:
        if value > self._next_counter:
            self._next_counter = value

    def on_delivery(self, delivery: Delivery) -> None:
        self.route_tuple(delivery.message.payload)

    def route_tuple(self, t: StreamTuple) -> None:
        engine = self.engine
        counter = self._next_counter
        self._next_counter += 1
        self.tuples_ingested += 1
        envelope = Envelope(kind=KIND_STORE, router_id=self.router_id,
                            counter=counter, tuple=t)
        batching = self.batching.enabled
        for row, col in engine.target_coords(t):
            if batching:
                self._pending.setdefault(cell_inbox(row, col),
                                         []).append(envelope)
            else:
                engine.channels.send(cell_inbox(row, col), envelope,
                                     sender=self.router_id)
            engine.network_stats.record("store", envelope.size_bytes())
        if batching:
            self._pending_tuples += 1
            if self._pending_tuples >= self.batching.batch_size:
                self.flush_batches()

    def flush_batches(self) -> None:
        """Ship every buffered inbox as one batch message (FIFO-safe:
        buffered order equals stamped-counter order per channel)."""
        engine = self.engine
        for inbox, envelopes in self._pending.items():
            payload: Envelope | EnvelopeBatch = envelopes[0] \
                if len(envelopes) == 1 else EnvelopeBatch(tuple(envelopes))
            engine.channels.send(inbox, payload, sender=self.router_id)
        self._pending.clear()
        self._pending_tuples = 0

    def emit_punctuation(self) -> None:
        # The punctuation promises every stamped counter below it has
        # been *sent*; anything still buffered must go out first.
        if self._pending_tuples:
            self.flush_batches()
        envelope = Envelope(kind=KIND_PUNCTUATION, router_id=self.router_id,
                            counter=self._next_counter)
        for row in range(self.engine.rows):
            for col in range(self.engine.cols):
                self.engine.channels.send(cell_inbox(row, col), envelope,
                                          sender=self.router_id)
                self.engine.network_stats.record(
                    "punctuation", envelope.size_bytes())


class DistributedMatrixEngine:
    """A join-matrix grid wired through the broker substrate."""

    def __init__(self, config: MatrixConfig, predicate: JoinPredicate,
                 broker: Broker | None = None, *, routers: int = 1,
                 batching: BatchingConfig | None = None) -> None:
        if routers < 1:
            raise ConfigurationError("need at least one matrix router")
        self.config = config
        self.predicate = predicate
        self.batching = batching if batching is not None else BatchingConfig()
        self.broker = broker if broker is not None else Broker()
        self.channels = ChannelLayer(self.broker)
        self.network_stats = NetworkStats()
        self.results: list[JoinResult] = []
        self.latency = LatencyRecorder()
        self.migration = MigrationStats()
        self._rr_row = 0
        self._rr_col = 0
        self._last_punctuation_ts: float | None = None
        self._cell_generation = 0

        self.cells: list[list[MatrixCell]] = []
        self.routers: list[_MatrixRouter] = []
        self.channels.declare_destination(ENTRY_DESTINATION)
        self._build_grid(config.rows, config.cols)
        for i in range(routers):
            self._add_router(f"mrouter{i}")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _record_result(self, result: JoinResult) -> None:
        self.results.append(result)
        self.latency.record(max(0.0, result.produced_at - max(result.r.ts,
                                                              result.s.ts)))

    def _build_grid(self, rows: int, cols: int) -> None:
        self.rows = rows
        self.cols = cols
        self._cell_generation += 1
        generation = self._cell_generation
        self.cells = []
        for row in range(rows):
            grid_row = []
            for col in range(cols):
                cell = MatrixCell(
                    row, col, self.predicate, self.config.window,
                    self.config.archive_period, self._record_result,
                    ordered=self.config.ordered,
                    timestamp_policy=self.config.timestamp_policy,
                    expiry_slack=self.config.expiry_slack)
                for router in self.routers:
                    cell.register_router(router.router_id)
                inbox = cell_inbox(row, col)
                self.channels.declare_destination(inbox)
                consumer_id = f"cell-{row}-{col}-g{generation}"

                def callback(delivery: Delivery, cell=cell) -> None:
                    payload = delivery.message.payload
                    if isinstance(payload, EnvelopeBatch):
                        cell.on_batch(payload, now=delivery.time)
                    else:
                        cell.on_envelope(payload, now=delivery.time)

                self.channels.subscribe(inbox, consumer_id, callback,
                                        group=f"{inbox}.group")
                grid_row.append(cell)
            self.cells.append(grid_row)

    def _add_router(self, router_id: str) -> _MatrixRouter:
        router = _MatrixRouter(router_id, self)
        floor = max((r.next_counter for r in self.routers), default=0)
        router.advance_counter_to(floor)
        self.routers.append(router)
        for row in self.cells:
            for cell in row:
                cell.register_router(router_id)
        self.channels.subscribe(ENTRY_DESTINATION, router_id,
                                router.on_delivery, group=ROUTER_GROUP)
        return router

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _row_of(self, t: StreamTuple) -> int:
        if self.config.partitioning == "hash":
            attr = self.predicate.key_attribute("R")
            if attr is not None:
                return stable_hash(t[attr]) % self.rows
        row = self._rr_row
        self._rr_row = (self._rr_row + 1) % self.rows
        return row

    def _col_of(self, t: StreamTuple) -> int:
        if self.config.partitioning == "hash":
            attr = self.predicate.key_attribute("S")
            if attr is not None:
                return stable_hash(t[attr]) % self.cols
        col = self._rr_col
        self._rr_col = (self._rr_col + 1) % self.cols
        return col

    def target_coords(self, t: StreamTuple) -> list[tuple[int, int]]:
        """Grid coordinates of a tuple's replication set."""
        if t.relation == "R":
            row = self._row_of(t)
            return [(row, col) for col in range(self.cols)]
        col = self._col_of(t)
        return [(row, col) for row in range(self.rows)]

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(self, t: StreamTuple) -> None:
        """Publish one tuple to the entry exchange (router pool)."""
        self._maybe_punctuate(t.ts)
        self.channels.send(ENTRY_DESTINATION, t, sender="source")

    def _maybe_punctuate(self, ts: float) -> None:
        if self._last_punctuation_ts is None:
            self._last_punctuation_ts = ts
            return
        if ts - self._last_punctuation_ts >= self.config.punctuation_interval:
            self.punctuate_all()
            self._last_punctuation_ts = ts

    def punctuate_all(self) -> None:
        for router in self.routers:
            router.emit_punctuation()

    def maintain_punctuations(self, now: float) -> None:
        """Keep watermarks advancing while admission is stalled (the
        counterpart of :meth:`BicliqueEngine.maintain_punctuations`)."""
        self._maybe_punctuate(now)

    def flush_transport(self) -> None:
        """Flush every router's buffered transport batches (must run
        before the simulator's final drain — see
        :meth:`repro.core.biclique.BicliqueEngine.flush_transport`)."""
        for router in self.routers:
            router.flush_batches()

    def finish(self) -> None:
        self.punctuate_all()
        for row in self.cells:
            for cell in row:
                cell.flush()

    # ------------------------------------------------------------------
    # Scaling: reshape with migration (the matrix burden, now with
    # broker re-wiring on top)
    # ------------------------------------------------------------------
    def reshape(self, rows: int, cols: int) -> None:
        """Reshape the grid, migrating live state and re-wiring queues.

        The distributed variant must additionally quiesce in-flight
        traffic (a synchronous broker delivers eagerly, so draining the
        ordering buffers via a final punctuation suffices), detach the
        old cells' subscriptions and delete their queues.
        """
        if rows < 1 or cols < 1:
            raise ScalingError("matrix reshape needs at least a 1x1 grid")
        if self.broker.is_simulated:
            # With scheduled deliveries, envelopes may still be in
            # flight towards the old cells; migrating under them would
            # lose or duplicate state.  The synchronous driver delivers
            # eagerly, so finish() below fully quiesces it.  (In the
            # real system this is the "stop-the-world" cost of the
            # matrix reshape the paper argues against.)
            raise ScalingError(
                "distributed matrix reshape requires a quiesced "
                "synchronous broker; drain the simulator and rebuild "
                "the deployment instead")
        self.finish()
        unique_r: dict[tuple[str, int], StreamTuple] = {}
        unique_s: dict[tuple[str, int], StreamTuple] = {}
        for row_cells in self.cells:
            for cell in row_cells:
                r_tuples, s_tuples = cell.stored_state()
                for t in r_tuples:
                    unique_r[t.ident] = t
                for t in s_tuples:
                    unique_s[t.ident] = t
        # Tear down the old cells' queues (their consumers die with the
        # grid; queue deletion also unbinds them from the exchanges).
        old_generation = self._cell_generation
        for row in range(self.rows):
            for col in range(self.cols):
                inbox = cell_inbox(row, col)
                queue = f"{inbox}.{inbox}.group"
                self.channels.unsubscribe(
                    queue, f"cell-{row}-{col}-g{old_generation}",
                    delete_queue=True)

        self._build_grid(rows, cols)
        self._rr_row = self._rr_col = 0
        self.migration.reshapes += 1
        for t in sorted(unique_r.values(), key=lambda t: (t.ts, t.seq)):
            self._migrate_store(t)
        for t in sorted(unique_s.values(), key=lambda t: (t.ts, t.seq)):
            self._migrate_store(t)

    def _migrate_store(self, t: StreamTuple) -> None:
        coords = self.target_coords(t)
        for row, col in coords:
            cell = self.cells[row][col]
            index = cell.r_index if t.relation == "R" else cell.s_index
            index.insert(t)
            self.migration.tuples_migrated += 1
            self.migration.bytes_migrated += t.size_bytes()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def all_cells(self) -> list[MatrixCell]:
        return [cell for row in self.cells for cell in row]

    def memory_snapshot(self, now: float = 0.0) -> MemorySnapshot:
        return MemorySnapshot(
            time=now,
            per_unit_live_bytes={cell.cell_id: cell.live_bytes
                                 for cell in self.all_cells()})

    def total_stored_tuples(self) -> int:
        return sum(cell.stored_tuples for cell in self.all_cells())
