"""The join-matrix engine — the baseline model the paper compares against.

Routing: an arriving ``r`` is assigned one *row* (round-robin, or by
key hash for equi-joins) and replicated to **all cells of that row**
(``cols`` messages); an ``s`` is assigned one *column* and replicated
down it (``rows`` messages).  With a square ``√p x √p`` matrix the
per-tuple fan-out is ``√p`` — lower than the biclique's broadcast of
``p/2`` — but every tuple is *stored* ``√p`` times, which is the memory
overhead (and the scaling rigidity) the join-biclique model eliminates.

Scaling requires **reshaping the whole grid**: stored state must be
re-partitioned and re-replicated to the new geometry.  :meth:`reshape`
implements this faithfully and accounts the migrated bytes, so the E8
elasticity benchmark can contrast it with the biclique's migration-free
scale-out.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.ordering import KIND_PUNCTUATION, KIND_STORE, Envelope
from ..core.predicates import JoinPredicate
from ..core.routing import stable_hash
from ..core.tuples import JoinResult, StreamTuple
from ..core.windows import FullHistoryWindow, TimeWindow
from ..errors import ConfigurationError, ScalingError
from ..metrics.counters import NetworkStats
from ..metrics.latency import LatencyRecorder
from ..metrics.memory import MemorySnapshot
from .cell import MatrixCell

ROUTER_ID = "matrix-router"


@dataclass
class MatrixConfig:
    """Configuration of a join-matrix deployment.

    Attributes:
        rows / cols: grid geometry (R partitions x S partitions).
        window: sliding window Ws.
        archive_period: chained-index slice length (same engine-level
            index as the biclique, for an apples-to-apples comparison).
        partitioning: ``"hash"`` routes by join-key hash (equi-joins),
            ``"random"`` round-robins rows/columns (theta-joins).
        punctuation_interval: stream-time between punctuations.
        ordered / timestamp_policy / expiry_slack: as in BicliqueConfig.
    """

    window: TimeWindow | FullHistoryWindow
    rows: int = 2
    cols: int = 2
    archive_period: float | None = 30.0
    partitioning: str = "random"
    punctuation_interval: float = 0.02
    ordered: bool = True
    timestamp_policy: str = "max"
    expiry_slack: float = 0.0

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ConfigurationError("matrix needs at least a 1x1 grid")
        if self.partitioning not in ("hash", "random"):
            raise ConfigurationError(
                f"partitioning must be hash/random, got {self.partitioning!r}")


@dataclass
class MigrationStats:
    """Cost of grid reshapes (the matrix model's scaling burden)."""

    reshapes: int = 0
    tuples_migrated: int = 0
    bytes_migrated: int = 0


class MatrixEngine:
    """A join-matrix deployment with the same driver API as the biclique."""

    def __init__(self, config: MatrixConfig, predicate: JoinPredicate) -> None:
        self.config = config
        self.predicate = predicate
        self.results: list[JoinResult] = []
        self.latency = LatencyRecorder()
        self.network_stats = NetworkStats()
        self.migration = MigrationStats()
        self._counter = 0
        self._rr_row = 0
        self._rr_col = 0
        self._now = 0.0
        self._last_punctuation_ts: float | None = None
        self.cells: list[list[MatrixCell]] = []
        self._build_grid(config.rows, config.cols)

    # ------------------------------------------------------------------
    # Grid construction
    # ------------------------------------------------------------------
    def _build_grid(self, rows: int, cols: int) -> None:
        self.rows = rows
        self.cols = cols
        self.cells = [[self._new_cell(i, j) for j in range(cols)]
                      for i in range(rows)]

    def _new_cell(self, row: int, col: int) -> MatrixCell:
        cell = MatrixCell(
            row, col, self.predicate, self.config.window,
            self.config.archive_period, self._record_result,
            ordered=self.config.ordered,
            timestamp_policy=self.config.timestamp_policy,
            expiry_slack=self.config.expiry_slack)
        cell.register_router(ROUTER_ID)
        return cell

    def _record_result(self, result: JoinResult) -> None:
        self.results.append(result)
        self.latency.record(max(0.0, result.produced_at - max(result.r.ts,
                                                              result.s.ts)))

    # ------------------------------------------------------------------
    # Routing and ingestion
    # ------------------------------------------------------------------
    def _row_of(self, t: StreamTuple) -> int:
        if self.config.partitioning == "hash":
            attr = self.predicate.key_attribute("R")
            if attr is not None:
                return stable_hash(t[attr]) % self.rows
        row = self._rr_row
        self._rr_row = (self._rr_row + 1) % self.rows
        return row

    def _col_of(self, t: StreamTuple) -> int:
        if self.config.partitioning == "hash":
            attr = self.predicate.key_attribute("S")
            if attr is not None:
                return stable_hash(t[attr]) % self.cols
        col = self._rr_col
        self._rr_col = (self._rr_col + 1) % self.cols
        return col

    def target_cells(self, t: StreamTuple) -> list[MatrixCell]:
        """The replication set of a tuple: one full row or column."""
        if t.relation == "R":
            row = self._row_of(t)
            return list(self.cells[row])
        col = self._col_of(t)
        return [self.cells[i][col] for i in range(self.rows)]

    def ingest(self, t: StreamTuple) -> None:
        """Replicate one tuple to its row (R) or column (S) of cells."""
        self._maybe_punctuate(t.ts)
        self._now = max(self._now, t.ts)
        envelope = Envelope(kind=KIND_STORE, router_id=ROUTER_ID,
                            counter=self._counter, tuple=t)
        self._counter += 1
        for cell in self.target_cells(t):
            self.network_stats.record("store", envelope.size_bytes())
            cell.on_envelope(envelope, now=self._now)

    def _maybe_punctuate(self, ts: float) -> None:
        if self._last_punctuation_ts is None:
            self._last_punctuation_ts = ts
            return
        if ts - self._last_punctuation_ts >= self.config.punctuation_interval:
            self.punctuate_all()
            self._last_punctuation_ts = ts

    def punctuate_all(self) -> None:
        envelope = Envelope(kind=KIND_PUNCTUATION, router_id=ROUTER_ID,
                            counter=self._counter)
        for row in self.cells:
            for cell in row:
                self.network_stats.record("punctuation", envelope.size_bytes())
                cell.on_envelope(envelope, now=self._now)

    def finish(self) -> None:
        self.punctuate_all()
        for row in self.cells:
            for cell in row:
                cell.flush()

    # ------------------------------------------------------------------
    # Scaling: reshape with state migration
    # ------------------------------------------------------------------
    def reshape(self, rows: int, cols: int, *, now: float = 0.0) -> None:
        """Re-deploy the grid to a new geometry, migrating live state.

        All stored tuples are exported from the old cells, deduplicated
        (each tuple exists in ``cols``/``rows`` replicas) and
        re-replicated into the new grid.  Every re-stored byte counts as
        migration traffic — the cost the join-biclique avoids entirely.
        """
        if rows < 1 or cols < 1:
            raise ScalingError("matrix reshape needs at least a 1x1 grid")
        self.finish()  # release everything in-flight under the old grid
        unique_r: dict[tuple[str, int], StreamTuple] = {}
        unique_s: dict[tuple[str, int], StreamTuple] = {}
        for row in self.cells:
            for cell in row:
                r_tuples, s_tuples = cell.stored_state()
                for t in r_tuples:
                    unique_r[t.ident] = t
                for t in s_tuples:
                    unique_s[t.ident] = t

        self._build_grid(rows, cols)
        self._rr_row = self._rr_col = 0
        self.migration.reshapes += 1
        for t in sorted(unique_r.values(), key=lambda t: (t.ts, t.seq)):
            self._migrate_store(t)
        for t in sorted(unique_s.values(), key=lambda t: (t.ts, t.seq)):
            self._migrate_store(t)

    def _migrate_store(self, t: StreamTuple) -> None:
        """Re-insert one live tuple into the new grid (no re-probing:
        results for already-seen pairs were produced pre-reshape)."""
        targets = (self.cells[self._row_of(t)] if t.relation == "R"
                   else [self.cells[i][self._col_of(t)]
                         for i in range(self.rows)])
        for cell in targets:
            index = cell.r_index if t.relation == "R" else cell.s_index
            index.insert(t)
            self.migration.tuples_migrated += 1
            self.migration.bytes_migrated += t.size_bytes()

    # ------------------------------------------------------------------
    # Introspection (API-compatible with BicliqueEngine where sensible)
    # ------------------------------------------------------------------
    def all_cells(self) -> list[MatrixCell]:
        return [cell for row in self.cells for cell in row]

    def memory_snapshot(self, now: float = 0.0) -> MemorySnapshot:
        return MemorySnapshot(
            time=now,
            per_unit_live_bytes={cell.cell_id: cell.live_bytes
                                 for cell in self.all_cells()})

    def total_stored_tuples(self) -> int:
        return sum(cell.stored_tuples for cell in self.all_cells())

    def total_comparisons(self) -> int:
        return sum(cell.comparisons for cell in self.all_cells())
