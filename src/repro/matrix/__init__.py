"""The join-matrix baseline model (Stamos & Young; Squall-style).

The comparison target of the join-biclique paper: units form a grid,
tuples are replicated along a row or column, and scaling requires a
full grid reshape with state migration.  See
:class:`~repro.matrix.engine.MatrixEngine`.
"""

from .cell import CellStats, MatrixCell
from .distributed import DistributedMatrixEngine
from .engine import MatrixConfig, MatrixEngine, MigrationStats

__all__ = [
    "CellStats",
    "DistributedMatrixEngine",
    "MatrixCell",
    "MatrixConfig",
    "MatrixEngine",
    "MigrationStats",
]
