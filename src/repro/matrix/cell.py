"""A join-matrix cell (thesis §2.4.1, Figure 3(a)).

In the join-matrix model (Stamos & Young [32], revisited by Elseidy et
al. [22] / Squall), the processing units form a ``rows x cols`` grid.
Relation R is partitioned across *rows* and replicated along each row;
relation S is partitioned across *columns* and replicated along each
column.  Every ``(r, s)`` pair therefore meets in exactly one cell —
``(row(r), col(s))`` — so each cell evaluates the join between its row's
R-partition and its column's S-partition.

Unlike a biclique joiner (which stores one relation and probes with the
other), a matrix cell stores *both* relations: an arriving tuple first
probes the opposite relation's index, then is stored in its own — the
probe-then-store order gives exactly-once output under a consistent
processing order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.batching import EnvelopeBatch
from ..core.chained_index import ChainedInMemoryIndex
from ..core.ordering import KIND_PUNCTUATION, Envelope, ReorderBuffer
from ..core.predicates import JoinPredicate
from ..core.tuples import JoinResult, StreamTuple, make_result
from ..core.windows import TimeWindow

ResultSink = Callable[[JoinResult], None]


@dataclass
class CellStats:
    """Per-cell processing counters."""

    tuples_received: int = 0
    results_emitted: int = 0


class MatrixCell:
    """One processing unit of the join-matrix grid."""

    def __init__(self, row: int, col: int, predicate: JoinPredicate,
                 window: TimeWindow, archive_period: float | None,
                 result_sink: ResultSink, *, ordered: bool = True,
                 timestamp_policy: str = "max",
                 expiry_slack: float = 0.0) -> None:
        self.row = row
        self.col = col
        self.cell_id = f"cell[{row},{col}]"
        self.window = window
        self.result_sink = result_sink
        self.ordered = ordered
        self.timestamp_policy = timestamp_policy
        self.r_index = ChainedInMemoryIndex(
            predicate, stored_side="R", window=window,
            archive_period=archive_period, expiry_slack=expiry_slack)
        self.s_index = ChainedInMemoryIndex(
            predicate, stored_side="S", window=window,
            archive_period=archive_period, expiry_slack=expiry_slack)
        self.reorder = ReorderBuffer()
        self.stats = CellStats()
        self._now = 0.0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def live_bytes(self) -> int:
        return self.r_index.bytes + self.s_index.bytes

    @property
    def stored_tuples(self) -> int:
        return len(self.r_index) + len(self.s_index)

    @property
    def comparisons(self) -> int:
        return self.r_index.stats.comparisons + self.s_index.stats.comparisons

    # ------------------------------------------------------------------
    # Input
    # ------------------------------------------------------------------
    def register_router(self, router_id: str) -> None:
        self.reorder.register_router(router_id)

    def on_envelope(self, envelope: Envelope, now: float = 0.0) -> None:
        self._now = max(self._now, now)
        if not self.ordered:
            self._process(envelope)
            return
        for released in self.reorder.add(envelope):
            self._process(released)

    def on_batch(self, batch: EnvelopeBatch, now: float = 0.0) -> None:
        """Unpack a transport batch in member order (one delivery)."""
        self._now = max(self._now, now)
        if not self.ordered:
            for envelope in batch:
                self._process(envelope)
            return
        for released in self.reorder.add_batch(batch):
            self._process(released)

    def flush(self) -> None:
        for envelope in self.reorder.drain():
            self._process(envelope)

    # ------------------------------------------------------------------
    # Probe-then-store processing
    # ------------------------------------------------------------------
    def _process(self, envelope: Envelope) -> None:
        if envelope.kind == KIND_PUNCTUATION:
            return
        t = envelope.tuple
        assert t is not None
        self.stats.tuples_received += 1
        if t.relation == "R":
            for s in self.s_index.probe(t):
                self._emit(t, s)
            self.r_index.insert(t)
        else:
            for r in self.r_index.probe(t):
                self._emit(r, t)
            self.s_index.insert(t)

    def _emit(self, r: StreamTuple, s: StreamTuple) -> None:
        self.stats.results_emitted += 1
        self.result_sink(make_result(
            r, s, produced_at=self._now, producer=self.cell_id,
            timestamp_policy=self.timestamp_policy))

    # ------------------------------------------------------------------
    # Reshaping support
    # ------------------------------------------------------------------
    def stored_state(self) -> tuple[list[StreamTuple], list[StreamTuple]]:
        """All live tuples (R-list, S-list) — exported during a reshape."""
        return (list(self.r_index.all_tuples()), list(self.s_index.all_tuples()))
