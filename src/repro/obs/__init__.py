"""End-to-end observability: tracing, metrics registry, stage latency.

Three pieces, designed to thread through the whole stack without
perturbing it:

- :mod:`~repro.obs.trace` — a causal :class:`Tracer` recording
  ``route → enqueue → deliver → store/probe → emit`` spans (plus
  ``archive``/``replay``/``scale`` events) keyed by tuple identity,
  with deterministic hash-based sampling, a hard span cap and a
  JSONL event log; the default :data:`NOOP_TRACER` makes every
  instrumentation site a single attribute check;
- :mod:`~repro.obs.registry` — a process-wide :class:`MetricsRegistry`
  (counters, gauges, histograms) that the broker, engine components,
  cluster runtime and simulation kernel publish into, with
  Prometheus-style text exposition and per-run snapshots;
- :mod:`~repro.obs.stages` — the per-stage latency breakdown
  (:func:`compute_stage_breakdown`) decomposing end-to-end result
  latency along the traced chain, and the causal-chain integrity
  checker (:func:`check_causal_chains`).
"""

from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .stages import (
    STAGE_NAMES,
    ChainCheck,
    StageBreakdown,
    check_causal_chains,
    compute_stage_breakdown,
)
from .trace import (
    NOOP_TRACER,
    SPAN_KINDS,
    SPAN_SHED,
    SPAN_THROTTLE,
    NoopTracer,
    Span,
    Tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "STAGE_NAMES",
    "ChainCheck",
    "StageBreakdown",
    "check_causal_chains",
    "compute_stage_breakdown",
    "NOOP_TRACER",
    "SPAN_KINDS",
    "SPAN_SHED",
    "SPAN_THROTTLE",
    "NoopTracer",
    "Span",
    "Tracer",
]
