"""Per-stage latency decomposition and causal-chain verification.

The end-to-end result latency the E3/E13 benches report is
``produced_at - max(r.ts, s.ts)``.  This module splits that number
along the traced causal chain of the *probing* tuple (the later
arrival, whose probe emitted the result):

- ``route``    — source timestamp → ``route`` span: entry-queue wait,
  network hop to the router pool and the router pod's own queueing/CPU;
- ``transit``  — ``route`` span → ``deliver`` span at the emitting
  unit: the broker hop onto the joiner inbox (network + redeliveries);
- ``process``  — ``deliver`` span → ``emit`` span: reorder-buffer
  watermark wait plus the joiner pod's executor queue and CPU service.

The three stages tile the probing tuple's path exactly (each stage
starts where the previous one ended), so their sum reconciles with the
end-to-end latency up to the difference between the probing tuple's
timestamp and ``max(r.ts, s.ts)`` — zero for in-order workloads, which
:meth:`StageBreakdown.reconciles` asserts within a tolerance.

:func:`check_causal_chains` is the integrity side of the same trace:
every emitted join result must map to exactly one ``emit`` span whose
probing and stored tuples both have complete, connected chains — no
orphan spans, no double emits — even across crash/replay recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..metrics.latency import LatencyRecorder, LatencySummary
from .trace import (
    SPAN_DELIVER,
    SPAN_EMIT,
    SPAN_PROBE,
    SPAN_REPLAY,
    SPAN_ROUTE,
    SPAN_STORE,
    Tracer,
)

#: Stage names, in path order.
STAGE_NAMES = ("route", "transit", "process")


@dataclass(frozen=True)
class StageBreakdown:
    """Aggregated per-stage latency decomposition of traced results.

    Attributes:
        stages: stage name → latency summary over all decomposed
            results (stages as defined in the module docstring).
        end_to_end: summary of ``emit.time - max(r.ts, s.ts)`` over the
            same results — the quantity E3/E13 report.
        samples: number of results decomposed (traced emits with a
            complete probe-side chain).
        skipped: traced emits skipped for lack of a complete chain
            (e.g. spans lost to the tracer's ``max_spans`` cap).
    """

    stages: dict[str, LatencySummary]
    end_to_end: LatencySummary
    samples: int
    skipped: int = 0

    def stage_sum_mean(self) -> float:
        """Sum of the stage means (should ≈ the end-to-end mean)."""
        return sum(self.stages[name].mean for name in STAGE_NAMES)

    def reconciles(self, tolerance: float = 0.05,
                   absolute_slack: float = 1e-9) -> bool:
        """Do the stages tile the end-to-end latency within tolerance?

        The stage sum telescopes to ``emit.time - probe_tuple.ts``
        while the end-to-end metric subtracts ``max(r.ts, s.ts)``; for
        in-order workloads the two are equal, and disorder only makes
        the stage sum an upper bound.  ``tolerance`` is relative to the
        end-to-end mean.
        """
        if self.samples == 0:
            return True
        reference = self.end_to_end.mean
        return (abs(self.stage_sum_mean() - reference)
                <= tolerance * abs(reference) + absolute_slack)

    def rows(self) -> list[list[object]]:
        """Table rows: stage, mean/p50/p95 (ms) and share of the total."""
        total_mean = self.stage_sum_mean()
        rows: list[list[object]] = []
        for name in STAGE_NAMES:
            summary = self.stages[name]
            share = summary.mean / total_mean if total_mean > 0 else 0.0
            rows.append([name, f"{summary.mean * 1000:.2f}",
                         f"{summary.p50 * 1000:.2f}",
                         f"{summary.p95 * 1000:.2f}", f"{share:.0%}"])
        rows.append(["end-to-end", f"{self.end_to_end.mean * 1000:.2f}",
                     f"{self.end_to_end.p50 * 1000:.2f}",
                     f"{self.end_to_end.p95 * 1000:.2f}", "100%"])
        return rows

    def render(self, title: str = "per-stage latency breakdown") -> str:
        """ASCII table of the breakdown (benchmark ``*_stages.txt``)."""
        from ..harness.tables import render_table

        return render_table(
            ["stage", "mean (ms)", "p50 (ms)", "p95 (ms)", "share"],
            self.rows(),
            title=f"{title} ({self.samples} traced results)")


def compute_stage_breakdown(tracer: Tracer) -> StageBreakdown:
    """Decompose every traced emit into per-stage latencies.

    For each ``emit`` span the probing tuple's ``route`` span and its
    last ``deliver`` span at the emitting unit (at or before the emit)
    are looked up; emits whose chain is incomplete (spans beyond the
    tracer cap) are counted in ``skipped`` rather than guessed at.
    """
    route_time: dict[tuple[str, int], float] = {}
    delivers: dict[tuple[tuple[str, int], str], list[float]] = {}
    for span in tracer.spans:
        if span.kind == SPAN_ROUTE and span.tuple_id is not None:
            route_time.setdefault(span.tuple_id, span.time)
        elif span.kind == SPAN_DELIVER and span.tuple_id is not None:
            delivers.setdefault((span.tuple_id, span.actor), []).append(span.time)

    recorders = {name: LatencyRecorder() for name in STAGE_NAMES}
    end_to_end = LatencyRecorder()
    samples = 0
    skipped = 0
    for emit in tracer.emits():
        probe_id = emit.tuple_id
        assert probe_id is not None
        routed = route_time.get(probe_id)
        arrival_times = [t for t in delivers.get((probe_id, emit.actor), [])
                         if t <= emit.time]
        if routed is None or not arrival_times:
            skipped += 1
            continue
        arrived = max(arrival_times)
        # The emit span's ref_time is max(r.ts, s.ts): the probing
        # tuple is the later arrival, so for in-order streams its
        # source timestamp *is* the reference; min() with the route
        # time guards the disordered case where it is older.
        source_ts = routed if emit.ref_time is None else min(routed,
                                                             emit.ref_time)
        recorders["route"].record(max(0.0, routed - source_ts))
        recorders["transit"].record(max(0.0, arrived - routed))
        recorders["process"].record(max(0.0, emit.time - arrived))
        if emit.ref_time is not None:
            end_to_end.record(max(0.0, emit.time - emit.ref_time))
        samples += 1
    return StageBreakdown(
        stages={name: rec.summary() for name, rec in recorders.items()},
        end_to_end=end_to_end.summary(), samples=samples, skipped=skipped)


# ---------------------------------------------------------------------------
# Causal-chain integrity
# ---------------------------------------------------------------------------
@dataclass
class ChainCheck:
    """Outcome of verifying emitted results against their traces.

    ``ok`` iff every result has exactly one ``emit`` span, both sides
    of every emit have connected chains (``route`` → delivery →
    ``probe``/``store``-or-``replay`` at the emitting unit), no result
    key is emitted twice, and no tuple-keyed data span lacks a ``route``
    ancestor.
    """

    results: int = 0
    missing_emit: list[tuple] = field(default_factory=list)
    double_emit: list[tuple] = field(default_factory=list)
    broken_chains: list[tuple] = field(default_factory=list)
    orphan_spans: int = 0

    @property
    def ok(self) -> bool:
        return not (self.missing_emit or self.double_emit
                    or self.broken_chains or self.orphan_spans)

    def __str__(self) -> str:  # pragma: no cover - diagnostic cosmetics
        return (f"ChainCheck(results={self.results}, "
                f"missing_emit={len(self.missing_emit)}, "
                f"double_emit={len(self.double_emit)}, "
                f"broken={len(self.broken_chains)}, "
                f"orphans={self.orphan_spans})")


def check_causal_chains(tracer: Tracer, results) -> ChainCheck:
    """Verify the trace of every emitted join result is a proper chain.

    Args:
        tracer: a full-sampling tracer that observed the whole run.
        results: the emitted :class:`~repro.core.tuples.JoinResult`
            objects (``result.key`` pairs the two input identities).

    Crash/replay interaction: a stored tuple restored into a crashed
    unit's replacement legitimately shows a ``replay`` span instead of
    a ``store`` span at the emitting unit, and both are accepted; what
    is *never* accepted is a second ``emit`` for the same result key or
    an emit whose inputs have no routed history at all.
    """
    check = ChainCheck(results=len(results))
    routed: set[tuple[str, int]] = set()
    processed: dict[tuple[tuple[str, int], str], set[str]] = {}
    emits_by_key: dict[tuple, list] = {}
    data_spans: list = []
    for span in tracer.spans:
        if span.tuple_id is None:
            continue
        if span.kind == SPAN_ROUTE:
            routed.add(span.tuple_id)
        elif span.kind in (SPAN_STORE, SPAN_PROBE, SPAN_REPLAY):
            processed.setdefault((span.tuple_id, span.actor),
                                 set()).add(span.kind)
            data_spans.append(span)
        elif span.kind == SPAN_DELIVER:
            if span.detail != "entry":
                data_spans.append(span)
        elif span.kind == SPAN_EMIT:
            key = (_r_side(span), _s_side(span))
            emits_by_key.setdefault(key, []).append(span)
            data_spans.append(span)

    for span in data_spans:
        if span.tuple_id not in routed:
            check.orphan_spans += 1

    for result in results:
        spans = emits_by_key.get(result.key, [])
        if not spans:
            check.missing_emit.append(result.key)
            continue
        if len(spans) > 1:
            check.double_emit.append(result.key)
            continue
        emit = spans[0]
        probe_ok = (emit.tuple_id in routed
                    and SPAN_PROBE in processed.get(
                        (emit.tuple_id, emit.actor), set()))
        partner_kinds = processed.get((emit.partner, emit.actor), set())
        partner_ok = (emit.partner in routed
                      and (SPAN_STORE in partner_kinds
                           or SPAN_REPLAY in partner_kinds))
        if not (probe_ok and partner_ok):
            check.broken_chains.append(result.key)

    extra_emits = {key for key, spans in emits_by_key.items()
                   if len(spans) > 1}
    for key in extra_emits - set(check.double_emit):
        check.double_emit.append(key)
    return check


def _r_side(emit) -> tuple[str, int]:
    """The R-relation identity of an emit span's result pair."""
    return emit.tuple_id if emit.tuple_id[0] == "R" else emit.partner


def _s_side(emit) -> tuple[str, int]:
    return emit.tuple_id if emit.tuple_id[0] == "S" else emit.partner
