"""A process-wide metrics registry with Prometheus-style exposition.

One :class:`MetricsRegistry` per run (the cluster runtimes own one)
collects every component's counters into a single namespace instead of
the scattered per-component stat dataclasses:

- :class:`Counter` — monotonically increasing totals.  Components that
  already keep their own counters *publish* them with
  :meth:`Counter.set_total` from their ``export_metrics`` hook (the
  pull model real exporters use); push-style :meth:`Counter.inc` is
  also available.
- :class:`Gauge` — instantaneous values (may go up or down).
- :class:`Histogram` — distributions, summarised with the same
  :func:`repro.metrics.latency.percentile` math the latency benches
  use; exposed as a Prometheus *summary* (count/sum + quantiles).

Naming convention (documented in ``docs/observability.md``):
``repro_<component>_<quantity>[_total]`` with snake_case names and
``_total`` reserved for counters; per-instance dimensions (joiner unit,
router id, pod) are expressed as labels, e.g.
``repro_joiner_tuples_stored_total{unit="R0"}``.

:meth:`MetricsRegistry.expose_text` renders the whole registry in the
Prometheus text exposition format; :meth:`MetricsRegistry.snapshot`
returns a flat, deterministically ordered ``dict`` that is attached to
:class:`~repro.cluster.runtime.ClusterReport` after every simulated
run.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from ..errors import ConfigurationError
from ..metrics.latency import LatencySummary, percentile

#: A label set, frozen into a hashable metric key.
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, str] | None) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double-quote and newline would otherwise corrupt the
    sample line (or silently change the label value a scraper parses).
    Escaping order matters: backslashes first, or the escapes
    themselves get re-escaped.
    """
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def _render_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{_escape_label_value(value)}"'
                     for name, value in key)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing counter."""

    kind = "counter"

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, by: float = 1) -> None:
        """Push-style increment (``by >= 0``)."""
        if by < 0:
            raise ConfigurationError(f"counters only increase; got {by!r}")
        self.value += by

    def set_total(self, total: float) -> None:
        """Pull-style publish: set the absolute total (monotone).

        Components that keep their own running counters call this from
        ``export_metrics``; repeated exports with the same total are
        no-ops, a smaller total is a bug and raises.
        """
        if total < self.value:
            raise ConfigurationError(
                f"counter moved backwards: {self.value!r} -> {total!r}")
        self.value = total


class Gauge:
    """An instantaneous value; goes up and down freely."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, by: float = 1) -> None:
        self.value += by

    def dec(self, by: float = 1) -> None:
        self.value -= by


class Histogram:
    """A distribution summarised with shared percentile math."""

    kind = "histogram"

    def __init__(self) -> None:
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> float:
        return float(sum(self.values))

    def quantile(self, q: float) -> float:
        if not self.values:
            return 0.0
        return percentile(sorted(self.values), q)

    def summary(self) -> LatencySummary:
        """The distribution as the repo's standard summary statistics."""
        if not self.values:
            return LatencySummary.empty()
        ordered = sorted(self.values)
        return LatencySummary(
            count=len(ordered), mean=sum(ordered) / len(ordered),
            p50=percentile(ordered, 0.50), p95=percentile(ordered, 0.95),
            p99=percentile(ordered, 0.99), max=ordered[-1])


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """One namespace of named, optionally labelled metrics.

    Metrics are created on first use (``counter``/``gauge``/
    ``histogram`` are get-or-create); re-requesting a name with a
    different metric type is a configuration error.  ``collectors`` are
    zero-argument callables run by :meth:`collect` before every
    snapshot/exposition — the pull model: components register a
    callback that publishes their current totals.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelKey], Metric] = {}
        self._kinds: dict[str, str] = {}
        self._help: dict[str, str] = {}
        self._collectors: list[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # Metric creation (get-or-create)
    # ------------------------------------------------------------------
    def _get(self, factory, name: str, help: str,
             labels: Mapping[str, str] | None) -> Metric:
        kind = factory.kind
        known = self._kinds.get(name)
        if known is not None and known != kind:
            raise ConfigurationError(
                f"metric {name!r} is a {known}, requested as {kind}")
        self._kinds[name] = kind
        if help and name not in self._help:
            self._help[name] = help
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, help: str = "",
                labels: Mapping[str, str] | None = None) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Mapping[str, str] | None = None) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Mapping[str, str] | None = None) -> Histogram:
        return self._get(Histogram, name, help, labels)

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def register_collector(self, collector: Callable[[], None]) -> None:
        """Register a callback run by :meth:`collect` (pull model)."""
        self._collectors.append(collector)

    def collect(self) -> None:
        """Run every registered collector, in registration order."""
        for collector in self._collectors:
            collector()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        return sorted(self._kinds)

    def get(self, name: str,
            labels: Mapping[str, str] | None = None) -> Metric | None:
        return self._metrics.get((name, _label_key(labels)))

    def value(self, name: str,
              labels: Mapping[str, str] | None = None) -> float:
        """Convenience: current value of a counter/gauge (0 if absent)."""
        metric = self.get(name, labels)
        if metric is None:
            return 0
        if isinstance(metric, Histogram):
            return metric.count
        return metric.value

    def total(self, name: str) -> float:
        """Sum of a counter/gauge across all label sets."""
        total = 0.0
        for (metric_name, _), metric in self._metrics.items():
            if metric_name == name and not isinstance(metric, Histogram):
                total += metric.value
        return total

    def _sorted_items(self) -> Iterable[tuple[str, LabelKey, Metric]]:
        return sorted(((name, labels, metric)
                       for (name, labels), metric in self._metrics.items()),
                      key=lambda item: (item[0], item[1]))

    # ------------------------------------------------------------------
    # Cross-registry merge (multiprocess backhaul)
    # ------------------------------------------------------------------
    def dump(self) -> list[tuple[str, str, str, LabelKey, float | list[float]]]:
        """The registry as structured, picklable merge entries.

        Each entry is ``(name, kind, help, label_key, value)`` with a
        histogram's value being its raw observation list.  This is the
        wire form of :meth:`absorb`: worker processes dump their local
        registries and the coordinator merges them, keeping
        ``report.metrics`` whole across process boundaries (the flat
        :meth:`snapshot` strings cannot be merged — label rendering is
        one-way).
        """
        entries: list[tuple[str, str, str, LabelKey, float | list[float]]] = []
        for name, labels, metric in self._sorted_items():
            value: float | list[float]
            if isinstance(metric, Histogram):
                value = list(metric.values)
            else:
                value = metric.value
            entries.append((name, metric.kind, self._help.get(name, ""),
                            labels, value))
        return entries

    def absorb(self, entries: Iterable[
            tuple[str, str, str, LabelKey, float | list[float]]]) -> None:
        """Merge :meth:`dump` entries from another registry into this one.

        Counters and gauges merge by addition (per-unit/per-worker label
        sets are disjoint across processes, so addition is exact there
        and sums shared names meaningfully otherwise); histograms merge
        by concatenating observations, so quantiles are computed over
        the union, not averaged averages.
        """
        for name, kind, help_text, labels, value in entries:
            label_map = dict(labels)
            if kind == Histogram.kind:
                assert isinstance(value, list)
                self.histogram(name, help_text, label_map).values.extend(value)
            elif kind == Gauge.kind:
                self.gauge(name, help_text, label_map).inc(value)
            else:
                self.counter(name, help_text, label_map).inc(value)

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, float]:
        """Flat, deterministically ordered name→value mapping.

        Histograms expand to ``_count``/``_sum``/quantile entries, so
        the snapshot is pure scalars — directly comparable across runs
        (the trace-transparency differential test diffs two of these).
        """
        out: dict[str, float] = {}
        for name, labels, metric in self._sorted_items():
            rendered = f"{name}{_render_labels(labels)}"
            if isinstance(metric, Histogram):
                out[f"{rendered}_count"] = metric.count
                out[f"{rendered}_sum"] = metric.sum
                for q in (0.5, 0.95, 0.99):
                    out[f"{rendered}_q{q}"] = metric.quantile(q)
            else:
                out[rendered] = metric.value
        return out

    def expose_text(self) -> str:
        """Prometheus text exposition of the whole registry."""
        lines: list[str] = []
        seen_header: set[str] = set()
        for name, labels, metric in self._sorted_items():
            if name not in seen_header:
                seen_header.add(name)
                help_text = self._help.get(name, "")
                if help_text:
                    lines.append(f"# HELP {name} {help_text}")
                kind = ("summary" if isinstance(metric, Histogram)
                        else metric.kind)
                lines.append(f"# TYPE {name} {kind}")
            rendered = _render_labels(labels)
            if isinstance(metric, Histogram):
                for q in (0.5, 0.95, 0.99):
                    q_labels = _label_key(dict(labels, quantile=str(q)))
                    lines.append(
                        f"{name}{_render_labels(q_labels)} {metric.quantile(q)}")
                lines.append(f"{name}_sum{rendered} {metric.sum}")
                lines.append(f"{name}_count{rendered} {metric.count}")
            else:
                lines.append(f"{name}{rendered} {metric.value}")
        return "\n".join(lines) + ("\n" if lines else "")
