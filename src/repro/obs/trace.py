"""Causal tuple tracing.

A :class:`Tracer` records :class:`Span` events along the life of every
tuple flowing through the system, keyed by the tuple's stable identity
``(relation, seq)`` — the same identity join results are checked
against, so a trace is a *causal* record: the spans of one tuple,
ordered by simulated time, form the chain

    ``route → enqueue → deliver → (store | probe) → emit``

with three auxiliary kinds: ``archive`` (an expired sub-index slice was
shipped to the archive tier), ``replay`` (a tuple was restored into a
crashed unit's replacement from the window-replay log) and ``scale``
(an elastic-scaling lifecycle event).  All span times come from the
discrete-event simulation clock (the ``now``/delivery times already
threaded through the engine), so traces are deterministic and
seed-stable: the same seeded run yields the same span log byte for
byte.

Tracing is strictly observational.  No component changes its behaviour
based on the tracer, the tracer never touches randomness or scheduling,
and the default :data:`NOOP_TRACER` reduces every instrumentation site
to a single attribute check (``if tracer.enabled:``) — the
zero-cost-when-disabled contract that the differential transparency
test (``tests/integration/test_trace_transparency.py``) enforces.

Memory is bounded two ways:

- **sampling** — ``sample_rate < 1`` keeps only a deterministic
  hash-based subset of tuple identities (CRC32 of the identity, *not*
  Python's randomised ``hash``), so the same tuples are sampled in
  every run and a sampled tuple's chain is always complete;
- **a hard span cap** — once ``max_spans`` spans are held, further
  spans are counted in :attr:`Tracer.dropped_spans` instead of stored.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Iterator

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..broker.message import Delivery

#: Span kinds, in causal-chain order, plus the auxiliary event kinds.
SPAN_ROUTE = "route"
SPAN_ENQUEUE = "enqueue"
SPAN_DELIVER = "deliver"
SPAN_STORE = "store"
SPAN_PROBE = "probe"
SPAN_EMIT = "emit"
SPAN_ARCHIVE = "archive"
SPAN_REPLAY = "replay"
SPAN_SCALE = "scale"
#: Overload-management events: a tuple was shed (admission control or
#: park eviction) or throttled (parked/deferred under backpressure).
SPAN_SHED = "shed"
SPAN_THROTTLE = "throttle"

SPAN_KINDS = (SPAN_ROUTE, SPAN_ENQUEUE, SPAN_DELIVER, SPAN_STORE,
              SPAN_PROBE, SPAN_EMIT, SPAN_ARCHIVE, SPAN_REPLAY, SPAN_SCALE,
              SPAN_SHED, SPAN_THROTTLE)

#: Stable tuple identity: ``StreamTuple.ident`` — (relation, seq).
TupleId = "tuple[str, int]"


@dataclass(frozen=True)
class Span:
    """One traced event.

    Attributes:
        kind: one of :data:`SPAN_KINDS`.
        time: simulated time the event happened at.
        actor: the component the event happened on (router id, joiner
            unit id, consumer id, or ``"engine"`` for lifecycle events).
        tuple_id: identity of the tuple the span belongs to (``None``
            for ``scale``/``archive`` events, which are not tuple-keyed).
        partner: for ``emit`` spans, the identity of the *stored-side*
            tuple of the result pair (``tuple_id`` is the probing one).
        ref_time: a reference timestamp: the tuple's source timestamp
            for ``route`` spans, ``max(r.ts, s.ts)`` for ``emit`` spans
            (so ``time - ref_time`` is the end-to-end result latency).
        detail: free-form qualifier (envelope kind, target unit,
            scaling action, ...).
    """

    kind: str
    time: float
    actor: str = ""
    tuple_id: tuple[str, int] | None = None
    partner: tuple[str, int] | None = None
    ref_time: float | None = None
    detail: str = ""


class NoopTracer:
    """The default tracer: does nothing, costs one attribute check.

    Instrumentation sites guard every :meth:`Tracer.record` call with
    ``if tracer.enabled:``, so with the no-op tracer the hot path pays
    a single boolean attribute read and no call, no allocation, no
    branch on payload contents.
    """

    enabled = False

    def record(self, kind: str, time: float, actor: str = "", *,
               tuple_id: tuple[str, int] | None = None,
               partner: tuple[str, int] | None = None,
               ref_time: float | None = None,
               detail: str = "") -> None:
        """Accept and discard a span."""

    def observe_delivery(self, delivery: "Delivery") -> None:
        """Accept and discard a broker delivery observation."""

    def absorb(self, spans) -> None:
        """Accept and discard spans backhauled from another tracer."""


#: Shared no-op tracer instance used as the default everywhere.
NOOP_TRACER = NoopTracer()

#: Denominator of the deterministic sampling hash space.
_SAMPLE_SPACE = 1 << 20


class Tracer(NoopTracer):
    """Records causal spans keyed by tuple identity.

    Args:
        sample_rate: fraction of tuple identities to trace, in
            ``(0, 1]``.  Selection is by CRC32 of the identity string,
            so it is deterministic across runs and processes and the
            kept chains are complete (every span of a sampled tuple is
            recorded, none of an unsampled one).
        max_spans: hard cap on retained spans (bounded memory); spans
            beyond the cap are counted in :attr:`dropped_spans`.
    """

    enabled = True

    def __init__(self, sample_rate: float = 1.0,
                 max_spans: int = 1_000_000) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise ConfigurationError(
                f"sample_rate must be in (0, 1], got {sample_rate!r}")
        if max_spans < 1:
            raise ConfigurationError(
                f"max_spans must be >= 1, got {max_spans!r}")
        self.sample_rate = sample_rate
        self.max_spans = max_spans
        self.spans: list[Span] = []
        #: Spans discarded by the :attr:`max_spans` memory bound.
        self.dropped_spans = 0
        self._sample_threshold = int(sample_rate * _SAMPLE_SPACE)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sampled(self, tuple_id: tuple[str, int]) -> bool:
        """Deterministic sampling decision for one tuple identity."""
        if self.sample_rate >= 1.0:
            return True
        digest = zlib.crc32(f"{tuple_id[0]}:{tuple_id[1]}".encode())
        return digest % _SAMPLE_SPACE < self._sample_threshold

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, kind: str, time: float, actor: str = "", *,
               tuple_id: tuple[str, int] | None = None,
               partner: tuple[str, int] | None = None,
               ref_time: float | None = None,
               detail: str = "") -> None:
        """Record one span (subject to sampling and the span cap)."""
        if tuple_id is not None and not self.sampled(tuple_id):
            return
        if len(self.spans) >= self.max_spans:
            self.dropped_spans += 1
            return
        self.spans.append(Span(kind=kind, time=time, actor=actor,
                               tuple_id=tuple_id, partner=partner,
                               ref_time=ref_time, detail=detail))

    def observe_delivery(self, delivery: "Delivery") -> None:
        """Broker ``on_deliver`` hook: record a ``deliver`` span.

        Classifies the payload: protocol envelopes yield a ``deliver``
        span tagged with the envelope kind (punctuations are skipped —
        they are watermark signals, not tuple events); a transport
        batch yields one span per member envelope, so a tuple's causal
        chain is the same whether it travelled batched or not; raw
        :class:`~repro.core.tuples.StreamTuple` payloads are entry-queue
        deliveries to a router, tagged ``entry``.
        """
        payload = delivery.message.payload
        envelopes = getattr(payload, "envelopes", None)
        if envelopes is not None:  # an EnvelopeBatch
            time, consumer = delivery.time, delivery.consumer
            for env in envelopes:
                if env.tuple is not None:
                    self.record(SPAN_DELIVER, time, consumer,
                                tuple_id=env.tuple.ident, detail=env.kind)
            return
        tuple_ = getattr(payload, "tuple", None)
        if tuple_ is not None:  # a data Envelope
            self.record(SPAN_DELIVER, delivery.time, delivery.consumer,
                        tuple_id=tuple_.ident, detail=payload.kind)
            return
        ident = getattr(payload, "ident", None)
        if ident is not None:  # a bare StreamTuple on the entry queue
            self.record(SPAN_DELIVER, delivery.time, delivery.consumer,
                        tuple_id=ident, detail="entry")
        # else: punctuation or foreign payload — not tuple-keyed, skip.

    def absorb(self, spans) -> None:
        """Merge spans backhauled from another tracer (worker backhaul).

        Sampling was already applied by the recording tracer, so spans
        are taken as-is; only the local :attr:`max_spans` memory bound
        still applies.  Chronological interleaving is left to readers
        (the stage-breakdown query sorts per tuple), matching how
        :meth:`record` already appends across actors.
        """
        for span in spans:
            if len(self.spans) >= self.max_spans:
                self.dropped_spans += 1
                continue
            self.spans.append(span)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans)

    def spans_of(self, tuple_id: tuple[str, int]) -> list[Span]:
        """All spans of one tuple, in recording (= time) order."""
        return [s for s in self.spans if s.tuple_id == tuple_id]

    def emits(self) -> list[Span]:
        """All ``emit`` spans, in recording order."""
        return [s for s in self.spans if s.kind == SPAN_EMIT]

    def counts_by_kind(self) -> dict[str, int]:
        """Number of recorded spans per kind."""
        counts: dict[str, int] = {}
        for span in self.spans:
            counts[span.kind] = counts.get(span.kind, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Structured event log
    # ------------------------------------------------------------------
    def iter_jsonl(self) -> Iterator[str]:
        """The spans as deterministic JSONL lines (recording order)."""
        for span in self.spans:
            record = {k: (list(v) if isinstance(v, tuple) else v)
                      for k, v in asdict(span).items() if v not in (None, "")}
            yield json.dumps(record, sort_keys=True, separators=(",", ":"))

    def write_jsonl(self, path) -> int:
        """Write the span log to ``path`` as JSONL; returns span count.

        Lines are in recording order, which on the deterministic
        simulator equals event-execution order — two runs of the same
        seeded experiment produce byte-identical logs.
        """
        with open(path, "w", encoding="utf-8") as fh:
            for line in self.iter_jsonl():
                fh.write(line + "\n")
        return len(self.spans)
