"""Pluggable admission-control / load-shedding policies.

When offered load exceeds capacity something has to give; a policy
decides *what*.  Each policy sees one source tuple at admission time
together with the current overload ``severity`` — the entry queue's
occupancy relative to its configured bound (``depth / max_depth``, so
``>= 1.0`` means the queue is full) — and returns one of three
verdicts:

``ADMIT``
    Ingest the tuple now.
``DEFER``
    Do not ingest yet; the producer is re-scheduled after a short
    retry interval, so sustained overload surfaces as *rising
    admission delay* on the simulated clock (the block-producer
    behaviour: lossless, but latency grows).
``SHED``
    Drop the tuple at the door.  Every shed is accounted by the
    :class:`~repro.overload.accounting.ShedAccounting` ledger so the
    ``offered == admitted + shed`` invariant reconciles exactly.

The ``drop-oldest`` policy is the one policy that sheds *old* data
instead of new: it always admits and instead bounds the routers'
park buffers, evicting the oldest parked tuple when a fresh one
arrives (``evicts_parked`` signals the wiring layer to enable park
eviction).  ``semantic`` sheds probabilistically above a low
watermark, preferring low-*value* tuples — the utility-based load
shedding of Tatbul et al. adapted to the join setting.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.tuples import StreamTuple
    from ..simulation.random import SeededRng

#: Admission verdicts.
ADMIT = "admit"
DEFER = "defer"
SHED = "shed"

#: Registered policy names, in documentation order.
POLICY_NAMES = ("block", "drop-tail", "drop-oldest", "semantic")

#: Optional tuple-value function for semantic shedding: maps a tuple to
#: a utility in [0, 1]; higher-value tuples are shed less often.
ValueFn = Callable[["StreamTuple"], float]


class SheddingPolicy:
    """Base class: admit everything, never shed."""

    name = "admit-all"
    #: Does this policy bound the router park buffers by evicting the
    #: oldest parked tuple (drop-oldest semantics)?
    evicts_parked = False

    def decide(self, t: "StreamTuple", severity: float,
               rng: "SeededRng") -> str:
        return ADMIT


class BlockProducerPolicy(SheddingPolicy):
    """Lossless backpressure: defer the producer while the entry queue
    is full.  Nothing is ever shed; overload shows up as admission
    delay (and, transitively, end-to-end latency)."""

    name = "block"

    def decide(self, t: "StreamTuple", severity: float,
               rng: "SeededRng") -> str:
        return DEFER if severity >= 1.0 else ADMIT


class DropTailPolicy(SheddingPolicy):
    """Shed the *newest* tuples once the entry queue is full.

    Keeps latency of admitted tuples bounded at the cost of recall:
    the freshest arrivals are sacrificed while the queue drains.
    """

    name = "drop-tail"

    def decide(self, t: "StreamTuple", severity: float,
               rng: "SeededRng") -> str:
        return SHED if severity >= 1.0 else ADMIT


class DropOldestPolicy(SheddingPolicy):
    """Prefer fresh data: admit everything, evict the *oldest* parked
    tuple when a router's bounded park buffer overflows.

    Admission never blocks or sheds; the loss happens downstream where
    age is known, so the system always works on the newest data.  Total
    buffered occupancy stays bounded by ``routers x park_limit`` plus
    the in-transit window.
    """

    name = "drop-oldest"
    evicts_parked = True

    def decide(self, t: "StreamTuple", severity: float,
               rng: "SeededRng") -> str:
        return ADMIT


class SemanticSheddingPolicy(SheddingPolicy):
    """Probabilistic utility-based shedding.

    Above ``low_watermark`` severity, each tuple is shed with
    probability ``max_probability * pressure * (1 - value(t))`` where
    ``pressure`` ramps linearly from 0 at the watermark to 1 at a full
    queue — so low-value tuples are shed first and shedding intensity
    tracks the overload.  A full queue additionally defers admission
    (the block backstop) so the bound holds even when every tuple is
    high-value.
    """

    name = "semantic"

    def __init__(self, *, low_watermark: float = 0.5,
                 max_probability: float = 1.0,
                 value_fn: ValueFn | None = None) -> None:
        if not 0.0 <= low_watermark < 1.0:
            raise ConfigurationError(
                f"low_watermark must be in [0, 1), got {low_watermark!r}")
        if not 0.0 <= max_probability <= 1.0:
            raise ConfigurationError(
                f"max_probability must be in [0, 1], got {max_probability!r}")
        self.low_watermark = low_watermark
        self.max_probability = max_probability
        self.value_fn = value_fn

    def value(self, t: "StreamTuple") -> float:
        """The tuple's utility in [0, 1] (0 when no value_fn is set)."""
        if self.value_fn is None:
            return 0.0
        return min(1.0, max(0.0, self.value_fn(t)))

    def decide(self, t: "StreamTuple", severity: float,
               rng: "SeededRng") -> str:
        if severity <= self.low_watermark:
            return ADMIT
        pressure = min(1.0, (severity - self.low_watermark)
                       / (1.0 - self.low_watermark))
        probability = self.max_probability * pressure * (1.0 - self.value(t))
        if probability > 0.0 and rng.random() < probability:
            return SHED
        return DEFER if severity >= 1.0 else ADMIT


def make_policy(name: str, *, low_watermark: float = 0.5,
                max_probability: float = 1.0,
                value_fn: ValueFn | None = None) -> SheddingPolicy:
    """Instantiate a policy by registered name."""
    if name == "block":
        return BlockProducerPolicy()
    if name == "drop-tail":
        return DropTailPolicy()
    if name == "drop-oldest":
        return DropOldestPolicy()
    if name == "semantic":
        return SemanticSheddingPolicy(low_watermark=low_watermark,
                                      max_probability=max_probability,
                                      value_fn=value_fn)
    raise ConfigurationError(
        f"unknown shedding policy {name!r}; expected one of {POLICY_NAMES}")
