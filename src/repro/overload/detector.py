"""Slow-consumer / straggler detection.

A joiner is a *straggler* when it persistently processes envelopes
slower than they arrive: its inbox backlog is real (above a floor)
and its EWMA service rate has fallen below a fraction of its EWMA
arrival rate.  The detector samples cumulative per-unit totals (inbox
``enqueued`` as arrivals, settled deliveries as service) on the
existing periodic metrics tick — it schedules nothing of its own —
and exposes the currently-hot set for two consumers:

- the **HPA**: mean inbox backlog augments the ``backlog`` scaling
  signal, so sustained stragglers trigger scale-out;
- the **routing layer**: :class:`~repro.core.routing.RandomRouting`
  steers *optional* (load-balanced store) work away from hot units.
  Hash/content-sensitive placement is never overridden — correctness
  beats balance.

Rates are per-second over the sampling interval, smoothed with a
standard exponential moving average so one slow tick does not flag a
unit and one fast tick does not clear it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class StragglerConfig:
    """Detection thresholds.

    Attributes:
        alpha: EWMA smoothing factor in (0, 1]; higher = more reactive.
        ratio: flag when ``service_rate < ratio * arrival_rate``.
        min_backlog: ignore units whose inbox depth is below this floor
            (an idle unit has rate ~0/~0 and must not be flagged).
    """

    alpha: float = 0.4
    ratio: float = 0.7
    min_backlog: int = 8

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigurationError(
                f"alpha must be in (0, 1], got {self.alpha!r}")
        if not 0.0 < self.ratio <= 1.0:
            raise ConfigurationError(
                f"ratio must be in (0, 1], got {self.ratio!r}")
        if self.min_backlog < 1:
            raise ConfigurationError(
                f"min_backlog must be >= 1, got {self.min_backlog!r}")


class _Ewma:
    """Exponential moving average with empty-state handling."""

    __slots__ = ("alpha", "value")

    def __init__(self, alpha: float) -> None:
        self.alpha = alpha
        self.value: float | None = None

    def update(self, sample: float) -> float:
        if self.value is None:
            self.value = sample
        else:
            self.value += self.alpha * (sample - self.value)
        return self.value


class StragglerDetector:
    """Per-unit arrival-vs-service EWMA comparison."""

    def __init__(self, config: StragglerConfig | None = None) -> None:
        self.config = config or StragglerConfig()
        self._arrival: dict[str, _Ewma] = {}
        self._service: dict[str, _Ewma] = {}
        self._last: dict[str, tuple[float, int, int]] = {}
        self._hot: set[str] = set()
        #: Lifetime count of cold->hot transitions (monotone).
        self.flagged_total = 0

    # -- sampling ----------------------------------------------------------
    def observe(self, unit_id: str, now: float, arrived_total: int,
                serviced_total: int, backlog: int) -> None:
        """Feed one unit's cumulative totals at sample time ``now``."""
        previous = self._last.get(unit_id)
        self._last[unit_id] = (now, arrived_total, serviced_total)
        if previous is None:
            return
        last_now, last_arrived, last_serviced = previous
        interval = now - last_now
        if interval <= 0.0:
            return
        arrival = self._ewma(self._arrival, unit_id).update(
            (arrived_total - last_arrived) / interval)
        service = self._ewma(self._service, unit_id).update(
            (serviced_total - last_serviced) / interval)
        lagging = (backlog >= self.config.min_backlog
                   and arrival > 0.0
                   and service < self.config.ratio * arrival)
        if lagging and unit_id not in self._hot:
            self._hot.add(unit_id)
            self.flagged_total += 1
        elif not lagging:
            self._hot.discard(unit_id)

    def _ewma(self, table: dict[str, _Ewma], unit_id: str) -> _Ewma:
        ewma = table.get(unit_id)
        if ewma is None:
            ewma = table[unit_id] = _Ewma(self.config.alpha)
        return ewma

    def forget(self, unit_id: str) -> None:
        """Drop all state for a reaped/crashed unit."""
        self._arrival.pop(unit_id, None)
        self._service.pop(unit_id, None)
        self._last.pop(unit_id, None)
        self._hot.discard(unit_id)

    # -- queries -----------------------------------------------------------
    def hot_units(self) -> frozenset[str]:
        """The currently-flagged stragglers."""
        return frozenset(self._hot)

    def is_straggler(self, unit_id: str) -> bool:
        return unit_id in self._hot

    def arrival_rate(self, unit_id: str) -> float:
        ewma = self._arrival.get(unit_id)
        return 0.0 if ewma is None or ewma.value is None else ewma.value

    def service_rate(self, unit_id: str) -> float:
        ewma = self._service.get(unit_id)
        return 0.0 if ewma is None or ewma.value is None else ewma.value
