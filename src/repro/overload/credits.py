"""Credit-based flow control between routers and joiners.

Each joiner grants the router pool a budget of *credits* — the number
of data envelopes it is willing to have outstanding (enqueued on its
inbox, in transit, or buffered in its reorder stage) at once.  Routing
a store/join envelope to a unit *acquires* one credit; the joiner
*grants* one back each time it finishes processing an envelope.  When
any registered unit's balance reaches zero the pool is *exhausted* and
routers park incoming work instead of routing it, which propagates
back to the producer as admission delay: end-to-end backpressure with
no unbounded buffer anywhere in between.

Punctuations are exempt: they are control traffic whose volume is set
by the punctuation interval (not by offered load) and whose delivery
is what drains the reorder buffers — withholding them under pressure
would deadlock the drain.

Exhaustion is pool-wide (any unit at zero parks *all* routing) rather
than per-target because biclique routing is correlated: a store on one
side fans out with joins to the whole opposite side, so per-target
throttling would tear those multicasts apart while the slowest unit
still gates progress.  Waiters are woken through a scheduler callback
(one simulated event per wake, only when someone is actually parked),
so an idle credit controller adds zero events to a run — the
non-perturbation guarantee the differential test pins down.
"""

from __future__ import annotations

from typing import Callable

from ..errors import ConfigurationError

#: Scheduler hook: schedules a zero-delay callback on the simulation
#: event loop (e.g. ``lambda fn: sim.schedule_after(0.0, fn)``).
ScheduleFn = Callable[[Callable[[], None]], None]


class CreditController:
    """Per-joiner credit balances with parked-waiter wakeups."""

    def __init__(self, limit: int, *, scheduler: ScheduleFn | None = None) -> None:
        if limit < 1:
            raise ConfigurationError(
                f"credit limit must be >= 1, got {limit!r}")
        self.limit = limit
        self._scheduler = scheduler
        self._credits: dict[str, int] = {}
        self._waiters: list[Callable[[], None]] = []
        self._wake_pending = False
        #: Lifetime counters (monotone; survive unit unregistration).
        self.acquires = 0
        self.grants = 0
        #: Times the pool transitioned available -> exhausted.
        self.stalls = 0

    # -- membership --------------------------------------------------------
    def register(self, unit_id: str) -> None:
        """Start tracking a unit at the full credit limit.

        Re-registering an existing unit keeps its current balance: a
        restarted joiner replaces its predecessor mid-flight, and the
        outstanding envelopes it inherits are still outstanding.
        """
        if unit_id not in self._credits:
            self._credits[unit_id] = self.limit

    def unregister(self, unit_id: str) -> None:
        """Stop tracking a unit (drained/reaped); frees its gate."""
        if self._credits.pop(unit_id, None) is not None:
            self._wake()

    @property
    def units(self) -> tuple[str, ...]:
        return tuple(sorted(self._credits))

    def available(self, unit_id: str) -> int:
        """Current balance of one unit (the limit when untracked)."""
        return self._credits.get(unit_id, self.limit)

    def min_available(self) -> int:
        """The tightest balance across the pool."""
        if not self._credits:
            return self.limit
        return min(self._credits.values())

    # -- flow --------------------------------------------------------------
    def exhausted(self) -> bool:
        """Is any registered unit out of credits?"""
        return any(balance <= 0 for balance in self._credits.values())

    def acquire(self, unit_id: str) -> None:
        """Consume one credit for an envelope routed to ``unit_id``.

        Balances may go (transiently) negative: a multicast that was
        admitted while credits were available completes atomically.
        The next delivery then parks until grants catch up.
        """
        if unit_id not in self._credits:
            return
        was_exhausted = self.exhausted()
        self._credits[unit_id] -= 1
        self.acquires += 1
        if not was_exhausted and self.exhausted():
            self.stalls += 1

    def grant(self, unit_id: str) -> None:
        """Return one credit after the joiner processed an envelope."""
        balance = self._credits.get(unit_id)
        if balance is None:
            return
        if balance < self.limit:
            self._credits[unit_id] = balance + 1
        self.grants += 1
        if not self.exhausted():
            self._wake()

    # -- waiters -----------------------------------------------------------
    def add_waiter(self, callback: Callable[[], None]) -> None:
        """Register a one-shot callback for the next capacity wake."""
        self._waiters.append(callback)

    def _wake(self) -> None:
        """Schedule all parked waiters to retry (one event per wake)."""
        if not self._waiters or self._wake_pending:
            return
        if self._scheduler is None:
            self._fire()
            return
        self._wake_pending = True
        self._scheduler(self._fire)

    def _fire(self) -> None:
        self._wake_pending = False
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            callback()
