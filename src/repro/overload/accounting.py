"""Shed accounting: every dropped tuple is on the books.

Load shedding is only acceptable when it is *accounted*: for each
stream side the ledger tracks ``offered`` (tuples the workload
presented), ``admitted`` (tuples actually ingested) and ``shed``
(tuples dropped by any mechanism — admission control or park
eviction), and the invariant

    ``offered == admitted + shed``        (per side, exactly)

must reconcile at the end of every run.  ``recall_loss`` reports the
quality cost per side (``shed / offered``), and admission-delay
aggregates capture how much backpressure the producer absorbed under
the lossless (block) policy.

Memory is O(1): only counters and running aggregates are kept, never
per-tuple records — an overload ledger that itself grew with offered
load would defeat the purpose.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SideLedger:
    """Offered/admitted/shed counts for one stream side."""

    offered: int = 0
    admitted: int = 0
    shed: int = 0

    @property
    def reconciled(self) -> bool:
        return self.offered == self.admitted + self.shed

    @property
    def recall_loss(self) -> float:
        """Fraction of offered tuples lost to shedding."""
        if self.offered == 0:
            return 0.0
        return self.shed / self.offered


class ShedAccounting:
    """Per-side offered/admitted/shed ledger plus delay aggregates."""

    def __init__(self) -> None:
        self.sides: dict[str, SideLedger] = {
            "R": SideLedger(), "S": SideLedger()}
        #: Shed counts keyed by mechanism ("admission", "park-evict", ...).
        self.sheds_by_reason: dict[str, int] = {}
        #: Individual DEFER verdicts (one tuple may defer many times).
        self.deferrals = 0
        #: Admitted tuples that absorbed a non-zero admission delay.
        self.admitted_delayed = 0
        self.total_admission_delay = 0.0
        self.max_admission_delay = 0.0

    def _side(self, relation: str) -> SideLedger:
        return self.sides.setdefault(relation, SideLedger())

    # -- recording ---------------------------------------------------------
    def record_offered(self, relation: str) -> None:
        self._side(relation).offered += 1

    def record_admitted(self, relation: str, delay: float = 0.0) -> None:
        self._side(relation).admitted += 1
        if delay > 0.0:
            self.admitted_delayed += 1
            self.total_admission_delay += delay
            if delay > self.max_admission_delay:
                self.max_admission_delay = delay

    def record_shed(self, relation: str, reason: str, *,
                    after_admission: bool = False) -> None:
        """Account one shed tuple.

        ``after_admission`` marks a tuple that *was* admitted but got
        dropped downstream (park eviction): it moves from the admitted
        column to the shed column, so ``admitted`` always means
        *delivered into the engine, net of later shedding* and the
        ``offered == admitted + shed`` invariant holds at all times.
        """
        side = self._side(relation)
        side.shed += 1
        if after_admission:
            side.admitted -= 1
        self.sheds_by_reason[reason] = self.sheds_by_reason.get(reason, 0) + 1

    def record_deferral(self) -> None:
        self.deferrals += 1

    # -- totals ------------------------------------------------------------
    @property
    def offered(self) -> int:
        return sum(side.offered for side in self.sides.values())

    @property
    def admitted(self) -> int:
        return sum(side.admitted for side in self.sides.values())

    @property
    def shed(self) -> int:
        return sum(side.shed for side in self.sides.values())

    @property
    def reconciled(self) -> bool:
        """Does ``offered == admitted + shed`` hold on every side?"""
        return all(side.reconciled for side in self.sides.values())

    @property
    def mean_admission_delay(self) -> float:
        if self.admitted_delayed == 0:
            return 0.0
        return self.total_admission_delay / self.admitted_delayed


@dataclass(frozen=True)
class OverloadReport:
    """End-of-run summary of the overload layer, attached to the
    cluster report so benchmarks can assert bounds and reconciliation
    without poking at live objects."""

    policy: str
    offered: dict[str, int]
    admitted: dict[str, int]
    shed: dict[str, int]
    recall_loss: dict[str, float]
    sheds_by_reason: dict[str, int] = field(default_factory=dict)
    deferrals: int = 0
    admitted_delayed: int = 0
    total_admission_delay: float = 0.0
    max_admission_delay: float = 0.0
    mean_admission_delay: float = 0.0
    parks: int = 0
    park_evictions: int = 0
    peak_entry_depth: int = 0
    peak_joiner_depth: int = 0
    entry_overflows: int = 0
    credit_grants: int = 0
    credit_acquires: int = 0
    credit_stalls: int = 0
    stragglers_flagged: int = 0
    hot_units: tuple[str, ...] = ()

    @property
    def reconciled(self) -> bool:
        """``offered == admitted + shed`` on every side, exactly."""
        return all(self.offered[side] == self.admitted.get(side, 0)
                   + self.shed.get(side, 0) for side in self.offered)

    @property
    def total_offered(self) -> int:
        return sum(self.offered.values())

    @property
    def total_shed(self) -> int:
        return sum(self.shed.values())
