"""The overload manager: wiring, admission and reporting in one place.

:class:`OverloadConfig` is the single user-facing knob set;
:class:`OverloadManager` owns the moving parts — bounded-queue
declaration, the :class:`~repro.overload.credits.CreditController`,
the shedding policy, the :class:`ShedAccounting` ledger and the
:class:`~repro.overload.detector.StragglerDetector` — and presents
three narrow surfaces to the rest of the system:

- **wiring hooks** (``attach_entry`` / ``attach_joiner`` /
  ``attach_router`` / ``detach_joiner``) called by the engine as the
  topology is built and elastically reshaped;
- an **admission protocol** (``admission_decision`` plus the
  ``record_*`` accounting calls) used by the cluster's producer pump;
- **signals out**: ``hot_units()`` for the routing layer,
  ``mean_inbox_depth()`` for the HPA backlog feed, ``export_metrics``
  (all under the ``repro_overload_`` prefix) and ``report()`` for the
  end-of-run summary.

Everything here is passive bookkeeping until pressure actually
appears: with generous bounds and an underloaded workload the manager
never schedules an event, never touches workload randomness and never
alters a routing decision, which is what makes enabling it
byte-transparent (``tests/integration/test_overload_transparency.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..errors import ConfigurationError
from ..obs.trace import NOOP_TRACER, SPAN_SHED, SPAN_THROTTLE
from ..simulation.random import SeededRng
from .accounting import OverloadReport, ShedAccounting
from .credits import CreditController, ScheduleFn
from .detector import StragglerConfig, StragglerDetector
from .policies import (ADMIT, DEFER, POLICY_NAMES, SHED, ValueFn,
                       make_policy)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..broker.broker import Broker
    from ..broker.queue import MessageQueue
    from ..core.joiner import Joiner
    from ..core.router import Router
    from ..core.tuples import StreamTuple


@dataclass(frozen=True)
class OverloadConfig:
    """Backpressure / admission-control configuration.

    Attributes:
        policy: shedding policy name (see
            :data:`~repro.overload.policies.POLICY_NAMES`).
        entry_queue_depth: bound on the shared router entry queue; its
            occupancy relative to this bound is the admission severity.
        joiner_queue_depth: bound on each joiner inbox queue.
        credits_per_joiner: credit budget each joiner grants the
            router pool.
        park_limit: per-router bound on parked deliveries when the
            policy evicts parked work (drop-oldest).
        admission_retry: producer retry interval after a DEFER, in
            simulated seconds; the source of rising admission delay.
        shed_low_watermark: severity at which semantic shedding starts.
        shed_max_probability: shedding probability ceiling (semantic).
        value_fn: optional tuple-utility function for semantic
            shedding (higher value = shed less).
        seed: seed of the policy's private random stream.
        detect_stragglers: enable the per-joiner EWMA detector.
        straggler: detector thresholds.
    """

    policy: str = "block"
    entry_queue_depth: int = 512
    joiner_queue_depth: int = 256
    credits_per_joiner: int = 64
    park_limit: int = 64
    admission_retry: float = 0.02
    shed_low_watermark: float = 0.5
    shed_max_probability: float = 1.0
    value_fn: ValueFn | None = None
    seed: int = 7
    detect_stragglers: bool = True
    straggler: StragglerConfig = StragglerConfig()

    def __post_init__(self) -> None:
        if self.policy not in POLICY_NAMES:
            raise ConfigurationError(
                f"unknown policy {self.policy!r}; expected one of "
                f"{POLICY_NAMES}")
        for attr in ("entry_queue_depth", "joiner_queue_depth",
                     "credits_per_joiner", "park_limit"):
            if getattr(self, attr) < 1:
                raise ConfigurationError(
                    f"{attr} must be >= 1, got {getattr(self, attr)!r}")
        if self.admission_retry <= 0.0:
            raise ConfigurationError(
                f"admission_retry must be > 0, got {self.admission_retry!r}")


class OverloadManager:
    """Owns bounded queues, credits, shedding and straggler state."""

    def __init__(self, config: OverloadConfig,
                 broker: "Broker | None" = None, *,
                 scheduler: ScheduleFn | None = None,
                 clock: Callable[[], float] | None = None,
                 tracer=NOOP_TRACER) -> None:
        self.config = config
        self.broker = broker
        self.tracer = tracer
        self.clock = clock or (lambda: 0.0)
        self.accounting = ShedAccounting()
        self.credits = CreditController(config.credits_per_joiner,
                                        scheduler=scheduler)
        self.policy = make_policy(config.policy,
                                  low_watermark=config.shed_low_watermark,
                                  max_probability=config.shed_max_probability,
                                  value_fn=config.value_fn)
        self.detector = (StragglerDetector(config.straggler)
                         if config.detect_stragglers else None)
        self._rng = SeededRng(config.seed, "overload")
        self._entry_queue: "MessageQueue | None" = None
        #: External severity source: ``(depth_fn, max_depth)`` for
        #: runtimes whose entry queue is not a broker queue (the
        #: network ingest gateway's hand-off queue).
        self._entry_source: tuple[Callable[[], int], int] | None = None
        self._joiner_queues: dict[str, "MessageQueue"] = {}
        self._routers: list["Router"] = []
        #: Peak depth of inboxes that have since been deleted.
        self._retired_peak_joiner = 0

    # ------------------------------------------------------------------
    # Wiring hooks (called by the engine)
    # ------------------------------------------------------------------
    def attach_entry(self, queue_name: str) -> None:
        """Bound the shared entry queue; its fill ratio drives admission."""
        if self.broker is None:
            raise ConfigurationError(
                "attach_entry needs a broker; external runtimes use "
                "attach_entry_source instead")
        self._entry_queue = self.broker.declare_queue(
            queue_name, max_depth=self.config.entry_queue_depth)

    def attach_entry_source(self, depth_fn: Callable[[], int],
                            max_depth: int) -> None:
        """Drive admission severity from an external bounded queue.

        The broker-free variant of :meth:`attach_entry` for runtimes
        whose entry point is not a broker queue — the network ingest
        gateway registers its hand-off queue's depth here, so the same
        admission policies rule at the network edge.  ``depth_fn`` is
        sampled on every :meth:`severity` call and must be cheap and
        thread-safe.
        """
        if max_depth < 1:
            raise ConfigurationError(
                f"max_depth must be >= 1, got {max_depth!r}")
        self._entry_source = (depth_fn, max_depth)

    def attach_inbox(self, unit_id: str, queue_name: str) -> None:
        """Bound one consumer inbox and track it for depth signals.

        The credit-free variant of :meth:`attach_joiner`, used by
        runtimes whose consumers cannot grant credits (the matrix's
        auto-ack cells): the queue is bounded and feeds the straggler /
        peak-depth signals, while flow control rests on admission
        control alone.
        """
        queue = self.broker.declare_queue(
            queue_name, max_depth=self.config.joiner_queue_depth)
        self._joiner_queues[unit_id] = queue

    def attach_joiner(self, joiner: "Joiner") -> None:
        """Bound the unit's inbox and enrol it in the credit pool."""
        if joiner.inbox_queue is None:
            raise ConfigurationError(
                f"joiner {joiner.unit_id!r} has no inbox queue yet")
        self.attach_inbox(joiner.unit_id, joiner.inbox_queue)
        self.credits.register(joiner.unit_id)
        unit_id = joiner.unit_id
        joiner.credit_grant = lambda: self.credits.grant(unit_id)

    def detach_joiner(self, unit_id: str) -> None:
        """Forget a drained/reaped unit (frees its credit gate)."""
        queue = self._joiner_queues.pop(unit_id, None)
        if queue is not None and queue.peak_depth > self._retired_peak_joiner:
            self._retired_peak_joiner = queue.peak_depth
        self.credits.unregister(unit_id)
        if self.detector is not None:
            self.detector.forget(unit_id)

    def attach_router(self, router: "Router") -> None:
        """Put the router under credit flow control (and park bounds)."""
        router.flow = self.credits
        router.clock = self.clock
        if self.policy.evicts_parked:
            router.park_limit = self.config.park_limit
            router.on_park_evict = self._on_park_evict
        self._routers.append(router)

    def _on_park_evict(self, t: "StreamTuple", now: float) -> None:
        self.accounting.record_shed(t.relation, "park-evict",
                                    after_admission=True)
        if self.tracer.enabled:
            self.tracer.record(SPAN_SHED, now, "overload",
                               tuple_id=t.ident, detail="park-evict")

    # ------------------------------------------------------------------
    # Admission protocol (called by the producer pump)
    # ------------------------------------------------------------------
    def severity(self) -> float:
        """Entry-queue occupancy relative to its bound (>= 1 = full)."""
        if self._entry_source is not None:
            depth_fn, max_depth = self._entry_source
            return depth_fn() / max_depth
        queue = self._entry_queue
        if queue is None or queue.max_depth is None:
            return 0.0
        return queue.depth / queue.max_depth

    def admission_decision(self, t: "StreamTuple") -> str:
        """ADMIT / DEFER / SHED verdict for one offered tuple."""
        return self.policy.decide(t, self.severity(), self._rng)

    def record_offered(self, t: "StreamTuple") -> None:
        self.accounting.record_offered(t.relation)

    def record_admitted(self, t: "StreamTuple", now: float) -> None:
        self.accounting.record_admitted(t.relation, max(0.0, now - t.ts))

    def record_shed(self, t: "StreamTuple", now: float,
                    reason: str = "admission") -> None:
        self.accounting.record_shed(t.relation, reason)
        if self.tracer.enabled:
            self.tracer.record(SPAN_SHED, now, "admission",
                               tuple_id=t.ident, detail=reason)

    def record_deferral(self, t: "StreamTuple", now: float,
                        attempt: int) -> None:
        self.accounting.record_deferral()
        if self.tracer.enabled and attempt == 1:
            # One throttle span per tuple, on its first deferral — a
            # long stall would otherwise flood the trace with retries.
            self.tracer.record(SPAN_THROTTLE, now, "admission",
                               tuple_id=t.ident, detail="defer")

    # ------------------------------------------------------------------
    # Signals out
    # ------------------------------------------------------------------
    def observe(self, now: float) -> None:
        """Feed the straggler detector from inbox totals (metrics tick)."""
        if self.detector is None:
            return
        for unit_id, queue in sorted(self._joiner_queues.items()):
            # Settled = enqueued minus still-occupying (acked or dropped),
            # i.e. envelopes the unit has fully processed: the service
            # counterpart of the arrival total.
            self.detector.observe(unit_id, now, queue.enqueued,
                                  queue.enqueued - queue.depth, queue.depth)

    def hot_units(self) -> frozenset[str]:
        """Currently-flagged stragglers, for the routing layer."""
        if self.detector is None:
            return frozenset()
        return self.detector.hot_units()

    def mean_inbox_depth(self, side: str | None = None) -> float:
        """Mean joiner-inbox occupancy, the HPA backlog augmentation.

        ``side`` restricts the mean to one relation's units (unit ids
        are prefixed with their side letter).
        """
        depths = [q.depth for unit_id, q in self._joiner_queues.items()
                  if side is None or unit_id.startswith(side)]
        if not depths:
            return 0.0
        return sum(depths) / len(depths)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def parks(self) -> int:
        return sum(router.parks for router in self._routers)

    @property
    def park_evictions(self) -> int:
        return sum(router.park_evictions for router in self._routers)

    @property
    def peak_entry_depth(self) -> int:
        return 0 if self._entry_queue is None else self._entry_queue.peak_depth

    @property
    def peak_joiner_depth(self) -> int:
        live = max((q.peak_depth for q in self._joiner_queues.values()),
                   default=0)
        return max(live, self._retired_peak_joiner)

    @property
    def entry_overflows(self) -> int:
        return 0 if self._entry_queue is None else self._entry_queue.overflows

    def export_metrics(self, registry) -> None:
        """Publish overload totals under the ``repro_overload_`` prefix."""
        acc = self.accounting
        for side in sorted(acc.sides):
            labels = {"side": side}
            ledger = acc.sides[side]
            registry.counter("repro_overload_offered_total",
                             "Tuples offered for admission.",
                             labels).set_total(ledger.offered)
            registry.counter("repro_overload_admitted_total",
                             "Tuples admitted into the engine.",
                             labels).set_total(ledger.admitted)
            registry.counter("repro_overload_shed_total",
                             "Tuples shed by the overload layer.",
                             labels).set_total(ledger.shed)
            registry.gauge("repro_overload_recall_loss",
                           "Fraction of offered tuples shed.",
                           labels).set(ledger.recall_loss)
        for reason in sorted(acc.sheds_by_reason):
            registry.counter("repro_overload_shed_by_reason_total",
                             "Shed tuples by mechanism.",
                             {"reason": reason}
                             ).set_total(acc.sheds_by_reason[reason])
        registry.counter("repro_overload_deferrals_total",
                         "Producer deferrals (block backpressure)."
                         ).set_total(acc.deferrals)
        registry.counter("repro_overload_admission_delay_seconds_total",
                         "Cumulative admission delay absorbed."
                         ).set_total(acc.total_admission_delay)
        registry.gauge("repro_overload_admission_delay_seconds_max",
                       "Largest single-tuple admission delay."
                       ).set(acc.max_admission_delay)
        registry.counter("repro_overload_parks_total",
                         "Deliveries parked by routers on dry credits."
                         ).set_total(self.parks)
        registry.counter("repro_overload_park_evictions_total",
                         "Parked tuples evicted (drop-oldest)."
                         ).set_total(self.park_evictions)
        registry.counter("repro_overload_credit_acquires_total",
                         "Credits consumed by routed envelopes."
                         ).set_total(self.credits.acquires)
        registry.counter("repro_overload_credit_grants_total",
                         "Credits granted back by joiners."
                         ).set_total(self.credits.grants)
        registry.counter("repro_overload_credit_stalls_total",
                         "Transitions of the credit pool to exhausted."
                         ).set_total(self.credits.stalls)
        registry.gauge("repro_overload_credits_min",
                       "Tightest credit balance across the pool."
                       ).set(self.credits.min_available())
        for unit_id in self.credits.units:
            registry.gauge("repro_overload_credits",
                           "Available credits per joiner.",
                           {"unit": unit_id}
                           ).set(self.credits.available(unit_id))
        registry.gauge("repro_overload_entry_depth",
                       "Current entry-queue occupancy."
                       ).set(0 if self._entry_queue is None
                             else self._entry_queue.depth)
        registry.gauge("repro_overload_entry_peak_depth",
                       "Peak entry-queue occupancy."
                       ).set(self.peak_entry_depth)
        registry.gauge("repro_overload_joiner_peak_depth",
                       "Peak joiner-inbox occupancy."
                       ).set(self.peak_joiner_depth)
        if self.detector is not None:
            registry.counter("repro_overload_stragglers_flagged_total",
                             "Cold-to-hot straggler transitions."
                             ).set_total(self.detector.flagged_total)
            registry.gauge("repro_overload_stragglers",
                           "Currently-flagged straggler units."
                           ).set(len(self.detector.hot_units()))

    def report(self) -> OverloadReport:
        """Freeze the end-of-run summary."""
        acc = self.accounting
        return OverloadReport(
            policy=self.config.policy,
            offered={s: acc.sides[s].offered for s in sorted(acc.sides)},
            admitted={s: acc.sides[s].admitted for s in sorted(acc.sides)},
            shed={s: acc.sides[s].shed for s in sorted(acc.sides)},
            recall_loss={s: acc.sides[s].recall_loss
                         for s in sorted(acc.sides)},
            sheds_by_reason=dict(sorted(acc.sheds_by_reason.items())),
            deferrals=acc.deferrals,
            admitted_delayed=acc.admitted_delayed,
            total_admission_delay=acc.total_admission_delay,
            max_admission_delay=acc.max_admission_delay,
            mean_admission_delay=acc.mean_admission_delay,
            parks=self.parks,
            park_evictions=self.park_evictions,
            peak_entry_depth=self.peak_entry_depth,
            peak_joiner_depth=self.peak_joiner_depth,
            entry_overflows=self.entry_overflows,
            credit_grants=self.credits.grants,
            credit_acquires=self.credits.acquires,
            credit_stalls=self.credits.stalls,
            stragglers_flagged=(0 if self.detector is None
                                else self.detector.flagged_total),
            hot_units=tuple(sorted(self.hot_units())),
        )


# Re-exported for callers that only need the verdict constants.
__all__ = ["OverloadConfig", "OverloadManager", "ADMIT", "DEFER", "SHED"]
