"""Backpressure, admission control and graceful degradation.

This package is the overload-management layer on top of the bounded
broker queues: credit-based flow control between joiners and routers
(:mod:`~repro.overload.credits`), pluggable admission/shedding
policies with exact per-side accounting (:mod:`~repro.overload.policies`,
:mod:`~repro.overload.accounting`), slow-consumer detection
(:mod:`~repro.overload.detector`) and the :class:`OverloadManager`
facade the engines wire through (:mod:`~repro.overload.manager`).
"""

from .accounting import OverloadReport, ShedAccounting, SideLedger
from .credits import CreditController
from .detector import StragglerConfig, StragglerDetector
from .manager import ADMIT, DEFER, SHED, OverloadConfig, OverloadManager
from .policies import (POLICY_NAMES, BlockProducerPolicy, DropOldestPolicy,
                       DropTailPolicy, SemanticSheddingPolicy, SheddingPolicy,
                       make_policy)

__all__ = [
    "ADMIT",
    "DEFER",
    "SHED",
    "POLICY_NAMES",
    "BlockProducerPolicy",
    "CreditController",
    "DropOldestPolicy",
    "DropTailPolicy",
    "OverloadConfig",
    "OverloadManager",
    "OverloadReport",
    "SemanticSheddingPolicy",
    "ShedAccounting",
    "SheddingPolicy",
    "SideLedger",
    "StragglerConfig",
    "StragglerDetector",
    "make_policy",
]
