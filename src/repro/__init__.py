"""repro — a reproduction of "Scalable Distributed Stream Join
Processing" (the join-biclique model / BiStream, SIGMOD 2015).

The package implements, from scratch and in pure Python:

- the **join-biclique** stream-join engine (:mod:`repro.core`):
  routers, joiners, the chained in-memory index, ContRand/ContHash
  routing, the order-consistent tuple protocol and elastic scaling
  without data migration;
- the **join-matrix** baseline (:mod:`repro.matrix`);
- an **AMQP-style broker** substrate (:mod:`repro.broker`);
- a deterministic **discrete-event simulator** (:mod:`repro.simulation`);
- a **Kubernetes-like cluster** substrate with a Horizontal Pod
  Autoscaler (:mod:`repro.cluster`);
- **workload generators** (:mod:`repro.workloads`), **metrics**
  (:mod:`repro.metrics`) and the **experiment harness**
  (:mod:`repro.harness`);
- end-to-end **observability** (:mod:`repro.obs`): causal tuple
  tracing, a unified metrics registry with Prometheus-style
  exposition, and the per-stage latency breakdown;
- a **real multiprocess execution runtime** (:mod:`repro.parallel`):
  the same joiners behind worker processes with a wire codec,
  supervision with replay recovery, and wall-clock scaling.

Quickstart::

    from repro import (BicliqueConfig, EquiJoinPredicate, StreamJoinEngine,
                       TimeWindow, stream_from_pairs)

    config = BicliqueConfig(window=TimeWindow(seconds=600),
                            r_joiners=2, s_joiners=3)
    engine = StreamJoinEngine(config, EquiJoinPredicate("k", "k"))
    results, report = engine.run(r_stream, s_stream)
"""

from .core import (
    CascadeJoin,
    CascadePipeline,
    CascadeResult,
    PipelineStage,
    Attribute,
    BandJoinPredicate,
    BatchingConfig,
    BicliqueConfig,
    BicliqueEngine,
    ChainedInMemoryIndex,
    ConjunctionPredicate,
    CountWindow,
    FullHistoryWindow,
    CrossPredicate,
    EquiJoinPredicate,
    ExpensivePredicate,
    JoinPredicate,
    JoinResult,
    RunReport,
    Schema,
    StreamJoinEngine,
    StreamSource,
    StreamTuple,
    ThetaJoinPredicate,
    TimeWindow,
    make_result,
    merge_by_time,
    stream_from_pairs,
)
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "CascadeJoin",
    "CascadePipeline",
    "CascadeResult",
    "PipelineStage",
    "Attribute",
    "BandJoinPredicate",
    "BatchingConfig",
    "BicliqueConfig",
    "BicliqueEngine",
    "ChainedInMemoryIndex",
    "ConjunctionPredicate",
    "CountWindow",
    "FullHistoryWindow",
    "CrossPredicate",
    "EquiJoinPredicate",
    "ExpensivePredicate",
    "JoinPredicate",
    "JoinResult",
    "ReproError",
    "RunReport",
    "Schema",
    "StreamJoinEngine",
    "StreamSource",
    "StreamTuple",
    "ThetaJoinPredicate",
    "TimeWindow",
    "make_result",
    "merge_by_time",
    "stream_from_pairs",
    "__version__",
]
