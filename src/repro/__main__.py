"""Command-line entry point: ``python -m repro [command]``.

Commands:
    demo        run a small verified stream join and print the report
    autoscale   run a compressed Figure-20-style autoscaling timeline
    parallel    run the same join on real worker processes (optional
                argument: worker count, default 2) and verify the
                results against the single-process reference
    serve       run a live ingest gateway (TCP + WebSocket + HTTP
                ``/metrics``) in front of a real parallel cluster
    soak        run the chaos soak harness against the parallel
                runtime (optional arguments: rounds, seed, output
                scorecard path; ``--resizes``/``--no-resizes`` toggles
                scale faults, ``--gateway`` routes every round through
                a loopback ingest gateway with network-edge faults)
                and fail on any lost/duplicate result
    info        print the package overview and pointers

Everything heavier lives in ``examples/`` and ``benchmarks/``.
"""

from __future__ import annotations

import sys

USAGE = """\
usage: python -m repro <command> [args]

commands:
  demo       run a small verified stream join and print the report
  autoscale  run a compressed Figure-20-style autoscaling timeline
  parallel   run the join on real worker processes  [workers]
  serve      run a live ingest gateway fronting a parallel cluster
             [--port N] [--http-port N] [--workers N] [--duration SECONDS]
  soak       run the chaos soak harness  [rounds [seed [scorecard.json]]]
             [--resizes | --no-resizes] [--gateway]
  info       print the package overview and pointers (default)

python -m repro --help prints this message."""


def _demo() -> int:
    from repro import (BicliqueConfig, EquiJoinPredicate, StreamJoinEngine,
                       TimeWindow, stream_from_pairs)
    from repro.harness import check_exactly_once, reference_join

    r = stream_from_pairs(
        "R", [(float(i), {"k": i % 7}) for i in range(200)])
    s = stream_from_pairs(
        "S", [(i * 1.1, {"k": i % 7}) for i in range(180)])
    predicate = EquiJoinPredicate("k", "k")
    window = TimeWindow(seconds=30.0)
    engine = StreamJoinEngine(
        BicliqueConfig(window=window, r_joiners=2, s_joiners=3, routers=2,
                       archive_period=5.0),
        predicate)
    results, report = engine.run(r, s)
    check = check_exactly_once(results,
                               reference_join(r, s, predicate, window))
    print(f"join-biclique ({engine.engine.routing_mode} routing): "
          f"{report.results} results at "
          f"{report.tuples_per_second:,.0f} tuples/s")
    print(f"network: {report.network.data_messages} data messages "
          f"({report.network.data_messages / report.tuples_ingested:.2f}"
          f"/tuple)")
    print(f"exactly-once check: {'OK' if check.ok else f'FAILED {check}'}")
    return 0 if check.ok else 1


def _autoscale() -> int:
    from repro import BicliqueConfig, EquiJoinPredicate, TimeWindow
    from repro.cluster import (ClusterConfig, CostModel, HpaConfig,
                               SimulatedCluster)
    from repro.workloads import EquiJoinWorkload, UniformKeys, \
        thesis_rate_profile

    duration = 360.0
    profile = thesis_rate_profile(scale=0.1)
    workload = EquiJoinWorkload(keys=UniformKeys(200), seed=7)
    hpa = HpaConfig(metric="cpu", target_utilisation=0.80, min_replicas=1,
                    max_replicas=3, period=6.0, scale_down_cooldown=30.0)
    cluster = SimulatedCluster(
        BicliqueConfig(window=TimeWindow(seconds=60.0), r_joiners=1,
                       s_joiners=1, routing="hash", archive_period=6.0,
                       punctuation_interval=0.2, expiry_slack=1.0),
        EquiJoinPredicate("k", "k"),
        ClusterConfig(cost_model=CostModel().scaled(314.0),
                      metrics_interval=6.0, timeline_interval=30.0),
        hpa={"R": hpa, "S": hpa})
    report = cluster.run(workload.arrivals(profile, duration), duration,
                         rate_fn=profile.rate)
    print("t(s)  rate  R-pods  cpu/request")
    for point in report.timeline:
        cpu = ("  -  " if point.cpu_utilisation_r is None
               else f"{point.cpu_utilisation_r:5.0%}")
        print(f"{point.time:4.0f}  {point.input_rate:4.0f}  "
              f"{point.r_replicas:6d}  {cpu}")
    print(f"\nscale events: {report.scale_events}")
    return 0


def _parallel(workers: int = 2) -> int:
    from repro import (BicliqueConfig, EquiJoinPredicate, TimeWindow,
                       merge_by_time, stream_from_pairs)
    from repro.harness import check_exactly_once, reference_join
    from repro.parallel import ParallelCluster, ParallelConfig

    r = stream_from_pairs(
        "R", [(float(i), {"k": i % 7}) for i in range(200)])
    s = stream_from_pairs(
        "S", [(i * 1.1, {"k": i % 7}) for i in range(180)])
    predicate = EquiJoinPredicate("k", "k")
    window = TimeWindow(seconds=30.0)
    cluster = ParallelCluster(
        BicliqueConfig(window=window, r_joiners=2, s_joiners=2, routers=2,
                       archive_period=5.0),
        predicate, ParallelConfig(workers=workers))
    results, report = cluster.run(merge_by_time(r, s))
    check = check_exactly_once(results,
                               reference_join(r, s, predicate, window))
    print(f"parallel runtime ({cluster.routing_mode} routing, "
          f"{report.workers} workers): {report.results} results in "
          f"{report.duration:.2f}s wall")
    print(f"batches: {report.metrics['repro_parallel_batches_total']:.0f}, "
          f"restarts: {report.restarts}")
    print(f"exactly-once check: {'OK' if check.ok else f'FAILED {check}'}")
    return 0 if check.ok else 1


def _serve(port: int = 0, http_port: int | None = None, workers: int = 2,
           duration: float | None = None) -> int:
    """Run a live ingest gateway until interrupted (or ``duration``)."""
    import time

    from repro import BicliqueConfig, EquiJoinPredicate, TimeWindow
    from repro.gateway import GatewayConfig, IngestGateway
    from repro.overload.manager import OverloadConfig, OverloadManager
    from repro.parallel import ParallelCluster, ParallelConfig

    cluster = ParallelCluster(
        BicliqueConfig(window=TimeWindow(seconds=30.0), r_joiners=2,
                       s_joiners=2, routers=2, archive_period=5.0),
        EquiJoinPredicate("k", "k"), ParallelConfig(workers=workers))
    manager = OverloadManager(OverloadConfig(policy="block",
                                             entry_queue_depth=1024))
    with cluster:
        gateway = IngestGateway(cluster, manager,
                                GatewayConfig(port=port,
                                              http_port=http_port)).start()
        host = gateway.config.host
        print(f"ingest gateway on {host}:{gateway.port} "
              f"(newline-JSON TCP + WebSocket)")
        print(f"metrics: http://{host}:{gateway.http_port}/metrics")
        try:
            if duration is not None:
                time.sleep(duration)
            else:
                while True:
                    time.sleep(1.0)
        except KeyboardInterrupt:
            print("\nshutting down")
        gateway.drain()
        gateway.close()
        report = cluster.drain()
        stats = gateway.stats
        print(f"served {stats.connections} connections: "
              f"{stats.records_in} records in, {stats.acks} admitted, "
              f"{stats.sheds} shed, {stats.malformed} malformed; "
              f"{report.results} join results")
    return 0


def _soak(rounds: int | None = None, seed: int | None = None,
          out: str | None = None, resizes: bool = True,
          gateway: bool = False) -> int:
    from repro.chaos import SoakConfig, run_soak, write_scorecard
    from repro.chaos.soak import format_round

    config = SoakConfig(
        rounds=rounds if rounds is not None else SoakConfig.rounds,
        seed=seed if seed is not None else SoakConfig.seed,
        resizes=resizes, gateway=gateway)
    print(f"chaos soak: {config.rounds} rounds, seed {config.seed}, "
          f"{config.faults_per_round} faults/round"
          + (f" + {config.effective_resizes} resizes/round"
             if config.effective_resizes else "")
          + (f" + {config.effective_network_faults} network faults/round "
             f"through a loopback gateway"
             if config.effective_network_faults else "")
          + f" over {config.workers} workers")
    scorecard = run_soak(config,
                         progress=lambda s: print(format_round(s)))
    totals = scorecard["totals"]
    print(f"\ntotals: {totals['produced']}/{totals['expected']} results, "
          f"lost={totals['lost']} dup={totals['duplicated']} "
          f"restarts={totals['restarts']} "
          f"quarantines={totals['quarantines']} "
          f"migrations={totals['migrations']} "
          f"(aborted={totals['aborted_migrations']})"
          + (f" network_faults={totals['network_faults']} "
             f"client_resets={totals['client_resets']}"
             if gateway else ""))
    print(f"faults injected: {totals['faults_injected']}")
    if out is not None:
        write_scorecard(scorecard, out)
        print(f"scorecard written to {out}")
    print(f"verdict: {'OK' if scorecard['ok'] else 'FAILED'}")
    return 0 if scorecard["ok"] else 1


def _info() -> int:
    import repro
    print(repro.__doc__)
    print(f"version {repro.__version__}")
    print("See README.md, DESIGN.md and EXPERIMENTS.md; run the full "
          "experiment suite with: pytest benchmarks/ --benchmark-only -s")
    return 0


def _parse_serve_args(args: list[str]) -> dict | None:
    """``serve`` flag parsing; ``None`` means malformed (usage error)."""
    options = {"port": 0, "http_port": None, "workers": 2, "duration": None}
    flags = {"--port": ("port", int), "--http-port": ("http_port", int),
             "--workers": ("workers", int),
             "--duration": ("duration", float)}
    index = 0
    while index < len(args):
        spec = flags.get(args[index])
        if spec is None or index + 1 >= len(args):
            return None
        name, convert = spec
        try:
            options[name] = convert(args[index + 1])
        except ValueError:
            return None
        index += 2
    return options


def main(argv: list[str]) -> int:
    command = argv[1] if len(argv) > 1 else "info"
    if command in ("--help", "-h", "help"):
        print(USAGE)
        return 0
    handlers = {"demo": _demo, "autoscale": _autoscale,
                "parallel": _parallel, "serve": _serve, "soak": _soak,
                "info": _info}
    handler = handlers.get(command)
    if handler is None:
        print(f"unknown command {command!r}\n{USAGE}", file=sys.stderr)
        return 2
    if command == "parallel" and len(argv) > 2:
        return _parallel(workers=int(argv[2]))
    if command == "serve":
        options = _parse_serve_args(argv[2:])
        if options is None:
            print(f"bad serve arguments {argv[2:]!r}\n{USAGE}",
                  file=sys.stderr)
            return 2
        return _serve(**options)
    if command == "soak":
        args = argv[2:]
        resizes = True
        gateway = False
        if "--no-resizes" in args:
            resizes = False
        if "--gateway" in args:
            gateway = True
        args = [a for a in args
                if a not in ("--resizes", "--no-resizes", "--gateway")]
        return _soak(
            rounds=int(args[0]) if len(args) > 0 else None,
            seed=int(args[1]) if len(args) > 1 else None,
            out=args[2] if len(args) > 2 else None,
            resizes=resizes, gateway=gateway)
    return handler()


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
