"""Chaos schedules: declarative fault plans for the simulated cluster.

A :class:`FaultPlan` lists the process-level faults to inject into one
cluster run — which pods crash, when, and how long they stay down
before the restart supervisor is allowed to bring them back.  Network
faults (loss, duplication, partitions) are configured directly on the
fault-injecting :mod:`~repro.simulation.network` models; this module
covers the *process* failure mode the thesis's §3.1 isolation argument
is about: a joiner or router pod dying and losing its in-memory state.

The plan itself is pure data so experiments stay declarative and
reproducible; :class:`~repro.cluster.runtime.SimulatedCluster` executes
it against the engine, broker and pod substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError


@dataclass(frozen=True)
class CrashFault:
    """Crash one pod at a scheduled time.

    Attributes:
        at: simulated time of the crash.
        target: the unit to kill — a joiner unit id (``"R0"``) or a
            router id (``"router0"``).
        outage: minimum downtime before the supervisor may restart the
            pod (the supervisor's own backoff is added on top).
    """

    at: float
    target: str
    outage: float = 0.0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise SimulationError(f"crash time must be >= 0, got {self.at!r}")
        if self.outage < 0:
            raise SimulationError(
                f"outage must be >= 0, got {self.outage!r}")
        if not self.target:
            raise SimulationError("crash fault needs a target id")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-ordered chaos schedule for one cluster run."""

    faults: tuple[CrashFault, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults",
                           tuple(sorted(self.faults, key=lambda f: f.at)))

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def targets(self) -> list[str]:
        """Distinct fault targets, in first-crash order."""
        seen: list[str] = []
        for fault in self.faults:
            if fault.target not in seen:
                seen.append(fault.target)
        return seen
