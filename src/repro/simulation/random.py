"""Seeded randomness helpers.

Every stochastic component in the library (key generators, routing
choices, network jitter) draws from a :class:`SeededRng` created from an
experiment-level seed, so that all results in EXPERIMENTS.md are exactly
reproducible.  Streams are *named*: ``rng.fork("router-0")`` derives an
independent generator whose sequence does not change when unrelated
components are added to an experiment.
"""

from __future__ import annotations

import hashlib
import random as _random


class SeededRng:
    """A named, forkable wrapper around :class:`random.Random`.

    Forking hashes the parent seed together with the child name, so the
    derived stream is stable across runs and independent of fork order.
    """

    def __init__(self, seed: int | str, name: str = "root") -> None:
        self.name = name
        self._seed_material = f"{seed}:{name}"
        digest = hashlib.sha256(self._seed_material.encode("utf-8")).digest()
        self._rng = _random.Random(int.from_bytes(digest[:8], "big"))

    def fork(self, name: str) -> "SeededRng":
        """Derive an independent, reproducible child generator."""
        return SeededRng(self._seed_material, name)

    # Thin pass-throughs for the operations the library needs.  Keeping
    # the surface small makes determinism audits easy.
    def random(self) -> float:
        return self._rng.random()

    def uniform(self, a: float, b: float) -> float:
        return self._rng.uniform(a, b)

    def randint(self, a: int, b: int) -> int:
        return self._rng.randint(a, b)

    def choice(self, seq):
        return self._rng.choice(seq)

    def shuffle(self, seq) -> None:
        self._rng.shuffle(seq)

    def expovariate(self, lambd: float) -> float:
        return self._rng.expovariate(lambd)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)

    def sample(self, population, k: int):
        return self._rng.sample(population, k)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeededRng(name={self.name!r})"
