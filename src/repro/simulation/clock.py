"""Simulated clocks.

The whole library is written against the :class:`Clock` protocol rather
than :func:`time.time`, so that every experiment is deterministic and can
compress hours of simulated wall-clock (e.g. the 60-minute autoscaling
runs of thesis Figures 20/21) into milliseconds of real time.
"""

from __future__ import annotations

from ..errors import SimulationError


class Clock:
    """A monotonically non-decreasing simulated clock.

    Time is a ``float`` number of seconds since the start of the
    simulation.  The clock can only move forward; attempting to move it
    backwards raises :class:`~repro.errors.SimulationError`.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to absolute time ``t``.

        Raises:
            SimulationError: if ``t`` is earlier than the current time.
        """
        if t < self._now:
            raise SimulationError(
                f"cannot move clock backwards from {self._now!r} to {t!r}"
            )
        self._now = float(t)

    def advance_by(self, dt: float) -> None:
        """Move the clock forward by ``dt`` seconds (``dt`` must be >= 0)."""
        if dt < 0:
            raise SimulationError(f"cannot advance clock by negative delta {dt!r}")
        self._now += dt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self._now:.6f})"


class ManualClock(Clock):
    """A clock advanced explicitly by test code.

    Identical to :class:`Clock`; the separate name documents intent at
    call sites (unit tests and examples drive it by hand, whereas the
    event kernel owns an ordinary :class:`Clock`).
    """
