"""Event objects and the pending-event queue of the DES kernel.

Events are ordered by ``(time, priority, seq)``.  ``seq`` is a global
insertion counter which makes the ordering *total* and therefore the
whole simulation deterministic: two events scheduled for the same time
with the same priority fire in scheduling order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import SimulationError

# Action signature: called with no arguments when the event fires.
Action = Callable[[], Any]


@dataclass(order=True, slots=True)
class Event:
    """A scheduled simulation event.

    Attributes:
        time: absolute simulated time at which the event fires.
        priority: tie-breaker for events at the same time (lower first).
        seq: insertion sequence number (assigned by the queue).
        action: zero-argument callable executed when the event fires.
        label: human-readable description, used in traces.
        cancelled: cancelled events are skipped when popped.
    """

    time: float
    priority: int
    seq: int
    action: Action = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark this event so the kernel skips it when it comes due."""
        self.cancelled = True


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, action: Action, *, priority: int = 0,
             label: str = "") -> Event:
        """Schedule ``action`` at absolute ``time`` and return the event."""
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time!r}")
        event = Event(time=time, priority=priority, seq=next(self._counter),
                      action=action, label=label)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises:
            SimulationError: if the queue holds no live events.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        raise SimulationError("pop from empty event queue")

    def peek_time(self) -> float | None:
        """Return the fire time of the next live event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time
