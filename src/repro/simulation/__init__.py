"""Deterministic discrete-event simulation substrate.

This package replaces the physical testbeds of the source texts (an
Apache Storm cluster in the SIGMOD paper; Google Container Engine VMs in
the thesis) with a reproducible simulator:

- :mod:`~repro.simulation.clock` — simulated time,
- :mod:`~repro.simulation.events` — the pending-event queue,
- :mod:`~repro.simulation.kernel` — the :class:`Simulator` event loop,
- :mod:`~repro.simulation.random` — named, forkable seeded RNG streams,
- :mod:`~repro.simulation.network` — message delay models (all pairwise
  FIFO, with controllable cross-channel disorder) plus fault-injecting
  wrappers (loss, duplication, partitions),
- :mod:`~repro.simulation.faults` — declarative pod-crash chaos
  schedules executed by the simulated cluster.
"""

from .clock import Clock, ManualClock
from .events import Event, EventQueue
from .faults import CrashFault, FaultPlan
from .kernel import Simulator
from .network import (
    FixedDelayNetwork,
    JitterNetwork,
    LossyNetwork,
    NetworkModel,
    PartitionNetwork,
    PerChannelDelayNetwork,
    ReorderNetwork,
    ZeroDelayNetwork,
)
from .random import SeededRng

__all__ = [
    "Clock",
    "ManualClock",
    "Event",
    "EventQueue",
    "CrashFault",
    "FaultPlan",
    "Simulator",
    "SeededRng",
    "NetworkModel",
    "ZeroDelayNetwork",
    "FixedDelayNetwork",
    "JitterNetwork",
    "LossyNetwork",
    "PartitionNetwork",
    "PerChannelDelayNetwork",
    "ReorderNetwork",
]
