"""Network delay models for the simulated cluster.

The join-biclique dataflow is sensitive to *relative* message ordering
across different router→joiner channels (thesis §3.3, Figure 8).  The
models here decide how long each message spends "on the wire" so that
the simulator can both (a) model realistic latency and (b) deliberately
provoke the out-of-order interleavings the ordering protocol must fix.

All models guarantee **pairwise FIFO**: two messages sent on the same
``(sender, receiver)`` channel are never reordered, matching the AMQP
per-queue guarantee the thesis builds on (Definition 8).  Cross-channel
order is where the models differ.
"""

from __future__ import annotations

from .random import SeededRng


class NetworkModel:
    """Base class: delivery delay per ``(sender, receiver)`` channel.

    Subclasses override :meth:`raw_delay`; the public :meth:`delay`
    enforces pairwise FIFO by never returning a delivery time earlier
    than the previous delivery on the same channel.
    """

    def __init__(self) -> None:
        self._last_delivery: dict[tuple[str, str], float] = {}

    def raw_delay(self, sender: str, receiver: str) -> float:
        raise NotImplementedError

    def delay(self, sender: str, receiver: str, now: float) -> float:
        """Return the (FIFO-corrected) delay for a message sent ``now``."""
        channel = (sender, receiver)
        arrival = now + self.raw_delay(sender, receiver)
        floor = self._last_delivery.get(channel, 0.0)
        arrival = max(arrival, floor)
        self._last_delivery[channel] = arrival
        return arrival - now


class ZeroDelayNetwork(NetworkModel):
    """Instant delivery; cross-channel order equals send order."""

    def raw_delay(self, sender: str, receiver: str) -> float:
        return 0.0


class FixedDelayNetwork(NetworkModel):
    """Every message takes exactly ``latency`` seconds."""

    def __init__(self, latency: float) -> None:
        super().__init__()
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency!r}")
        self.latency = latency

    def raw_delay(self, sender: str, receiver: str) -> float:
        return self.latency


class JitterNetwork(NetworkModel):
    """Uniform jitter in ``[base, base + jitter]`` seconds per message.

    Because different channels draw independent delays, messages sent
    close together on *different* channels frequently swap order — the
    exact disorder source described in thesis §3.3 ("stream items being
    routed by different paths in a network").
    """

    def __init__(self, base: float, jitter: float, rng: SeededRng) -> None:
        super().__init__()
        if base < 0 or jitter < 0:
            raise ValueError("base and jitter must be >= 0")
        self.base = base
        self.jitter = jitter
        self._rng = rng

    def raw_delay(self, sender: str, receiver: str) -> float:
        return self.base + self._rng.random() * self.jitter


class PerChannelDelayNetwork(NetworkModel):
    """A fixed, possibly different, delay per channel.

    Useful in tests to construct *exact* adversarial interleavings such
    as the duplicate/missing-result scenarios of Figure 8(c)/(d).
    """

    def __init__(self, default: float = 0.0) -> None:
        super().__init__()
        self.default = default
        self._per_channel: dict[tuple[str, str], float] = {}

    def set_delay(self, sender: str, receiver: str, latency: float) -> None:
        self._per_channel[(sender, receiver)] = latency

    def raw_delay(self, sender: str, receiver: str) -> float:
        return self._per_channel.get((sender, receiver), self.default)
