"""Network delay models for the simulated cluster.

The join-biclique dataflow is sensitive to *relative* message ordering
across different router→joiner channels (thesis §3.3, Figure 8).  The
models here decide how long each message spends "on the wire" so that
the simulator can both (a) model realistic latency and (b) deliberately
provoke the out-of-order interleavings the ordering protocol must fix.

The delay models guarantee **pairwise FIFO**: two messages sent on the
same ``(sender, receiver)`` channel are never reordered, matching the
AMQP per-queue guarantee the thesis builds on (Definition 8).  Cross-
channel order is where the models differ.  :class:`ReorderNetwork` is
the deliberate exception: it breaks wire-level FIFO (boundedly, seeded)
to exercise the broker's per-channel sequence gates, which restore
FIFO before any consumer observes the traffic.

Fault injection is expressed through :meth:`NetworkModel.transmit`,
which returns the arrival delays of every *copy* of a message that
actually reaches the receiver: the plain delay models return exactly
one copy, :class:`LossyNetwork` may drop or duplicate copies, and
:class:`PartitionNetwork` black-holes whole channel sets during an
interval.  A dropped transmission (empty plan) is repaired by the
broker's retransmission timer, so loss shows up as *latency*, not as
silent data loss — the at-least-once contract the recovery subsystem
builds on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from .random import SeededRng


class NetworkModel:
    """Base class: delivery delay per ``(sender, receiver)`` channel.

    Subclasses override :meth:`raw_delay`; the public :meth:`delay`
    enforces pairwise FIFO by never returning a delivery time earlier
    than the previous delivery on the same channel.
    """

    def __init__(self) -> None:
        self._last_delivery: dict[tuple[str, str], float] = {}

    def raw_delay(self, sender: str, receiver: str) -> float:
        raise NotImplementedError

    def delay(self, sender: str, receiver: str, now: float) -> float:
        """Return the (FIFO-corrected) delay for a message sent ``now``."""
        channel = (sender, receiver)
        arrival = now + self.raw_delay(sender, receiver)
        floor = self._last_delivery.get(channel, 0.0)
        arrival = max(arrival, floor)
        self._last_delivery[channel] = arrival
        return arrival - now

    def transmit(self, sender: str, receiver: str, now: float) -> list[float]:
        """Arrival delays of each copy of one transmission attempt.

        The reliable models return exactly one copy.  Fault-injecting
        models may return an empty list (the attempt was lost — the
        broker retransmits) or several delays (the message was
        duplicated in flight).
        """
        return [self.delay(sender, receiver, now)]


class ZeroDelayNetwork(NetworkModel):
    """Instant delivery; cross-channel order equals send order."""

    def raw_delay(self, sender: str, receiver: str) -> float:
        return 0.0


class FixedDelayNetwork(NetworkModel):
    """Every message takes exactly ``latency`` seconds."""

    def __init__(self, latency: float) -> None:
        super().__init__()
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency!r}")
        self.latency = latency

    def raw_delay(self, sender: str, receiver: str) -> float:
        return self.latency


class JitterNetwork(NetworkModel):
    """Uniform jitter in ``[base, base + jitter]`` seconds per message.

    Because different channels draw independent delays, messages sent
    close together on *different* channels frequently swap order — the
    exact disorder source described in thesis §3.3 ("stream items being
    routed by different paths in a network").
    """

    def __init__(self, base: float, jitter: float, rng: SeededRng) -> None:
        super().__init__()
        if base < 0 or jitter < 0:
            raise ValueError("base and jitter must be >= 0")
        self.base = base
        self.jitter = jitter
        self._rng = rng

    def raw_delay(self, sender: str, receiver: str) -> float:
        return self.base + self._rng.random() * self.jitter


class PerChannelDelayNetwork(NetworkModel):
    """A fixed, possibly different, delay per channel.

    Useful in tests to construct *exact* adversarial interleavings such
    as the duplicate/missing-result scenarios of Figure 8(c)/(d).
    """

    def __init__(self, default: float = 0.0) -> None:
        super().__init__()
        self.default = default
        self._per_channel: dict[tuple[str, str], float] = {}

    def set_delay(self, sender: str, receiver: str, latency: float) -> None:
        self._per_channel[(sender, receiver)] = latency

    def raw_delay(self, sender: str, receiver: str) -> float:
        return self._per_channel.get((sender, receiver), self.default)


# ---------------------------------------------------------------------------
# Fault-injecting wrappers
# ---------------------------------------------------------------------------
class LossyNetwork(NetworkModel):
    """Drops and/or duplicates messages, per channel, around an inner model.

    Each transmission attempt is independently lost with probability
    ``drop_probability`` (the broker's retransmission timer repairs the
    loss) or duplicated with probability ``duplicate_probability`` (the
    second copy arrives later on the same FIFO channel; joiners must
    dedup it by sequence number).  Rates can be overridden per
    ``(sender, receiver)`` channel with :meth:`set_rates`, e.g. to make
    only one router→joiner link unreliable.

    ``drop_probability`` must stay below 1: a channel that loses every
    attempt forever would retransmit forever — model a total outage
    with :class:`PartitionNetwork`, whose black-hole has an end.
    """

    def __init__(self, inner: NetworkModel, rng: SeededRng, *,
                 drop_probability: float = 0.0,
                 duplicate_probability: float = 0.0) -> None:
        super().__init__()
        self.inner = inner
        self._rng = rng
        self._validate(drop_probability, duplicate_probability)
        self.drop_probability = drop_probability
        self.duplicate_probability = duplicate_probability
        self._per_channel: dict[tuple[str, str], tuple[float, float]] = {}
        self.dropped = 0
        self.duplicated = 0

    @staticmethod
    def _validate(drop: float, duplicate: float) -> None:
        if not 0.0 <= drop < 1.0:
            raise SimulationError(
                f"drop probability must be in [0, 1), got {drop!r}")
        if not 0.0 <= duplicate <= 1.0:
            raise SimulationError(
                f"duplicate probability must be in [0, 1], got {duplicate!r}")

    def set_rates(self, sender: str, receiver: str, *,
                  drop_probability: float = 0.0,
                  duplicate_probability: float = 0.0) -> None:
        """Override the loss/duplication rates of one channel."""
        self._validate(drop_probability, duplicate_probability)
        self._per_channel[(sender, receiver)] = (drop_probability,
                                                 duplicate_probability)

    def raw_delay(self, sender: str, receiver: str) -> float:
        return self.inner.raw_delay(sender, receiver)

    def delay(self, sender: str, receiver: str, now: float) -> float:
        return self.inner.delay(sender, receiver, now)

    def transmit(self, sender: str, receiver: str, now: float) -> list[float]:
        drop, duplicate = self._per_channel.get(
            (sender, receiver), (self.drop_probability,
                                 self.duplicate_probability))
        if drop and self._rng.random() < drop:
            self.dropped += 1
            return []
        delays = self.inner.transmit(sender, receiver, now)
        if delays and duplicate and self._rng.random() < duplicate:
            self.duplicated += 1
            delays = delays + self.inner.transmit(sender, receiver, now)
        return delays


@dataclass(frozen=True)
class _Partition:
    """One scheduled black-hole: a channel set and its outage interval."""

    start: float
    end: float
    senders: frozenset[str]
    receivers: frozenset[str]
    channels: frozenset[tuple[str, str]]

    def blackholes(self, sender: str, receiver: str, now: float) -> bool:
        if not self.start <= now < self.end:
            return False
        return (sender in self.senders or receiver in self.receivers
                or (sender, receiver) in self.channels)


class PartitionNetwork(NetworkModel):
    """Black-holes a set of channels during scheduled intervals.

    Models a network partition: every transmission attempt touching a
    partitioned endpoint (or explicit channel) during ``[start, end)``
    is lost.  The broker's retransmission timer keeps retrying, so once
    the partition heals, delivery resumes in FIFO order — the partition
    manifests as a delivery stall, never as reordering.
    """

    def __init__(self, inner: NetworkModel) -> None:
        super().__init__()
        self.inner = inner
        self._partitions: list[_Partition] = []
        self.blackholed = 0

    def partition(self, start: float, end: float, *,
                  senders: tuple[str, ...] = (),
                  receivers: tuple[str, ...] = (),
                  channels: tuple[tuple[str, str], ...] = ()) -> None:
        """Schedule a black-hole of the given channel set over [start, end)."""
        if end <= start:
            raise SimulationError(
                f"partition interval must have end > start, got "
                f"[{start!r}, {end!r})")
        if not (senders or receivers or channels):
            raise SimulationError("partition needs a non-empty channel set")
        self._partitions.append(_Partition(
            start=start, end=end, senders=frozenset(senders),
            receivers=frozenset(receivers), channels=frozenset(channels)))

    def is_blackholed(self, sender: str, receiver: str, now: float) -> bool:
        return any(p.blackholes(sender, receiver, now)
                   for p in self._partitions)

    def raw_delay(self, sender: str, receiver: str) -> float:
        return self.inner.raw_delay(sender, receiver)

    def delay(self, sender: str, receiver: str, now: float) -> float:
        return self.inner.delay(sender, receiver, now)

    def transmit(self, sender: str, receiver: str, now: float) -> list[float]:
        if self.is_blackholed(sender, receiver, now):
            self.blackholed += 1
            return []
        return self.inner.transmit(sender, receiver, now)


class ReorderNetwork(NetworkModel):
    """Deliberately violates wire-level pairwise FIFO, boundedly.

    Wraps any delay model.  With probability ``reorder_probability`` a
    message "overtakes" traffic in flight on its own channel: its
    arrival is drawn between the latest pending arrival (exclusive
    above) and the latest arrival it is *not* allowed to pass, so it
    lands before messages sent earlier.  The inversion is bounded by
    construction: at most the ``max_inflight`` most recent pending
    arrivals can be overtaken, and delivery never precedes the send
    time.

    This is the one model in this module that breaks the wire-level
    FIFO contract on purpose.  The broker's per-channel sequence gates
    (:class:`~repro.broker.broker._ChannelGate`) hold early arrivals
    until their predecessors land, so consumers — and the ordering
    protocol above them — still observe pairwise-FIFO delivery; the
    integration tests assert exactly that masking.
    """

    def __init__(self, inner: NetworkModel, rng: SeededRng, *,
                 reorder_probability: float = 0.3,
                 max_inflight: int = 4) -> None:
        super().__init__()
        if not 0.0 <= reorder_probability <= 1.0:
            raise SimulationError(
                f"reorder probability must be in [0, 1], got "
                f"{reorder_probability!r}")
        if max_inflight < 1:
            raise SimulationError(
                f"max_inflight must be >= 1, got {max_inflight!r}")
        self.inner = inner
        self._rng = rng
        self.reorder_probability = reorder_probability
        self.max_inflight = max_inflight
        self._pending: dict[tuple[str, str], list[float]] = {}
        #: Messages whose planned arrival precedes an earlier send's.
        self.reordered = 0

    def raw_delay(self, sender: str, receiver: str) -> float:
        return self.inner.raw_delay(sender, receiver)

    def delay(self, sender: str, receiver: str, now: float) -> float:
        channel = (sender, receiver)
        inflight = [a for a in self._pending.get(channel, ()) if a > now]
        arrival = now + self.inner.delay(sender, receiver, now)
        if inflight and self._rng.random() < self.reorder_probability:
            # The most recent `max_inflight` pending arrivals may be
            # overtaken; everything older is a hard floor, so the
            # inversion distance is bounded by construction.
            ahead = sorted(inflight, reverse=True)[:self.max_inflight]
            upper = ahead[0]
            floor = max([now] + [a for a in inflight if a not in ahead])
            if upper > floor:
                arrival = floor + self._rng.random() * (upper - floor)
                if arrival < upper:
                    self.reordered += 1
        inflight.append(arrival)
        self._pending[channel] = inflight
        return arrival - now
