"""The discrete-event simulation kernel.

:class:`Simulator` owns a :class:`~repro.simulation.clock.Clock` and an
:class:`~repro.simulation.events.EventQueue` and runs events in
deterministic ``(time, priority, insertion)`` order.  All distributed
behaviour in this library — message delivery, CPU service times,
autoscaler control loops, workload arrivals — is expressed as events on
a single kernel, which is what makes 60-minute cloud experiments
reproducible bit-for-bit across runs.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import SimulationError
from .clock import Clock
from .events import Action, Event, EventQueue


class Simulator:
    """A deterministic discrete-event simulator.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule_at(2.0, lambda: fired.append("b"))
        >>> _ = sim.schedule_at(1.0, lambda: fired.append("a"))
        >>> sim.run()
        >>> fired
        ['a', 'b']
        >>> sim.now
        2.0
    """

    def __init__(self, start: float = 0.0) -> None:
        self.clock = Clock(start)
        self.queue = EventQueue()
        self._running = False
        self._events_executed = 0
        self._trace: list[tuple[float, str]] | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now

    @property
    def events_executed(self) -> int:
        """Total number of events executed so far."""
        return self._events_executed

    def enable_trace(self) -> None:
        """Record ``(time, label)`` for every executed event (for tests)."""
        self._trace = []

    @property
    def trace(self) -> list[tuple[float, str]]:
        if self._trace is None:
            raise SimulationError("tracing was not enabled on this simulator")
        return self._trace

    def export_metrics(self, registry) -> None:
        """Publish kernel totals into a :class:`MetricsRegistry`."""
        registry.counter("repro_sim_events_executed_total",
                         "Discrete events executed by the kernel."
                         ).set_total(self._events_executed)
        registry.gauge("repro_sim_now",
                       "Current simulated time in seconds."
                       ).set(self.clock.now)
        registry.gauge("repro_sim_pending_events",
                       "Events waiting in the kernel queue."
                       ).set(len(self.queue))

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time: float, action: Action, *, priority: int = 0,
                    label: str = "") -> Event:
        """Schedule ``action`` at absolute simulated ``time``.

        Raises:
            SimulationError: if ``time`` is in the simulated past.
        """
        if time < self.clock.now:
            raise SimulationError(
                f"cannot schedule event at {time!r}, before now={self.clock.now!r}"
            )
        return self.queue.push(time, action, priority=priority, label=label)

    def schedule_after(self, delay: float, action: Action, *, priority: int = 0,
                       label: str = "") -> Event:
        """Schedule ``action`` ``delay`` seconds from now (``delay >= 0``)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule with negative delay {delay!r}")
        return self.schedule_at(self.clock.now + delay, action,
                                priority=priority, label=label)

    def schedule_periodic(self, interval: float, action: Callable[[], Any], *,
                          start_after: float | None = None, priority: int = 0,
                          label: str = "") -> Callable[[], None]:
        """Run ``action`` every ``interval`` seconds until cancelled.

        Returns a zero-argument ``cancel`` callable; after calling it the
        periodic task stops rescheduling itself.
        """
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive, got {interval!r}")
        stopped = False
        pending: list[Event] = []

        def fire() -> None:
            if stopped:
                return
            action()
            if not stopped:
                pending.append(
                    self.schedule_after(interval, fire, priority=priority, label=label))

        def cancel() -> None:
            nonlocal stopped
            stopped = True
            for event in pending:
                event.cancel()

        first_delay = interval if start_after is None else start_after
        pending.append(
            self.schedule_after(first_delay, fire, priority=priority, label=label))
        return cancel

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single next event.  Returns ``False`` when idle."""
        if not self.queue:
            return False
        event = self.queue.pop()
        self.clock.advance_to(event.time)
        if self._trace is not None:
            self._trace.append((event.time, event.label))
        self._events_executed += 1
        event.action()
        return True

    def run(self, until: float | None = None, *, max_events: int | None = None) -> None:
        """Run events until the queue drains, ``until`` or ``max_events``.

        Args:
            until: stop once the next event would fire after this time;
                the clock is then advanced exactly to ``until``.
            max_events: safety valve for runaway simulations.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            executed = 0
            while True:
                next_time = self.queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} (runaway simulation?)")
                self.step()
                executed += 1
            if until is not None and until > self.clock.now:
                self.clock.advance_to(until)
        finally:
            self._running = False
