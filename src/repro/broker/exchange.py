"""Exchanges and binding-key matching (AMQ model, thesis §3.1.3.1).

Three exchange types are implemented, mirroring the subset the
elastic-biclique design uses:

- **direct** — a message goes to queues whose binding key equals the
  routing key exactly (used for hash-partitioned destinations, where
  the routing key is the partition index),
- **topic** — binding keys are patterns: ``*`` matches exactly one
  word, ``#`` matches zero or more words,
- **fanout** — every bound queue receives every message (used for the
  broadcast join stream under random routing and for punctuations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import BrokerError

EXCHANGE_TYPES = ("direct", "topic", "fanout")


def topic_matches(pattern: str, routing_key: str) -> bool:
    """AMQP topic matching: ``*`` = one word, ``#`` = zero or more words.

    >>> topic_matches("R.store.#", "R.store.3")
    True
    >>> topic_matches("*.join", "R.join")
    True
    >>> topic_matches("*.join", "R.store")
    False
    """
    p_words = pattern.split(".")
    k_words = routing_key.split(".")

    # Dynamic programming over (pattern index, key index).
    # reachable[j] == True  ⇔  p_words[:i] can match k_words[:j].
    reachable = [True] + [False] * len(k_words)
    for word in p_words:
        if word == "#":
            # '#' absorbs zero or more words: propagate reachability right.
            seen = False
            for j in range(len(reachable)):
                seen = seen or reachable[j]
                reachable[j] = seen
        else:
            nxt = [False] * len(reachable)
            for j in range(len(k_words)):
                if reachable[j] and (word == "*" or word == k_words[j]):
                    nxt[j + 1] = True
            reachable = nxt
    return reachable[len(k_words)]


@dataclass
class Binding:
    """A relationship between an exchange and a queue (AMQ "binding")."""

    queue_name: str
    binding_key: str


@dataclass
class Exchange:
    """A named message entry point with a routing discipline."""

    name: str
    type: str
    bindings: list[Binding] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.type not in EXCHANGE_TYPES:
            raise BrokerError(
                f"unknown exchange type {self.type!r}; known: {EXCHANGE_TYPES}")

    def bind(self, queue_name: str, binding_key: str = "") -> None:
        self.bindings.append(Binding(queue_name, binding_key))

    def unbind_queue(self, queue_name: str) -> None:
        self.bindings = [b for b in self.bindings if b.queue_name != queue_name]

    def route(self, routing_key: str) -> list[str]:
        """Names of the queues a message with ``routing_key`` goes to."""
        if self.type == "fanout":
            return [b.queue_name for b in self.bindings]
        if self.type == "direct":
            return [b.queue_name for b in self.bindings
                    if b.binding_key == routing_key]
        return [b.queue_name for b in self.bindings
                if topic_matches(b.binding_key, routing_key)]
