"""The in-process AMQP-style message broker.

:class:`Broker` wires together exchanges, queues and bindings and
delivers messages to consumer callbacks.  It runs in one of two modes:

- **synchronous** (no simulator): ``publish`` delivers to the selected
  consumers immediately, in publish order.  Used by unit tests and the
  fast correctness-oriented engine driver.
- **simulated** (a :class:`~repro.simulation.kernel.Simulator` plus a
  :class:`~repro.simulation.network.NetworkModel`): each delivery is
  scheduled as an event after a per-channel network delay.  Per
  ``(sender, consumer)`` channel order is always FIFO (the AMQP
  guarantee); order *across* channels depends on the network model,
  which is how the out-of-order scenarios of thesis Figure 8 are
  produced and the ordering protocol (§3.3) is exercised.
"""

from __future__ import annotations

from typing import Callable

from ..errors import BrokerError, UnknownExchangeError, UnknownQueueError
from ..simulation.kernel import Simulator
from ..simulation.network import NetworkModel, ZeroDelayNetwork
from .exchange import Exchange
from .message import Delivery, Message
from .queue import ConsumerFn, MessageQueue


class Broker:
    """An in-process message broker implementing the AMQ model."""

    def __init__(self, simulator: Simulator | None = None,
                 network: NetworkModel | None = None) -> None:
        if network is not None and simulator is None:
            raise BrokerError("a network model requires a simulator")
        self._sim = simulator
        self._network = network or ZeroDelayNetwork()
        self._exchanges: dict[str, Exchange] = {}
        self._queues: dict[str, MessageQueue] = {}
        self.published = 0
        self.delivered = 0
        #: Optional observer called for every delivery (metrics hooks).
        self.on_deliver: Callable[[Delivery], None] | None = None

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------
    def declare_exchange(self, name: str, type: str = "topic") -> Exchange:
        """Create (or return the existing, type-compatible) exchange."""
        existing = self._exchanges.get(name)
        if existing is not None:
            if existing.type != type:
                raise BrokerError(
                    f"exchange {name!r} exists with type {existing.type!r}, "
                    f"redeclared as {type!r}")
            return existing
        exchange = Exchange(name=name, type=type)
        self._exchanges[name] = exchange
        return exchange

    def declare_queue(self, name: str) -> MessageQueue:
        """Create (or return the existing) queue."""
        queue = self._queues.get(name)
        if queue is None:
            queue = MessageQueue(name)
            self._queues[name] = queue
        return queue

    def delete_queue(self, name: str) -> None:
        """Remove a queue and all its bindings (used on scale-in)."""
        if name not in self._queues:
            raise UnknownQueueError(f"queue {name!r} does not exist")
        del self._queues[name]
        for exchange in self._exchanges.values():
            exchange.unbind_queue(name)

    def bind(self, exchange_name: str, queue_name: str,
             binding_key: str = "#") -> None:
        exchange = self._exchange(exchange_name)
        if queue_name not in self._queues:
            raise UnknownQueueError(f"queue {queue_name!r} does not exist")
        exchange.bind(queue_name, binding_key)

    def consume(self, queue_name: str, consumer_id: str,
                callback: ConsumerFn) -> None:
        """Attach a competing consumer to a queue; drains any backlog."""
        queue = self._queue(queue_name)
        queue.add_consumer(consumer_id, callback)
        for message, consumer in queue.drain_backlog():
            self._deliver(queue, message, consumer.consumer_id,
                          consumer.callback)

    def cancel_consumer(self, queue_name: str, consumer_id: str) -> None:
        self._queue(queue_name).remove_consumer(consumer_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def exchange_names(self) -> list[str]:
        return sorted(self._exchanges)

    def queue_names(self) -> list[str]:
        return sorted(self._queues)

    def queue(self, name: str) -> MessageQueue:
        return self._queue(name)

    @property
    def now(self) -> float:
        return self._sim.now if self._sim is not None else 0.0

    @property
    def is_simulated(self) -> bool:
        """True when deliveries are scheduled on a simulator (vs. eager)."""
        return self._sim is not None

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(self, exchange_name: str, message: Message) -> int:
        """Route ``message`` through an exchange; return queues reached."""
        exchange = self._exchange(exchange_name)
        self.published += 1
        queue_names = exchange.route(message.routing_key)
        for queue_name in queue_names:
            queue = self._queue(queue_name)
            consumer = queue.offer(message)
            if consumer is not None:
                self._deliver(queue, message, consumer.consumer_id,
                              consumer.callback)
        return len(queue_names)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _deliver(self, queue: MessageQueue, message: Message,
                 consumer_id: str, callback: ConsumerFn) -> None:
        if self._sim is None:
            delivery = Delivery(message=message, queue=queue.name,
                                consumer=consumer_id, time=0.0)
            self.delivered += 1
            if self.on_deliver is not None:
                self.on_deliver(delivery)
            callback(delivery)
            return

        delay = self._network.delay(message.sender, consumer_id, self._sim.now)

        def fire() -> None:
            delivery = Delivery(message=message, queue=queue.name,
                                consumer=consumer_id, time=self._sim.now)
            self.delivered += 1
            if self.on_deliver is not None:
                self.on_deliver(delivery)
            callback(delivery)

        self._sim.schedule_after(
            delay, fire, label=f"deliver {queue.name}->{consumer_id}")

    def _exchange(self, name: str) -> Exchange:
        try:
            return self._exchanges[name]
        except KeyError:
            raise UnknownExchangeError(f"exchange {name!r} does not exist") from None

    def _queue(self, name: str) -> MessageQueue:
        try:
            return self._queues[name]
        except KeyError:
            raise UnknownQueueError(f"queue {name!r} does not exist") from None
